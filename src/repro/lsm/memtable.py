"""The in-memory delta of the LSM store.

A memtable is the mutable tip of the store: the ordered ``(k-mer,
count)`` delta of every batch ingested since the last flush.  It keeps
the same representation as every other layer — two aligned arrays,
keys strictly increasing — so batch absorption is one
:func:`~repro.apps.store.merge_sorted_counts` merge of the batch's
accumulated counts (``sort.accumulate`` products) into the resident
arrays, and a point lookup is one ``np.searchsorted``.

The byte budget is the knob that turns this into an out-of-core
structure: when ``nbytes`` crosses the store's configured budget the
owner flushes the arrays verbatim into an immutable sorted run and the
memtable resets to empty (KMC-style bins, made incremental).
"""

from __future__ import annotations

import numpy as np

from ..apps.store import merge_sorted_counts
from ..sort.accumulate import accumulate_weighted

__all__ = ["Memtable"]


class Memtable:
    """Sorted in-memory (k-mer, count) delta."""

    def __init__(self, k: int):
        self.k = k
        self.keys = np.empty(0, dtype=np.uint64)
        self.vals = np.empty(0, dtype=np.int64)

    # -- updates -------------------------------------------------------

    def add_counts(self, keys: np.ndarray, vals: np.ndarray) -> None:
        """Merge a *sorted unique* count delta (a batch's accumulate)."""
        self.keys, self.vals = merge_sorted_counts(self.keys, self.vals, keys, vals)

    def add_pairs(self, kmers: np.ndarray, weights: np.ndarray) -> None:
        """Merge unsorted ``(kmer, weight)`` pairs (accumulates first)."""
        u, s = accumulate_weighted(kmers, weights)
        self.add_counts(u, s)

    def clear(self) -> None:
        self.keys = np.empty(0, dtype=np.uint64)
        self.vals = np.empty(0, dtype=np.int64)

    # -- reads ---------------------------------------------------------

    def get(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup; absent keys answer 0."""
        keys = np.asarray(keys, dtype=np.uint64)
        if self.keys.size == 0 or keys.size == 0:
            return np.zeros(keys.size, dtype=np.int64)
        idx = np.searchsorted(self.keys, keys)
        idx_clipped = np.minimum(idx, self.keys.size - 1)
        hit = self.keys[idx_clipped] == keys
        return np.where(hit, self.vals[idx_clipped], 0).astype(np.int64)

    # -- accounting ----------------------------------------------------

    @property
    def n_distinct(self) -> int:
        return int(self.keys.size)

    @property
    def total(self) -> int:
        return int(self.vals.sum()) if self.vals.size else 0

    @property
    def nbytes(self) -> int:
        """Resident bytes (the flush-trigger measure)."""
        return int(self.keys.nbytes + self.vals.nbytes)
