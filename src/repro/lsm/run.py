"""Immutable sorted runs: the on-disk level of the LSM store.

A run is a flushed memtable (or a compaction product): strictly
increasing ``uint64`` keys with aligned ``int64`` counts, stored in the
same ``.npz`` key/count layout as :mod:`repro.apps.store` databases
plus three extras that make it servable without loading it whole:

* **fences** — the min and max key, so a point lookup skips the run
  (no I/O at all) when the key is out of range;
* a **sparse index block** — every ``index_stride``-th key.  A lookup
  binary-searches the (tiny, resident) index to find its block, then
  reads just that ``index_stride``-sized slice of the key/count arrays
  from disk;
* an explicit element count ``n``.

Partial reads work because runs are written with ``np.savez``
*uncompressed*: the ``.npy`` members sit as contiguous ``ZIP_STORED``
bytes inside the zip, so after parsing the member's local header once
(:func:`_member_layout`) the element at index ``i`` lives at a fixed
file offset and a block is one ``seek`` + ``read``.  If a run was
(re)written compressed by some external tool, :class:`Run` degrades
gracefully to loading the arrays fully.

Runs are immutable and published atomically: :func:`write_run` writes
``<name>.tmp`` and ``os.replace``\\ s it into place, so a crash leaves
either no file or a complete one — never a half-written run.
"""

from __future__ import annotations

import os
import struct
import zipfile
from pathlib import Path

import numpy as np
from numpy.lib import format as npformat

__all__ = ["RUN_VERSION", "write_run", "Run"]

RUN_VERSION = 1


def write_run(path: str | os.PathLike, k: int, keys: np.ndarray, vals: np.ndarray,
              *, index_stride: int = 4096) -> None:
    """Atomically write a sorted run (keys strictly increasing).

    *keys*/*vals* may be memmaps — ``np.savez`` streams them in bounded
    buffers, which is what keeps compaction's peak memory flat.
    """
    if index_stride < 1:
        raise ValueError("index_stride must be >= 1")
    path = Path(path)
    n = int(keys.shape[0])
    if n:
        index_keys = np.ascontiguousarray(keys[::index_stride], dtype=np.uint64)
        fence_min, fence_max = np.uint64(keys[0]), np.uint64(keys[-1])
    else:
        index_keys = np.empty(0, dtype=np.uint64)
        fence_min = fence_max = np.uint64(0)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            version=np.int64(RUN_VERSION),
            k=np.int64(k),
            n=np.int64(n),
            index_stride=np.int64(index_stride),
            fence_min=fence_min,
            fence_max=fence_max,
            index_keys=index_keys,
            kmers=keys,
            counts=vals,
        )
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _member_layout(fh, zf: zipfile.ZipFile, member: str):
    """Data offset and dtype of an uncompressed ``.npy`` zip member.

    Returns ``None`` when the member is compressed (fallback to a full
    load).  Parses the *local* file header — its name/extra lengths can
    differ from the central directory's — then the npy header behind
    it.
    """
    info = zf.getinfo(member)
    if info.compress_type != zipfile.ZIP_STORED:
        return None
    fh.seek(info.header_offset)
    local = fh.read(30)
    if len(local) != 30 or local[:4] != b"PK\x03\x04":
        raise ValueError(f"bad zip local header for {member}")
    name_len, extra_len = struct.unpack_from("<HH", local, 26)
    fh.seek(info.header_offset + 30 + name_len + extra_len)
    version = npformat.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = npformat.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = npformat.read_array_header_2_0(fh)
    else:  # pragma: no cover - future npy versions
        return None
    if fortran or len(shape) != 1:
        raise ValueError(f"{member}: expected a C-order 1-D array")
    return fh.tell(), np.dtype(dtype), int(shape[0])


class Run:
    """One immutable sorted run, served with block-granular reads."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        with np.load(self.path) as data:
            version = int(data["version"])
            if version != RUN_VERSION:
                raise ValueError(f"{self.path}: unsupported run version {version}")
            self.k = int(data["k"])
            self.n_keys = int(data["n"])
            self.index_stride = int(data["index_stride"])
            self.fence_min = int(data["fence_min"])
            self.fence_max = int(data["fence_max"])
            self.index_keys = data["index_keys"]
        self._fh = None
        self._layout: dict[str, tuple[int, np.dtype, int]] | None = None
        self._resident: dict[str, np.ndarray] | None = None  # compressed fallback
        # read-amplification accounting
        self.point_queries = 0
        self.blocks_read = 0
        self.probes = 0

    # -- raw access ----------------------------------------------------

    def _ensure_open(self) -> None:
        if self._fh is not None or self._resident is not None:
            return
        fh = open(self.path, "rb")
        layout = {}
        with zipfile.ZipFile(fh) as zf:
            for member in ("kmers", "counts"):
                lay = _member_layout(fh, zf, member + ".npy")
                if lay is None:
                    layout = None
                    break
                if lay[2] != self.n_keys:
                    raise ValueError(f"{self.path}: {member} length != n")
                layout[member] = lay
        if layout is None:
            fh.close()
            with np.load(self.path) as data:
                self._resident = {"kmers": data["kmers"], "counts": data["counts"]}
        else:
            self._fh = fh
            self._layout = layout

    def read_slice(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Read ``keys[lo:hi], counts[lo:hi]`` (one seek+read each)."""
        lo, hi = max(lo, 0), min(hi, self.n_keys)
        if hi <= lo:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
        self._ensure_open()
        if self._resident is not None:
            return self._resident["kmers"][lo:hi], self._resident["counts"][lo:hi]
        out = []
        for member in ("kmers", "counts"):
            offset, dtype, _n = self._layout[member]
            self._fh.seek(offset + lo * dtype.itemsize)
            buf = self._fh.read((hi - lo) * dtype.itemsize)
            out.append(np.frombuffer(buf, dtype=dtype))
        return out[0], out[1]

    def load(self) -> tuple[np.ndarray, np.ndarray]:
        """The whole run (compaction / snapshot input)."""
        return self.read_slice(0, self.n_keys)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._layout = None

    # -- point lookups -------------------------------------------------

    def get(self, keys: np.ndarray) -> np.ndarray:
        """Batch point lookup touching only the index blocks it needs."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=np.int64)
        if self.n_keys == 0 or keys.size == 0:
            return out
        self.probes += 1
        in_fence = (keys >= np.uint64(self.fence_min)) & (keys <= np.uint64(self.fence_max))
        if not in_fence.any():
            return out
        self.point_queries += int(keys.size)
        cand_pos = np.flatnonzero(in_fence)
        cand = keys[cand_pos]
        # index_keys[b] is the first key of block b, so 'right' - 1 is
        # the only block that can contain the key.
        blocks = np.searchsorted(self.index_keys, cand, side="right") - 1
        for b in np.unique(blocks):
            lo = int(b) * self.index_stride
            bk, bc = self.read_slice(lo, lo + self.index_stride)
            self.blocks_read += 1
            sel = blocks == b
            q = cand[sel]
            idx = np.searchsorted(bk, q)
            idx_c = np.minimum(idx, bk.size - 1)
            hit = bk[idx_c] == q
            out[cand_pos[sel]] = np.where(hit, bc[idx_c], 0)
        return out

    # -- accounting ----------------------------------------------------

    @property
    def nbytes(self) -> int:
        return os.path.getsize(self.path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Run({self.path.name}, n={self.n_keys}, "
                f"fences=[{self.fence_min:#x}, {self.fence_max:#x}])")
