"""Size-tiered compaction: streaming k-way merge of sorted runs.

Every flush adds a run, and every run a point read must probe is read
amplification; compaction is the counter-force.  The policy is
size-tiered (KMC-bin flavoured): when the store holds more than
``max_runs`` runs, the ``fan_in`` *smallest* are merged into one —
small runs are cheap to rewrite and merging peers of similar size
keeps total write amplification logarithmic.

The merge itself (:func:`merge_runs`) never materialises more than a
bounded working set:

1. each input run is cursored in ``chunk_keys``-element slices
   (block-granular :meth:`~repro.lsm.run.Run.read_slice` reads);
2. per iteration the *boundary* is the smallest last-loaded key across
   runs — every key ``<= boundary`` is provably present in the loaded
   slices (keys within a run are sorted and unique), so that prefix can
   be merged (:func:`~repro.apps.store.merge_sorted_counts`, counts
   summing) and emitted final;
3. merged chunks append to raw spill files, which are then memmapped
   and streamed into the final run file by
   :func:`~repro.lsm.run.write_run` (NumPy copies memmaps in bounded
   buffers).

Peak memory is O(``fan_in`` x ``chunk_keys``) elements regardless of
run sizes.  The output run is published with the same atomic
``.tmp`` + ``os.replace`` dance as a flush, so a crash mid-compaction
leaves the old runs authoritative and at worst an orphan file for the
store's reopen sweep.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..apps.store import merge_sorted_counts
from .run import Run, write_run

__all__ = ["CompactionConfig", "pick_compaction", "merge_runs"]


@dataclass(frozen=True)
class CompactionConfig:
    """Knobs bounding read amplification and merge memory."""

    max_runs: int = 8        # compact when the store holds more runs
    fan_in: int = 8          # runs merged per compaction
    chunk_keys: int = 1 << 16  # merge working-set bound, per run

    def __post_init__(self) -> None:
        if self.max_runs < 1:
            raise ValueError("max_runs must be >= 1")
        if self.fan_in < 2:
            raise ValueError("fan_in must be >= 2")
        if self.chunk_keys < 1:
            raise ValueError("chunk_keys must be >= 1")


def pick_compaction(runs: list[Run], config: CompactionConfig) -> list[int] | None:
    """Indices of the runs to merge next, or ``None`` if within bounds."""
    if len(runs) <= config.max_runs:
        return None
    order = sorted(range(len(runs)), key=lambda i: runs[i].n_keys)
    return sorted(order[: min(config.fan_in, len(runs))])


def merge_runs(runs: list[Run], out_path: str | os.PathLike, k: int, *,
               chunk_keys: int = 1 << 16, index_stride: int = 4096) -> None:
    """Merge *runs* into one new run at *out_path* (counts summed)."""
    if not runs:
        raise ValueError("nothing to merge")
    if any(r.k != k for r in runs):
        raise ValueError("runs disagree on k")
    out_path = Path(out_path)
    spill_keys = out_path.with_name(out_path.name + ".keys.spill")
    spill_vals = out_path.with_name(out_path.name + ".vals.spill")

    cursors = [0] * len(runs)
    loaded: list[tuple[np.ndarray, np.ndarray] | None] = [None] * len(runs)
    n_out = 0
    try:
        with open(spill_keys, "wb") as fk, open(spill_vals, "wb") as fv:
            while True:
                # Refill: every unfinished run keeps one loaded slice.
                ends = []
                for i, r in enumerate(runs):
                    if loaded[i] is None and cursors[i] < r.n_keys:
                        loaded[i] = r.read_slice(cursors[i], cursors[i] + chunk_keys)
                    if loaded[i] is not None:
                        ends.append(int(loaded[i][0][-1]))
                if not ends:
                    break
                boundary = np.uint64(min(ends))
                # Cut every loaded slice at the boundary; the cut-off
                # prefixes jointly hold *all* keys <= boundary.
                pieces = []
                for i in range(len(runs)):
                    if loaded[i] is None:
                        continue
                    bk, bv = loaded[i]
                    cut = int(np.searchsorted(bk, boundary, side="right"))
                    if cut:
                        pieces.append((bk[:cut], bv[:cut]))
                    cursors[i] += cut
                    loaded[i] = None if cut == bk.size else (bk[cut:], bv[cut:])
                mk, mv = functools.reduce(
                    lambda a, b: merge_sorted_counts(a[0], a[1], b[0], b[1]), pieces
                )
                fk.write(np.ascontiguousarray(mk).tobytes())
                fv.write(np.ascontiguousarray(mv).tobytes())
                n_out += int(mk.size)

        if n_out:
            keys = np.memmap(spill_keys, dtype=np.uint64, mode="r", shape=(n_out,))
            vals = np.memmap(spill_vals, dtype=np.int64, mode="r", shape=(n_out,))
        else:
            keys = np.empty(0, dtype=np.uint64)
            vals = np.empty(0, dtype=np.int64)
        write_run(out_path, k, keys, vals, index_stride=index_stride)
        del keys, vals
    finally:
        for spill in (spill_keys, spill_vals):
            if spill.exists():
                os.remove(spill)
