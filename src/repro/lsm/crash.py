"""Deterministic crash injection for the LSM store.

Crash-recovery code is only trustworthy if every window between two
durability points has a test that kills the process there.  A real
``kill -9`` harness is slow and flaky; instead the store calls
:meth:`CrashPoints.hit` at every named boundary (WAL append halves,
run-file publication, either side of the ``MANIFEST`` swap, ...) and a
test arms the one it wants.  An armed point raises
:class:`SimulatedCrash` *once* — the store object is then abandoned,
exactly like a dead process, and the test reopens the directory to
check recovery.  The same idiom as :mod:`repro.fault`'s seeded fault
plans: failures are injected deterministically, never sampled.
"""

from __future__ import annotations

__all__ = ["SimulatedCrash", "CrashPoints", "CRASH_POINTS"]

#: Every boundary the store announces, in ingest/flush/compact order.
CRASH_POINTS: tuple[str, ...] = (
    "wal.pre_append",        # nothing written: batch not acknowledged
    "wal.mid_append",        # torn record on disk: batch not acknowledged
    "wal.post_append",       # record durable, memtable not yet updated
    "flush.post_run_write",  # run file published, MANIFEST still old
    "flush.pre_manifest",    # ditto (tmp manifest may exist)
    "flush.post_manifest",   # MANIFEST swapped, WAL not yet reset
    "compact.post_run_write",  # merged run on disk, MANIFEST still old
    "compact.pre_manifest",
    "compact.post_manifest",   # MANIFEST swapped, victims not yet deleted
)


class SimulatedCrash(RuntimeError):
    """Raised at an armed crash point; the store must be abandoned."""


class CrashPoints:
    """Registry of armed crash points (one-shot each)."""

    def __init__(self) -> None:
        self._armed: set[str] = set()
        self.fired: list[str] = []

    def arm(self, name: str) -> None:
        if name not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {name!r}")
        self._armed.add(name)

    def hit(self, name: str) -> None:
        """Announce reaching *name*; raises if a test armed it."""
        if name in self._armed:
            self._armed.discard(name)
            self.fired.append(name)
            raise SimulatedCrash(name)
