"""Deterministic crash injection for the LSM store.

Crash-recovery code is only trustworthy if every window between two
durability points has a test that kills the process there.  A real
``kill -9`` harness is slow and flaky; instead the store calls
:meth:`CrashPoints.hit` at every named boundary (WAL append halves,
run-file publication, either side of the ``MANIFEST`` swap, ...) and a
test arms the one it wants.  An armed point raises
:class:`SimulatedCrash` *once* — the store object is then abandoned,
exactly like a dead process, and the test reopens the directory to
check recovery.  The same idiom as :mod:`repro.fault`'s seeded fault
plans: failures are injected deterministically, never sampled.

For schedule fuzzing (:mod:`repro.dst`) the registry doubles as an
enumeration API: :data:`CRASH_POINTS` is the full product space, every
traversal is counted in :attr:`CrashPoints.hit_counts`, and
``arm(name, nth=k)`` fires on the *k*-th future traversal of a point —
so a fuzzer can kill the store at the second flush as easily as the
first.
"""

from __future__ import annotations

__all__ = ["SimulatedCrash", "CrashPoints", "CRASH_POINTS", "UNACKED_POINTS"]

#: Every boundary the store announces, in ingest/flush/compact order.
CRASH_POINTS: tuple[str, ...] = (
    "wal.pre_append",        # nothing written: batch not acknowledged
    "wal.mid_append",        # torn record on disk: batch not acknowledged
    "wal.post_append",       # record durable, memtable not yet updated
    "flush.post_run_write",  # run file published, MANIFEST still old
    "flush.pre_manifest",    # ditto (tmp manifest may exist)
    "flush.post_manifest",   # MANIFEST swapped, WAL not yet reset
    "compact.post_run_write",  # merged run on disk, MANIFEST still old
    "compact.pre_manifest",
    "compact.post_manifest",   # MANIFEST swapped, victims not yet deleted
)

#: Crash points at which the in-flight ingest batch is *not* yet
#: acknowledged (durable): a crash there loses the batch by contract.
UNACKED_POINTS: frozenset[str] = frozenset({"wal.pre_append", "wal.mid_append"})


class SimulatedCrash(RuntimeError):
    """Raised at an armed crash point; the store must be abandoned."""


class CrashPoints:
    """Registry of armed crash points (one-shot each).

    ``arm(name)`` fires on the next traversal of *name*;
    ``arm(name, nth=k)`` skips ``k - 1`` traversals first.  Every
    traversal — armed or not — is tallied in :attr:`hit_counts`, so a
    completed run reports how often each window was crossed (the
    denominator a fuzzer needs to know its ``nth`` choices are live).
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        self.fired: list[str] = []
        self.hit_counts: dict[str, int] = {}

    def arm(self, name: str, *, nth: int = 1) -> None:
        if name not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {name!r}")
        if nth < 1:
            raise ValueError("nth must be >= 1")
        self._armed[name] = nth

    def disarm(self, name: str) -> None:
        self._armed.pop(name, None)

    @property
    def armed(self) -> tuple[str, ...]:
        return tuple(sorted(self._armed))

    def hit(self, name: str) -> None:
        """Announce reaching *name*; raises if a test armed it."""
        self.hit_counts[name] = self.hit_counts.get(name, 0) + 1
        remaining = self._armed.get(name)
        if remaining is None:
            return
        if remaining > 1:
            self._armed[name] = remaining - 1
            return
        del self._armed[name]
        self.fired.append(name)
        raise SimulatedCrash(name)
