"""``LsmStore`` — the updatable, crash-recoverable k-mer count store.

Glues the layers into one log-structured store::

    ingest(reads) --> WAL append --> count batch --> memtable merge
                                         |  (byte budget exceeded)
                                       flush --> immutable sorted run
                                         |  (> max_runs runs)
                                      compaction --> merged run

    get(keys)  = memtable.get + sum over runs  (merge-on-read,
                 newest first; counts are additive deltas)
    snapshot() = full merge into one KmerCounts (a frozen database)

Crash consistency is anchored on two facts:

* the ``MANIFEST`` (a JSON file swapped with ``os.replace``) is the
  *only* authority on which runs exist and which WAL prefix they
  already contain (``wal_applied_seq``);
* every other write is either append-only and checksummed (the WAL) or
  published atomically under a fresh name (runs).

So at any kill point the reopen path is the same: read the MANIFEST,
delete files it does not know about, replay the WAL above the applied
watermark.  Acknowledged batches (WAL append returned) are never lost,
and replay never double-counts — the exact conventions of
:mod:`repro.fault`'s ``CheckpointStore``, applied to storage.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Callable
from pathlib import Path

import numpy as np

from ..apps.store import merge_sorted_counts
from ..core.owner import owner_pe
from ..core.result import KmerCounts
from ..core.serial import serial_count
from .compaction import CompactionConfig, merge_runs, pick_compaction
from .crash import CrashPoints
from .memtable import Memtable
from .run import Run, write_run
from .wal import WriteAheadLog, as_read_list

__all__ = ["LsmConfig", "LsmStats", "LsmStore", "LsmReadView"]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = 1
WAL_NAME = "wal.log"


@dataclass(frozen=True)
class LsmConfig:
    """Tuning knobs: memory budget, fan-in bound, durability."""

    memtable_bytes: int = 8 << 20   # flush trigger (resident delta bytes)
    max_runs: int = 8               # read-amplification bound (fan-in)
    fan_in: int = 8                 # runs merged per compaction
    chunk_keys: int = 1 << 16       # compaction working-set bound
    index_stride: int = 4096        # sparse-index block size (keys)
    canonical: bool = False         # strand-folded counting
    wal_sync: bool = False          # fsync every WAL append
    auto_compact: bool = True       # compact inline when runs exceed bound

    def __post_init__(self) -> None:
        if self.memtable_bytes < 1:
            raise ValueError("memtable_bytes must be >= 1")
        if self.index_stride < 1:
            raise ValueError("index_stride must be >= 1")
        CompactionConfig(self.max_runs, self.fan_in, self.chunk_keys)

    @property
    def compaction(self) -> CompactionConfig:
        return CompactionConfig(self.max_runs, self.fan_in, self.chunk_keys)


@dataclass
class LsmStats:
    """Operational counters of one open store."""

    records_ingested: int = 0
    batches_ingested: int = 0
    bulk_loads: int = 0       # ingest_counts() calls (no WAL)
    replayed_batches: int = 0
    flushes: int = 0
    compactions: int = 0
    point_reads: int = 0      # keys answered by get()
    run_probes: int = 0       # run consultations across those reads
    runs_merged: int = 0

    @property
    def read_amplification(self) -> float:
        """Mean runs consulted per point-read batch key."""
        if not self.point_reads:
            return 0.0
        return self.run_probes / self.point_reads

    def snapshot(self) -> dict:
        return {
            "records_ingested": self.records_ingested,
            "batches_ingested": self.batches_ingested,
            "bulk_loads": self.bulk_loads,
            "replayed_batches": self.replayed_batches,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "runs_merged": self.runs_merged,
            "point_reads": self.point_reads,
            "run_probes": self.run_probes,
            "read_amplification": self.read_amplification,
        }


class LsmStore:
    """Updatable k-mer count store over a directory (open-or-create)."""

    def __init__(self, path: str | os.PathLike, k: int | None = None, *,
                 config: LsmConfig | None = None,
                 crash: CrashPoints | None = None):
        self.dir = Path(path)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.config = config or LsmConfig()
        self.crash = crash or CrashPoints()
        self.stats = LsmStats()

        manifest_path = self.dir / MANIFEST_NAME
        if manifest_path.exists():
            man = json.loads(manifest_path.read_text())
            if man.get("format") != MANIFEST_FORMAT:
                raise ValueError(f"{manifest_path}: unsupported manifest format")
            if k is not None and man["k"] != k:
                raise ValueError(
                    f"{self.dir}: store has k={man['k']}, requested k={k}")
            self.k = int(man["k"])
            # The manifest's canonical flag is authoritative for an
            # existing store; the config value only applies at creation.
            if man["canonical"] != self.config.canonical:
                self.config = replace(self.config, canonical=man["canonical"])
        else:
            if k is None:
                raise ValueError("creating a new store requires k")
            self.k = k
            man = {"format": MANIFEST_FORMAT, "k": k,
                   "canonical": self.config.canonical,
                   "runs": [], "next_run_id": 1, "wal_applied_seq": 0}
            self._write_manifest(man)
        self._man = man

        self._sweep_orphans()
        self.runs: list[Run] = [Run(self.dir / name) for name in man["runs"]]
        self.memtable = Memtable(self.k)
        # Ingest listeners (e.g. a serving cache invalidating updated
        # keys).  Must exist before WAL replay — replay absorbs batches
        # through the same path, before any listener can subscribe.
        self._listeners: list = []
        self.wal = WriteAheadLog(self.dir / WAL_NAME, sync=self.config.wal_sync,
                                 crash=self.crash)
        for _seq, batch in self.wal.replay(after_seq=man["wal_applied_seq"]):
            self._absorb(batch)
            self.stats.replayed_batches += 1

    # -- manifest / recovery -------------------------------------------

    def _write_manifest(self, man: dict) -> None:
        tmp = self.dir / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(man, indent=2) + "\n")
        os.replace(tmp, self.dir / MANIFEST_NAME)

    def _sweep_orphans(self) -> None:
        """Delete files the MANIFEST does not acknowledge.

        Crashes between publishing a run file and swapping the MANIFEST
        (or between a compaction swap and victim deletion) leave such
        files; they are dead weight, never wrong data.
        """
        known = set(self._man["runs"])
        for p in self.dir.glob("run-*.npz"):
            if p.name not in known:
                p.unlink()
        for p in self.dir.glob("*.tmp"):
            p.unlink()
        for p in self.dir.glob("*.spill"):
            p.unlink()

    # -- writes --------------------------------------------------------

    def _absorb(self, batch: list[np.ndarray]) -> int:
        """Count one read batch into the memtable (no WAL, no flush)."""
        kc = serial_count(batch, self.k, canonical=self.config.canonical)
        self.memtable.add_counts(kc.kmers, kc.counts)
        for listener in self._listeners:
            listener(kc.kmers)
        return len(batch)

    def subscribe(self, listener: Callable) -> Callable[[], None]:
        """Call *listener(updated_kmers)* after every absorbed batch.

        The argument is the batch's distinct k-mer array (uint64,
        sorted).  Anything caching answers over this store must
        invalidate those keys or it will serve pre-ingest counts.
        Returns an unsubscribe callable.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def ingest(self, reads: np.ndarray | list) -> int:
        """Durably ingest one read batch; returns records absorbed.

        The batch is acknowledged (and therefore crash-durable) once
        this returns; a flush and compaction may run inline when the
        memtable budget or the run bound is exceeded.
        """
        batch = as_read_list(reads)
        if not batch:
            return 0
        self.wal.append(batch)
        self._absorb(batch)
        self.stats.records_ingested += len(batch)
        self.stats.batches_ingested += 1
        if self.memtable.nbytes >= self.config.memtable_bytes:
            self.flush()
            if self.config.auto_compact:
                self.compact()
        return len(batch)

    def ingest_counts(self, keys: np.ndarray, vals: np.ndarray) -> int:
        """Bulk-load a pre-counted ``(kmer, count)`` delta; returns pairs.

        The fusion point of out-of-core counting: pass 2 of
        :func:`repro.ooc.ooc_count` feeds each counted bin straight in
        here, so flushes and compactions interleave with counting under
        the memtable budget.  Unlike :meth:`ingest` this path writes no
        WAL — the caller's spill bins (or source reads) are the durable
        input, and a crash loses only deltas the caller can re-derive;
        call :meth:`flush` afterwards to make the load durable.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        vals = np.asarray(vals, dtype=np.int64)
        if keys.shape != vals.shape or keys.ndim != 1:
            raise ValueError("keys and vals must be 1-D arrays of equal length")
        if keys.size == 0:
            return 0
        if keys.size > 1 and not (keys[:-1] < keys[1:]).all():
            self.memtable.add_pairs(keys, vals)   # unsorted/duplicated delta
        else:
            self.memtable.add_counts(keys, vals)
        for listener in self._listeners:
            listener(keys)
        self.stats.bulk_loads += 1
        if self.memtable.nbytes >= self.config.memtable_bytes:
            self.flush()
            if self.config.auto_compact:
                self.compact()
        return int(keys.size)

    def flush(self) -> Run | None:
        """Freeze the memtable into a new immutable run (if non-empty)."""
        if self.memtable.n_distinct == 0:
            return None
        applied = self.wal.last_seq
        run_id = self._man["next_run_id"]
        name = f"run-{run_id:06d}.npz"
        write_run(self.dir / name, self.k, self.memtable.keys, self.memtable.vals,
                  index_stride=self.config.index_stride)
        self.crash.hit("flush.post_run_write")
        new_man = dict(self._man,
                       runs=[name] + list(self._man["runs"]),
                       next_run_id=run_id + 1,
                       wal_applied_seq=applied)
        self.crash.hit("flush.pre_manifest")
        self._write_manifest(new_man)
        self._man = new_man
        self.crash.hit("flush.post_manifest")
        run = Run(self.dir / name)
        self.runs.insert(0, run)
        self.memtable.clear()
        self.wal.reset(applied)
        self.stats.flushes += 1
        return run

    def compact(self) -> int:
        """Merge runs until within the ``max_runs`` bound; returns merges."""
        merges = 0
        while True:
            sel = pick_compaction(self.runs, self.config.compaction)
            if sel is None:
                return merges
            self._compact_once(sel)
            merges += 1

    def _compact_once(self, sel: list[int]) -> None:
        victims = [self.runs[i] for i in sel]
        run_id = self._man["next_run_id"]
        name = f"run-{run_id:06d}.npz"
        merge_runs(victims, self.dir / name, self.k,
                   chunk_keys=self.config.chunk_keys,
                   index_stride=self.config.index_stride)
        self.crash.hit("compact.post_run_write")
        new_names = list(self._man["runs"])
        victim_names = {v.path.name for v in victims}
        insert_at = min(sel)  # merged run takes the newest victim's slot
        new_names = [n for n in new_names if n not in victim_names]
        new_names.insert(insert_at, name)
        new_man = dict(self._man, runs=new_names, next_run_id=run_id + 1)
        self.crash.hit("compact.pre_manifest")
        self._write_manifest(new_man)
        self._man = new_man
        self.crash.hit("compact.post_manifest")
        merged = Run(self.dir / name)
        self.runs = [r for r in self.runs if r.path.name not in victim_names]
        self.runs.insert(insert_at, merged)
        for v in victims:
            v.close()
            if v.path.exists():
                v.path.unlink()
        self.stats.compactions += 1
        self.stats.runs_merged += len(victims)

    # -- reads ---------------------------------------------------------

    def get(self, keys: np.ndarray) -> np.ndarray:
        """Merge-on-read batch lookup: memtable + every run, summed."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = self.memtable.get(keys)
        for run in self.runs:
            out += run.get(keys)
        self.stats.point_reads += int(keys.size)
        self.stats.run_probes += int(keys.size) * len(self.runs)
        return out

    def snapshot(self) -> KmerCounts:
        """A frozen, fully merged :class:`KmerCounts` of the live state."""
        keys, vals = self.memtable.keys.copy(), self.memtable.vals.copy()
        for run in self.runs:
            rk, rv = run.load()
            keys, vals = merge_sorted_counts(keys, vals, rk, rv)
        return KmerCounts(self.k, keys, vals)

    def read_view(self, n_shards: int = 1) -> "LsmReadView":
        """A live serving view pluggable into :class:`repro.serve`."""
        return LsmReadView(self, n_shards)

    # -- introspection / lifecycle -------------------------------------

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def n_distinct(self) -> int:
        """Distinct k-mers (upper bound: run key sets may overlap)."""
        return self.memtable.n_distinct + sum(r.n_keys for r in self.runs)

    @property
    def total(self) -> int:
        """Total k-mer occurrences across memtable and runs (exact)."""
        total = self.memtable.total
        for run in self.runs:
            _rk, rv = run.load()
            total += int(rv.sum()) if rv.size else 0
        return total

    def describe(self) -> dict:
        """JSON-friendly store summary (the ``dakc ingest`` report)."""
        return {
            "dir": str(self.dir),
            "k": self.k,
            "canonical": self.config.canonical,
            "memtable": {"n_distinct": self.memtable.n_distinct,
                         "nbytes": self.memtable.nbytes,
                         "budget_bytes": self.config.memtable_bytes},
            "runs": [{"name": r.path.name, "n_keys": r.n_keys,
                      "nbytes": r.nbytes} for r in self.runs],
            "wal": {"last_seq": self.wal.last_seq,
                    "applied_seq": self._man["wal_applied_seq"],
                    "nbytes": self.wal.nbytes},
            "stats": self.stats.snapshot(),
        }

    def close(self) -> None:
        self.wal.close()
        for run in self.runs:
            run.close()

    def __enter__(self) -> "LsmStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LsmReadView:
    """Duck-typed :class:`~repro.serve.shards.ShardedStore` over a live store.

    The serve engine only needs routing (``n_shards``, ``shard_of``) and
    batched lookups (``lookup_batch``); both are answered against the
    *current* memtable + runs, so a :class:`~repro.serve.engine.QueryEngine`
    holding this view serves exact counts while ingest and compaction
    keep mutating the store underneath — no rebuild, no snapshot copy.
    Sharding here is virtual (routing only): data stays in one store,
    but the engine's per-shard micro-batchers still coalesce by owner.
    """

    def __init__(self, store: LsmStore, n_shards: int = 1):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.store = store
        self.n_shards = n_shards
        self.k = store.k

    def shard_of(self, keys: np.ndarray | int) -> np.ndarray | int:
        """splitmix64 routing, identical to :class:`ShardedStore`."""
        scalar = np.isscalar(keys) or isinstance(keys, (int, np.integer))
        ids = owner_pe(np.atleast_1d(np.asarray(keys, dtype=np.uint64)), self.n_shards)
        return int(ids[0]) if scalar else ids

    def lookup_batch(self, shard_id: int, keys: np.ndarray) -> np.ndarray:
        """One merge-on-read lookup (shard id is routing-only)."""
        return self.store.get(keys)

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        return self.store.get(keys)

    def get(self, key: int) -> int:
        """Scalar lookup (the naive baseline path)."""
        return int(self.store.get(np.array([key], dtype=np.uint64))[0])

    def subscribe(self, listener: Callable) -> Callable[[], None]:
        """Delegate ingest notifications to the underlying store."""
        return self.store.subscribe(listener)

    @property
    def n_distinct(self) -> int:
        return self.store.n_distinct
