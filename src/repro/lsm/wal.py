"""Write-ahead log of encoded read batches.

Durability for the LSM store's in-memory delta: every ``ingest`` batch
is appended here *before* it is counted into the memtable, so a crash
loses nothing that was acknowledged.  On reopen the store replays the
records newer than the ``MANIFEST``'s ``wal_applied_seq`` watermark and
rebuilds the memtable exactly.

File layout (little-endian)::

    header:  magic "DWAL" | u32 version | u64 base_seq
    record:  u64 seq | u32 payload_len | u32 crc32(payload) | payload

The payload is one encoded read batch (``u32 n_reads``, then the read
lengths, then the concatenated 2-bit-code bytes).  Records carry their
own length and CRC so a torn tail — the half-written record a crash
mid-append leaves behind — is detected and truncated on open instead of
being replayed as garbage.  ``base_seq`` in the header keeps sequence
numbers monotone across :meth:`WriteAheadLog.reset` (after a flush the
log is emptied but numbering must not restart below the manifest's
applied watermark, or replay would double-count).
"""

from __future__ import annotations

import os
import struct
import zlib
from collections.abc import Iterator
from pathlib import Path

import numpy as np

from .crash import CrashPoints, SimulatedCrash

__all__ = ["WriteAheadLog", "as_read_list"]

_MAGIC = b"DWAL"
_WAL_VERSION = 1
_HEADER = struct.Struct("<4sIQ")      # magic, version, base_seq
_REC_HEADER = struct.Struct("<QII")   # seq, payload_len, crc32


def as_read_list(reads: np.ndarray | list) -> list[np.ndarray]:
    """Normalise a read batch to a list of 1-D ``uint8`` code arrays.

    Accepts the same shapes as :func:`repro.core.serial.serial_count`:
    a 2-D code matrix (rows = equal-length reads) or a list of 1-D code
    arrays.
    """
    if isinstance(reads, np.ndarray):
        if reads.ndim == 1:
            return [np.ascontiguousarray(reads, dtype=np.uint8)]
        if reads.ndim == 2:
            m = np.ascontiguousarray(reads, dtype=np.uint8)
            return [m[i] for i in range(m.shape[0])]
        raise ValueError("reads array must be 1-D or 2-D")
    return [np.ascontiguousarray(r, dtype=np.uint8).reshape(-1) for r in reads]


def _encode_batch(batch: list[np.ndarray]) -> bytes:
    lens = np.array([r.size for r in batch], dtype=np.uint32)
    parts = [struct.pack("<I", len(batch)), lens.tobytes()]
    parts.extend(r.tobytes() for r in batch)
    return b"".join(parts)


def _decode_batch(payload: bytes) -> list[np.ndarray]:
    (n,) = struct.unpack_from("<I", payload, 0)
    lens = np.frombuffer(payload, dtype=np.uint32, count=n, offset=4)
    out: list[np.ndarray] = []
    off = 4 + 4 * n
    for ln in lens.tolist():
        out.append(np.frombuffer(payload, dtype=np.uint8, count=ln, offset=off).copy())
        off += ln
    return out


class WriteAheadLog:
    """Append-only, checksummed log of read batches with torn-tail repair."""

    def __init__(self, path: str | os.PathLike, *,
                 sync: bool = False, crash: CrashPoints | None = None):
        self.path = Path(path)
        self.sync = sync
        self.crash = crash or CrashPoints()
        self.last_seq = 0
        self.records = 0
        if self.path.exists():
            self._open_and_repair()
        else:
            self._fh = open(self.path, "w+b")
            self._write_header(0)

    # -- lifecycle -----------------------------------------------------

    def _write_header(self, base_seq: int) -> None:
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(_MAGIC, _WAL_VERSION, base_seq))
        self._fh.truncate()
        self._flush()
        self.last_seq = base_seq
        self.records = 0

    def _open_and_repair(self) -> None:
        """Open an existing log; truncate any torn record at the tail."""
        self._fh = open(self.path, "r+b")
        header = self._fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            # Crash before the header finished: an empty log.
            self._write_header(0)
            return
        magic, version, base_seq = _HEADER.unpack(header)
        if magic != _MAGIC or version != _WAL_VERSION:
            raise ValueError(f"{self.path}: not a DAKC write-ahead log")
        self.last_seq = base_seq
        valid_end = _HEADER.size
        for seq, _payload, end in self._scan(self._fh, _HEADER.size):
            self.last_seq = max(self.last_seq, seq)
            self.records += 1
            valid_end = end
        if os.path.getsize(self.path) != valid_end:
            self._fh.seek(valid_end)
            self._fh.truncate()
            self._flush()
        self._fh.seek(0, os.SEEK_END)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    # -- record framing ------------------------------------------------

    @staticmethod
    def _scan(fh, start: int) -> Iterator[tuple[int, bytes, int]]:
        """Yield ``(seq, payload, end_offset)`` for every valid record.

        Stops (without raising) at the first truncated or corrupt
        record — everything after a torn write is unreachable garbage.
        """
        fh.seek(start)
        while True:
            pos = fh.tell()
            header = fh.read(_REC_HEADER.size)
            if len(header) < _REC_HEADER.size:
                return
            seq, length, crc = _REC_HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return
            yield seq, payload, pos + _REC_HEADER.size + length

    # -- operations ----------------------------------------------------

    def append(self, reads: np.ndarray | list) -> int:
        """Durably append one read batch; returns its sequence number."""
        batch = as_read_list(reads)
        self.crash.hit("wal.pre_append")
        seq = self.last_seq + 1
        payload = _encode_batch(batch)
        record = _REC_HEADER.pack(seq, len(payload), zlib.crc32(payload)) + payload
        mid = len(record) // 2
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(record[:mid])
        try:
            self.crash.hit("wal.mid_append")
        except SimulatedCrash:
            self._flush()  # leave the torn half on disk, like a real crash
            raise
        self._fh.write(record[mid:])
        self._flush()
        self.last_seq = seq
        self.records += 1
        self.crash.hit("wal.post_append")
        return seq

    def replay(self, *, after_seq: int = 0) -> Iterator[tuple[int, list[np.ndarray]]]:
        """Yield ``(seq, batch)`` for every record with ``seq > after_seq``."""
        self._fh.flush()
        with open(self.path, "rb") as fh:
            for seq, payload, _end in self._scan(fh, _HEADER.size):
                if seq > after_seq:
                    yield seq, _decode_batch(payload)
        self._fh.seek(0, os.SEEK_END)

    def reset(self, base_seq: int) -> None:
        """Empty the log after a flush; numbering resumes above *base_seq*."""
        if base_seq < self.last_seq:
            raise ValueError("reset would rewind the sequence counter")
        self._write_header(base_seq)

    def _flush(self) -> None:
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())

    @property
    def nbytes(self) -> int:
        self._fh.flush()
        return os.path.getsize(self.path)
