"""repro.lsm — log-structured, updatable k-mer count store.

The counting layers produce frozen databases and :mod:`repro.serve`
answers queries over them; this package closes the loop for a *live*
system: new reads keep arriving, and the store absorbs them durably
while continuing to serve exact counts — no full recount, no downtime.

* :mod:`repro.lsm.wal` — checksummed write-ahead log of encoded read
  batches with torn-tail repair and replay-on-open;
* :mod:`repro.lsm.memtable` — in-memory sorted count delta under a
  byte budget (built on ``sort.accumulate`` products);
* :mod:`repro.lsm.run` — immutable sorted runs on disk: the
  ``apps.store`` ``.npz`` key/count format plus min/max fences and a
  sparse index block for point lookups without loading the run;
* :mod:`repro.lsm.compaction` — size-tiered, bounded-memory streaming
  k-way merge with atomic publication;
* :mod:`repro.lsm.store` — the :class:`LsmStore` façade
  (``ingest`` / ``get`` / ``snapshot`` / ``compact``) and the
  :class:`LsmReadView` that plugs into :mod:`repro.serve`'s
  ``QueryEngine`` for serve-while-ingesting;
* :mod:`repro.lsm.crash` — deterministic crash-point injection used by
  the recovery tests.

See ``docs/LSM.md`` for the design, the crash-consistency argument,
and the memory-budget knobs.
"""

from .compaction import CompactionConfig, merge_runs, pick_compaction
from .crash import CRASH_POINTS, CrashPoints, SimulatedCrash
from .memtable import Memtable
from .run import Run, write_run
from .store import LsmConfig, LsmReadView, LsmStats, LsmStore
from .wal import WriteAheadLog, as_read_list

__all__ = [
    "LsmStore",
    "LsmConfig",
    "LsmStats",
    "LsmReadView",
    "Memtable",
    "Run",
    "write_run",
    "WriteAheadLog",
    "as_read_list",
    "CompactionConfig",
    "pick_compaction",
    "merge_runs",
    "CrashPoints",
    "SimulatedCrash",
    "CRASH_POINTS",
]
