"""Host calibration: build a MachineConfig from microbenchmarks.

The paper obtains its Table IV parameters (``C_node``, ``beta_mem``)
from microbenchmarks on Phoenix.  This module runs the analogous
measurements on the *host* so the simulator can be parameterised for
the machine it is running on (``dakc calibrate``):

* :func:`measure_int64_ops` — peak INT64 add throughput (NumPy add
  over a cache-resident array);
* :func:`measure_memory_bandwidth` — streaming copy bandwidth over an
  array far larger than any cache;
* :func:`estimate_cache_bytes` — last-level cache size from the knee
  of the size-vs-bandwidth curve;
* :func:`calibrate_machine` — package the measurements as a
  single-node :class:`~repro.runtime.machine.MachineConfig` (NIC
  parameters cannot be measured without a network and default to the
  Phoenix values).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .machine import MachineConfig, phoenix_intel

__all__ = [
    "measure_int64_ops",
    "measure_memory_bandwidth",
    "estimate_cache_bytes",
    "CalibrationResult",
    "calibrate_machine",
]


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of *repeats* invocations (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_int64_ops(*, size: int = 1 << 20, repeats: int = 5) -> float:
    """Measured INT64 additions per second (single thread)."""
    a = np.arange(size, dtype=np.int64)
    b = np.ones(size, dtype=np.int64)
    out = np.empty_like(a)
    dt = _best_of(lambda: np.add(a, b, out=out), repeats)
    return size / dt


def measure_memory_bandwidth(*, size: int = 1 << 26, repeats: int = 3) -> float:
    """Measured streaming bandwidth in bytes/s (copy: read + write)."""
    src = np.zeros(size, dtype=np.uint8)
    dst = np.empty_like(src)
    dt = _best_of(lambda: np.copyto(dst, src), repeats)
    return 2 * size / dt  # bytes read + bytes written


def estimate_cache_bytes(
    *, sizes: list[int] | None = None, repeats: int = 3
) -> int:
    """Estimate LLC size from the bandwidth knee.

    Copies working sets of increasing size; the largest size whose
    effective bandwidth stays within 60% of the smallest-size
    bandwidth is taken as cache-resident.
    """
    sizes = sizes or [1 << s for s in range(14, 27)]
    bandwidths: list[tuple[int, float]] = []
    for size in sizes:
        src = np.zeros(size, dtype=np.uint8)
        dst = np.empty_like(src)
        dt = _best_of(lambda: np.copyto(dst, src), repeats)
        bandwidths.append((size, 2 * size / dt))
    fast = bandwidths[0][1]
    cache = sizes[0]
    for size, bw in bandwidths:
        if bw >= 0.6 * fast:
            cache = size
        else:
            break
    return cache


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Measured host parameters plus the resulting machine config."""

    int64_ops: float
    memory_bandwidth: float
    cache_bytes: int
    machine: MachineConfig


def calibrate_machine(
    *,
    nodes: int = 1,
    cores: int | None = None,
    quick: bool = False,
) -> CalibrationResult:
    """Measure the host and build a matching single-node machine.

    ``quick=True`` shrinks the measurement sizes (used by tests); the
    numbers are noisier but the structure is identical.  The measured
    single-thread rates are scaled by the assumed core count (the
    model's intranode-efficiency assumption), and network parameters
    are inherited from the Phoenix preset.
    """
    if quick:
        ops = measure_int64_ops(size=1 << 16, repeats=2)
        bw = measure_memory_bandwidth(size=1 << 22, repeats=2)
        cache = estimate_cache_bytes(sizes=[1 << 14, 1 << 18, 1 << 22], repeats=1)
    else:
        ops = measure_int64_ops()
        bw = measure_memory_bandwidth()
        cache = estimate_cache_bytes()
    cores = cores or 8
    reference = phoenix_intel(nodes)
    machine = MachineConfig(
        name="calibrated-host",
        nodes=nodes,
        sockets_per_node=1,
        cores_per_socket=cores,
        c_node=ops * cores,
        beta_mem=bw,  # streaming copy already saturates the socket
        beta_link=reference.beta_link,
        cache_bytes=cache,
        line_bytes=64,
        mem_bytes=reference.mem_bytes,
        tau=reference.tau,
    )
    return CalibrationResult(
        int64_ops=ops, memory_bandwidth=bw, cache_bytes=cache, machine=machine
    )
