"""Per-PE memory accounting and OOM modelling.

Two distinct jobs live here:

1. **Measured accounting** (:class:`MemoryTracker`): the simulated
   runtime registers every live aggregation buffer and data array with
   a category tag; high-water marks per PE feed Fig. 2 (per-core memory
   overhead of the 1D/2D/3D protocols).

2. **Closed-form models** (:func:`aggregation_memory_per_pe`,
   :func:`algorithm_footprint_bytes`): Table III's formulas and the
   per-algorithm working-set estimates used to decide *full-scale* OOM
   outcomes (Fig. 8: PakMan* dies on Synthetic 32 at 16 and 32 nodes;
   HySortK cannot run it at any node count).  OOM decisions must be
   made at paper scale even though we execute scaled-down replicas, so
   they are computed from the dataset descriptors, not from live
   allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "OutOfMemoryError",
    "MemoryTracker",
    "L0_BUFFER_BYTES",
    "aggregation_memory_per_pe",
    "table3_rows",
]


class OutOfMemoryError(RuntimeError):
    """Raised when an algorithm's modelled footprint exceeds node DRAM."""

    def __init__(self, message: str, *, required: int, available: int) -> None:
        super().__init__(message)
        self.required = required
        self.available = available


#: Bytes of one L0 (Conveyors) buffer: Table III gives 40K x P^x per
#: PE, i.e. each of the P^x per-PE buffers holds 40 KiB.
L0_BUFFER_BYTES: int = 40 * 1024

#: Bytes per element in the L1 runtime buffer (packet slot); Table III:
#: C1 = 1024 elements -> 264 KB per PE, so ~258 B per slot (a packet of
#: up to C2 = 32 8-byte k-mers plus header/bookkeeping).
L1_SLOT_BYTES: int = 264

#: Bytes per element of an L2 buffer: Table III lists 264 x P bytes/PE
#: for C2 = 32 element buffers plus headroom -> 8.25 B/elem; we charge
#: 8 B of payload and amortised header.
L2_ELEM_BYTES: int = 8

#: Bytes per element of the single L3 buffer (80 KB / 10K elements).
L3_ELEM_BYTES: int = 8


def aggregation_memory_per_pe(
    protocol: str,
    p: int,
    *,
    c1: int = 1024,
    c2: int = 32,
    c3: int = 10_000,
) -> dict[str, int]:
    """Table III closed forms: bytes per PE for each aggregation layer.

    ``x`` is 1 for 1D, 1/2 for 2D, 1/3 for 3D; the L0 layer keeps
    ``P^x`` buffers of 40 KiB per PE.
    """
    proto = protocol.upper()
    exponents = {"1D": 1.0, "2D": 0.5, "3D": 1.0 / 3.0}
    if proto not in exponents:
        raise ValueError(f"unknown protocol {protocol!r}")
    x = exponents[proto]
    l0 = int(L0_BUFFER_BYTES * (p**x))
    l1 = L1_SLOT_BYTES * c1
    # One L2N + L2H pair per destination PE; amortised header included.
    l2 = int(264 * (c2 / 32)) * p  # 264 B per destination at default C2=32
    l3 = L3_ELEM_BYTES * c3
    return {"L0": l0, "L1": l1, "L2": l2, "L3": l3, "total": l0 + l1 + l2 + l3}


def table3_rows(p: int, *, c1: int = 1024, c2: int = 32, c3: int = 10_000) -> list[dict]:
    """Rows of Table III for a machine of *p* PEs."""
    rows = []
    per_pe_1d = aggregation_memory_per_pe("1D", p, c1=c1, c2=c2, c3=c3)
    rows.append(
        {"Scope": "Runtime", "Layer": "L0", "Buffers/PE": "P^x",
         "Element/Buffer": "NA", "Memory/PE (1D)": per_pe_1d["L0"]}
    )
    rows.append(
        {"Scope": "Runtime", "Layer": "L1", "Buffers/PE": "1",
         "Element/Buffer": f"C1={c1}", "Memory/PE (1D)": per_pe_1d["L1"]}
    )
    rows.append(
        {"Scope": "Application", "Layer": "L2", "Buffers/PE": "P",
         "Element/Buffer": f"C2={c2}", "Memory/PE (1D)": per_pe_1d["L2"]}
    )
    rows.append(
        {"Scope": "Application", "Layer": "L3", "Buffers/PE": "1",
         "Element/Buffer": f"C3={c3}", "Memory/PE (1D)": per_pe_1d["L3"]}
    )
    return rows


@dataclass
class MemoryTracker:
    """Live allocation accounting for one simulated run.

    Allocations are keyed ``(pe, category)``; the tracker maintains the
    current and peak total per PE.  The runtime registers aggregation
    buffers, receive buffers and local k-mer arrays here.

    An optional ``budget_bytes`` arms live OOM detection: any
    allocation pushing a PE past the budget raises
    :class:`OutOfMemoryError` at the exact allocation site — the
    in-simulation counterpart of the full-scale footprint gates (used
    by tests to fault-inject memory exhaustion).
    """

    n_pes: int
    budget_bytes: int | None = None
    current: dict[tuple[int, str], int] = field(default_factory=dict)
    _per_pe: list[int] = field(default_factory=list)
    _peak: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self._per_pe:
            self._per_pe = [0] * self.n_pes
            self._peak = [0] * self.n_pes
        if self.budget_bytes is not None and self.budget_bytes <= 0:
            raise ValueError("budget_bytes must be positive when given")

    def allocate(self, pe: int, category: str, nbytes: int) -> None:
        """Grow category *category* on PE *pe* by *nbytes*."""
        if nbytes < 0:
            raise ValueError("allocate takes non-negative sizes; use free")
        key = (pe, category)
        if (
            self.budget_bytes is not None
            and self._per_pe[pe] + nbytes > self.budget_bytes
        ):
            raise OutOfMemoryError(
                f"PE {pe} exceeded its {self.budget_bytes} B budget "
                f"allocating {nbytes} B for {category!r}",
                required=self._per_pe[pe] + nbytes,
                available=self.budget_bytes,
            )
        self.current[key] = self.current.get(key, 0) + nbytes
        self._per_pe[pe] += nbytes
        if self._per_pe[pe] > self._peak[pe]:
            self._peak[pe] = self._per_pe[pe]

    def free(self, pe: int, category: str, nbytes: int | None = None) -> None:
        """Release *nbytes* (or the whole category) on PE *pe*."""
        key = (pe, category)
        held = self.current.get(key, 0)
        amount = held if nbytes is None else nbytes
        if amount > held:
            raise ValueError(
                f"freeing {amount} B from {category!r} on PE {pe} "
                f"but only {held} B are held"
            )
        self.current[key] = held - amount
        self._per_pe[pe] -= amount

    def set_category(self, pe: int, category: str, nbytes: int) -> None:
        """Set a category to an absolute size (resize semantics)."""
        key = (pe, category)
        held = self.current.get(key, 0)
        if nbytes >= held:
            self.allocate(pe, category, nbytes - held)
        else:
            self.free(pe, category, held - nbytes)

    def usage(self, pe: int) -> int:
        return self._per_pe[pe]

    def peak(self, pe: int) -> int:
        return self._peak[pe]

    def peak_any_pe(self) -> int:
        return max(self._peak, default=0)

    def peak_by_category(self) -> dict[str, int]:
        """Current bytes per category summed over PEs (diagnostics)."""
        out: dict[str, int] = {}
        for (pe, cat), nbytes in self.current.items():
            out[cat] = out.get(cat, 0) + nbytes
        return out
