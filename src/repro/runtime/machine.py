"""Machine model: the simulated cluster DAKC runs on.

Substitutes for the physical Phoenix cluster (Section VI).  A
:class:`MachineConfig` carries exactly the parameters of the paper's
analytical model (Table IV) plus the cluster geometry:

* ``c_node`` — peak INT64 throughput per node (GOp/s);
* ``beta_mem`` — per-node memory bandwidth (GB/s);
* ``cache_bytes`` (Z) and ``line_bytes`` (L) — the two-level memory
  hierarchy of the model;
* ``beta_link`` — combined bidirectional NIC bandwidth per node;
* ``tau`` — remote message latency (the paper's :math:`\\tau`, with
  :math:`\\tau \\gg \\mu`);
* ``mem_bytes`` — node DRAM capacity, used for OOM modelling (Fig. 8).

PEs map onto cores: PE ``i`` lives on node ``i // cores_per_node``.
Per-core rates are the node rates divided by the cores per node
(assumption 2 of the model: 100% intranode parallel efficiency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["MachineConfig", "phoenix_intel", "phoenix_amd", "laptop"]


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Geometry and rates of the simulated cluster."""

    name: str
    nodes: int
    sockets_per_node: int
    cores_per_socket: int
    c_node: float  # INT64 ops/s per node
    beta_mem: float  # bytes/s per node
    beta_link: float  # bytes/s per node NIC (combined bidirectional)
    cache_bytes: int  # Z
    line_bytes: int  # L
    mem_bytes: int  # DRAM per node
    tau: float = 2.0e-6  # remote latency, seconds
    #: One-sided PUT *injection* overhead: the source CPU cost of
    #: posting an RDMA write.  The wire latency tau is paid by the
    #: message (arrival time), not by the sender — the asymmetry that
    #: lets FA-BSP sources stream PUTs without stalling.
    tau_inject: float = 1.0e-7
    local_latency: float = 5.0e-8  # same-node "send" (memcpy) latency
    #: Sequential disk bandwidth per node (bytes/s) — the β_disk the
    #: out-of-core path charges for spill writes and rereads, exactly
    #: as beta_link prices the wire.  Default is an NVMe-class 2 GB/s.
    beta_disk: float = 2.0e9
    #: Fixed per-I/O overhead (seek + syscall), charged once per
    #: spill flush or bin read.
    disk_latency: float = 1.0e-4

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.sockets_per_node < 1 or self.cores_per_socket < 1:
            raise ValueError("machine geometry must be positive")
        for f in ("c_node", "beta_mem", "beta_link", "beta_disk"):
            if getattr(self, f) <= 0:
                raise ValueError(f"{f} must be positive")
        if self.cache_bytes <= 0 or self.line_bytes <= 0 or self.mem_bytes <= 0:
            raise ValueError("memory parameters must be positive")

    # -- geometry ----------------------------------------------------

    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    @property
    def n_pes(self) -> int:
        """Total PEs = total cores (one PE per core, SHMEM-style)."""
        return self.nodes * self.cores_per_node

    def node_of(self, pe: int) -> int:
        """Node hosting PE *pe*."""
        if not 0 <= pe < self.n_pes:
            raise ValueError(f"PE {pe} out of range [0, {self.n_pes})")
        return pe // self.cores_per_node

    def colocated(self, a: int, b: int) -> bool:
        """True if two PEs share a node (the runtime then uses memcpy)."""
        return self.node_of(a) == self.node_of(b)

    def with_nodes(self, nodes: int) -> "MachineConfig":
        """Same machine scaled to a different node count."""
        return replace(self, nodes=nodes)

    def with_pes(self, n_pes: int) -> "MachineConfig":
        """Smallest machine of this type with at least *n_pes* PEs."""
        nodes = max(1, math.ceil(n_pes / self.cores_per_node))
        return replace(self, nodes=nodes)

    def with_time_scale(self, factor: float) -> "MachineConfig":
        """Scale all fixed latencies by *factor* (time dilation).

        The benchmark harness runs replicas thousands of times smaller
        than the paper's inputs; shrinking every fixed per-event
        latency (wire latency, injection overhead, local latency) by
        the same factor keeps the latency-vs-bandwidth regime — and
        therefore every crossover the paper reports — at its
        paper-scale balance.  Bandwidths and capacities are untouched.
        """
        if factor <= 0:
            raise ValueError("time scale factor must be positive")
        return replace(
            self,
            tau=self.tau * factor,
            tau_inject=self.tau_inject * factor,
            local_latency=self.local_latency * factor,
        )

    # -- per-core rates ----------------------------------------------

    @property
    def core_ops(self) -> float:
        """INT64 ops/s available to one core."""
        return self.c_node / self.cores_per_node

    @property
    def core_mem_bw(self) -> float:
        """Memory bandwidth share of one core (bytes/s)."""
        return self.beta_mem / self.cores_per_node

    @property
    def core_link_bw(self) -> float:
        """NIC bandwidth share of one core (bytes/s)."""
        return self.beta_link / self.cores_per_node

    @property
    def core_disk_bw(self) -> float:
        """Disk bandwidth share of one core (bytes/s)."""
        return self.beta_disk / self.cores_per_node

    @property
    def mu(self) -> float:
        """Per-byte wire cost (the model's :math:`\\mu` = 1/beta_link)."""
        return 1.0 / self.beta_link

    @property
    def barrier_time(self) -> float:
        """Tree-reduction barrier: :math:`\\tau \\log_2 P` (Eq. 3)."""
        p = max(2, self.n_pes)
        return self.tau * math.log2(p)

    # -- balance -----------------------------------------------------

    @property
    def hardware_balance_ops_per_byte(self) -> float:
        """Node compute-to-memory balance in iadd64 per byte.

        The paper quotes ~2.6 iadd64/byte for the Phoenix CPUs
        (Section VII).
        """
        return self.c_node / self.beta_mem


def phoenix_intel(nodes: int = 8) -> MachineConfig:
    """Phoenix Intel node (Table IV): dual Xeon Gold 6226, 24 cores.

    121.9 GOp/s INT64, 46.9 GB/s memory bandwidth, 38 MB LLC, 64 B
    lines, 12.5 GB/s link, 192 GB DRAM.
    """
    return MachineConfig(
        name="phoenix-intel",
        nodes=nodes,
        sockets_per_node=2,
        cores_per_socket=12,
        c_node=121.9e9,
        beta_mem=46.9e9,
        beta_link=12.5e9,
        cache_bytes=38 * 1024 * 1024,
        line_bytes=64,
        mem_bytes=192 * 1024**3,
    )


def phoenix_amd(nodes: int = 1) -> MachineConfig:
    """Phoenix AMD node: dual EPYC 7742, 128 cores, 512 GB DRAM.

    Rates scaled from the Intel node by core count and the EPYC's
    8-channel DDR4 memory system.
    """
    return MachineConfig(
        name="phoenix-amd",
        nodes=nodes,
        sockets_per_node=2,
        cores_per_socket=64,
        c_node=409.6e9,
        beta_mem=190.0e9,
        beta_link=12.5e9,
        cache_bytes=256 * 1024 * 1024,
        line_bytes=64,
        mem_bytes=512 * 1024**3,
    )


def laptop(nodes: int = 1, cores: int = 8) -> MachineConfig:
    """A small machine preset for tests and examples."""
    return MachineConfig(
        name="laptop",
        nodes=nodes,
        sockets_per_node=1,
        cores_per_socket=cores,
        c_node=50.0e9,
        beta_mem=30.0e9,
        beta_link=10.0e9,
        cache_bytes=16 * 1024 * 1024,
        line_bytes=64,
        mem_bytes=16 * 1024**3,
    )
