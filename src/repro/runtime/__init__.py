"""Distributed runtime substrate: the simulated PGAS machine.

Substitutes for OpenSHMEM + Conveyors + HClib-Actor on real hardware
(see DESIGN.md).  The pieces:

* :mod:`repro.runtime.machine` — cluster geometry and Table IV rates;
* :mod:`repro.runtime.cost` — event pricing onto virtual clocks;
* :mod:`repro.runtime.topology` — 1D/2D/3D virtual HyperX routing;
* :mod:`repro.runtime.conveyors` — L0/L1 aggregation + PUT engine;
* :mod:`repro.runtime.actor` — FA-BSP cooperative actor scheduler;
* :mod:`repro.runtime.collectives` — BSP barrier and alltoallv;
* :mod:`repro.runtime.cache` — LLC miss accounting (the PAPI stand-in);
* :mod:`repro.runtime.memory` — buffer accounting and OOM models;
* :mod:`repro.runtime.stats` — per-PE counters and clocks.
"""

from .actor import Actor, ActorRuntime
from .cache import CacheAccounting, LRUCacheSim, random_access_misses, scan_misses
from .collectives import alltoallv, barrier, exchange_matrix_bytes
from .conveyors import Conveyor, PacketGroup
from .cost import CostModel
from .machine import MachineConfig, laptop, phoenix_amd, phoenix_intel
from .memory import (
    L0_BUFFER_BYTES,
    MemoryTracker,
    OutOfMemoryError,
    aggregation_memory_per_pe,
    table3_rows,
)
from .stats import PEStats, RunStats
from .trace import Span, Tracer, render_gantt, to_chrome_trace
from .topology import (
    HEADER_BYTES,
    Topology,
    Topology1D,
    Topology2D,
    Topology3D,
    make_topology,
)

__all__ = [
    "MachineConfig",
    "phoenix_intel",
    "phoenix_amd",
    "laptop",
    "CostModel",
    "PEStats",
    "RunStats",
    "Topology",
    "Topology1D",
    "Topology2D",
    "Topology3D",
    "make_topology",
    "HEADER_BYTES",
    "Conveyor",
    "PacketGroup",
    "Actor",
    "ActorRuntime",
    "barrier",
    "alltoallv",
    "exchange_matrix_bytes",
    "CacheAccounting",
    "LRUCacheSim",
    "scan_misses",
    "random_access_misses",
    "MemoryTracker",
    "OutOfMemoryError",
    "aggregation_memory_per_pe",
    "table3_rows",
    "L0_BUFFER_BYTES",
    "Tracer",
    "Span",
    "render_gantt",
    "to_chrome_trace",
]
