"""Cost model: converts measured events into virtual time.

The simulated runtime executes the *real* algorithms and counts real
events (k-mers parsed, buffer flushes, PUTs, bytes, hops).  This module
prices those events on a :class:`~repro.runtime.machine.MachineConfig`,
advancing per-PE virtual clocks.  The pricing rules are the paper's own
model (Section V) applied at event granularity:

* compute: ``ops / core_ops`` (Eq. 9/12 denominators);
* intranode traffic: ``bytes / core_mem_bw`` (Eqs. 10/13);
* remote PUT: ``tau + bytes / core_link_bw`` (tau >> mu, Table I);
* co-located PUT: converted to a memcpy at memory bandwidth — the
  HClib-Actor behaviour the paper credits for beating KMC3 on a single
  node (Section VI-B);
* barrier: ``tau * log2(P)`` tree reduction (Eq. 3).

Per-element and per-packet CPU overheads are explicit named constants;
they are the only calibrated values in the whole model and are chosen
once (documented in EXPERIMENTS.md), not per-experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .machine import MachineConfig
from .stats import PEStats

__all__ = [
    "CostModel",
    "OPS_PER_KMER_PARSE",
    "OPS_PER_ELEMENT_BUFFER",
    "OPS_PER_PACKET",
    "OPS_PER_SUPERKMER",
]

#: INT64 ops to generate one k-mer (shift, or, mask, store — Eq. 9
#: charges 1 op per k-mer; we keep the paper's convention).
OPS_PER_KMER_PARSE: int = 1

#: Ops to append one element to an aggregation buffer (bounds check,
#: store, counter bump).
OPS_PER_ELEMENT_BUFFER: int = 2

#: Ops to package one super-k-mer run for the wire: detect the run
#: boundary, 2-bit pack its bases, write the (minimizer, length)
#: header, append to the destination buffer.  Charged per *run*, not
#: per k-mer — the amortisation that makes minimizer routing cheap
#: (KMC2/MSPKmerCounter): a run of ``r`` k-mers ships
#: ``ceil((r + k - 1) / 4)`` bytes + one header instead of ``8 r``.
OPS_PER_SUPERKMER: int = 4

#: Ops of fixed per-packet handling: buffer management, header
#: write/parse, dispatch — roughly 30 ns of the Conveyors software
#: path per packet on a ~5 GHz-equivalent core.  This is what the L2
#: layer amortises: without L2 every 8-byte k-mer is its own packet
#: and pays this cost on both sides, which is where the paper's ~2x
#: L2 speedup on uniform data comes from (Fig. 12).
OPS_PER_PACKET: int = 160

#: Ops per element on the receive side (type dispatch + append to T).
OPS_PER_ELEMENT_RECV: int = 2

#: Per-doubling parallel efficiency of a *threaded* rank (OpenMP teams
#: spanning many cores lose throughput to NUMA traffic, barriers and
#: false sharing; ~3% per core-count doubling is the well-documented
#: ballpark).  Applied via ``CostModel(threaded=True)`` for the hybrid
#: baselines (HySortK's OpenMP ranks, KMC3's thread pool); DAKC's
#: fine-grained one-PE-per-core deployment does not pay it — part of
#: its measured single-node advantage (Fig. 9).  A multi-core PE used
#: merely as a *simulation aggregate* of per-core PEs (pe_granularity
#: choices for DAKC node sweeps) must NOT set ``threaded``.
THREAD_EFFICIENCY_PER_DOUBLING: float = 0.97


@dataclass
class CostModel:
    """Prices events on a machine; mutates :class:`PEStats` clocks."""

    machine: MachineConfig
    #: Number of physical cores represented by one simulated PE.
    cores_per_pe: int = 1
    #: Optional :class:`~repro.runtime.trace.Tracer` recording spans.
    tracer: object | None = None
    #: True when a multi-core PE is a real *threaded rank* (OpenMP) —
    #: it then pays :data:`THREAD_EFFICIENCY_PER_DOUBLING` per core
    #: doubling.  Leave False for PEs that merely aggregate per-core
    #: PEs for simulation speed.
    threaded: bool = False
    #: Optional per-PE clock-dilation factors (straggler modelling,
    #: :mod:`repro.fault`): every dt charged on PE ``i`` is multiplied
    #: by ``dilation[i]``.  A factor of 1 is a healthy PE; 2 models a
    #: core running at half speed (thermal throttling, a noisy
    #: neighbour, a degraded NIC).  Wire latency ``tau`` is a fabric
    #: property and is never dilated.
    dilation: list[float] | None = None

    def __post_init__(self) -> None:
        m = self.machine
        if self.cores_per_pe < 1:
            raise ValueError("cores_per_pe must be >= 1")
        if self.cores_per_pe > m.cores_per_node:
            raise ValueError("a PE cannot span more cores than a node has")
        #: PEs co-located on one node.
        self.pes_per_node = max(1, m.cores_per_node // self.cores_per_pe)
        self.n_pes = m.nodes * self.pes_per_node
        frac = self.cores_per_pe / m.cores_per_node
        eff = 1.0
        if self.threaded and self.cores_per_pe > 1:
            eff = THREAD_EFFICIENCY_PER_DOUBLING ** math.log2(self.cores_per_pe)
        self.thread_efficiency = eff
        self.pe_ops = m.c_node * frac * eff
        self.pe_mem_bw = m.beta_mem * frac * eff
        self.pe_link_bw = m.beta_link * frac
        self.pe_disk_bw = m.beta_disk * frac
        if self.dilation is not None:
            self.set_dilation(self.dilation)

    # -- geometry ----------------------------------------------------

    def node_of(self, pe: int) -> int:
        return pe // self.pes_per_node

    def colocated(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    @property
    def barrier_time(self) -> float:
        p = max(2, self.n_pes)
        return self.machine.tau * math.log2(p)

    # -- straggler dilation ------------------------------------------

    def set_dilation(self, factors: "list[float] | None") -> None:
        """Install (or clear) per-PE clock-dilation factors."""
        if factors is None:
            self.dilation = None
            return
        factors = [float(f) for f in factors]
        if len(factors) != self.n_pes:
            raise ValueError(
                f"dilation needs one factor per PE ({self.n_pes}), got {len(factors)}"
            )
        if any(f < 1.0 for f in factors):
            raise ValueError("dilation factors must be >= 1 (1 = healthy PE)")
        self.dilation = factors

    def _dilated(self, pe: PEStats, dt: float) -> float:
        if self.dilation is None:
            return dt
        return dt * self.dilation[pe.pe]

    # -- charging primitives -----------------------------------------

    def charge_compute(self, pe: PEStats, ops: int | float) -> float:
        """Charge *ops* INT64 operations; returns the dt applied."""
        dt = self._dilated(pe, ops / self.pe_ops)
        pe.compute_ops += int(ops)
        t0 = pe.clock
        pe.advance(dt)
        if self.tracer is not None:
            self.tracer.record(pe.pe, t0, pe.clock, "compute")
        return dt

    def charge_mem(self, pe: PEStats, nbytes: int | float) -> float:
        """Charge intranode memory traffic of *nbytes*."""
        dt = self._dilated(pe, nbytes / self.pe_mem_bw)
        pe.mem_bytes += int(nbytes)
        t0 = pe.clock
        pe.advance(dt)
        if self.tracer is not None:
            self.tracer.record(pe.pe, t0, pe.clock, "memory")
        return dt

    def charge_disk_write(self, pe: PEStats, nbytes: int, *, ops: int = 1) -> float:
        """Charge an out-of-core spill write of *nbytes* (β_disk).

        Disk traffic is priced like link traffic — a fixed per-I/O
        latency plus a bandwidth term — so ``dakc`` can report bytes
        spilled next to bytes sent in the same virtual-time currency.
        *ops* is the number of physical I/O operations the bytes
        arrived in (flushes); each pays the seek/syscall latency.
        """
        m = self.machine
        dt = self._dilated(pe, ops * m.disk_latency + nbytes / self.pe_disk_bw)
        pe.disk_bytes_written += int(nbytes)
        pe.disk_ops += int(ops)
        t0 = pe.clock
        pe.advance(dt)
        if self.tracer is not None:
            self.tracer.record(pe.pe, t0, pe.clock, "disk-write")
        return dt

    def charge_disk_read(self, pe: PEStats, nbytes: int, *, ops: int = 1) -> float:
        """Charge a pass-2 bin reread of *nbytes* (β_disk)."""
        m = self.machine
        dt = self._dilated(pe, ops * m.disk_latency + nbytes / self.pe_disk_bw)
        pe.disk_bytes_read += int(nbytes)
        pe.disk_ops += int(ops)
        t0 = pe.clock
        pe.advance(dt)
        if self.tracer is not None:
            self.tracer.record(pe.pe, t0, pe.clock, "disk-read")
        return dt

    def charge_put(self, src: PEStats, dst_pe: int, nbytes: int) -> float:
        """Charge one PUT from ``src`` toward PE *dst_pe*.

        A remote PUT occupies the sender only for the injection
        overhead plus its NIC-bandwidth share (one-sided RDMA does not
        stall the source on the wire latency); the latency ``tau`` is
        added to the *arrival* time.  Co-located PUTs become memcpys
        (local latency + memory bandwidth) — the HClib-Actor shared-
        memory shortcut.  Returns the message's arrival time at the
        destination.
        """
        m = self.machine
        if self.colocated(src.pe, dst_pe):
            dt = self._dilated(src, m.local_latency + nbytes / self.pe_mem_bw)
            src.local_memcpy_bytes += nbytes
            src.advance(dt)
            return src.clock
        dt = self._dilated(src, m.tau_inject + nbytes / self.pe_link_bw)
        src.puts_issued += 1
        src.bytes_sent += nbytes
        t0 = src.clock
        src.advance(dt)
        if self.tracer is not None:
            self.tracer.record(src.pe, t0, src.clock, "send")
        return src.clock + m.tau

    # -- composite costs ---------------------------------------------

    def parse_cost_time(self, n_kmers: int, read_bytes: int) -> float:
        """Phase-1 parse time for a PE: Eq. 9 compute + Eq. 10 traffic.

        ``read_bytes`` is the encoded read data scanned; the generated
        k-mer array write is charged separately when it is routed.
        """
        t_comp = n_kmers * OPS_PER_KMER_PARSE / self.pe_ops
        t_mem = read_bytes / self.pe_mem_bw
        return t_comp + t_mem

    def sort_cost_time(self, n: int, passes: int, elem_bytes: int = 8) -> float:
        """Phase-2 radix sort time: Eq. 12 compute + Eq. 13 traffic."""
        ops = n * passes
        traffic = 2 * n * elem_bytes * passes  # read + write per pass
        return ops / self.pe_ops + traffic / self.pe_mem_bw

    # -- queueing ----------------------------------------------------

    @staticmethod
    def busy_period(start_busy_until: float, jobs: list[tuple[float, float]]) -> float:
        """Single-server queue finish time.

        ``jobs`` are ``(arrival, service_time)`` pairs; the server is
        busy until *start_busy_until* before it touches the queue and
        serves lazily in arrival order (the Conveyors receive-side
        model: "goes through its received messages lazily").
        """
        t = start_busy_until
        for arrival, service in sorted(jobs, key=lambda j: j[0]):
            t = max(t, arrival) + service
        return t
