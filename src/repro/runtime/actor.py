"""HClib-Actor style cooperative runtime over the conveyor engine.

The paper's implementation targets the HClib Actor runtime (Paul et
al.), which expresses FA-BSP programs as actors exchanging fine-grained
asynchronous messages between BSP supersteps.  This module reproduces
that execution model on the simulated machine:

* an :class:`Actor` owns one PE, produces work via :meth:`Actor.step`
  (called repeatedly, cooperatively) and consumes messages via
  :meth:`Actor.on_message`;
* the :class:`ActorRuntime` round-robins actor steps, moving conveyor
  traffic between rounds, so receivers genuinely interleave message
  processing with their own source work — the asynchrony that lets
  DAKC hide skew until the single terminal barrier;
* :meth:`ActorRuntime.run_until_quiescent` ends with the conveyor
  drained, all mailboxes empty and a global barrier — the FA-BSP
  superstep boundary.

Receive-side costs are charged lazily through the cost model's
busy-period queue, matching Conveyors' "process received messages
lazily when idle" behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .collectives import barrier
from .conveyors import Conveyor, PacketGroup
from .cost import CostModel
from .stats import RunStats

__all__ = ["Actor", "ActorRuntime"]


class Actor(ABC):
    """One PE's worth of application logic."""

    def __init__(self, pe: int) -> None:
        self.pe = pe

    @abstractmethod
    def step(self) -> bool:
        """Perform a bounded chunk of source work.

        Returns True while more work remains, False when the actor's
        own source stream is exhausted.  The runtime keeps invoking
        :meth:`on_message` after exhaustion while traffic remains.
        """

    @abstractmethod
    def on_message(self, group: PacketGroup, arrival: float) -> float:
        """Consume one delivered group; returns its service time (s).

        The runtime charges the service time against the PE's clock
        with lazy-queue semantics; implementations should *not* advance
        the clock themselves for receive work.
        """


class ActorRuntime:
    """Cooperative scheduler driving actors and the conveyor.

    ``step_order`` and ``mailbox_order`` are optional scheduling hooks
    for deterministic simulation testing (:mod:`repro.dst`): the first
    maps ``(round_no, n_pes)`` to the PE order of that step round, the
    second maps ``(pe, pending)`` to the order in which one mailbox's
    newly delivered ``(arrival, group)`` pairs are consumed.  Neither
    changes arrival timestamps — receive costs still queue through the
    cost model's busy period — so any hook must leave the counted
    multiset identical, which is exactly the invariant the fuzzer
    checks.
    """

    def __init__(self, cost: CostModel, stats: RunStats, conveyor: Conveyor, *,
                 step_order=None, mailbox_order=None) -> None:
        self.cost = cost
        self.stats = stats
        self.conveyor = conveyor
        self.step_order = step_order
        self.mailbox_order = mailbox_order
        self._round = 0
        self._delivered_upto = [0] * cost.n_pes

    def _deliver_pending(self, actors: list[Actor]) -> int:
        """Hand newly delivered groups to their actors; returns count."""
        delivered = 0
        for pe, queue in enumerate(self.conveyor.delivered):
            start = self._delivered_upto[pe]
            if start >= len(queue):
                continue
            pe_stats = self.stats.pe[pe]
            jobs = []
            pending = list(queue[start:])
            if self.mailbox_order is not None:
                pending = self.mailbox_order(pe, pending)
            for arrival, group in pending:
                service = actors[pe].on_message(group, arrival)
                jobs.append((arrival, service))
                pe_stats.kmers_received += group.n_elements
                pe_stats.elements_received += group.n_elements
                delivered += 1
            pe_stats.clock = self.cost.busy_period(pe_stats.clock, jobs)
            self._delivered_upto[pe] = len(queue)
        return delivered

    def run_until_quiescent(self, actors: list[Actor]) -> float:
        """Drive all actors to completion; ends with a global barrier.

        Returns the post-barrier virtual time.
        """
        if len(actors) != self.cost.n_pes:
            raise ValueError("need exactly one actor per PE")
        active = [True] * len(actors)
        while True:
            progressed = False
            order = (range(len(actors)) if self.step_order is None
                     else self.step_order(self._round, len(actors)))
            self._round += 1
            for pe in order:
                if active[pe]:
                    active[pe] = actors[pe].step()
                    progressed = progressed or active[pe]
            self.conveyor.drain()
            delivered = self._deliver_pending(actors)
            if not progressed and not delivered:
                # Sources exhausted; flush stragglers and finish.
                self.conveyor.finalize()
                if not self._deliver_pending(actors):
                    break
        return barrier(self.cost, self.stats)
