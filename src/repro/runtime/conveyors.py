"""The L0/L1 message-aggregation engine (Conveyors + HClib staging).

Re-implements the behaviour of the Conveyors library (Maley &
DeVinney) and the HClib-Actor staging layer on the simulated machine:

* every PE keeps one send buffer per *next hop* of the virtual
  topology (1D: per destination; 2D/3D: per row/column neighbour);
* application payloads arrive as :class:`PacketGroup`\\ s — one group
  represents ``n_packets`` consecutive wire packets to the same final
  destination (the exact path injects single-packet groups; the
  vectorised path injects one group per flushed L2 buffer);
* groups stage through the L1 layer (``C1`` packets per destination,
  charged as a memcpy into the conveyor buffer when it fills — the
  HClib-Actor behaviour of Section IV-B), then into the L0 buffer
  (``C0`` bytes); a full L0 buffer triggers an RDMA PUT to the next
  hop (charged latency + bandwidth, or a memcpy when co-located);
* 2D/3D packets carry a 32-bit final-destination header
  (:data:`~repro.runtime.topology.HEADER_BYTES`); relays store and
  forward, re-aggregating toward the final destination;
* receivers drain lazily: delivered groups carry their arrival time,
  and the algorithm charges receive processing through the cost
  model's busy-period queue at the phase boundary.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from .cost import OPS_PER_PACKET, CostModel
from .memory import L0_BUFFER_BYTES, MemoryTracker
from .stats import RunStats
from .topology import HEADER_BYTES, Topology

__all__ = ["PacketGroup", "Conveyor"]


@dataclass(slots=True)
class PacketGroup:
    """A run of wire packets sharing source, destination and kind.

    ``kmers``/``counts`` carry the semantic payload; ``n_packets`` and
    ``payload_bytes`` describe how the run appears on the wire (the L2
    layer decides the packing).  HEAVY groups carry explicit counts;
    NORMAL groups carry occurrences (implicit count 1 per element).
    """

    src: int
    dst: int
    kind: str  # "NORMAL" | "HEAVY"
    kmers: np.ndarray
    counts: np.ndarray | None
    n_packets: int
    payload_bytes: int
    #: Per-flow sequence number stamped by the reliability layer
    #: (:mod:`repro.fault.reliability`); -1 = untracked traffic.
    seq: int = -1
    #: Payload checksum stamped at injection; 0 = unchecked traffic.
    checksum: int = 0

    @property
    def n_elements(self) -> int:
        return int(self.kmers.size)


@dataclass(slots=True)
class _HopBuffer:
    """Send-side staging for one (PE, next hop) pair: L1 + L0."""

    groups: list = field(default_factory=list)
    bytes: int = 0
    packets_pending_l1: int = 0
    bytes_pending_l1: int = 0  # wire bytes of the L1-pending packets


class Conveyor:
    """Simulated Conveyors engine over a virtual topology."""

    def __init__(
        self,
        cost: CostModel,
        stats: RunStats,
        topology: Topology,
        memory: MemoryTracker | None = None,
        *,
        c0_bytes: int = L0_BUFFER_BYTES,
        c1_packets: int = 1024,
    ) -> None:
        if topology.p != cost.n_pes:
            raise ValueError(
                f"topology size {topology.p} != machine PEs {cost.n_pes}"
            )
        if c0_bytes < 8:
            raise ValueError("c0_bytes must hold at least one element")
        if c1_packets < 1:
            raise ValueError("c1_packets must be >= 1")
        self.cost = cost
        self.stats = stats
        self.topology = topology
        self.memory = memory
        self.c0_bytes = c0_bytes
        self.c1_packets = c1_packets
        self._buffers: list[dict[int, _HopBuffer]] = [dict() for _ in range(cost.n_pes)]
        self._staged_bytes: list[int] = [0] * cost.n_pes
        #: In-flight messages: (arrival_time, hop_pe, [groups]).
        self._in_flight: list[tuple[float, int, list[PacketGroup]]] = []
        #: Delivered groups per destination: (arrival_time, group).
        self.delivered: list[list[tuple[float, PacketGroup]]] = [
            [] for _ in range(cost.n_pes)
        ]
        #: Elements handed to :meth:`inject` by the application (relays
        #: and retransmissions are not re-counted) — one side of the
        #: packet-conservation ledger checked by :mod:`repro.dst`.
        self.injected_elements: int = 0
        #: Optional drain-order hook ``(arrival, seq, hop) -> key``.
        #: The drain heap pops messages by this key instead of strict
        #: arrival order; deterministic schedule fuzzing (repro.dst)
        #: uses it to explore adversarial delivery interleavings.
        #: Arrival timestamps of delivered groups are unaffected.
        self.order_hook = None

    # -- injection ----------------------------------------------------

    def group_wire_bytes(self, group: PacketGroup) -> int:
        """Bytes this group occupies on the wire, headers included."""
        if self.topology.needs_header:
            return group.payload_bytes + group.n_packets * HEADER_BYTES
        return group.payload_bytes

    def inject(self, group: PacketGroup) -> None:
        """Inject a group at its source PE (application send)."""
        self.injected_elements += group.n_elements
        self._enqueue(group.src, group)

    def _enqueue(self, from_pe: int, group: PacketGroup) -> None:
        route = self.topology.route(from_pe, group.dst)
        pe_stats = self.stats.pe[from_pe]
        if self.topology.needs_header:
            pe_stats.header_bytes += group.n_packets * HEADER_BYTES
        if not route:
            # Self-send: Algorithm 4 routes every k-mer through
            # AsyncAdd, including self-owned ones; locally this is a
            # buffer append, delivered immediately.
            self._deliver(from_pe, pe_stats.clock, group)
            return
        next_hop = route[0]
        buf = self._buffers[from_pe].setdefault(next_hop, _HopBuffer())
        buf.groups.append(group)
        wire = self.group_wire_bytes(group)
        buf.bytes += wire
        buf.packets_pending_l1 += group.n_packets
        buf.bytes_pending_l1 += wire
        self._staged_bytes[from_pe] += wire
        if self.memory is not None:
            self.memory.set_category(from_pe, "conveyor", self._staged_bytes[from_pe])
        # L1 staging: every C1 packets are memcpy'd into the conveyor
        # send buffer (HClib-Actor's extra buffering layer).
        if buf.packets_pending_l1 >= self.c1_packets:
            pending = buf.packets_pending_l1
            flushed = pending - pending % self.c1_packets
            # Charge the staging copy at memory bandwidth: the actual
            # wire bytes (payload + routing headers) of the flushed
            # packets, pro-rated over the pending run when a group
            # straddles the C1 boundary.
            copied = buf.bytes_pending_l1 * flushed // pending
            buf.packets_pending_l1 = pending % self.c1_packets
            buf.bytes_pending_l1 -= copied
            pe_stats.l1_flushes += flushed // self.c1_packets
            self.cost.charge_mem(pe_stats, copied)
        if buf.bytes >= self.c0_bytes:
            self._flush_hop(from_pe, next_hop)

    # -- flushing -----------------------------------------------------

    def _flush_hop(self, from_pe: int, next_hop: int) -> None:
        buf = self._buffers[from_pe].get(next_hop)
        if buf is None or not buf.groups:
            return
        pe_stats = self.stats.pe[from_pe]
        if buf.bytes_pending_l1:
            # Packets still short of a full C1 batch are staging-copied
            # into the L0 buffer at flush time (end-of-stream copy).
            self.cost.charge_mem(pe_stats, buf.bytes_pending_l1)
        nbytes = buf.bytes
        groups = buf.groups
        self._buffers[from_pe][next_hop] = _HopBuffer()
        self._staged_bytes[from_pe] -= nbytes
        if self.memory is not None:
            self.memory.set_category(from_pe, "conveyor", self._staged_bytes[from_pe])
        pe_stats.l0_flushes += 1
        self._launch(from_pe, next_hop, groups, nbytes)

    def _launch(
        self,
        from_pe: int,
        next_hop: int,
        groups: list[PacketGroup],
        nbytes: int,
    ) -> None:
        """Put one L0 message on the wire toward *next_hop*.

        The single point where a message leaves a PE — overridden by
        :class:`repro.fault.injector.FaultyConveyor` to apply fault
        plans (drop/duplicate/delay/corrupt) per wire traversal.
        """
        arrival = self.cost.charge_put(self.stats.pe[from_pe], next_hop, nbytes)
        self._in_flight.append((arrival, next_hop, groups))

    def flush_pe(self, pe: int) -> None:
        """Flush every non-empty buffer of one PE (end-of-stream)."""
        for next_hop in list(self._buffers[pe].keys()):
            self._flush_hop(pe, next_hop)

    def flush_all(self) -> None:
        """Flush all PEs' buffers."""
        for pe in range(self.cost.n_pes):
            self.flush_pe(pe)

    # -- delivery -----------------------------------------------------

    def drain(self) -> None:
        """Deliver all in-flight messages, relaying multi-hop traffic.

        Messages are processed in arrival order; groups that have not
        reached their final destination are re-aggregated at the relay
        and forwarded (charging the relay's clock for the handling),
        exactly the store-and-forward behaviour of 2D/3D Conveyors.
        """
        heap: list[tuple] = []
        seq = 0

        def absorb() -> None:
            nonlocal seq
            for arrival, hop, groups in self._in_flight:
                # Pop order follows (key, seq); seq is unique, so the
                # non-comparable tail entries are never compared.
                key = (arrival if self.order_hook is None
                       else self.order_hook(arrival, seq, hop))
                heapq.heappush(heap, (key, seq, arrival, hop, groups))
                seq += 1
            self._in_flight.clear()

        # Termination budget: every route() is hop-monotone (each hop
        # strictly shortens the remaining route), so a group arriving
        # at `hop` can cause at most len(route(hop, dst)) further
        # message launches — doubled per remaining hop to also cover
        # fault-injected duplicates (repro.fault).  A drain exceeding
        # this bound has a routing cycle, which the budget turns into
        # an immediate error instead of a ten-million-iteration hang.
        dup_factor = 2 ** self.topology.max_hops
        budget = len(self._in_flight) + dup_factor * sum(
            len(self.topology.route(hop, g.dst))
            for _, hop, groups in self._in_flight
            for g in groups
        )
        absorb()
        while heap:
            if budget <= 0:
                raise RuntimeError(
                    "conveyor drain exceeded the topology hop bound "
                    "(non-monotone route)"
                )
            budget -= 1
            _key, _, arrival, hop, groups = heapq.heappop(heap)
            hop_stats = self.stats.pe[hop]
            finals = [g for g in groups if g.dst == hop]
            relays = [g for g in groups if g.dst != hop]
            for g in finals:
                self._deliver(hop, arrival, g)
            if relays:
                # Relay handling: the hop PE parses headers and
                # re-buffers the packets toward their destinations.
                n_pkts = sum(g.n_packets for g in relays)
                nbytes = sum(self.group_wire_bytes(g) for g in relays)
                hop_stats.clock = max(hop_stats.clock, arrival)
                hop_stats.hops_forwarded += n_pkts
                self.cost.charge_compute(hop_stats, n_pkts * OPS_PER_PACKET)
                self.cost.charge_mem(hop_stats, nbytes)
                for g in relays:
                    self._enqueue(hop, g)
                self.flush_pe(hop)
                absorb()

    def _deliver(self, pe: int, arrival: float, group: PacketGroup) -> None:
        """Hand one group to its final destination.

        The single point where traffic becomes visible to the
        application — overridden by
        :class:`repro.fault.reliability.ReliableConveyor` for checksum
        verification and duplicate suppression.
        """
        self.delivered[pe].append((arrival, group))

    def finalize(self) -> None:
        """Flush everything and drain until quiescent."""
        self.flush_all()
        self.drain()
        # Flushing relays may have restocked buffers; repeat until
        # nothing is staged anywhere.
        while any(self._staged_bytes) or self._in_flight:
            self.flush_all()
            self.drain()

    # -- inspection ---------------------------------------------------

    def staged_bytes(self, pe: int) -> int:
        return self._staged_bytes[pe]

    def delivered_elements(self, pe: int) -> int:
        return sum(g.n_elements for _, g in self.delivered[pe])
