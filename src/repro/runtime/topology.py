"""Virtual routing topologies of the Conveyors layer (Table II).

Conveyors routes fine-grained messages over a *virtual* topology laid
over the PEs (the paper stresses this is not the physical fabric):

========  =============  ===============  =====
Protocol  Topology       Memory           #Hops
========  =============  ===============  =====
1D        All-Connected  O(P^2)           1
2D        2D HyperX      O(P^(3/2))       2
3D        3D HyperX      O(P^(4/3))       3
========  =============  ===============  =====

Each PE keeps one send buffer per *neighbour*; 1D is all-connected
(P buffers/PE -> O(P^2) total), 2D arranges PEs on a ~sqrt(P) x sqrt(P)
grid and routes row-then-column (~2*sqrt(P) buffers/PE), 3D uses a
cube with three axis hops.  The 2D/3D protocols must carry a 32-bit
final-destination header on every packet — the overhead the L2
aggregation layer amortises (Section IV-C).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

__all__ = [
    "Topology",
    "Topology1D",
    "Topology2D",
    "Topology3D",
    "make_topology",
    "HEADER_BYTES",
]

#: 32-bit per-packet routing header used by the 2D and 3D protocols.
HEADER_BYTES: int = 4


def _grid_dims(p: int, ndim: int) -> tuple[int, ...]:
    """Near-cubic factorisation of [0, p) into *ndim* grid dimensions.

    Uses ceil(p**(1/ndim)) per axis; PEs index into the grid in
    row-major order and axes may be ragged at the top (standard HyperX
    embedding for non-perfect sizes).
    """
    side = max(1, math.ceil(p ** (1.0 / ndim)))
    dims = [side] * ndim
    # Shrink trailing dims while capacity still covers p.
    for i in range(ndim - 1, -1, -1):
        while dims[i] > 1:
            trial = dims.copy()
            trial[i] -= 1
            if math.prod(trial) >= p:
                dims = trial
            else:
                break
    return tuple(dims)


class Topology(ABC):
    """A virtual routing topology over *p* PEs."""

    #: Protocol name: "1D", "2D" or "3D".
    name: str
    #: Hops a packet takes between distinct PEs.
    max_hops: int
    #: Whether packets need a final-destination header.
    needs_header: bool

    def __init__(self, p: int) -> None:
        if p < 1:
            raise ValueError("topology needs at least one PE")
        self.p = p

    @abstractmethod
    def route(self, src: int, dst: int) -> list[int]:
        """Sequence of PEs a packet visits after leaving *src*.

        The last entry is always *dst*; intermediate entries are
        store-and-forward relays.  ``route(x, x) == []``.
        """

    @abstractmethod
    def neighbors(self, pe: int) -> list[int]:
        """PEs that *pe* keeps a dedicated send buffer for."""

    def buffers_per_pe(self, pe: int = 0) -> int:
        """Number of send buffers PE *pe* maintains."""
        return len(self.neighbors(pe))

    def total_buffers(self) -> int:
        """Total send buffers across the machine (Table II 'Memory')."""
        return sum(self.buffers_per_pe(pe) for pe in range(self.p))

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.p and 0 <= dst < self.p):
            raise ValueError(f"PE out of range for P={self.p}: {src}->{dst}")


class Topology1D(Topology):
    """All-connected: every PE buffers directly for every other PE."""

    name = "1D"
    max_hops = 1
    needs_header = False

    def route(self, src: int, dst: int) -> list[int]:
        self._check(src, dst)
        return [] if src == dst else [dst]

    def neighbors(self, pe: int) -> list[int]:
        return [q for q in range(self.p) if q != pe]

    def buffers_per_pe(self, pe: int = 0) -> int:
        return self.p - 1


class Topology2D(Topology):
    """2D HyperX: row hop then column hop (<= 2 hops)."""

    name = "2D"
    max_hops = 2
    needs_header = True

    def __init__(self, p: int) -> None:
        super().__init__(p)
        self.rows, self.cols = _grid_dims(p, 2)

    def coords(self, pe: int) -> tuple[int, int]:
        return pe // self.cols, pe % self.cols

    def pe_at(self, r: int, c: int) -> int:
        pe = r * self.cols + c
        return pe if pe < self.p else -1

    def route(self, src: int, dst: int) -> list[int]:
        self._check(src, dst)
        if src == dst:
            return []
        sr, sc = self.coords(src)
        dr, dc = self.coords(dst)
        if sr == dr or sc == dc:
            return [dst]  # same row or column: one hop
        # Row hop to the relay in src's row / dst's column, then column hop.
        relay = self.pe_at(sr, dc)
        if relay < 0:
            # Ragged corner: relay through dst's row / src's column instead.
            relay = self.pe_at(dr, sc)
        if relay < 0 or relay == src or relay == dst:
            return [dst]
        return [relay, dst]

    def neighbors(self, pe: int) -> list[int]:
        r, c = self.coords(pe)
        row = [self.pe_at(r, j) for j in range(self.cols)]
        col = [self.pe_at(i, c) for i in range(self.rows)]
        out = {q for q in row + col if 0 <= q != pe}
        return sorted(out)


class Topology3D(Topology):
    """3D HyperX: one hop per axis (<= 3 hops)."""

    name = "3D"
    max_hops = 3
    needs_header = True

    def __init__(self, p: int) -> None:
        super().__init__(p)
        self.dx, self.dy, self.dz = _grid_dims(p, 3)

    def coords(self, pe: int) -> tuple[int, int, int]:
        x = pe // (self.dy * self.dz)
        rem = pe % (self.dy * self.dz)
        return x, rem // self.dz, rem % self.dz

    def pe_at(self, x: int, y: int, z: int) -> int:
        pe = (x * self.dy + y) * self.dz + z
        return pe if pe < self.p else -1

    def route(self, src: int, dst: int) -> list[int]:
        self._check(src, dst)
        if src == dst:
            return []
        sx, sy, sz = self.coords(src)
        dx_, dy_, dz_ = self.coords(dst)
        path: list[int] = []
        cur = (sx, sy, sz)
        # Correct one axis per hop: x, then y, then z.
        for axis, target in ((0, dx_), (1, dy_), (2, dz_)):
            if cur[axis] != target:
                nxt = list(cur)
                nxt[axis] = target
                hop = self.pe_at(*nxt)
                if hop >= 0:
                    cur = tuple(nxt)
                    path.append(hop)
        if not path or path[-1] != dst:
            # Ragged fallback: finish with a direct hop.
            path.append(dst)
        # Collapse consecutive duplicates / src echoes.
        out: list[int] = []
        prev = src
        for hop in path:
            if hop != prev:
                out.append(hop)
                prev = hop
        return out

    def neighbors(self, pe: int) -> list[int]:
        x, y, z = self.coords(pe)
        out = set()
        for i in range(self.dx):
            q = self.pe_at(i, y, z)
            if 0 <= q != pe:
                out.add(q)
        for j in range(self.dy):
            q = self.pe_at(x, j, z)
            if 0 <= q != pe:
                out.add(q)
        for k in range(self.dz):
            q = self.pe_at(x, y, k)
            if 0 <= q != pe:
                out.add(q)
        return sorted(out)


def make_topology(protocol: str, p: int) -> Topology:
    """Build a topology by protocol name ("1D" | "2D" | "3D")."""
    proto = protocol.upper()
    if proto == "1D":
        return Topology1D(p)
    if proto == "2D":
        return Topology2D(p)
    if proto == "3D":
        return Topology3D(p)
    raise ValueError(f"unknown Conveyors protocol {protocol!r} (use 1D/2D/3D)")
