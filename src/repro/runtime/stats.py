"""Run statistics: per-PE counters and virtual clocks.

Everything the simulated runtime measures lives here.  The counters are
*measured* quantities from real executions of the algorithms (k-mers
routed, PUTs issued, bytes on the wire, hops traversed, buffer flushes,
barriers) — the machine model then converts them into simulated time.
Keeping measurement separate from costing mirrors how the paper
validates its analytical model against PAPI hardware counters (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["PEStats", "RunStats"]


@dataclass(slots=True)
class PEStats:
    """Counters and virtual clock of a single processing element."""

    pe: int
    clock: float = 0.0  # virtual seconds

    # Phase 1: parse / generate / route
    kmers_generated: int = 0
    kmers_received: int = 0
    elements_received: int = 0  # wire elements (HEAVY pairs count as 2)
    compute_ops: int = 0
    mem_bytes: int = 0  # intranode memory traffic charged
    cache_misses_p1: int = 0
    cache_misses_p2: int = 0

    # Communication
    puts_issued: int = 0
    bytes_sent: int = 0  # payload + headers leaving this PE's NIC
    header_bytes: int = 0
    hops_forwarded: int = 0  # store-and-forward relays handled
    local_memcpy_bytes: int = 0  # co-located "sends" served by memcpy

    # Disk (out-of-core spill, repro.ooc)
    disk_bytes_written: int = 0  # spill-bin bytes written
    disk_bytes_read: int = 0  # spill-bin bytes reread in pass 2
    disk_ops: int = 0  # charged I/O operations (flushes + bin reads)

    # Aggregation layer activity
    l3_flushes: int = 0
    l2_flushes: int = 0
    l1_flushes: int = 0
    l0_flushes: int = 0
    heavy_pairs_sent: int = 0
    normal_elements_sent: int = 0

    # Synchronisation
    barriers: int = 0
    collectives: int = 0
    sync_wait_time: float = 0.0  # time wasted waiting at sync points

    # Reliability / fault tolerance (repro.fault)
    retransmits: int = 0  # groups re-sent after loss/corruption
    dup_drops: int = 0  # duplicate deliveries discarded by dedup
    acks_sent: int = 0  # acknowledgement messages sent by this PE
    crashes: int = 0  # transient crashes suffered at phase boundaries

    def advance(self, dt: float) -> None:
        """Advance this PE's virtual clock by *dt* seconds."""
        if dt < 0:
            raise ValueError("cannot advance clock by negative time")
        self.clock += dt


_SUM_FIELDS = (
    "kmers_generated",
    "kmers_received",
    "elements_received",
    "compute_ops",
    "mem_bytes",
    "cache_misses_p1",
    "cache_misses_p2",
    "puts_issued",
    "bytes_sent",
    "header_bytes",
    "hops_forwarded",
    "local_memcpy_bytes",
    "disk_bytes_written",
    "disk_bytes_read",
    "disk_ops",
    "l3_flushes",
    "l2_flushes",
    "l1_flushes",
    "l0_flushes",
    "heavy_pairs_sent",
    "normal_elements_sent",
    "barriers",
    "collectives",
    "retransmits",
    "dup_drops",
    "acks_sent",
    "crashes",
)


@dataclass
class RunStats:
    """Aggregated statistics of one simulated counting run."""

    n_pes: int
    pe: list[PEStats] = field(default_factory=list)
    #: Wall-clock (virtual) time of the run, set by the driver.
    sim_time: float = 0.0
    #: Virtual time at the end of phase 1 (k-mer generation+reshuffle).
    phase1_time: float = 0.0
    #: Virtual time spent in phase 2 (sort + accumulate).
    phase2_time: float = 0.0
    #: Number of global synchronisations performed.
    global_syncs: int = 0
    #: Peak per-PE aggregation-buffer memory (bytes), measured.
    peak_buffer_bytes_per_pe: int = 0
    #: Virtual time spent recovering from faults (retransmit rounds,
    #: crash restarts, checkpoint restores) — 0 on clean runs.
    recovery_time: float = 0.0
    #: Real (host) seconds spent executing the run, for benchmarks.
    host_seconds: float = 0.0
    #: Free-form extras (algorithm-specific measurements).
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.pe:
            self.pe = [PEStats(i) for i in range(self.n_pes)]
        if len(self.pe) != self.n_pes:
            raise ValueError("pe list length must equal n_pes")

    # -- totals ------------------------------------------------------

    def total(self, field_name: str) -> int:
        """Sum a counter field across all PEs."""
        if field_name not in _SUM_FIELDS:
            raise KeyError(f"unknown summable field {field_name!r}")
        return sum(getattr(p, field_name) for p in self.pe)

    @property
    def total_bytes_sent(self) -> int:
        return self.total("bytes_sent")

    @property
    def total_puts(self) -> int:
        return self.total("puts_issued")

    @property
    def total_kmers(self) -> int:
        return self.total("kmers_generated")

    @property
    def max_clock(self) -> float:
        return max((p.clock for p in self.pe), default=0.0)

    # -- imbalance ---------------------------------------------------

    def receive_imbalance(self) -> float:
        """Max/mean ratio of per-PE received elements (1.0 = balanced).

        Skewed k-mer distributions (heavy hitters) show up here; this
        is the quantity the L3 protocol attacks.
        """
        received = np.array([p.elements_received for p in self.pe], dtype=np.float64)
        mean = received.mean() if received.size else 0.0
        if mean == 0:
            return 1.0
        return float(received.max() / mean)

    def clock_imbalance(self) -> float:
        """Max/mean ratio of per-PE virtual clocks."""
        clocks = np.array([p.clock for p in self.pe], dtype=np.float64)
        mean = clocks.mean() if clocks.size else 0.0
        if mean == 0:
            return 1.0
        return float(clocks.max() / mean)

    # -- reporting ---------------------------------------------------

    def summary(self) -> dict:
        """Flat dict of headline measurements (for tables/benchmarks)."""
        return {
            "n_pes": self.n_pes,
            "sim_time": self.sim_time,
            "phase1_time": self.phase1_time,
            "phase2_time": self.phase2_time,
            "global_syncs": self.global_syncs,
            "kmers": self.total_kmers,
            "puts": self.total_puts,
            "bytes_sent": self.total_bytes_sent,
            "header_bytes": self.total("header_bytes"),
            "local_memcpy_bytes": self.total("local_memcpy_bytes"),
            "disk_bytes_written": self.total("disk_bytes_written"),
            "disk_bytes_read": self.total("disk_bytes_read"),
            "receive_imbalance": self.receive_imbalance(),
            "peak_buffer_bytes_per_pe": self.peak_buffer_bytes_per_pe,
            "retransmits": self.total("retransmits"),
            "dup_drops": self.total("dup_drops"),
            "acks_sent": self.total("acks_sent"),
            "recovery_time": self.recovery_time,
            "host_seconds": self.host_seconds,
        }
