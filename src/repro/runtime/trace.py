"""Execution tracing: per-PE event timelines for the simulated runs.

A :class:`Tracer` records (pe, start, end, kind) spans during a
simulated execution and renders them as an ASCII Gantt chart — the
poor man's version of the timeline views HPC profilers give, useful
for *seeing* DAKC's asynchrony vs the BSP baselines' barrier walls
(see ``examples/timeline_visualization.py``).  For real timeline
tooling, :func:`to_chrome_trace` exports the same spans as Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "render_gantt", "to_chrome_trace"]

#: Kind -> glyph used in the Gantt rendering.
GLYPHS = {
    "compute": "#",
    "memory": "=",
    "send": ">",
    "receive": "<",
    "wait": ".",
    "barrier": "|",
    "sort": "S",
}


@dataclass(frozen=True, slots=True)
class Span:
    """One traced activity interval on one PE."""

    pe: int
    start: float
    end: float
    kind: str

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("span ends before it starts")


@dataclass
class Tracer:
    """Collects spans; attach to a run by calling :meth:`record`."""

    spans: list[Span] = field(default_factory=list)
    enabled: bool = True

    def record(self, pe: int, start: float, end: float, kind: str) -> None:
        if not self.enabled or end <= start:
            return
        self.spans.append(Span(pe, start, end, kind))

    def pe_span(self, pe: int) -> tuple[float, float]:
        mine = [s for s in self.spans if s.pe == pe]
        if not mine:
            return 0.0, 0.0
        return min(s.start for s in mine), max(s.end for s in mine)

    def busy_fraction(self, pe: int, *, idle_kinds: tuple[str, ...] = ("wait",)) -> float:
        """Fraction of a PE's traced wall time spent non-idle."""
        mine = [s for s in self.spans if s.pe == pe]
        if not mine:
            return 0.0
        lo, hi = self.pe_span(pe)
        if hi == lo:
            return 0.0
        busy = sum(s.end - s.start for s in mine if s.kind not in idle_kinds)
        return min(1.0, busy / (hi - lo))

    def total_time(self) -> float:
        return max((s.end for s in self.spans), default=0.0)


def to_chrome_trace(
    tracer: Tracer, *, process_name: str = "simulated machine"
) -> str:
    """Export spans as Chrome trace-event JSON (Perfetto-loadable).

    Each span becomes a complete ("ph": "X") duration event: one
    process for the simulated machine, one thread per PE, simulated
    seconds mapped to trace microseconds.  Thread-name metadata events
    label each PE row, so the Perfetto timeline reads ``PE 0..P-1``.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for pe in sorted({s.pe for s in tracer.spans}):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": pe,
                "args": {"name": f"PE {pe}"},
            }
        )
    for span in sorted(tracer.spans, key=lambda s: (s.start, s.pe)):
        events.append(
            {
                "name": span.kind,
                "cat": span.kind,
                "ph": "X",
                "pid": 0,
                "tid": span.pe,
                "ts": span.start * 1e6,   # trace time unit is microseconds
                "dur": (span.end - span.start) * 1e6,
            }
        )
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, indent=1
    )


def render_gantt(tracer: Tracer, *, width: int = 80, n_pes: int | None = None) -> str:
    """Render the trace as one ASCII row per PE.

    Later spans overwrite earlier ones at the same cell; barriers
    render last so they always show.
    """
    if not tracer.spans:
        return "(empty trace)\n"
    t_end = tracer.total_time()
    if t_end <= 0:
        return "(zero-length trace)\n"
    pes = sorted({s.pe for s in tracer.spans})
    if n_pes is not None:
        pes = list(range(n_pes))
    rows = {pe: [" "] * width for pe in pes}
    ordered = sorted(tracer.spans, key=lambda s: (s.kind == "barrier", s.start))
    for span in ordered:
        if span.pe not in rows:
            continue
        glyph = GLYPHS.get(span.kind, "?")
        lo = int(span.start / t_end * (width - 1))
        hi = max(lo + 1, int(span.end / t_end * (width - 1)) + 1)
        for x in range(lo, min(width, hi)):
            rows[span.pe][x] = glyph
    lines = [f"t=0 {'-' * (width - 8)} t={t_end:.3g}s"]
    for pe in pes:
        lines.append(f"PE{pe:>3} {''.join(rows[pe])}")
    legend = "  ".join(f"{g}={k}" for k, g in GLYPHS.items())
    lines.append(f"[{legend}]")
    return "\n".join(lines) + "\n"
