"""Cache-miss accounting: the simulated stand-in for PAPI counters.

The paper validates its analytical model against last-level cache miss
counts measured with PAPI (Fig. 3).  We cannot read hardware counters
for a virtual machine, so the runtime charges cache misses from the
*access patterns* the algorithms actually perform:

* :func:`scan_misses` — the model's optimal-replacement streaming
  formula ``1 + bytes/L`` (used for the *predicted* series);
* :class:`CacheAccounting` — the *measured* series: an LRU-flavoured
  estimator that charges sequential streams at ``bytes/L`` and random
  accesses at a working-set-dependent miss ratio, slightly above the
  optimal model, mirroring the paper's observation that measured
  misses exceed the optimal-replacement prediction in Phase 1;
* :class:`LRUCacheSim` — an exact set of recently-used lines for tiny
  traces, used by tests to sanity-check the estimator's asymptotics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["scan_misses", "random_access_misses", "CacheAccounting", "LRUCacheSim"]


def scan_misses(nbytes: int, line_bytes: int) -> int:
    """Optimal-model misses of one sequential scan: ``1 + nbytes/L``."""
    if nbytes < 0 or line_bytes <= 0:
        raise ValueError("nbytes >= 0 and line_bytes > 0 required")
    return 1 + nbytes // line_bytes


def random_access_misses(
    n_accesses: int, working_set_bytes: int, cache_bytes: int, line_bytes: int
) -> int:
    """LRU-estimate of misses for random accesses over a working set.

    If the working set fits in cache, only compulsory misses remain
    (one per line of the working set).  Otherwise each access misses
    with probability ``1 - Z/W``.
    """
    if n_accesses < 0:
        raise ValueError("n_accesses must be >= 0")
    if working_set_bytes <= cache_bytes:
        return min(n_accesses, scan_misses(working_set_bytes, line_bytes))
    miss_ratio = 1.0 - cache_bytes / working_set_bytes
    compulsory = scan_misses(working_set_bytes, line_bytes)
    return int(n_accesses * miss_ratio) + min(n_accesses, compulsory)


@dataclass(slots=True)
class CacheAccounting:
    """Accumulates estimated LLC misses for one PE.

    The runtime calls :meth:`stream` for sequential array traffic and
    :meth:`scatter` for bucket/bin writes.  A small per-call overhead
    (one extra line) models the TLB/metadata traffic that makes real
    counters sit above the optimal model.
    """

    cache_bytes: int
    line_bytes: int
    misses: int = 0

    def stream(self, nbytes: int) -> int:
        """Sequential read or write of *nbytes*; returns misses added."""
        m = scan_misses(nbytes, self.line_bytes)
        self.misses += m
        return m

    def scatter(self, n_accesses: int, working_set_bytes: int) -> int:
        """Random accesses (e.g. radix bucket writes) over a working set."""
        m = random_access_misses(
            n_accesses, working_set_bytes, self.cache_bytes, self.line_bytes
        )
        self.misses += m
        return m

    def reset(self) -> int:
        old, self.misses = self.misses, 0
        return old


class LRUCacheSim:
    """Exact LRU cache simulator over line addresses (tests only).

    Tracks which cache lines are resident; every access to an absent
    line is a miss and evicts the least recently used line when full.
    Cost is O(1) amortised per access, but per-access Python overhead
    restricts it to tiny traces.
    """

    def __init__(self, cache_bytes: int, line_bytes: int) -> None:
        if cache_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache_bytes and line_bytes must be positive")
        self.line_bytes = line_bytes
        self.capacity_lines = max(1, cache_bytes // line_bytes)
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, byte_addr: int) -> bool:
        """Access one byte address; returns True on a miss."""
        line = byte_addr // self.line_bytes
        if line in self._resident:
            self._resident.move_to_end(line)
            self.hits += 1
            return False
        self.misses += 1
        self._resident[line] = None
        if len(self._resident) > self.capacity_lines:
            self._resident.popitem(last=False)
        return True

    def access_range(self, start: int, nbytes: int) -> int:
        """Access a contiguous byte range; returns misses incurred."""
        misses = 0
        first = start // self.line_bytes
        last = (start + max(0, nbytes - 1)) // self.line_bytes
        for line in range(first, last + 1):
            if self.access(line * self.line_bytes):
                misses += 1
        return misses
