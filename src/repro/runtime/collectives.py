"""BSP collective operations on the simulated machine.

The baselines (PakMan*, HySortK) communicate through Many-To-Many MPI
collectives (Algorithm 2's ``ManyToManyCollective``).  This module
models them with the paper's costs:

* :func:`barrier` — tree reduction, ``tau * log2(P)`` (Eq. 3), plus the
  *skew wait*: every PE first idles until the slowest PE arrives.  The
  wait is recorded per PE (``sync_wait_time``) because it is the
  quantity DAKC's asynchrony eliminates ("each round of synchronization
  causes CPU cycle waste, due to inherently skewed distribution of
  k-mers", Section III-C).
* :func:`alltoallv` — the Many-To-Many exchange: all PEs synchronise,
  then each pays NIC time for its off-node traffic and memory-copy time
  for its on-node traffic, plus the ``tau log P`` startup.  The
  *blocking* variant (PakMan) returns after the exchange completes
  everywhere; the *non-blocking* variant (HySortK) returns each PE's
  own completion so callers can overlap the next batch's compute
  (``max(compute, comm)`` instead of the sum).
"""

from __future__ import annotations

import math

import numpy as np

from .cost import CostModel
from .stats import RunStats

__all__ = [
    "barrier",
    "alltoallv",
    "exchange_matrix_bytes",
    "ALLTOALL_BW_EFFICIENCY",
    "MSG_OVERHEAD_TAU_FRACTION",
]

#: Effective fraction of peak NIC bandwidth a Many-To-Many collective
#: achieves.  Large alltoallv exchanges suffer incast congestion and
#: synchronization stalls; 40-60% of peak is the commonly measured
#: range on fat-tree/dragonfly fabrics.  DAKC's streamed one-sided
#: PUTs pipeline at near-peak bandwidth (the paper's model validation
#: shows DAKC "near optimal on our target machine"), which is a large
#: part of its measured 2.3-2.8x advantage over the BSP baselines.
ALLTOALL_BW_EFFICIENCY: float = 0.45

#: Per-destination CPU/rendezvous overhead of one collective message
#: (LogGP's `o`), expressed as a fraction of the machine's wire
#: latency tau (~1 us at the default tau of 2 us — typical for MPI
#: rendezvous-path messages).  Tying it to tau keeps the overhead
#: consistent under the harness's time-scaling.  This is what makes
#: rank-per-core (MPI-only PakMan) alltoallv painful at high rank
#: counts with small per-pair payloads.
MSG_OVERHEAD_TAU_FRACTION: float = 0.5


def barrier(cost: CostModel, stats: RunStats) -> float:
    """Global barrier; returns the post-barrier common clock."""
    t_max = max(p.clock for p in stats.pe)
    t_after = t_max + cost.barrier_time
    for p in stats.pe:
        if cost.tracer is not None:
            if t_max > p.clock:
                cost.tracer.record(p.pe, p.clock, t_max, "wait")
            cost.tracer.record(p.pe, t_max, t_after, "barrier")
        p.sync_wait_time += t_max - p.clock
        p.clock = t_after
        p.barriers += 1
    stats.global_syncs += 1
    return t_after


def exchange_matrix_bytes(
    cost: CostModel, send_bytes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split a PxP send-bytes matrix into on/off-node per-PE totals.

    Returns ``(send_off, send_on, recv_off, recv_on)`` vectors.  Used
    by :func:`alltoallv` and reusable by footprint models.
    """
    p = cost.n_pes
    if send_bytes.shape != (p, p):
        raise ValueError(f"send matrix must be {p}x{p}")
    nodes = np.arange(p) // cost.pes_per_node
    same_node = nodes[:, None] == nodes[None, :]
    on = np.where(same_node, send_bytes, 0)
    off = np.where(same_node, 0, send_bytes)
    return (
        off.sum(axis=1),
        on.sum(axis=1),
        off.sum(axis=0),
        on.sum(axis=0),
    )


def alltoallv(
    cost: CostModel,
    stats: RunStats,
    send_bytes: np.ndarray,
    *,
    blocking: bool = True,
) -> np.ndarray:
    """Perform one Many-To-Many collective over a PxP byte matrix.

    ``send_bytes[i, j]`` is the payload PE ``i`` ships to PE ``j``.

    With ``blocking=True`` (MPI alltoallv) all PEs synchronise at
    entry, pay their transfer costs, and advance together to the
    global completion — the slowest PE gates every round, which is how
    skew taxes the BSP baselines per superstep.

    With ``blocking=False`` (MPI ialltoallv) there is no entry
    synchronisation and **clocks are not advanced**: each PE initiates
    at its own clock and the returned per-PE completion times tell the
    caller when the data lands, so subsequent compute can overlap the
    exchange (HySortK's non-blocking strategy).  The caller must clamp
    clocks to the completions before consuming the received data.
    """
    p = cost.n_pes
    send_bytes = np.asarray(send_bytes, dtype=np.float64)
    if blocking:
        t_enter = max(pe.clock for pe in stats.pe)
        for pe in stats.pe:
            pe.sync_wait_time += t_enter - pe.clock
            pe.collectives += 1
    else:
        for pe in stats.pe:
            pe.collectives += 1
    stats.global_syncs += 1

    send_off, send_on, recv_off, recv_on = exchange_matrix_bytes(cost, send_bytes)
    # Cost per PE: tau*log(P) startup (Eq. 3), per-destination message
    # overheads (LogGP `o`), off-node traffic at the collective's
    # *effective* bandwidth, on-node traffic at memory bandwidth.
    logp = math.log2(max(2, p))
    startup = cost.machine.tau * logp
    eff_bw = cost.pe_link_bw * ALLTOALL_BW_EFFICIENCY
    n_dests = (send_bytes > 0).sum(axis=1)
    completion = np.empty(p, dtype=np.float64)
    if not blocking:
        # A receiver's exchange cannot land before its senders have
        # initiated: start from the latest contributing sender.
        clocks = np.array([pe.clock for pe in stats.pe])
        has_traffic = send_bytes > 0
        sender_gate = np.where(has_traffic, clocks[:, None], 0.0).max(axis=0)
    for i, pe in enumerate(stats.pe):
        if blocking:
            start = t_enter
        else:
            start = max(pe.clock, float(sender_gate[i]))
        wire = (send_off[i] + recv_off[i]) / eff_bw
        # Intranode MPI goes through a shared-memory staging buffer:
        # two copies (send buffer -> shm -> receive buffer).  DAKC's
        # runtime short-circuits co-located sends to a single memcpy —
        # the single-node advantage of Section VI-B.
        local = 2 * (send_on[i] + recv_on[i]) / cost.pe_mem_bw
        overhead = MSG_OVERHEAD_TAU_FRACTION * cost.machine.tau * float(n_dests[i])
        completion[i] = start + startup + overhead + wire + local
        pe.bytes_sent += int(send_off[i])
        pe.local_memcpy_bytes += int(send_on[i])
        pe.puts_issued += int(np.count_nonzero(send_bytes[i]))
        pe.mem_bytes += int(send_on[i] + recv_on[i])

    if blocking:
        t_done = float(completion.max())
        for pe in stats.pe:
            pe.sync_wait_time += t_done - pe.clock if t_done > pe.clock else 0.0
            pe.clock = t_done
        return np.full(p, t_done)
    # Non-blocking: clocks untouched; the exchange proceeds in the
    # background and lands at `completion`.
    return completion
