"""De Bruijn graph construction and unitig assembly from k-mer counts.

The paper's headline motivation: k-mer counting consumes up to 77% of
a de novo assembly pipeline (PakMan) — because the *next* stage, the
de Bruijn graph, is built directly from the counted k-mers.  This
module implements that stage:

* :class:`DeBruijnGraph` — node-centric de Bruijn graph over a solid
  k-mer set, with vectorised successor/predecessor queries;
* :func:`assemble_unitigs` — maximal non-branching path compaction
  (the standard unitig algorithm: every assembler's first product);
* :func:`assembly_stats` / :func:`genome_recovery` — N50-style
  evaluation of the result.

Together with :mod:`repro.apps.spectrum` this closes the loop the
paper's introduction draws: count -> filter errors -> assemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import KmerCounts
from ..seq.kmers import kmer_to_str

__all__ = [
    "DeBruijnGraph",
    "Unitig",
    "assemble_unitigs",
    "AssemblyStats",
    "assembly_stats",
    "genome_recovery",
]


@dataclass(frozen=True, slots=True)
class Unitig:
    """A maximal non-branching path, as a DNA string."""

    seq: str
    mean_coverage: float

    def __len__(self) -> int:
        return len(self.seq)


class DeBruijnGraph:
    """Node-centric de Bruijn graph over a set of counted k-mers.

    Nodes are the k-mers; an edge ``u -> v`` exists when ``v``'s k-1
    prefix equals ``u``'s k-1 suffix and both are present.  Adjacency
    is computed on demand with vectorised membership queries against
    the sorted key array (no materialised edge list).
    """

    def __init__(self, counts: KmerCounts) -> None:
        self.k = counts.k
        self.kmers = counts.kmers
        self.counts = counts.counts
        self._mask = np.uint64((1 << (2 * self.k)) - 1) if self.k < 32 else np.uint64(
            0xFFFFFFFFFFFFFFFF
        )

    @property
    def n_nodes(self) -> int:
        return int(self.kmers.size)

    def _contains(self, queries: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self.kmers, queries)
        idx_c = np.minimum(idx, max(0, self.n_nodes - 1))
        if self.n_nodes == 0:
            return np.zeros(queries.size, dtype=bool)
        return self.kmers[idx_c] == queries

    def successors_mask(self, kmers: np.ndarray) -> np.ndarray:
        """(n, 4) boolean: which base-extensions of each k-mer exist."""
        kmers = np.asarray(kmers, dtype=np.uint64)
        out = np.empty((kmers.size, 4), dtype=bool)
        shifted = (kmers << np.uint64(2)) & self._mask
        for base in range(4):
            out[:, base] = self._contains(shifted | np.uint64(base))
        return out

    def predecessors_mask(self, kmers: np.ndarray) -> np.ndarray:
        """(n, 4) boolean: which base-prepends of each k-mer exist."""
        kmers = np.asarray(kmers, dtype=np.uint64)
        out = np.empty((kmers.size, 4), dtype=bool)
        shifted = kmers >> np.uint64(2)
        for base in range(4):
            cand = shifted | (np.uint64(base) << np.uint64(2 * (self.k - 1)))
            out[:, base] = self._contains(cand)
        return out

    def out_degrees(self) -> np.ndarray:
        return self.successors_mask(self.kmers).sum(axis=1)

    def in_degrees(self) -> np.ndarray:
        return self.predecessors_mask(self.kmers).sum(axis=1)

    def count_of(self, kmer: int) -> int:
        i = int(np.searchsorted(self.kmers, np.uint64(kmer)))
        if i < self.n_nodes and self.kmers[i] == np.uint64(kmer):
            return int(self.counts[i])
        return 0


def assemble_unitigs(counts: KmerCounts, *, min_length: int = 0) -> list[Unitig]:
    """Compact maximal non-branching paths into unitigs.

    Standard algorithm: a k-mer is a *path-internal* node iff it has
    in-degree 1 and out-degree 1 and its unique neighbours agree;
    unitigs start at non-internal nodes (or anywhere on isolated
    cycles) and extend while the next node is internal.
    """
    graph = DeBruijnGraph(counts)
    n = graph.n_nodes
    if n == 0:
        return []
    succ = graph.successors_mask(graph.kmers)
    pred = graph.predecessors_mask(graph.kmers)
    out_deg = succ.sum(axis=1)
    in_deg = pred.sum(axis=1)

    key_to_idx = {int(kmer): i for i, kmer in enumerate(graph.kmers.tolist())}
    mask = int(graph._mask)
    k = graph.k

    # A node is *absorbable* (path-internal) iff the edge into it is
    # simple: its in-degree is 1 and its unique predecessor has
    # out-degree 1 (the BCALM unitig condition).
    absorbable = np.zeros(n, dtype=bool)
    for i in range(n):
        if in_deg[i] != 1:
            continue
        base = int(np.argmax(pred[i]))
        pred_key = (int(graph.kmers[i]) >> 2) | (base << (2 * (k - 1)))
        j = key_to_idx.get(pred_key)
        if j is not None and out_deg[j] == 1:
            absorbable[i] = True

    visited = np.zeros(n, dtype=bool)
    unitigs: list[Unitig] = []

    def walk_from(start: int) -> None:
        idx = start
        visited[idx] = True
        seq = kmer_to_str(int(graph.kmers[idx]), k)
        covs = [int(graph.counts[idx])]
        while out_deg[idx] == 1:
            base = int(np.argmax(succ[idx]))
            nxt_key = ((int(graph.kmers[idx]) << 2) | base) & mask
            nxt = key_to_idx.get(nxt_key)
            if nxt is None or visited[nxt] or not absorbable[nxt]:
                break
            visited[nxt] = True
            seq += "ACGT"[base]
            covs.append(int(graph.counts[nxt]))
            idx = nxt
        unitigs.append(Unitig(seq, float(np.mean(covs))))

    # Pass 1: start at every non-absorbable node.
    for i in range(n):
        if not visited[i] and not absorbable[i]:
            walk_from(i)
    # Pass 2: whatever remains lies on isolated simple cycles.
    for i in range(n):
        if not visited[i]:
            walk_from(i)

    if min_length:
        unitigs = [u for u in unitigs if len(u) >= min_length]
    return unitigs


@dataclass(frozen=True, slots=True)
class AssemblyStats:
    """Contiguity metrics of an assembly."""

    n_unitigs: int
    total_length: int
    longest: int
    n50: int
    mean_coverage: float


def assembly_stats(unitigs: list[Unitig]) -> AssemblyStats:
    """N50-style summary of a unitig set."""
    if not unitigs:
        return AssemblyStats(0, 0, 0, 0, 0.0)
    lengths = sorted((len(u) for u in unitigs), reverse=True)
    total = sum(lengths)
    acc, n50 = 0, 0
    for length in lengths:
        acc += length
        if acc * 2 >= total:
            n50 = length
            break
    cov = float(np.mean([u.mean_coverage for u in unitigs]))
    return AssemblyStats(
        n_unitigs=len(unitigs),
        total_length=total,
        longest=lengths[0],
        n50=n50,
        mean_coverage=cov,
    )


def genome_recovery(unitigs: list[Unitig], genome: str, *, k: int) -> float:
    """Fraction of genome positions covered by exact unitig matches."""
    if not genome:
        return 0.0
    covered = np.zeros(len(genome), dtype=bool)
    for unitig in unitigs:
        if len(unitig.seq) < k:
            continue
        start = genome.find(unitig.seq)
        while start != -1:
            covered[start : start + len(unitig.seq)] = True
            start = genome.find(unitig.seq, start + 1)
    return float(covered.mean())
