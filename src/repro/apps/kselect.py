"""Automated k-mer size selection (KmerGenie-style).

The paper's introduction cites "informed and automated k-mer size
selection for genome assembly" (Chikhi & Medvedev) as one of the
workloads k-mer counting feeds.  The method: count at several k,
estimate the number of *genomic* (non-erroneous, distinct) k-mers per
k from each spectrum, and pick the k maximising it — small k collapses
repeats together, large k fragments coverage and inflates the error
band; the sweet spot maximises usable graph nodes.

This module runs that sweep on any counter exposed by
:func:`repro.api.count_kmers` (so the k-selection itself can execute
on the simulated cluster).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import KmerCounts
from .spectrum import spectrum_features

__all__ = ["KCandidate", "evaluate_k", "choose_k"]


@dataclass(frozen=True, slots=True)
class KCandidate:
    """Spectrum-derived quality numbers of one candidate k."""

    k: int
    distinct: int
    genomic_distinct: int  # distinct k-mers above the error valley
    error_distinct: int
    valley: int
    peak: int

    @property
    def genomic_fraction(self) -> float:
        return self.genomic_distinct / self.distinct if self.distinct else 0.0


def evaluate_k(counts: KmerCounts) -> KCandidate:
    """Score one k from its count spectrum."""
    feats = spectrum_features(counts)
    hist = counts.spectrum(max_count=1000)
    error_distinct = int(hist[: feats.valley].sum())
    genomic_distinct = int(hist[feats.valley :].sum())
    return KCandidate(
        k=counts.k,
        distinct=counts.n_distinct,
        genomic_distinct=genomic_distinct,
        error_distinct=error_distinct,
        valley=feats.valley,
        peak=feats.peak,
    )


def choose_k(
    reads,
    ks: list[int],
    *,
    algorithm: str = "serial",
    nodes: int = 1,
    machine=None,
) -> tuple[int, list[KCandidate]]:
    """Count at every candidate k and pick the best.

    Returns ``(best_k, candidates)`` where best maximises the genomic
    distinct k-mer count (the KmerGenie criterion).  Counting runs
    through :func:`repro.api.count_kmers`, so ``algorithm="dakc"``
    performs the whole sweep on the simulated cluster.
    """
    from ..api import count_kmers

    if not ks:
        raise ValueError("need at least one candidate k")
    if len(set(ks)) != len(ks):
        raise ValueError("candidate k values must be distinct")
    candidates = []
    for k in sorted(ks):
        run = count_kmers(reads, k, algorithm=algorithm, nodes=nodes,
                          machine=machine)
        candidates.append(evaluate_k(run.counts))
    best = max(candidates, key=lambda c: c.genomic_distinct)
    return best.k, candidates
