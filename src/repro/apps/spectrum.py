"""k-mer spectrum analysis: the consumers of a counter's output.

The paper's introduction motivates k-mer counting with genome
assembly, quality assessment, error correction and genome profiling.
This module implements the classic spectrum analyses those pipelines
run on the (k-mer, count) array:

* :func:`spectrum_features` — locate the error valley and the
  homozygous coverage peak of a count histogram;
* :func:`estimate_genome_size` — the standard total-kmers /
  coverage-peak estimator (GenomeScope-style zeroth-order model);
* :func:`estimate_error_rate` — per-base error rate from the weight of
  the error band;
* :func:`solid_threshold` — the cutoff assemblers use to drop
  erroneous k-mers (demonstrated in examples/genome_assembly_filter.py).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import KmerCounts

__all__ = [
    "SpectrumFeatures",
    "spectrum_features",
    "solid_threshold",
    "estimate_genome_size",
    "estimate_error_rate",
]


@dataclass(frozen=True, slots=True)
class SpectrumFeatures:
    """Landmarks of a k-mer count histogram."""

    valley: int  # first local minimum (error/signal boundary)
    peak: int  # homozygous coverage peak (mode above the valley)
    error_mass: int  # total k-mer occurrences below the valley
    signal_mass: int  # total occurrences at/above the valley

    @property
    def has_signal(self) -> bool:
        return self.peak > self.valley


def spectrum_features(counts: KmerCounts, *, max_count: int = 1000) -> SpectrumFeatures:
    """Locate valley and coverage peak of the spectrum.

    Uses the canonical sweep: walk the histogram from count=1 to the
    first local minimum (the valley separating the sequencing-error
    band from real genomic k-mers), then take the highest histogram
    bar after it (the coverage peak).
    """
    hist = counts.spectrum(max_count=max_count).astype(np.float64)
    if hist.size <= 2 or hist[1:].sum() == 0:
        return SpectrumFeatures(valley=1, peak=1, error_mass=0, signal_mass=0)
    valley = 1
    for c in range(2, hist.size - 1):
        if hist[c] <= hist[c - 1] and hist[c] <= hist[c + 1]:
            valley = c
            break
    else:
        valley = 1
    tail = hist[valley:]
    peak = valley + int(np.argmax(tail)) if tail.size else valley
    counts_axis = np.arange(hist.size, dtype=np.float64)
    mass = hist * counts_axis
    error_mass = int(mass[:valley].sum())
    signal_mass = int(mass[valley:].sum())
    return SpectrumFeatures(valley=valley, peak=peak,
                            error_mass=error_mass, signal_mass=signal_mass)


def solid_threshold(counts: KmerCounts, *, max_count: int = 1000) -> int:
    """Minimum count for a k-mer to be considered solid (non-error)."""
    return max(2, spectrum_features(counts, max_count=max_count).valley)


def estimate_genome_size(counts: KmerCounts, *, max_count: int = 1000) -> int:
    """Estimate genome size as signal k-mer mass / coverage peak.

    The classic estimator: total non-error k-mer occurrences divided by
    the per-k-mer coverage (the spectrum peak).  Exact for a uniform
    haploid genome; a first-order approximation otherwise.
    """
    feats = spectrum_features(counts, max_count=max_count)
    if not feats.has_signal or feats.peak == 0:
        return 0
    return int(round(feats.signal_mass / feats.peak))


def estimate_error_rate(counts: KmerCounts, k: int | None = None,
                        *, max_count: int = 1000) -> float:
    """Per-base substitution-rate estimate from the error band.

    A substitution at one base corrupts up to k overlapping k-mers, so
    ``error_occurrences ~= errors * k`` and
    ``rate ~= error_mass / (k * total_mass)``.
    """
    k = k if k is not None else counts.k
    feats = spectrum_features(counts, max_count=max_count)
    total = feats.error_mass + feats.signal_mass
    if total == 0:
        return 0.0
    return feats.error_mass / (k * total)
