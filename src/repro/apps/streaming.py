"""Streaming (batched) counting of FASTX files.

KMC3's defining feature — and the reason the paper uses it as the
shared-memory baseline — is out-of-core operation: the input never has
to fit in memory at once.  This module provides the analogous batched
path for this library: records stream off disk in bounded batches,
each batch is counted with the fast serial kernel, and partial results
merge into a running (k-mer, count) database.  Peak memory is one
batch of reads plus the distinct-k-mer database (the irreducible
output), instead of the whole read set.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from ..core.result import KmerCounts
from ..core.serial import serial_count
from ..seq.encoding import encode_seq
from ..seq.fastx import SeqRecord, read_fastx
from .store import merge_sorted_counts

__all__ = ["count_records_streaming", "count_file_streaming", "count_files_streaming"]


def _batches(records: Iterable[SeqRecord], size: int) -> Iterator[list[SeqRecord]]:
    batch: list[SeqRecord] = []
    for rec in records:
        batch.append(rec)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def count_records_streaming(
    records: Iterable[SeqRecord],
    k: int,
    *,
    batch_records: int = 100_000,
    canonical: bool = False,
    progress: Callable[[int, KmerCounts], None] | None = None,
) -> KmerCounts:
    """Count k-mers of a record stream in bounded batches.

    *progress*, if given, is called after every merged batch with
    ``(records_so_far, running_counts)`` — usable for live status or
    early inspection (the running counts are always valid for the
    prefix consumed so far).
    """
    if batch_records < 1:
        raise ValueError("batch_records must be >= 1")
    merged_keys = np.empty(0, dtype=np.uint64)
    merged_vals = np.empty(0, dtype=np.int64)
    seen = 0
    for batch in _batches(records, batch_records):
        encoded = [encode_seq(r.seq, validate=False) for r in batch]
        partial = serial_count(encoded, k, canonical=canonical)
        merged_keys, merged_vals = merge_sorted_counts(
            merged_keys, merged_vals, partial.kmers, partial.counts
        )
        seen += len(batch)
        if progress is not None:
            progress(seen, KmerCounts(k, merged_keys, merged_vals))
    return KmerCounts(k, merged_keys, merged_vals)


def count_file_streaming(
    path: str | os.PathLike,
    k: int,
    *,
    batch_records: int = 100_000,
    canonical: bool = False,
    progress: Callable[[int, KmerCounts], None] | None = None,
) -> KmerCounts:
    """Count a FASTA/FASTQ file without loading it whole."""
    return count_records_streaming(
        read_fastx(path), k,
        batch_records=batch_records, canonical=canonical, progress=progress,
    )


def count_files_streaming(
    paths: list[str | os.PathLike],
    k: int,
    *,
    batch_records: int = 100_000,
    canonical: bool = False,
    progress: Callable[[int, KmerCounts], None] | None = None,
) -> KmerCounts:
    """Count several files into one database (multi-lane sequencing runs).

    *progress* reports **global** records-so-far across the whole file
    list — the counter never resets at a file boundary, so a caller
    driving a progress bar sees one monotone stream, not N restarts.
    """

    def chain() -> Iterator[SeqRecord]:
        for path in paths:
            yield from read_fastx(path)

    return count_records_streaming(
        chain(), k,
        batch_records=batch_records, canonical=canonical, progress=progress,
    )
