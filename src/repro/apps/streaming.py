"""Streaming (batched) counting of FASTX files.

KMC3's defining feature — and the reason the paper uses it as the
shared-memory baseline — is out-of-core operation: the input never has
to fit in memory at once.  This module provides the analogous batched
path for this library: records stream off disk in bounded batches,
each batch is counted in one shot, and partial results merge into a
running (k-mer, count) database.  Peak memory is one batch of reads
plus the distinct-k-mer database (the irreducible output), instead of
the whole read set.

Two batch kernels back this path.  The default (``fast=True``) is the
vectorised super-k-mer pipeline: one joined encode of the whole batch
(:func:`repro.seq.encoding.encode_batch`), the flat super-k-mer split
kernel (:func:`repro.seq.superkmers.split_superkmers_flat`), and a
fused extract -> sort -> accumulate — zero per-read or per-k-mer
Python in the hot loop.  ``fast=False`` keeps the original per-read
``encode_seq`` + :func:`repro.core.serial.serial_count` path; it is
retained as the differential oracle (see ``tests/count/``) and for
apples-to-apples benchmarking (the ``count-bench`` experiment).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from ..core.result import KmerCounts
from ..core.serial import serial_count
from ..seq.encoding import encode_batch, encode_seq
from ..seq.fastx import SeqRecord, read_fastx
from ..seq.superkmers import (
    DEFAULT_MINIMIZER_LEN,
    count_superkmer_batch,
    split_superkmers_flat,
)
from .store import merge_sorted_counts

__all__ = ["count_records_streaming", "count_file_streaming", "count_files_streaming"]


def _batches(records: Iterable[SeqRecord], size: int) -> Iterator[list[SeqRecord]]:
    batch: list[SeqRecord] = []
    for rec in records:
        batch.append(rec)
        if len(batch) >= size:
            yield batch
            batch = []
    if batch:
        yield batch


def count_records_streaming(
    records: Iterable[SeqRecord],
    k: int,
    *,
    batch_records: int = 100_000,
    canonical: bool = False,
    progress: Callable[[int, KmerCounts], None] | None = None,
    fast: bool = True,
    w: int | None = None,
) -> KmerCounts:
    """Count k-mers of a record stream in bounded batches.

    *progress*, if given, is called after every merged batch with
    ``(records_so_far, running_counts)`` — usable for live status or
    early inspection (the running counts are always valid for the
    prefix consumed so far).

    *fast* selects the vectorised super-k-mer batch kernel (default);
    ``fast=False`` runs the original per-read scalar path, kept as the
    differential oracle.  *w* is the minimizer length of the fast
    path (default ``min(k, 7)``); counts are independent of it — it
    only shifts work between the split and sort stages.
    """
    if batch_records < 1:
        raise ValueError("batch_records must be >= 1")
    w_eff = min(k, DEFAULT_MINIMIZER_LEN if w is None else w)
    merged_keys = np.empty(0, dtype=np.uint64)
    merged_vals = np.empty(0, dtype=np.int64)
    seen = 0
    for batch in _batches(records, batch_records):
        if fast:
            flat, offsets = encode_batch(
                [r.seq for r in batch], validate=False)
            skb = split_superkmers_flat(flat, offsets, k, w_eff)
            keys, vals = count_superkmer_batch(skb, canonical=canonical)
        else:
            encoded = [encode_seq(r.seq, validate=False) for r in batch]
            partial = serial_count(encoded, k, canonical=canonical)
            keys, vals = partial.kmers, partial.counts
        merged_keys, merged_vals = merge_sorted_counts(
            merged_keys, merged_vals, keys, vals
        )
        seen += len(batch)
        if progress is not None:
            progress(seen, KmerCounts(k, merged_keys, merged_vals))
    return KmerCounts(k, merged_keys, merged_vals)


def count_file_streaming(
    path: str | os.PathLike,
    k: int,
    *,
    batch_records: int = 100_000,
    canonical: bool = False,
    progress: Callable[[int, KmerCounts], None] | None = None,
    fast: bool = True,
    w: int | None = None,
) -> KmerCounts:
    """Count a FASTA/FASTQ file without loading it whole."""
    return count_records_streaming(
        read_fastx(path), k,
        batch_records=batch_records, canonical=canonical, progress=progress,
        fast=fast, w=w,
    )


def count_files_streaming(
    paths: list[str | os.PathLike],
    k: int,
    *,
    batch_records: int = 100_000,
    canonical: bool = False,
    progress: Callable[[int, KmerCounts], None] | None = None,
    fast: bool = True,
    w: int | None = None,
) -> KmerCounts:
    """Count several files into one database (multi-lane sequencing runs).

    *progress* reports **global** records-so-far across the whole file
    list — the counter never resets at a file boundary, so a caller
    driving a progress bar sees one monotone stream, not N restarts.
    """

    def chain() -> Iterator[SeqRecord]:
        for path in paths:
            yield from read_fastx(path)

    return count_records_streaming(
        chain(), k,
        batch_records=batch_records, canonical=canonical, progress=progress,
        fast=fast, w=w,
    )
