"""Persistence of counted k-mer databases.

Two formats:

* **binary** (``.npz``) — the native format: the ordered key/count
  arrays compressed with NumPy, plus metadata (k, canonical flag).
  Loads back bit-exact.
* **text** (``.tsv`` / ``.tsv.gz``) — interoperable dump, one
  ``KMER<TAB>count`` row per distinct k-mer (what ``jellyfish dump``
  / ``kmc_tools dump`` produce), for feeding external tools.  Paths
  ending in ``.gz`` are gzip-compressed transparently in both
  directions.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path

import numpy as np

from ..core.result import KmerCounts
from ..seq.kmers import str_to_kmer

__all__ = [
    "save_counts",
    "load_counts",
    "dump_text",
    "load_text",
    "merge_sorted_counts",
]

_FORMAT_VERSION = 1
_REQUIRED_FIELDS = ("version", "k", "canonical", "kmers", "counts")


def _open_text(path: Path, mode: str):
    """Open a text dump, gzip-compressed iff the path ends in .gz."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_counts(path: str | os.PathLike, counts: KmerCounts,
                *, canonical: bool = False) -> None:
    """Write a :class:`KmerCounts` to a compressed ``.npz`` database."""
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        k=np.int64(counts.k),
        canonical=np.bool_(canonical),
        kmers=counts.kmers,
        counts=counts.counts,
    )


def load_counts(
    path: str | os.PathLike, *, expect_k: int | None = None
) -> tuple[KmerCounts, bool]:
    """Load a database written by :func:`save_counts`.

    Returns ``(counts, canonical_flag)``.  Raises :class:`ValueError`
    if the file is not a count database (missing fields), was written
    by an unknown format version, or — when *expect_k* is given — was
    counted at a different k than the caller expects (mixing k's
    silently corrupts any downstream merge).
    """
    with np.load(Path(path)) as data:
        missing = [f for f in _REQUIRED_FIELDS if f not in data.files]
        if missing:
            raise ValueError(
                f"{path}: not a k-mer count database (missing {', '.join(missing)})"
            )
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported database version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        k = int(data["k"])
        if expect_k is not None and k != expect_k:
            raise ValueError(f"{path}: database has k={k}, expected k={expect_k}")
        kc = KmerCounts(k, data["kmers"], data["counts"])
        return kc, bool(data["canonical"])


def merge_sorted_counts(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two *sorted* ``(keys, counts)`` arrays, summing duplicates.

    Both key arrays must be strictly increasing (the invariant of
    :class:`~repro.core.result.KmerCounts` and of every on-disk run).
    Unlike :func:`repro.sort.accumulate.accumulate_weighted` this does
    not re-sort from scratch: the interleaving positions come from two
    ``np.searchsorted`` passes (O((m+n)·log) with tiny constants), so
    repeated merging — streaming counting, memtable updates, LSM
    compaction — stays cheap as the accumulated side grows.
    """
    a = np.ascontiguousarray(keys_a, dtype=np.uint64)
    va = np.ascontiguousarray(vals_a, dtype=np.int64)
    b = np.ascontiguousarray(keys_b, dtype=np.uint64)
    vb = np.ascontiguousarray(vals_b, dtype=np.int64)
    if a.shape != va.shape or b.shape != vb.shape or a.ndim != 1 or b.ndim != 1:
        raise ValueError("keys and counts must be aligned 1-D arrays")
    if a.size == 0:
        return b.copy(), vb.copy()
    if b.size == 0:
        return a.copy(), va.copy()
    if (a.size > 1 and (a[:-1] >= a[1:]).any()) or (
        b.size > 1 and (b[:-1] >= b[1:]).any()
    ):
        raise ValueError("merge_sorted_counts requires strictly increasing keys")
    # Final position of each element: its own rank plus how many of the
    # other array's keys precede it ('left' vs 'right' breaks the tie so
    # a duplicated key lands in two adjacent slots).
    pos_a = np.arange(a.size, dtype=np.intp) + np.searchsorted(b, a, side="left")
    pos_b = np.arange(b.size, dtype=np.intp) + np.searchsorted(a, b, side="right")
    n = a.size + b.size
    keys = np.empty(n, dtype=np.uint64)
    vals = np.empty(n, dtype=np.int64)
    keys[pos_a] = a
    keys[pos_b] = b
    vals[pos_a] = va
    vals[pos_b] = vb
    # Collapse adjacent duplicates (each key occurs at most twice).
    starts = np.concatenate(([0], np.flatnonzero(keys[1:] != keys[:-1]) + 1))
    return keys[starts].copy(), np.add.reduceat(vals, starts).astype(np.int64)


def _decode_kmer_strings(kmers: np.ndarray, k: int) -> list[str]:
    """Vectorised k-mer -> DNA-string decode for a whole array.

    Extracts every 2-bit code with one shift/mask per position (k
    passes over the array, not one Python loop per k-mer), gathers the
    base letters into an ``(n, k)`` byte matrix and slices row strings
    out of its buffer.
    """
    arr = np.asarray(kmers, dtype=np.uint64)
    shifts = np.arange(2 * (k - 1), -1, -2, dtype=np.uint64)
    codes = (arr[:, None] >> shifts) & np.uint64(3)
    letters = np.frombuffer(b"ACGT", dtype=np.uint8)[codes.astype(np.intp)]
    blob = letters.tobytes()
    return [blob[i : i + k].decode("ascii") for i in range(0, len(blob), k)]


def dump_text(path: str | os.PathLike, counts: KmerCounts) -> int:
    """Dump as ``KMER<TAB>count`` text; returns rows written.

    A ``.gz`` path writes a gzip-compressed dump.
    """
    strs = _decode_kmer_strings(counts.kmers, counts.k)
    with _open_text(Path(path), "w") as fh:
        fh.writelines(
            f"{s}\t{count}\n" for s, count in zip(strs, counts.counts.tolist())
        )
    return len(strs)


def load_text(path: str | os.PathLike, k: int | None = None) -> KmerCounts:
    """Load a ``KMER<TAB>count`` text dump (plain or ``.gz``) back."""
    keys: list[int] = []
    vals: list[int] = []
    inferred_k = k
    with _open_text(Path(path), "r") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                kmer_s, count_s = line.split("\t")
                count = int(count_s)
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: malformed row") from exc
            if inferred_k is None:
                inferred_k = len(kmer_s)
            elif len(kmer_s) != inferred_k:
                raise ValueError(
                    f"{path}:{line_no}: k-mer length {len(kmer_s)} != {inferred_k}"
                )
            keys.append(str_to_kmer(kmer_s))
            vals.append(count)
    if inferred_k is None:
        raise ValueError(f"{path}: empty dump and no k given")
    return KmerCounts.from_pairs(
        inferred_k,
        np.array(keys, dtype=np.uint64),
        np.array(vals, dtype=np.int64),
    )
