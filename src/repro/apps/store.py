"""Persistence of counted k-mer databases.

Two formats:

* **binary** (``.npz``) — the native format: the ordered key/count
  arrays compressed with NumPy, plus metadata (k, canonical flag).
  Loads back bit-exact.
* **text** (``.tsv``) — interoperable dump, one ``KMER<TAB>count`` row
  per distinct k-mer (what ``jellyfish dump`` / ``kmc_tools dump``
  produce), for feeding external tools.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..core.result import KmerCounts
from ..seq.kmers import kmer_to_str, str_to_kmer

__all__ = ["save_counts", "load_counts", "dump_text", "load_text"]

_FORMAT_VERSION = 1


def save_counts(path: str | os.PathLike, counts: KmerCounts,
                *, canonical: bool = False) -> None:
    """Write a :class:`KmerCounts` to a compressed ``.npz`` database."""
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        k=np.int64(counts.k),
        canonical=np.bool_(canonical),
        kmers=counts.kmers,
        counts=counts.counts,
    )


def load_counts(path: str | os.PathLike) -> tuple[KmerCounts, bool]:
    """Load a database written by :func:`save_counts`.

    Returns ``(counts, canonical_flag)``.
    """
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported database version {version}")
        kc = KmerCounts(int(data["k"]), data["kmers"], data["counts"])
        return kc, bool(data["canonical"])


def dump_text(path: str | os.PathLike, counts: KmerCounts) -> int:
    """Dump as ``KMER<TAB>count`` text; returns rows written."""
    n = 0
    with open(Path(path), "w") as fh:
        for kmer, count in zip(counts.kmers.tolist(), counts.counts.tolist()):
            fh.write(f"{kmer_to_str(kmer, counts.k)}\t{count}\n")
            n += 1
    return n


def load_text(path: str | os.PathLike, k: int | None = None) -> KmerCounts:
    """Load a ``KMER<TAB>count`` text dump back into a KmerCounts."""
    keys: list[int] = []
    vals: list[int] = []
    inferred_k = k
    with open(Path(path)) as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                kmer_s, count_s = line.split("\t")
            except ValueError as exc:
                raise ValueError(f"{path}:{line_no}: malformed row") from exc
            if inferred_k is None:
                inferred_k = len(kmer_s)
            elif len(kmer_s) != inferred_k:
                raise ValueError(
                    f"{path}:{line_no}: k-mer length {len(kmer_s)} != {inferred_k}"
                )
            keys.append(str_to_kmer(kmer_s))
            vals.append(int(count_s))
    if inferred_k is None:
        raise ValueError(f"{path}: empty dump and no k given")
    return KmerCounts.from_pairs(
        inferred_k,
        np.array(keys, dtype=np.uint64),
        np.array(vals, dtype=np.int64),
    )
