"""Set operations on counted k-mer databases (kmc_tools-style).

KMC3 ships a companion (`kmc_tools`) whose *simple* operations —
intersect, union, subtract, counters compared — are the workhorse of
comparative genomics (e.g. shared k-mers between two strains, or
sample-specific k-mers for variant discovery).  These are the same
operations on :class:`~repro.core.result.KmerCounts`, vectorised over
the ordered key arrays.
"""

from __future__ import annotations

import numpy as np

from ..core.result import KmerCounts

__all__ = [
    "intersect",
    "union",
    "subtract",
    "symmetric_difference",
    "jaccard",
    "containment",
]


def _check_compatible(a: KmerCounts, b: KmerCounts) -> None:
    if a.k != b.k:
        raise ValueError(f"k mismatch: {a.k} vs {b.k}")


def _membership(a: KmerCounts, b: KmerCounts) -> np.ndarray:
    """Boolean mask over a.kmers: present in b (both are sorted)."""
    idx = np.searchsorted(b.kmers, a.kmers)
    idx_clamped = np.minimum(idx, max(0, b.n_distinct - 1))
    if b.n_distinct == 0:
        return np.zeros(a.n_distinct, dtype=bool)
    return b.kmers[idx_clamped] == a.kmers


def intersect(a: KmerCounts, b: KmerCounts, *, mode: str = "min") -> KmerCounts:
    """k-mers present in both; counts combined by *mode*.

    ``mode``: ``"min"`` (kmc_tools default), ``"max"``, ``"sum"``,
    ``"left"`` (keep a's counts).
    """
    _check_compatible(a, b)
    in_b = _membership(a, b)
    keys = a.kmers[in_b]
    ca = a.counts[in_b]
    idx = np.searchsorted(b.kmers, keys)
    cb = b.counts[idx]
    if mode == "min":
        counts = np.minimum(ca, cb)
    elif mode == "max":
        counts = np.maximum(ca, cb)
    elif mode == "sum":
        counts = ca + cb
    elif mode == "left":
        counts = ca
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return KmerCounts(a.k, keys, counts)


def union(a: KmerCounts, b: KmerCounts) -> KmerCounts:
    """All k-mers of either input; counts summed (kmc_tools 'union')."""
    _check_compatible(a, b)
    keys = np.concatenate((a.kmers, b.kmers))
    vals = np.concatenate((a.counts, b.counts))
    return KmerCounts.from_pairs(a.k, keys, vals)


def subtract(a: KmerCounts, b: KmerCounts, *, counted: bool = False) -> KmerCounts:
    """k-mers of *a* not in *b* (``counted=False``), or counts of *a*
    minus counts of *b*, dropping non-positive results
    (``counted=True`` — kmc_tools 'counters_subtract')."""
    _check_compatible(a, b)
    if not counted:
        keep = ~_membership(a, b)
        return KmerCounts(a.k, a.kmers[keep], a.counts[keep])
    in_b = _membership(a, b)
    counts = a.counts.copy()
    idx = np.searchsorted(b.kmers, a.kmers[in_b])
    counts[in_b] = counts[in_b] - b.counts[idx]
    keep = counts > 0
    return KmerCounts(a.k, a.kmers[keep], counts[keep])


def symmetric_difference(a: KmerCounts, b: KmerCounts) -> KmerCounts:
    """k-mers in exactly one of the inputs, with their counts."""
    _check_compatible(a, b)
    only_a = ~_membership(a, b)
    only_b = ~_membership(b, a)
    keys = np.concatenate((a.kmers[only_a], b.kmers[only_b]))
    vals = np.concatenate((a.counts[only_a], b.counts[only_b]))
    order = np.argsort(keys)
    return KmerCounts(a.k, keys[order], vals[order])


def jaccard(a: KmerCounts, b: KmerCounts) -> float:
    """Jaccard similarity of the distinct k-mer sets (Mash-style)."""
    _check_compatible(a, b)
    inter = int(_membership(a, b).sum())
    uni = a.n_distinct + b.n_distinct - inter
    return inter / uni if uni else 1.0


def containment(a: KmerCounts, b: KmerCounts) -> float:
    """Fraction of a's distinct k-mers present in b."""
    _check_compatible(a, b)
    if a.n_distinct == 0:
        return 1.0
    return float(_membership(a, b).mean())
