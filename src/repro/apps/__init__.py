"""Downstream applications of k-mer counting.

The consumers the paper's introduction motivates: spectrum analysis
and genome profiling (:mod:`repro.apps.spectrum`), comparative set
operations (:mod:`repro.apps.setops`) and database persistence
(:mod:`repro.apps.store`).
"""

from .assembly import (
    AssemblyStats,
    DeBruijnGraph,
    Unitig,
    assemble_unitigs,
    assembly_stats,
    genome_recovery,
)
from .kselect import KCandidate, choose_k, evaluate_k
from .setops import containment, intersect, jaccard, subtract, symmetric_difference, union
from .spectrum import (
    SpectrumFeatures,
    estimate_error_rate,
    estimate_genome_size,
    solid_threshold,
    spectrum_features,
)
from .store import dump_text, load_counts, load_text, save_counts
from .streaming import count_file_streaming, count_files_streaming, count_records_streaming

__all__ = [
    "spectrum_features",
    "SpectrumFeatures",
    "solid_threshold",
    "estimate_genome_size",
    "estimate_error_rate",
    "intersect",
    "union",
    "subtract",
    "symmetric_difference",
    "jaccard",
    "containment",
    "save_counts",
    "load_counts",
    "dump_text",
    "load_text",
    "DeBruijnGraph",
    "Unitig",
    "assemble_unitigs",
    "AssemblyStats",
    "assembly_stats",
    "genome_recovery",
    "count_file_streaming",
    "count_files_streaming",
    "count_records_streaming",
    "KCandidate",
    "choose_k",
    "evaluate_k",
]
