"""Public high-level API: one call to count k-mers with any algorithm.

:func:`count_kmers` is the front door a downstream user (or the
examples and benchmarks) should use: it normalises the input (strings,
encoded arrays, FASTA/FASTQ paths, :class:`~repro.seq.datasets.Workload`
objects), builds the simulated machine, dispatches to the requested
algorithm and returns the counts plus the run's measurements.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .baselines.hysortk import hysortk_count
from .baselines.kmc3 import Kmc3Config, kmc3_count
from .baselines.pakman import pakman_count, pakman_star_count
from .core.bsp import BspConfig, bsp_count
from .core.dakc import DakcConfig, dakc_count
from .core.minipart import minimizer_partitioned_count
from .core.sortedset import dakc_overlap_count
from .core.l2l3 import AggregationConfig
from .core.result import KmerCounts
from .core.serial import serial_count
from .runtime.cost import CostModel
from .runtime.machine import MachineConfig, laptop, phoenix_amd, phoenix_intel
from .runtime.stats import RunStats
from .seq.datasets import Workload
from .seq.encoding import encode_seq
from .seq.fastx import read_fastx

__all__ = ["CountRun", "count_kmers", "ALGORITHMS", "resolve_machine", "load_reads"]

#: Algorithms accepted by :func:`count_kmers`.  The paper's five
#: (serial, dakc, pakman, pakman*, hysortk) plus the generic BSP
#: engine, the KMC3 shared-memory baseline, and the extensions:
#: ``dakc-overlap`` (barrier-free sorted-set variant, 2 global syncs),
#: ``minimizer`` (kmerind-style super-k-mer partitioning on the
#: simulated machine), and ``fast`` (the real vectorised super-k-mer
#: pipeline — no simulation, just the quickest way to actual counts).
ALGORITHMS = (
    "serial",
    "fast",
    "dakc",
    "dakc-overlap",
    "minimizer",
    "bsp",
    "pakman",
    "pakman*",
    "hysortk",
    "kmc3",
)

_MACHINE_PRESETS = {
    "phoenix-intel": phoenix_intel,
    "phoenix-amd": phoenix_amd,
    "laptop": laptop,
}


@dataclass(frozen=True)
class CountRun:
    """Outcome of one counting run: the result and its measurements."""

    counts: KmerCounts
    stats: RunStats
    algorithm: str

    @property
    def sim_time(self) -> float:
        return self.stats.sim_time


def resolve_machine(
    machine: MachineConfig | str | None, nodes: int | None = None
) -> MachineConfig:
    """Build a machine from a config, preset name, or the default.

    ``machine`` may be a :class:`MachineConfig`, one of the preset
    names (``phoenix-intel``, ``phoenix-amd``, ``laptop``) or None
    (Phoenix Intel, the paper's Table IV machine).
    """
    if machine is None:
        m = phoenix_intel(nodes or 1)
    elif isinstance(machine, str):
        try:
            factory = _MACHINE_PRESETS[machine]
        except KeyError:
            known = ", ".join(sorted(_MACHINE_PRESETS))
            raise KeyError(f"unknown machine preset {machine!r}; known: {known}") from None
        m = factory(nodes or 1)
    else:
        m = machine if nodes is None else machine.with_nodes(nodes)
    return m


def load_reads(source) -> np.ndarray | list[np.ndarray]:
    """Normalise any supported read source to encoded arrays.

    Accepts: a 2-D ``uint8`` code matrix, a list of code arrays, a
    list of DNA strings, a :class:`Workload`, or a FASTA/FASTQ path.
    """
    if isinstance(source, Workload):
        return source.reads
    if isinstance(source, np.ndarray):
        if source.ndim != 2:
            raise ValueError("read array must be 2-D (rows = reads)")
        return source
    if isinstance(source, (str, os.PathLike)):
        if not Path(source).exists():
            raise FileNotFoundError(f"no such read file: {source}")
        return [encode_seq(rec.seq, validate=False) for rec in read_fastx(source)]
    if isinstance(source, (list, tuple)):
        out: list[np.ndarray] = []
        for r in source:
            if isinstance(r, str):
                out.append(encode_seq(r, validate=False))
            else:
                out.append(np.asarray(r, dtype=np.uint8))
        # Equal-length reads pack into a matrix for the fast extractors.
        if out and all(r.size == out[0].size for r in out):
            return np.vstack(out) if out[0].size else out
        return out
    raise TypeError(f"unsupported read source: {type(source).__name__}")


def count_kmers(
    reads,
    k: int,
    *,
    algorithm: str = "dakc",
    machine: MachineConfig | str | None = None,
    nodes: int | None = None,
    pe_granularity: str = "node",
    canonical: bool = False,
    batch_size: int | None = None,
    protocol: str = "1D",
    agg: AggregationConfig | None = None,
    mode: str = "fast",
) -> CountRun:
    """Count k-mers of length *k* in *reads*.

    Parameters
    ----------
    reads:
        Any source accepted by :func:`load_reads`.
    k:
        k-mer length, 1..32.
    algorithm:
        One of :data:`ALGORITHMS`.  ``"bsp"`` is the generic Algorithm 2
        engine; ``"pakman"``/``"pakman*"``/``"hysortk"`` are its
        paper-configured variants; ``"kmc3"`` is the shared-memory
        baseline; ``"serial"`` runs Algorithm 1 without the machine.
    machine, nodes:
        Simulated cluster (default: Phoenix Intel, Table IV).
    pe_granularity:
        ``"node"`` (one simulated PE per node — use for large node
        sweeps), ``"socket"``, or ``"core"`` (one PE per core — the
        paper's SHMEM deployment; keeps single-node runs faithful).
    canonical:
        Count canonical (strand-folded) k-mers.
    batch_size:
        BSP batch ``b`` (ignored by dakc/serial/kmc3).
    protocol, agg, mode:
        DAKC knobs (Conveyors topology, aggregation config, exact or
        vectorised execution).

    Returns
    -------
    CountRun
        Counts plus run statistics; ``stats.sim_time`` is the modelled
        kernel time on the simulated machine.
    """
    algorithm = algorithm.lower()
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}")

    if algorithm == "fast":
        from .apps.streaming import count_file_streaming
        from .seq.superkmers import count_superkmer_batch, split_superkmers_batch

        if isinstance(reads, (str, os.PathLike)):
            if not Path(reads).exists():
                raise FileNotFoundError(f"no such read file: {reads}")
            counts = count_file_streaming(reads, k, canonical=canonical)
        else:
            data = load_reads(reads)
            batch = split_superkmers_batch(data, k, min(k, 7))
            keys, vals = count_superkmer_batch(batch, canonical=canonical)
            counts = KmerCounts(k, keys, vals)
        return CountRun(counts, RunStats(n_pes=1), algorithm)

    data = load_reads(reads)
    m = resolve_machine(machine, nodes)

    if algorithm == "serial":
        counts = serial_count(data, k, canonical=canonical)
        stats = RunStats(n_pes=1)
        return CountRun(counts, stats, algorithm)

    if algorithm == "kmc3":
        counts, stats = kmc3_count(data, k, m, Kmc3Config(canonical=canonical))
        return CountRun(counts, stats, algorithm)

    cores_per_pe = {
        "node": m.cores_per_node,
        "socket": m.cores_per_socket,
        "core": 1,
    }.get(pe_granularity)
    if cores_per_pe is None:
        raise ValueError("pe_granularity must be 'node', 'socket' or 'core'")
    cost = CostModel(m, cores_per_pe=cores_per_pe)

    if algorithm in ("dakc", "dakc-overlap"):
        cfg = DakcConfig(
            protocol=protocol,
            agg=agg or AggregationConfig(),
            mode=mode,
            canonical=canonical,
        )
        if algorithm == "dakc-overlap":
            counts, stats = dakc_overlap_count(data, k, cost, cfg)
        else:
            counts, stats = dakc_count(data, k, cost, cfg)
    elif algorithm == "minimizer":
        counts, stats = minimizer_partitioned_count(data, k, cost,
                                                    canonical=canonical)
    elif algorithm == "bsp":
        counts, stats = bsp_count(
            data, k, cost, BspConfig(batch_size=batch_size, canonical=canonical)
        )
    elif algorithm in ("pakman", "pakman*"):
        if pe_granularity == "node":
            # PakMan is MPI-only: its faithful deployment is one rank
            # per core, which is exactly what the hybrid baselines and
            # DAKC's runtime avoid paying for.
            cost = CostModel(m, cores_per_pe=1)
        fn = pakman_count if algorithm == "pakman" else pakman_star_count
        counts, stats = fn(data, k, cost, batch_size=batch_size, canonical=canonical)
    else:  # hysortk
        if pe_granularity == "node":
            # HySortK's recommended deployment is one rank per socket;
            # the OpenMP team inside each rank pays thread-scaling loss.
            cost = CostModel(m, cores_per_pe=m.cores_per_socket, threaded=True)
        elif cost.cores_per_pe > 1:
            cost = CostModel(m, cores_per_pe=cost.cores_per_pe, threaded=True)
        counts, stats = hysortk_count(
            data, k, cost, batch_size=batch_size, canonical=canonical
        )
    return CountRun(counts, stats, algorithm)
