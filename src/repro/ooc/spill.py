"""Pass 1 of out-of-core counting: spill super-k-mers to disk bins.

KMC 2's first pass, under a hard memory ceiling: reads stream through
the :mod:`repro.seq` minimizer splitter, each super-k-mer is routed to
the bin its minimizer hashes to (the same splitmix64 owner hash that
shards everything else in this codebase), and bins buffer in memory
until the ceiling is hit — then whole bins flush to disk as one
checksummed chunk each.  Which bins flush, and in what order, is a
pluggable policy: the default is largest-first (fewest, biggest
chunks), and :mod:`repro.dst` injects seeded shuffles through the same
hook to fuzz spill interleavings.

Binning by *minimizer* rather than by k-mer keeps the ``k - w``
overlapping k-mers of a super-k-mer together in one bin, which is what
makes pass 2 embarrassingly parallel: each bin holds a closed multiset
of k-mer occurrences (one occurrence lands in exactly one bin), so
bins count independently and their results concatenate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.owner import owner_pe
from ..seq.minimizers import split_superkmers
from .format import BinHeader, append_chunk, pack_superkmers, write_bin_header

__all__ = ["OocStats", "BinWriter", "largest_first", "seeded_order"]

# Buffered-memory estimate per pending super-k-mer: its unpacked codes
# (1 byte/base) plus list/length bookkeeping.
_RECORD_OVERHEAD = 8

FlushOrder = Callable[[Sequence[tuple[int, int]]], list[int]]
"""Flush policy: ``[(bin_id, pending_bytes), ...]`` -> bin ids, flush order."""


def largest_first(pending: Sequence[tuple[int, int]]) -> list[int]:
    """Default policy: flush the fattest bins first (fewest, biggest chunks)."""
    return [b for b, _n in sorted(pending, key=lambda t: (-t[1], t[0]))]


def seeded_order(seed: int) -> FlushOrder:
    """A deterministic shuffled policy (the DST spill-interleaving hook)."""

    def order(pending: Sequence[tuple[int, int]]) -> list[int]:
        bins = sorted(b for b, _n in pending)
        rng = np.random.default_rng(seed)
        rng.shuffle(bins)
        return bins

    return order


@dataclass(slots=True)
class OocStats:
    """Measured quantities of one out-of-core count (both passes)."""

    n_reads: int = 0
    n_superkmers: int = 0
    n_kmers: int = 0
    n_bins_used: int = 0
    n_flushes: int = 0            # bin-flush events == chunks written
    n_ceiling_hits: int = 0       # times the ceiling forced a flush wave
    bytes_spilled: int = 0        # pass 1: written to bin files
    bytes_reread: int = 0         # pass 2: read back from bin files
    peak_buffered_bytes: int = 0  # high-water mark of pass-1 buffering

    def to_doc(self) -> dict:
        return {f: int(getattr(self, f)) for f in (
            "n_reads", "n_superkmers", "n_kmers", "n_bins_used",
            "n_flushes", "n_ceiling_hits", "bytes_spilled",
            "bytes_reread", "peak_buffered_bytes")}


class BinWriter:
    """Bounded-memory writer of minimizer-partitioned spill bins.

    Buffers super-k-mers per bin; when total buffered bytes exceed
    *ceiling_bytes*, flushes whole bins (in *flush_order*) until
    buffering drops to half the ceiling — hysteresis, so a flush wave
    produces few large chunks instead of thrashing one record at a
    time.  Bin files live in *directory* as ``bin-NNNNN.skb`` and
    accumulate one chunk per flush.
    """

    def __init__(self, directory: str | os.PathLike, k: int, w: int,
                 n_bins: int, *, ceiling_bytes: int,
                 flush_order: FlushOrder | None = None,
                 stats: OocStats | None = None):
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if ceiling_bytes < 1:
            raise ValueError("ceiling_bytes must be >= 1")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.k = k
        self.w = w
        self.n_bins = n_bins
        self.ceiling_bytes = ceiling_bytes
        self.flush_order = flush_order or largest_first
        self.stats = stats if stats is not None else OocStats()
        self._pending: dict[int, list[np.ndarray]] = {}
        self._pending_bytes: dict[int, int] = {}
        self._buffered = 0
        self._headers_written: set[int] = set()
        self._closed = False

    # -- pass-1 ingestion ----------------------------------------------

    def add_read(self, codes: np.ndarray) -> int:
        """Split one encoded read and buffer its super-k-mers.

        Returns the number of k-mers the read contributed.  May trigger
        a flush wave if the memory ceiling is crossed.
        """
        if self._closed:
            raise ValueError("BinWriter is closed")
        codes = np.asarray(codes, dtype=np.uint8)
        sks = split_superkmers(codes, self.k, self.w)
        self.stats.n_reads += 1
        if not sks:
            return 0
        mins = np.array([sk.minimizer for sk in sks], dtype=np.uint64)
        bins = owner_pe(mins, self.n_bins)
        n_kmers = 0
        for sk, b in zip(sks, bins):
            b = int(b)
            sub = codes[sk.start:sk.start + sk.n_bases].copy()
            self._pending.setdefault(b, []).append(sub)
            nbytes = sub.size + _RECORD_OVERHEAD
            self._pending_bytes[b] = self._pending_bytes.get(b, 0) + nbytes
            self._buffered += nbytes
            n_kmers += sk.n_kmers(self.k)
        self.stats.n_superkmers += len(sks)
        self.stats.n_kmers += n_kmers
        if self._buffered > self.stats.peak_buffered_bytes:
            self.stats.peak_buffered_bytes = self._buffered
        if self._buffered > self.ceiling_bytes:
            self._flush_wave()
        return n_kmers

    def add_reads(self, reads: np.ndarray | list) -> int:
        """Buffer a batch of reads (rows of a matrix or a list of arrays)."""
        rows = list(reads) if isinstance(reads, np.ndarray) else reads
        return sum(self.add_read(row) for row in rows)

    # -- flushing ------------------------------------------------------

    def bin_path(self, bin_id: int) -> Path:
        return self.dir / f"bin-{bin_id:05d}.skb"

    def _flush_bin(self, bin_id: int) -> int:
        """Write one bin's pending super-k-mers as a chunk; returns bytes."""
        sks = self._pending.pop(bin_id, [])
        if not sks:
            return 0
        lengths, blob = pack_superkmers(sks)
        path = self.bin_path(bin_id)
        written = 0
        if bin_id not in self._headers_written:
            with open(path, "wb") as fh:
                written += write_bin_header(
                    fh, BinHeader(k=self.k, w=self.w, bin_id=bin_id))
                written += append_chunk(fh, lengths, blob)
            self._headers_written.add(bin_id)
        else:
            with open(path, "ab") as fh:
                written += append_chunk(fh, lengths, blob)
        self._buffered -= self._pending_bytes.pop(bin_id, 0)
        self.stats.n_flushes += 1
        self.stats.bytes_spilled += written
        return written

    def _flush_wave(self) -> None:
        """Flush whole bins until buffering drops below half the ceiling."""
        self.stats.n_ceiling_hits += 1
        order = self.flush_order(
            [(b, n) for b, n in sorted(self._pending_bytes.items())])
        target = self.ceiling_bytes // 2
        for b in order:
            if self._buffered <= target:
                break
            self._flush_bin(b)

    def close(self) -> list[Path]:
        """Flush everything; returns the paths of all non-empty bins."""
        if not self._closed:
            for b in self.flush_order(
                    [(b, n) for b, n in sorted(self._pending_bytes.items())]):
                self._flush_bin(b)
            self._closed = True
        self.stats.n_bins_used = len(self._headers_written)
        return [self.bin_path(b) for b in sorted(self._headers_written)]

    def __enter__(self) -> "BinWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
