"""Pass 1 of out-of-core counting: spill super-k-mers to disk bins.

KMC 2's first pass, under a hard memory ceiling: reads stream through
the :mod:`repro.seq` minimizer splitter, each super-k-mer is routed to
the bin its minimizer hashes to (the same splitmix64 owner hash that
shards everything else in this codebase), and bins buffer in memory
until the ceiling is hit — then whole bins flush to disk as one
checksummed chunk each.  Which bins flush, and in what order, is a
pluggable policy: the default is largest-first (fewest, biggest
chunks), and :mod:`repro.dst` injects seeded shuffles through the same
hook to fuzz spill interleavings.

Binning by *minimizer* rather than by k-mer keeps the ``k - w``
overlapping k-mers of a super-k-mer together in one bin, which is what
makes pass 2 embarrassingly parallel: each bin holds a closed multiset
of k-mer occurrences (one occurrence lands in exactly one bin), so
bins count independently and their results concatenate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..seq.superkmers import (
    pack_spans,
    partition_superkmers,
    split_superkmers_batch,
)
from .format import BinHeader, append_chunk, write_bin_header

__all__ = ["OocStats", "BinWriter", "largest_first", "seeded_order"]

# Buffered-memory estimate per pending super-k-mer: its unpacked codes
# (1 byte/base) plus list/length bookkeeping.
_RECORD_OVERHEAD = 8

FlushOrder = Callable[[Sequence[tuple[int, int]]], list[int]]
"""Flush policy: ``[(bin_id, pending_bytes), ...]`` -> bin ids, flush order."""


def largest_first(pending: Sequence[tuple[int, int]]) -> list[int]:
    """Default policy: flush the fattest bins first (fewest, biggest chunks)."""
    return [b for b, _n in sorted(pending, key=lambda t: (-t[1], t[0]))]


def seeded_order(seed: int) -> FlushOrder:
    """A deterministic shuffled policy (the DST spill-interleaving hook)."""

    def order(pending: Sequence[tuple[int, int]]) -> list[int]:
        bins = sorted(b for b, _n in pending)
        rng = np.random.default_rng(seed)
        rng.shuffle(bins)
        return bins

    return order


@dataclass(slots=True)
class OocStats:
    """Measured quantities of one out-of-core count (both passes)."""

    n_reads: int = 0
    n_superkmers: int = 0
    n_kmers: int = 0
    n_bins_used: int = 0
    n_flushes: int = 0            # bin-flush events == chunks written
    n_ceiling_hits: int = 0       # times the ceiling forced a flush wave
    bytes_spilled: int = 0        # pass 1: written to bin files
    bytes_reread: int = 0         # pass 2: read back from bin files
    peak_buffered_bytes: int = 0  # high-water mark of pass-1 buffering

    def to_doc(self) -> dict:
        return {f: int(getattr(self, f)) for f in (
            "n_reads", "n_superkmers", "n_kmers", "n_bins_used",
            "n_flushes", "n_ceiling_hits", "bytes_spilled",
            "bytes_reread", "peak_buffered_bytes")}


class BinWriter:
    """Bounded-memory writer of minimizer-partitioned spill bins.

    Buffers super-k-mers per bin; when total buffered bytes exceed
    *ceiling_bytes*, flushes whole bins (in *flush_order*) until
    buffering drops to half the ceiling — hysteresis, so a flush wave
    produces few large chunks instead of thrashing one record at a
    time.  Bin files live in *directory* as ``bin-NNNNN.skb`` and
    accumulate one chunk per flush.
    """

    def __init__(self, directory: str | os.PathLike, k: int, w: int,
                 n_bins: int, *, ceiling_bytes: int,
                 flush_order: FlushOrder | None = None,
                 stats: OocStats | None = None):
        if n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if ceiling_bytes < 1:
            raise ValueError("ceiling_bytes must be >= 1")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.k = k
        self.w = w
        self.n_bins = n_bins
        self.ceiling_bytes = ceiling_bytes
        self.flush_order = flush_order or largest_first
        self.stats = stats if stats is not None else OocStats()
        # Per bin: list of (flat codes, per-record lengths) batches.
        self._pending: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._pending_bytes: dict[int, int] = {}
        self._buffered = 0
        self._headers_written: set[int] = set()
        self._closed = False

    # -- pass-1 ingestion ----------------------------------------------

    def add_read(self, codes: np.ndarray) -> int:
        """Split one encoded read and buffer its super-k-mers.

        Returns the number of k-mers the read contributed.  May trigger
        a flush wave if the memory ceiling is crossed.
        """
        return self.add_reads([np.asarray(codes, dtype=np.uint8)])

    def add_reads(self, reads: np.ndarray | list) -> int:
        """Buffer a batch of reads (rows of a matrix or a list of arrays).

        Reads are split by the vectorised batch kernel
        (:func:`repro.seq.superkmers.split_superkmers_batch`) in
        sub-batches small enough that the memory ceiling keeps its
        per-read granularity: each sub-batch is bounded by half the
        ceiling in bases, so flush waves fire at the same points a
        one-read-at-a-time writer would hit.
        """
        if self._closed:
            raise ValueError("BinWriter is closed")
        rows = (list(reads) if isinstance(reads, np.ndarray)
                else [np.asarray(r, dtype=np.uint8) for r in reads])
        budget = max(1, self.ceiling_bytes // 2)
        n_kmers = 0
        start = 0
        while start < len(rows):
            end, bases = start, 0
            while end < len(rows) and (
                    end == start or bases + rows[end].size <= budget):
                bases += rows[end].size
                end += 1
            n_kmers += self._add_batch(rows[start:end])
            start = end
        return n_kmers

    def _add_batch(self, rows: list[np.ndarray]) -> int:
        """Split, route, and buffer one bounded sub-batch of reads."""
        batch = split_superkmers_batch(rows, self.k, self.w)
        self.stats.n_reads += len(rows)
        if batch.n_superkmers == 0:
            return 0
        owners, order, boundaries = partition_superkmers(batch, self.n_bins)
        for b in np.unique(owners):
            b = int(b)
            idx = order[boundaries[b]:boundaries[b + 1]]
            flat, lengths = batch.gather_spans(idx)
            self._pending.setdefault(b, []).append((flat, lengths))
            nbytes = int(flat.size) + _RECORD_OVERHEAD * int(lengths.size)
            self._pending_bytes[b] = self._pending_bytes.get(b, 0) + nbytes
            self._buffered += nbytes
        self.stats.n_superkmers += batch.n_superkmers
        n_kmers = batch.n_kmers
        self.stats.n_kmers += n_kmers
        if self._buffered > self.stats.peak_buffered_bytes:
            self.stats.peak_buffered_bytes = self._buffered
        if self._buffered > self.ceiling_bytes:
            self._flush_wave()
        return n_kmers

    # -- flushing ------------------------------------------------------

    def bin_path(self, bin_id: int) -> Path:
        return self.dir / f"bin-{bin_id:05d}.skb"

    def _flush_bin(self, bin_id: int) -> int:
        """Write one bin's pending super-k-mers as a chunk; returns bytes."""
        entries = self._pending.pop(bin_id, [])
        if not entries:
            return 0
        flat = (entries[0][0] if len(entries) == 1
                else np.concatenate([e[0] for e in entries]))
        lens = (entries[0][1] if len(entries) == 1
                else np.concatenate([e[1] for e in entries]))
        starts = np.zeros(lens.size, dtype=np.int64)
        np.cumsum(lens[:-1], out=starts[1:])
        lengths, blob = pack_spans(flat, starts, lens)
        path = self.bin_path(bin_id)
        written = 0
        if bin_id not in self._headers_written:
            with open(path, "wb") as fh:
                written += write_bin_header(
                    fh, BinHeader(k=self.k, w=self.w, bin_id=bin_id))
                written += append_chunk(fh, lengths, blob)
            self._headers_written.add(bin_id)
        else:
            with open(path, "ab") as fh:
                written += append_chunk(fh, lengths, blob)
        self._buffered -= self._pending_bytes.pop(bin_id, 0)
        self.stats.n_flushes += 1
        self.stats.bytes_spilled += written
        return written

    def _flush_wave(self) -> None:
        """Flush whole bins until buffering drops below half the ceiling."""
        self.stats.n_ceiling_hits += 1
        order = self.flush_order(
            [(b, n) for b, n in sorted(self._pending_bytes.items())])
        target = self.ceiling_bytes // 2
        for b in order:
            if self._buffered <= target:
                break
            self._flush_bin(b)

    def close(self) -> list[Path]:
        """Flush everything; returns the paths of all non-empty bins."""
        if not self._closed:
            for b in self.flush_order(
                    [(b, n) for b, n in sorted(self._pending_bytes.items())]):
                self._flush_bin(b)
            self._closed = True
        self.stats.n_bins_used = len(self._headers_written)
        return [self.bin_path(b) for b in sorted(self._headers_written)]

    def __enter__(self) -> "BinWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
