"""The on-disk spill-bin format of out-of-core counting.

A *bin* holds the super-k-mers whose minimizer hashes to one
partition — the unit of independent pass-2 counting (KMC 2's design:
bins are written sequentially in pass 1 and each is small enough to
count in memory).  The format is append-friendly, versioned and
checksummed, because a bin file is written incrementally by a
bounded-memory writer and a crash (or a foreign file) must be detected
on load, never misread:

* a fixed 28-byte **header** — magic, format version, ``k``, ``w``,
  the bin id, and a CRC32 of the preceding fields;
* a sequence of **chunks**, one per spill flush.  Each chunk is a
  16-byte header (super-k-mer count, lengths payload bytes, bases
  payload bytes, CRC32 of both payloads) followed by a ``uint32``
  per-super-k-mer base-length array and the 2-bit-packed bases.

Super-k-mers are packed 4 bases/byte, each record padded to a byte
boundary, so a chunk's wire size is ``16 + 4·n + Σ ceil(len_i / 4)``
bytes — the ``k/4``-ish compression over shipping raw 8-byte k-mers
that makes disk spill cheaper than it looks (the same arithmetic as
:func:`repro.seq.minimizers.superkmer_compression_ratio`).

Loads are defensive, mirroring :class:`repro.trace.format.TraceFormatError`:
any truncation, bad magic, future version, or checksum mismatch raises
:class:`BinFormatError` instead of a bare ``struct``/``zlib`` error or
— worse — silently wrong counts.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np

__all__ = [
    "BIN_MAGIC",
    "BIN_VERSION",
    "BinFormatError",
    "BinHeader",
    "pack_superkmers",
    "unpack_superkmers",
    "superkmer_kmers",
    "write_bin_header",
    "read_bin_header",
    "append_chunk",
    "iter_chunks",
    "read_bin_records",
]

BIN_MAGIC = b"dakcbin\x00"
BIN_VERSION = 1

_HEADER_STRUCT = struct.Struct("<8sIIII")          # magic, version, k, w, bin_id
_HEADER_SIZE = _HEADER_STRUCT.size + 4             # + crc32 of the packed fields
_CHUNK_STRUCT = struct.Struct("<IIII")             # n_sk, lengths_nbytes, bases_nbytes, crc


class BinFormatError(ValueError):
    """The file is not a readable dakc spill bin."""


@dataclass(frozen=True, slots=True)
class BinHeader:
    """Identity of one spill bin file."""

    k: int
    w: int
    bin_id: int


# -- 2-bit packing -----------------------------------------------------


def pack_superkmers(superkmers: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack base-code arrays into ``(lengths, blob)`` wire form.

    Each super-k-mer is packed 4 bases/byte (first base in the high
    bits), padded to a whole byte, so records stay byte-aligned and
    the unpack side can address them independently.  Thin wrapper over
    :func:`repro.seq.superkmers.pack_spans` — the one packing kernel
    shared with the vectorised counting fast path.
    """
    from ..seq.superkmers import pack_spans

    lengths = np.array([sk.size for sk in superkmers], dtype=np.int64)
    if lengths.size == 0:
        return lengths.astype(np.uint32), np.empty(0, dtype=np.uint8)
    if (lengths == 0).any():
        raise ValueError("cannot pack an empty super-k-mer")
    flat = (np.concatenate(superkmers).astype(np.uint8, copy=False)
            if superkmers else np.empty(0, dtype=np.uint8))
    starts = np.zeros(lengths.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    return pack_spans(flat, starts, lengths)


def unpack_superkmers(lengths: np.ndarray, blob: np.ndarray) -> list[np.ndarray]:
    """Inverse of :func:`pack_superkmers` (list of base-code arrays)."""
    lengths = np.asarray(lengths, dtype=np.uint32)
    blob = np.asarray(blob, dtype=np.uint8)
    codes = _blob_codes(lengths, blob)
    byte_offsets = _byte_offsets(lengths)
    return [
        codes[int(byte_offsets[i]) * 4:int(byte_offsets[i]) * 4 + int(n)]
        for i, n in enumerate(lengths)
    ]


def _byte_offsets(lengths: np.ndarray) -> np.ndarray:
    padded_bytes = -(-lengths.astype(np.int64) // 4)
    return np.concatenate(([0], np.cumsum(padded_bytes)))


def _blob_codes(lengths: np.ndarray, blob: np.ndarray) -> np.ndarray:
    """All 2-bit codes of a packed blob (including pad positions)."""
    expected = int(_byte_offsets(lengths)[-1])
    if blob.size != expected:
        raise BinFormatError(
            f"packed payload holds {blob.size} bytes, lengths require {expected}")
    codes = np.empty(blob.size * 4, dtype=np.uint8)
    codes[0::4] = (blob >> 6) & 0x3
    codes[1::4] = (blob >> 4) & 0x3
    codes[2::4] = (blob >> 2) & 0x3
    codes[3::4] = blob & 0x3
    return codes


def superkmer_kmers(lengths: np.ndarray, blob: np.ndarray, k: int) -> np.ndarray:
    """All packed k-mers of a chunk, without materialising records.

    The counting kernel of pass 2: every super-k-mer of ``n`` bases
    contributes ``n - k + 1`` k-mers.  One gather per window offset —
    ``k`` vectorised passes over the whole chunk, zero per-record
    Python.
    """
    lengths = np.asarray(lengths, dtype=np.uint32)
    blob = np.asarray(blob, dtype=np.uint8)
    if lengths.size == 0:
        return np.empty(0, dtype=np.uint64)
    if int(lengths.min()) < k:
        raise BinFormatError(
            f"super-k-mer of {int(lengths.min())} bases cannot hold a {k}-mer")
    codes = _blob_codes(lengths, blob)
    n_kmers = lengths.astype(np.int64) - k + 1
    base_starts = _byte_offsets(lengths)[:-1] * 4
    # Start position (in `codes`) of every k-mer window.
    within = np.arange(int(n_kmers.sum()), dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(n_kmers)))[:-1], n_kmers
    )
    starts = np.repeat(base_starts, n_kmers) + within
    kmers = np.zeros(starts.size, dtype=np.uint64)
    for j in range(k):
        np.left_shift(kmers, np.uint64(2), out=kmers)
        np.bitwise_or(kmers, codes[starts + j].astype(np.uint64), out=kmers)
    return kmers


# -- header ------------------------------------------------------------


def write_bin_header(fh: BinaryIO, header: BinHeader) -> int:
    """Write the fixed bin header; returns bytes written."""
    fields = _HEADER_STRUCT.pack(BIN_MAGIC, BIN_VERSION, header.k,
                                 header.w, header.bin_id)
    fh.write(fields)
    fh.write(struct.pack("<I", zlib.crc32(fields)))
    return _HEADER_SIZE


def read_bin_header(fh: BinaryIO, path: str | os.PathLike = "<bin>") -> BinHeader:
    """Read and validate the fixed header (defensive)."""
    blob = fh.read(_HEADER_SIZE)
    if len(blob) < _HEADER_SIZE:
        raise BinFormatError(f"{path}: truncated bin header "
                             f"({len(blob)} of {_HEADER_SIZE} bytes)")
    fields, (crc,) = blob[:_HEADER_STRUCT.size], struct.unpack("<I", blob[_HEADER_STRUCT.size:])
    magic, version, k, w, bin_id = _HEADER_STRUCT.unpack(fields)
    if magic != BIN_MAGIC:
        raise BinFormatError(f"{path}: bad magic {magic!r} (not a dakc spill bin)")
    if zlib.crc32(fields) != crc:
        raise BinFormatError(f"{path}: bin header checksum mismatch")
    if version != BIN_VERSION:
        raise BinFormatError(
            f"{path}: bin format version {version} "
            f"(this build reads version {BIN_VERSION})")
    return BinHeader(k=int(k), w=int(w), bin_id=int(bin_id))


# -- chunks ------------------------------------------------------------


def append_chunk(fh: BinaryIO, lengths: np.ndarray, blob: np.ndarray) -> int:
    """Append one checksummed chunk; returns bytes written."""
    lengths = np.ascontiguousarray(lengths, dtype=np.uint32)
    blob = np.ascontiguousarray(blob, dtype=np.uint8)
    lb, bb = lengths.tobytes(), blob.tobytes()
    crc = zlib.crc32(bb, zlib.crc32(lb))
    fh.write(_CHUNK_STRUCT.pack(lengths.size, len(lb), len(bb), crc))
    fh.write(lb)
    fh.write(bb)
    return _CHUNK_STRUCT.size + len(lb) + len(bb)


def iter_chunks(fh: BinaryIO, path: str | os.PathLike = "<bin>"
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(lengths, blob)`` per chunk, validating as it goes.

    Raises :class:`BinFormatError` on a torn tail (partial chunk
    header or payload — the signature of a crash mid-flush) or a
    checksum mismatch (bit rot, concurrent writers).
    """
    while True:
        head = fh.read(_CHUNK_STRUCT.size)
        if not head:
            return
        if len(head) < _CHUNK_STRUCT.size:
            raise BinFormatError(f"{path}: truncated chunk header "
                                 f"({len(head)} of {_CHUNK_STRUCT.size} bytes)")
        n_sk, lengths_nbytes, bases_nbytes, crc = _CHUNK_STRUCT.unpack(head)
        if lengths_nbytes != 4 * n_sk:
            raise BinFormatError(
                f"{path}: chunk declares {n_sk} super-k-mers but "
                f"{lengths_nbytes} length bytes")
        payload = fh.read(lengths_nbytes + bases_nbytes)
        if len(payload) < lengths_nbytes + bases_nbytes:
            raise BinFormatError(
                f"{path}: truncated chunk payload "
                f"({len(payload)} of {lengths_nbytes + bases_nbytes} bytes)")
        if zlib.crc32(payload) != crc:
            raise BinFormatError(f"{path}: chunk checksum mismatch")
        lengths = np.frombuffer(payload[:lengths_nbytes], dtype=np.uint32)
        blob = np.frombuffer(payload[lengths_nbytes:], dtype=np.uint8)
        if blob.size != int(_byte_offsets(lengths)[-1]):
            raise BinFormatError(
                f"{path}: chunk payload size disagrees with its lengths")
        yield lengths, blob


def read_bin_records(path: str | os.PathLike,
                     ) -> tuple[BinHeader, Iterator[tuple[np.ndarray, np.ndarray]]]:
    """Open a bin file: validated header plus a chunk iterator.

    The iterator owns the file handle and closes it on exhaustion (or
    on the error it raises).
    """
    path = Path(path)
    fh = open(path, "rb")
    try:
        header = read_bin_header(fh, path)
    except Exception:
        fh.close()
        raise

    def _chunks() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        try:
            yield from iter_chunks(fh, path)
        finally:
            fh.close()

    return header, _chunks()
