"""Out-of-core k-mer counting: disk spill bins fused with the LSM.

KMC 2's two-pass design under a hard memory ceiling:

* **pass 1** (:mod:`.spill`) streams reads through the
  :mod:`repro.seq` minimizer splitter into minimizer-partitioned spill
  bins on disk, flushing whole bins whenever buffering crosses the
  ceiling;
* **pass 2** (:mod:`.count`) counts each bin independently with the
  :mod:`repro.sort` kernels and optionally bulk-loads results into a
  :class:`repro.lsm.LsmStore` as it goes.

The bin file format (:mod:`.format`) is versioned, checksummed and
defensively loaded, mirroring :mod:`repro.trace.format`.
"""

from .count import count_bin, ooc_count
from .format import (
    BIN_MAGIC,
    BIN_VERSION,
    BinFormatError,
    BinHeader,
    pack_superkmers,
    read_bin_records,
    superkmer_kmers,
    unpack_superkmers,
)
from .spill import BinWriter, OocStats, largest_first, seeded_order

__all__ = [
    "BIN_MAGIC",
    "BIN_VERSION",
    "BinFormatError",
    "BinHeader",
    "BinWriter",
    "OocStats",
    "count_bin",
    "largest_first",
    "ooc_count",
    "pack_superkmers",
    "read_bin_records",
    "seeded_order",
    "superkmer_kmers",
    "unpack_superkmers",
]
