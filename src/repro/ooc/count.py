"""Pass 2 of out-of-core counting, and the two-pass orchestrator.

Each spill bin is a closed k-mer multiset, so pass 2 is a loop of
independent in-memory counts: unpack a bin chunk by chunk, expand its
super-k-mers into packed k-mers (one vectorised gather per window
offset), sort, run-length accumulate, and merge chunk results — the
exact kernels of :func:`repro.core.serial.serial_count`, applied to
one bin's worth of data at a time instead of the whole dataset.

:func:`ooc_count` glues both passes together under one memory ceiling
and optionally *fuses* the results into a :class:`repro.lsm.LsmStore`:
every counted bin bulk-loads through ``ingest_counts``, so the store
flushes and compacts under its own (shared) budget while later bins
are still being counted — count-and-serve, never holding the full
dataset in memory.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.result import KmerCounts
from ..sort.accumulate import accumulate_sorted, merge_count_arrays
from ..sort.hybrid import hybrid_sort
from ..seq.kmers import canonical_kmers
from .format import BinFormatError, read_bin_records, superkmer_kmers
from .spill import BinWriter, FlushOrder, OocStats

__all__ = ["count_bin", "ooc_count"]

BinOrder = Callable[[Sequence[int]], list[int]]
"""Pass-2 policy: bin ids -> processing order (identity by default)."""


def count_bin(path: str | os.PathLike, *, k: int | None = None,
              canonical: bool = False,
              stats: OocStats | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Count one spill bin in memory; returns ``(unique_kmers, counts)``.

    Validates the bin header against *k* when given (a bin written at
    a different k would silently produce garbage k-mers otherwise).
    Memory is bounded by the largest single chunk, not the bin: each
    chunk is counted as it streams and merged into the accumulator.
    """
    header, chunks = read_bin_records(path)
    if k is not None and header.k != k:
        raise BinFormatError(
            f"{path}: bin was written at k={header.k}, requested k={k}")
    parts: list[tuple[np.ndarray, np.ndarray]] = []
    for lengths, blob in chunks:
        kmers = superkmer_kmers(lengths, blob, header.k)
        if canonical:
            kmers = canonical_kmers(kmers, header.k)
        uniq, counts = accumulate_sorted(hybrid_sort(kmers, key_bits=2 * header.k))
        parts.append((uniq, counts))
        if len(parts) > 8:  # keep the accumulator list flat
            parts = [merge_count_arrays(parts)]
    if stats is not None:
        stats.bytes_reread += os.path.getsize(path)
    return merge_count_arrays(parts)


def ooc_count(
    reads: np.ndarray | list,
    k: int,
    *,
    w: int | None = None,
    n_bins: int = 16,
    memory_bytes: int = 1 << 20,
    workdir: str | os.PathLike | None = None,
    canonical: bool = False,
    store=None,
    cost=None,
    pe_stats=None,
    stats: OocStats | None = None,
    flush_order: FlushOrder | None = None,
    bin_order: BinOrder | None = None,
    collect: bool = True,
    keep_bins: bool = False,
) -> KmerCounts:
    """Two-pass out-of-core count, bit-identical to :func:`serial_count`.

    Pass 1 spills minimizer-partitioned super-k-mers to *workdir* (a
    private temporary directory when ``None``), buffering at most
    *memory_bytes*; pass 2 counts bins independently.  With *store*
    (an :class:`~repro.lsm.LsmStore`), each counted bin bulk-loads via
    ``ingest_counts`` so flush/compaction interleave with counting —
    size the store's ``memtable_bytes`` from the same ceiling.  With
    *cost* (a :class:`~repro.runtime.cost.CostModel`), bytes spilled
    and reread are charged at the disk rate (β_disk) against
    *pe_stats* (a :class:`~repro.runtime.stats.PEStats`, created at
    PE 0 when omitted — pass your own to read the charged clock).

    *flush_order* and *bin_order* pin the spill/count interleaving for
    deterministic replay (the :mod:`repro.dst` hooks).  ``collect=False``
    skips the merged in-memory result (returns an empty
    :class:`KmerCounts`) — the store is then the only output, which is
    the honest configuration for data that genuinely exceeds RAM.
    """
    if w is None:
        w = min(k, 7)
    own_tmp = workdir is None
    tmp = tempfile.TemporaryDirectory(prefix="dakc-ooc-") if own_tmp else None
    bin_dir = Path(tmp.name) if own_tmp else Path(workdir)
    stats = stats if stats is not None else OocStats()
    if cost is not None and pe_stats is None:
        from ..runtime.stats import PEStats

        pe_stats = PEStats(0)
    try:
        writer = BinWriter(bin_dir, k, w, n_bins,
                           ceiling_bytes=memory_bytes,
                           flush_order=flush_order, stats=stats)
        writer.add_reads(reads)
        paths = writer.close()
        if cost is not None and stats.bytes_spilled:
            cost.charge_disk_write(pe_stats, stats.bytes_spilled,
                                   ops=max(1, stats.n_flushes))

        bin_ids = [int(p.stem.split("-")[1]) for p in paths]
        if bin_order is not None:
            order = list(bin_order(bin_ids))
            if sorted(order) != sorted(bin_ids):
                raise ValueError("bin_order must permute the bin ids")
        else:
            order = bin_ids
        by_id = dict(zip(bin_ids, paths))

        parts: list[tuple[np.ndarray, np.ndarray]] = []
        for b in order:
            before = stats.bytes_reread
            uniq, counts = count_bin(by_id[b], k=k, canonical=canonical,
                                     stats=stats)
            if cost is not None:
                cost.charge_disk_read(pe_stats, stats.bytes_reread - before)
            if store is not None:
                store.ingest_counts(uniq, counts)
            if collect:
                parts.append((uniq, counts))
            if not keep_bins:
                by_id[b].unlink()
        if not collect:
            return KmerCounts.empty(k)
        keys, vals = merge_count_arrays(parts)
        return KmerCounts(k, keys, vals)
    finally:
        if tmp is not None:
            tmp.cleanup()
