"""Phase-boundary checkpoint/restart for the simulated counters.

At DAKC's inter-phase barrier every PE's Phase-1 result — the delivered
packet groups it will sort in Phase 2 — is the whole recoverable state
of the computation.  :class:`CheckpointStore` snapshots that state (and
the analogous accumulated receive arrays of the BSP baseline at its
superstep boundaries), prices the snapshot traffic on the machine, and
replays it into PEs that suffer a transient crash.

Checkpoint I/O runs at :data:`CHECKPOINT_BW_FRACTION` of a PE's memory
bandwidth — node-local NVMe or a burst buffer, not the DRAM stream.
Restore time lands in ``RunStats.recovery_time``; snapshot time is
ordinary overhead on the PE clocks (it is paid even on clean runs).

:func:`apply_phase_crashes` is the failure half: it wipes the delivered
state of the plan's ``crash_pes``, charges the reboot, and — when a
store holds a snapshot — restores.  Without a store the wiped PEs
simply lose their k-mers, which the conservation check turns into a
:class:`~repro.core.dakc.DeliveryIntegrityError`.
"""

from __future__ import annotations

from ..runtime.conveyors import Conveyor
from ..runtime.cost import CostModel
from ..runtime.stats import RunStats
from .injector import FaultyConveyor
from .models import FaultPlan

__all__ = ["CHECKPOINT_BW_FRACTION", "CheckpointStore", "apply_phase_crashes"]

#: Checkpoint device bandwidth as a fraction of PE memory bandwidth.
CHECKPOINT_BW_FRACTION: float = 0.5


class CheckpointStore:
    """Holds one snapshot of recoverable per-PE state."""

    def __init__(self, cost: CostModel, *,
                 bw_fraction: float = CHECKPOINT_BW_FRACTION) -> None:
        if not 0.0 < bw_fraction <= 1.0:
            raise ValueError("bw_fraction must be in (0, 1]")
        self.cost = cost
        self.bw_fraction = bw_fraction
        self.snapshots_taken = 0
        self.restores = 0
        self._delivered: list[list] | None = None
        self._bsp: tuple[list[list], list[list]] | None = None

    def _charge(self, pe_stats, nbytes: int) -> float:
        """Charge checkpoint I/O of *nbytes* on one PE; returns the dt."""
        dt = self.cost._dilated(pe_stats, nbytes / (self.cost.pe_mem_bw * self.bw_fraction))
        pe_stats.advance(dt)
        return dt

    # -- DAKC: conveyor delivered state -------------------------------

    def snapshot_delivered(self, conveyor: Conveyor, stats: RunStats) -> None:
        """Snapshot every PE's delivered groups (DAKC Phase-1 output)."""
        snap: list[list] = []
        for pe, queue in enumerate(conveyor.delivered):
            snap.append(list(queue))
            nbytes = sum(g.payload_bytes for _, g in queue)
            self._charge(stats.pe[pe], nbytes)
        self._delivered = snap
        self.snapshots_taken += 1

    def restore_delivered(
        self, conveyor: Conveyor, pes: tuple[int, ...] | list[int], stats: RunStats
    ) -> None:
        """Replay the snapshot into the (rebooted) *pes*."""
        if self._delivered is None:
            raise RuntimeError("no delivered-state checkpoint to restore from")
        for pe in pes:
            conveyor.delivered[pe][:] = self._delivered[pe]
            nbytes = sum(g.payload_bytes for _, g in self._delivered[pe])
            dt = self._charge(stats.pe[pe], nbytes)
            stats.recovery_time += dt
            self.restores += 1

    # -- BSP: accumulated receive arrays ------------------------------

    def snapshot_bsp(self, recv_plain: list[list], recv_pairs: list[list],
                     stats: RunStats) -> None:
        """Snapshot the BSP receive state at a superstep boundary."""
        plain = [list(arrs) for arrs in recv_plain]
        pairs = [list(ps) for ps in recv_pairs]
        for pe in range(len(plain)):
            nbytes = sum(a.nbytes for a in plain[pe])
            nbytes += sum(u.nbytes + c.nbytes for u, c in pairs[pe])
            self._charge(stats.pe[pe], nbytes)
        self._bsp = (plain, pairs)
        self.snapshots_taken += 1

    def restore_bsp(self, recv_plain: list[list], recv_pairs: list[list],
                    pes: tuple[int, ...] | list[int], stats: RunStats) -> None:
        """Replay the BSP snapshot into the (rebooted) *pes*."""
        if self._bsp is None:
            raise RuntimeError("no BSP checkpoint to restore from")
        plain, pairs = self._bsp
        for pe in pes:
            recv_plain[pe][:] = plain[pe]
            recv_pairs[pe][:] = pairs[pe]
            nbytes = sum(a.nbytes for a in plain[pe])
            nbytes += sum(u.nbytes + c.nbytes for u, c in pairs[pe])
            dt = self._charge(stats.pe[pe], nbytes)
            stats.recovery_time += dt
            self.restores += 1


def apply_phase_crashes(
    plan: FaultPlan,
    conveyor: Conveyor,
    stats: RunStats,
    store: CheckpointStore | None = None,
) -> tuple[int, ...]:
    """Crash the plan's PEs at the phase boundary; restore if possible.

    A crashed PE loses its in-memory delivered groups and reboots after
    ``plan.crash_restart_time``.  With a *store* holding a snapshot the
    state is replayed and the run proceeds; without one the loss stands
    and DAKC's conservation check will reject the counts.  Returns the
    PEs crashed.
    """
    if not plan.crash_pes:
        return ()
    n_pes = conveyor.cost.n_pes
    if any(pe >= n_pes for pe in plan.crash_pes):
        raise ValueError(
            f"crash PE out of range for {n_pes} PEs: {plan.crash_pes}"
        )
    for pe in plan.crash_pes:
        pe_stats = stats.pe[pe]
        pe_stats.crashes += 1
        conveyor.delivered[pe].clear()
        pe_stats.advance(plan.crash_restart_time)
        stats.recovery_time += plan.crash_restart_time
    if store is not None:
        store.restore_delivered(conveyor, plan.crash_pes, stats)
    if isinstance(conveyor, FaultyConveyor):
        conveyor.fault_stats.crashed_pes = plan.crash_pes
    return plan.crash_pes
