"""repro.fault: fault injection, reliable delivery, checkpoint/restart.

The paper's runtime assumes a reliable fabric (Conveyors over SHMEM).
This package drops that assumption and asks what it costs to earn it
back: :class:`FaultyConveyor` makes the simulated wire lossy under a
seeded :class:`FaultPlan`; :class:`ReliableConveyor` layers sequencing,
checksums, dedup and ack/retransmit on top; :class:`CheckpointStore`
adds phase-boundary snapshot/restart for transient PE crashes; and
:func:`run_chaos` validates the whole stack against the serial oracle.
"""

from .chaos import ChaosOutcome, chaos_sweep, format_report, run_chaos
from .checkpoint import CHECKPOINT_BW_FRACTION, CheckpointStore, apply_phase_crashes
from .injector import FaultStats, FaultyConveyor
from .models import Fate, FaultPlan
from .reliability import (
    ACK_BYTES,
    DEFAULT_MAX_ROUNDS,
    ReliabilityError,
    ReliableConveyor,
    group_checksum,
)

__all__ = [
    "ACK_BYTES",
    "CHECKPOINT_BW_FRACTION",
    "ChaosOutcome",
    "CheckpointStore",
    "DEFAULT_MAX_ROUNDS",
    "Fate",
    "FaultPlan",
    "FaultStats",
    "FaultyConveyor",
    "ReliabilityError",
    "ReliableConveyor",
    "apply_phase_crashes",
    "chaos_sweep",
    "format_report",
    "group_checksum",
    "run_chaos",
]
