"""Reliable delivery over a faulty conveyor wire.

:class:`ReliableConveyor` layers an end-to-end reliability protocol on
top of :class:`~repro.fault.injector.FaultyConveyor` — the standard
recipe a PGAS runtime would deploy over an unreliable fabric:

* every application group is stamped with a per-flow ``(src, dst)``
  sequence number and a payload checksum at injection;
* the receiver verifies the checksum (a corrupted group is discarded —
  indistinguishable from a loss) and suppresses duplicates with a
  cumulative-ack window per flow;
* after the normal drain settles, receivers acknowledge what they
  hold; unacknowledged groups are retransmitted in timeout rounds with
  exponential backoff (``rto * 2**(round-1)``), every round re-rolling
  the wire's fault dice;
* acknowledgements are small out-of-band PUTs (:data:`ACK_BYTES`) on a
  reliable control channel — charged through the cost model but exempt
  from the fault plan, the usual assumption that the tiny control
  plane is protected by link-level retry.

All protocol work is priced on the machine: retransmitted groups pay
the full staging/PUT path again, acks pay a PUT each, and timeout
waits accumulate in ``RunStats.recovery_time``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..runtime.conveyors import Conveyor, PacketGroup
from .injector import FaultyConveyor

__all__ = [
    "ACK_BYTES",
    "DEFAULT_MAX_ROUNDS",
    "ReliabilityError",
    "ReliableConveyor",
    "group_checksum",
]

#: Wire size of one acknowledgement message (flow id + cumulative seq).
ACK_BYTES: int = 16

#: Retransmission rounds before the protocol declares the fabric dead.
DEFAULT_MAX_ROUNDS: int = 64


class ReliabilityError(RuntimeError):
    """Raised when traffic stays unacknowledged after ``max_rounds``
    retransmission rounds — the fabric is lossier than the protocol
    can mask."""


def group_checksum(group: PacketGroup) -> int:
    """XOR checksum over the group payload.

    A single flipped payload bit always changes the XOR, which is
    exactly the fault :class:`~repro.fault.models.FaultPlan` injects.
    """
    acc = np.uint64(group.kmers.size)
    if group.kmers.size:
        acc ^= np.bitwise_xor.reduce(group.kmers.astype(np.uint64, copy=False))
    if group.counts is not None and group.counts.size:
        acc ^= np.bitwise_xor.reduce(group.counts.astype(np.uint64, copy=False))
    return int(acc)


@dataclass(slots=True)
class _DedupWindow:
    """Receiver-side per-flow window: cumulative base + out-of-order set.

    ``base`` is the next expected sequence number — everything below it
    has been accepted; ``pending`` holds accepted seqs at or above
    ``base`` (arrivals reordered by delay jitter or relaying).
    """

    base: int = 0
    pending: set[int] = field(default_factory=set)

    def accept(self, seq: int) -> bool:
        """True if *seq* is new (accepted), False for a duplicate."""
        if seq < self.base or seq in self.pending:
            return False
        self.pending.add(seq)
        while self.base in self.pending:
            self.pending.discard(self.base)
            self.base += 1
        return True

    def has(self, seq: int) -> bool:
        return seq < self.base or seq in self.pending


class ReliableConveyor(FaultyConveyor):
    """Faulty conveyor with sequencing, dedup, acks and retransmit."""

    def __init__(
        self,
        *args,
        rto: float | None = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        #: Retransmission timeout; default 50x the wire latency, a
        #: comfortable margin over one round trip.
        self.rto = rto if rto is not None else 50.0 * self.cost.machine.tau
        self.max_rounds = max_rounds
        self._next_seq: dict[tuple[int, int], int] = {}
        #: Sent-but-unacked groups per flow: {(src, dst): {seq: group}}.
        self._outstanding: dict[tuple[int, int], dict[int, PacketGroup]] = {}
        self._windows: dict[tuple[int, int], _DedupWindow] = {}
        self.checksum_failures: int = 0

    # -- send side ----------------------------------------------------

    def inject(self, group: PacketGroup) -> None:
        flow = (group.src, group.dst)
        seq = self._next_seq.get(flow, 0)
        self._next_seq[flow] = seq + 1
        group.seq = seq
        group.checksum = group_checksum(group)
        self._outstanding.setdefault(flow, {})[seq] = group
        super().inject(group)

    # -- receive side -------------------------------------------------

    def _deliver(self, pe: int, arrival: float, group: PacketGroup) -> None:
        if group.seq < 0:  # untracked traffic (acks are not modelled here)
            super()._deliver(pe, arrival, group)
            return
        if group_checksum(group) != group.checksum:
            # Corrupted in flight: discard.  The sender's copy is
            # pristine, so the retransmission round repairs this.
            self.checksum_failures += 1
            return
        flow = (group.src, group.dst)
        window = self._windows.setdefault(flow, _DedupWindow())
        if not window.accept(group.seq):
            self.stats.pe[pe].dup_drops += 1
            return
        super()._deliver(pe, arrival, group)

    # -- acknowledgement / retransmission ------------------------------

    def _ack_round(self) -> None:
        """Receivers acknowledge everything accepted so far.

        One cumulative ack PUT per flow that clears at least one
        outstanding group; a self-flow is acked in place (the sender
        and receiver share a mailbox — no wire traffic).
        """
        for (src, dst), pend in self._outstanding.items():
            if not pend:
                continue
            window = self._windows.get((src, dst))
            if window is None:
                continue  # nothing from this flow has arrived yet
            acked = [seq for seq in pend if window.has(seq)]
            if not acked:
                continue
            if src != dst:
                dst_stats = self.stats.pe[dst]
                self.cost.charge_put(dst_stats, src, ACK_BYTES)
                dst_stats.acks_sent += 1
            for seq in acked:
                del pend[seq]

    def outstanding_groups(self) -> int:
        return sum(len(pend) for pend in self._outstanding.values())

    def _reliability_rounds(self) -> None:
        self._ack_round()
        round_no = 0
        while self.outstanding_groups():
            round_no += 1
            if round_no > self.max_rounds:
                raise ReliabilityError(
                    f"{self.outstanding_groups()} groups still unacknowledged "
                    f"after {self.max_rounds} retransmission rounds"
                )
            # Timeout with exponential backoff: each sender with unacked
            # traffic waits out the RTO before resending.
            backoff = self.rto * (2 ** (round_no - 1))
            senders = {src for (src, _), pend in self._outstanding.items() if pend}
            for src in sorted(senders):
                self.stats.pe[src].advance(backoff)
            self.stats.recovery_time += backoff
            for (src, _), pend in self._outstanding.items():
                for seq in sorted(pend):
                    self.stats.pe[src].retransmits += 1
                    self._enqueue(src, pend[seq])
            # Push the retransmissions through the (still faulty) wire.
            Conveyor.finalize(self)
            self._ack_round()

    def finalize(self) -> None:
        super().finalize()
        self._reliability_rounds()
