"""Chaos harness: run DAKC under a fault plan, validate against serial.

:func:`run_chaos` is the one-call entry point: it wires a
:class:`~repro.fault.models.FaultPlan` into ``dakc_count`` through the
conveyor factory and the inter-phase hook, optionally protected by the
reliability layer and a checkpoint store, and checks the produced
counts for exact multiset equality against the serial oracle.

The contract under test is sharp:

* **protected** runs must produce counts *exactly* equal to
  ``serial_count`` no matter what the plan injects (short of a fabric
  so lossy the protocol gives up with
  :class:`~repro.fault.reliability.ReliabilityError`);
* **unprotected** runs under a lossy plan must *fail loudly* — DAKC's
  conservation check raises
  :class:`~repro.core.dakc.DeliveryIntegrityError` rather than
  returning silently wrong counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dakc import DakcConfig, DeliveryIntegrityError, dakc_count
from ..core.result import KmerCounts
from ..core.seeds import spawn_seeds
from ..core.serial import serial_count
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from .checkpoint import CheckpointStore, apply_phase_crashes
from .injector import FaultyConveyor
from .models import FaultPlan
from .reliability import DEFAULT_MAX_ROUNDS, ReliabilityError, ReliableConveyor

__all__ = ["ChaosOutcome", "run_chaos", "chaos_sweep", "derive_plan_seeds",
           "format_report"]


def derive_plan_seeds(seed: int, n: int) -> list[int]:
    """Independent per-plan fault seeds for a sweep rooted at *seed*.

    Thin wrapper over :func:`repro.core.seeds.spawn_seeds` so sweep
    callers (the CLI, benchmarks) stop hand-rolling ``seed + i``
    offsets, which alias between adjacent root seeds.
    """
    return spawn_seeds(seed, n)


@dataclass(frozen=True)
class ChaosOutcome:
    """Result of one chaos run."""

    plan: FaultPlan
    protocol: str
    protected: bool
    ok: bool  # run completed (no integrity/reliability error)
    counts_match: bool  # exact multiset equality vs the serial oracle
    error: str | None = None
    sim_time: float = 0.0
    recovery_time: float = 0.0
    retransmits: int = 0
    dup_drops: int = 0
    acks_sent: int = 0
    checksum_failures: int = 0
    fault_summary: dict | None = None

    @property
    def passed(self) -> bool:
        """The run upheld its contract for its protection level.

        Protected: completed with exactly correct counts.  Unprotected:
        either the plan was benign and the counts are exact, or the
        faults were detected and the run was rejected.
        """
        if self.protected:
            return self.ok and self.counts_match
        if self.plan.benign:
            return self.ok and self.counts_match
        return not self.ok or self.counts_match


def run_chaos(
    reads,
    k: int,
    cost: CostModel | MachineConfig,
    plan: FaultPlan,
    *,
    config: DakcConfig | None = None,
    protect: bool = True,
    checkpoint: bool | None = None,
    rto: float | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    reference: KmerCounts | None = None,
) -> ChaosOutcome:
    """Run DAKC once under *plan* and validate the counts.

    ``protect`` enables the reliability layer (sequencing, dedup, acks,
    retransmission); ``checkpoint`` enables phase-boundary snapshots
    (default: on exactly when the plan crashes PEs and ``protect`` is
    set).  ``reference`` short-circuits the serial oracle when the
    caller already has it (sweeps over one dataset).
    """
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    config = config or DakcConfig()
    if checkpoint is None:
        checkpoint = protect and bool(plan.crash_pes)
    store = CheckpointStore(cost) if checkpoint else None
    holder: dict[str, FaultyConveyor] = {}

    def factory(*args, **kwargs):
        if protect:
            conv = ReliableConveyor(
                *args, plan=plan, rto=rto, max_rounds=max_rounds, **kwargs
            )
        else:
            conv = FaultyConveyor(*args, plan=plan, **kwargs)
        holder["conveyor"] = conv
        return conv

    def hook(conveyor, stats):
        if store is not None:
            store.snapshot_delivered(conveyor, stats)
        apply_phase_crashes(plan, conveyor, stats, store)

    if reference is None:
        reference = serial_count(reads, k, canonical=config.canonical)

    try:
        counts, stats = dakc_count(
            reads, k, cost, config, conveyor_factory=factory, interphase_hook=hook
        )
    except (DeliveryIntegrityError, ReliabilityError) as exc:
        conv = holder.get("conveyor")
        return ChaosOutcome(
            plan=plan,
            protocol=config.protocol,
            protected=protect,
            ok=False,
            counts_match=False,
            error=f"{type(exc).__name__}: {exc}",
            fault_summary=conv.fault_stats.summary() if conv is not None else None,
        )
    finally:
        # The injector installs the plan's straggler dilation on the
        # shared cost model; clear it so the caller can reuse the model.
        cost.set_dilation(None)

    conv = holder["conveyor"]
    return ChaosOutcome(
        plan=plan,
        protocol=config.protocol,
        protected=protect,
        ok=True,
        counts_match=(counts == reference),
        sim_time=stats.sim_time,
        recovery_time=stats.recovery_time,
        retransmits=stats.total("retransmits"),
        dup_drops=stats.total("dup_drops"),
        acks_sent=stats.total("acks_sent"),
        checksum_failures=getattr(conv, "checksum_failures", 0),
        fault_summary=conv.fault_stats.summary(),
    )


def chaos_sweep(
    reads,
    k: int,
    cost: CostModel | MachineConfig,
    plans: list[FaultPlan],
    *,
    config: DakcConfig | None = None,
    include_unprotected: bool = True,
    rto: float | None = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> list[ChaosOutcome]:
    """Run every plan protected (and optionally unprotected) once."""
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    config = config or DakcConfig()
    reference = serial_count(reads, k, canonical=config.canonical)
    outcomes: list[ChaosOutcome] = []
    for plan in plans:
        outcomes.append(
            run_chaos(reads, k, cost, plan, config=config, protect=True,
                      rto=rto, max_rounds=max_rounds, reference=reference)
        )
        if include_unprotected and not plan.benign:
            outcomes.append(
                run_chaos(reads, k, cost, plan, config=config, protect=False,
                          reference=reference)
            )
    return outcomes


def format_report(outcomes: list[ChaosOutcome]) -> str:
    """Render a chaos sweep as an aligned text table."""
    header = (
        "plan", "layer", "result", "exact", "retx", "dups",
        "acks", "recovery_s", "sim_s",
    )
    rows = [header]
    for o in outcomes:
        if o.ok:
            result = "completed"
        else:
            result = (o.error or "failed").split(":")[0]
        rows.append((
            o.plan.describe(),
            "reliable" if o.protected else "bare",
            result,
            "yes" if o.counts_match else "no",
            str(o.retransmits),
            str(o.dup_drops),
            str(o.acks_sent),
            f"{o.recovery_time:.3g}",
            f"{o.sim_time:.3g}",
        ))
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * w for w in widths))
    verdict = all(o.passed for o in outcomes)
    lines.append("")
    lines.append(
        f"{sum(o.passed for o in outcomes)}/{len(outcomes)} runs upheld their "
        f"contract -> {'PASS' if verdict else 'FAIL'}"
    )
    return "\n".join(lines)
