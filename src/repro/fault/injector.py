"""Wire-level fault injection for the Conveyors engine.

:class:`FaultyConveyor` is a drop-in :class:`~repro.runtime.conveyors.
Conveyor` that applies a :class:`~repro.fault.models.FaultPlan` at the
single point where a message leaves a PE (``_launch``).  Faults are
drawn independently per packet group per wire traversal, so a group
relayed over a 3-hop route rolls the dice three times — exactly the
exposure a real multi-hop store-and-forward message has.

The sender is always charged for the PUT (a dropped message still
burned injection overhead and NIC bandwidth); only what arrives is
changed.  Corruption copies the payload before flipping a bit so the
sender's buffers stay pristine — a retransmission resends good data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.conveyors import Conveyor, PacketGroup
from .models import FaultPlan

__all__ = ["FaultStats", "FaultyConveyor"]


@dataclass(slots=True)
class FaultStats:
    """What the injector actually did to the wire traffic."""

    traversals: int = 0  # group wire-traversals examined
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0
    delayed: int = 0  # traversals with extra arrival delay/jitter
    crashed_pes: tuple[int, ...] = ()
    dropped_elements: int = 0  # payload elements lost to drops
    duplicated_elements: int = 0  # extra payload elements created by dups

    def summary(self) -> dict[str, int | list[int]]:
        return {
            "traversals": self.traversals,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "dropped_elements": self.dropped_elements,
            "duplicated_elements": self.duplicated_elements,
            "crashed_pes": list(self.crashed_pes),
        }


def _corrupt_copy(group: PacketGroup, rng: np.random.Generator) -> PacketGroup:
    """A copy of *group* with one random payload bit flipped."""
    kmers = group.kmers.copy()
    if kmers.size:
        idx = int(rng.integers(kmers.size))
        bit = np.uint64(1) << np.uint64(int(rng.integers(64)))
        kmers[idx] = np.uint64(kmers[idx]) ^ bit
    return PacketGroup(
        src=group.src,
        dst=group.dst,
        kind=group.kind,
        kmers=kmers,
        counts=None if group.counts is None else group.counts.copy(),
        n_packets=group.n_packets,
        payload_bytes=group.payload_bytes,
        seq=group.seq,
        checksum=group.checksum,
    )


class FaultyConveyor(Conveyor):
    """Conveyor whose wire applies a seeded :class:`FaultPlan`."""

    def __init__(self, *args, plan: FaultPlan | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.plan = plan if plan is not None else FaultPlan()
        self._fault_rng = self.plan.rng()
        self.fault_stats = FaultStats()
        dilation = self.plan.dilation(self.cost.n_pes)
        if dilation is not None:
            self.cost.set_dilation(dilation)

    def _launch(
        self,
        from_pe: int,
        next_hop: int,
        groups: list[PacketGroup],
        nbytes: int,
    ) -> None:
        arrival = self.cost.charge_put(self.stats.pe[from_pe], next_hop, nbytes)
        if not self.plan.has_wire_faults:
            self._in_flight.append((arrival, next_hop, groups))
            return
        fs = self.fault_stats
        # Bucket surviving copies by their (possibly perturbed) arrival
        # time so each bucket lands as one message on the receive heap.
        buckets: dict[float, list[PacketGroup]] = {}
        for group in groups:
            fate = self.plan.fate(self._fault_rng)
            fs.traversals += 1
            if fate.drop:
                fs.dropped += 1
                fs.dropped_elements += group.n_elements
                continue
            if fate.corrupt:
                fs.corrupted += 1
                group = _corrupt_copy(group, self._fault_rng)
            when = arrival
            if fate.extra_delay:
                fs.delayed += 1
                when += fate.extra_delay
            buckets.setdefault(when, []).append(group)
            if fate.duplicate:
                fs.duplicated += 1
                fs.duplicated_elements += group.n_elements
                buckets.setdefault(when + self.plan.duplicate_lag, []).append(group)
        for when, bucket in buckets.items():
            self._in_flight.append((when, next_hop, bucket))
