"""Deterministic, seeded fault models for the virtual PGAS runtime.

A :class:`FaultPlan` is a declarative description of everything that
can go wrong on the simulated machine:

* **wire faults**, applied independently per packet-group per hop
  traversal: message drop, duplication, delivery delay, delivery
  reordering (arrival jitter) and payload corruption (a flipped bit in
  a k-mer word — the classic undetected-by-the-fabric soft error);
* **straggler PEs**: a clock-dilation factor applied to every cost
  charged on the listed PEs (thermal throttling, noisy neighbours, a
  degraded NIC);
* **transient PE crashes** at a phase boundary: the PE loses its
  in-memory receive state and reboots after ``crash_restart_time`` —
  survivable only with :mod:`repro.fault.checkpoint`.

Plans are frozen and seeded: the same plan replayed over the same
deterministic simulation produces the same fault sequence, which is
what makes chaos regressions reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Fate", "FaultPlan"]


@dataclass(frozen=True, slots=True)
class Fate:
    """The outcome drawn for one packet-group on one wire traversal."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    extra_delay: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.drop or self.duplicate or self.corrupt or self.extra_delay)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Seeded description of the faults to inject into one run."""

    seed: int = 0
    #: Per-traversal probability that a packet group is silently lost.
    drop_prob: float = 0.0
    #: Per-traversal probability that a packet group arrives twice.
    duplicate_prob: float = 0.0
    #: Extra arrival lag of the duplicate copy (seconds).
    duplicate_lag: float = 2e-5
    #: Per-traversal probability of a fixed delivery delay.
    delay_prob: float = 0.0
    delay_time: float = 1e-4
    #: Per-traversal probability of uniform arrival jitter — enough
    #: jitter reorders deliveries relative to send order.
    reorder_prob: float = 0.0
    reorder_jitter: float = 5e-5
    #: Per-traversal probability of a payload bit flip.
    corrupt_prob: float = 0.0
    #: Straggler PEs and their clock-dilation factor (>= 1).
    straggler_pes: tuple[int, ...] = ()
    straggler_factor: float = 1.0
    #: PEs that transiently crash at the inter-phase boundary.
    crash_pes: tuple[int, ...] = ()
    #: Reboot delay charged to a crashed PE (seconds).
    crash_restart_time: float = 1e-3

    def __post_init__(self) -> None:
        for name in ("drop_prob", "duplicate_prob", "delay_prob",
                     "reorder_prob", "corrupt_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        for name in ("duplicate_lag", "delay_time", "reorder_jitter",
                     "crash_restart_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1 (1 = healthy)")
        if any(pe < 0 for pe in self.straggler_pes + self.crash_pes):
            raise ValueError("PE indices must be non-negative")

    # -- derived views ------------------------------------------------

    @property
    def has_wire_faults(self) -> bool:
        """True when any per-traversal fault can fire."""
        return (
            self.drop_prob > 0
            or self.duplicate_prob > 0
            or self.delay_prob > 0
            or self.reorder_prob > 0
            or self.corrupt_prob > 0
        )

    @property
    def benign(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.has_wire_faults
            and not self.crash_pes
            and (not self.straggler_pes or self.straggler_factor == 1.0)
        )

    def rng(self) -> np.random.Generator:
        """The plan's deterministic fault stream."""
        return np.random.default_rng(self.seed)

    def to_doc(self) -> dict:
        """JSON-friendly plan description (repro bundles)."""
        from dataclasses import asdict

        doc = asdict(self)
        doc["straggler_pes"] = list(self.straggler_pes)
        doc["crash_pes"] = list(self.crash_pes)
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_doc` output."""
        doc = dict(doc)
        doc["straggler_pes"] = tuple(int(p) for p in doc.get("straggler_pes", ()))
        doc["crash_pes"] = tuple(int(p) for p in doc.get("crash_pes", ()))
        return cls(**doc)

    def dilation(self, n_pes: int) -> list[float] | None:
        """Per-PE clock-dilation vector for :meth:`CostModel.set_dilation`."""
        if not self.straggler_pes or self.straggler_factor == 1.0:
            return None
        if any(pe >= n_pes for pe in self.straggler_pes):
            raise ValueError(
                f"straggler PE out of range for {n_pes} PEs: {self.straggler_pes}"
            )
        factors = [1.0] * n_pes
        for pe in self.straggler_pes:
            factors[pe] = self.straggler_factor
        return factors

    def fate(self, rng: np.random.Generator) -> Fate:
        """Draw one wire-traversal outcome from the fault stream.

        Four uniforms are always consumed (plus one more when jitter
        fires) so the stream stays aligned regardless of which faults
        are enabled.
        """
        if not self.has_wire_faults:
            return Fate()
        u = rng.uniform(size=4)
        extra = 0.0
        if u[2] < self.delay_prob:
            extra += self.delay_time
        if u[3] < self.reorder_prob:
            extra += float(rng.uniform(0.0, self.reorder_jitter))
        return Fate(
            drop=bool(u[0] < self.drop_prob),
            duplicate=bool(u[1] < self.duplicate_prob),
            corrupt=bool(rng.uniform() < self.corrupt_prob) if self.corrupt_prob else False,
            extra_delay=extra,
        )

    @classmethod
    def sample(
        cls,
        rng: np.random.Generator,
        *,
        n_pes: int = 0,
        max_drop: float = 0.05,
        max_duplicate: float = 0.05,
        max_delay: float = 0.2,
        max_reorder: float = 0.3,
        max_corrupt: float = 0.02,
        straggler_frac: float = 0.25,
        max_straggler_factor: float = 4.0,
    ) -> "FaultPlan":
        """Compose a random plan from an external RNG stream.

        The schedule fuzzer's plan generator: every field — including
        the plan's own replay seed — is drawn from *rng*, so the plan
        is a pure function of the caller's seed stream and two fuzz
        campaigns with independent roots never share plans.  Each
        fault class is enabled with probability 1/2 and then drawn
        uniformly up to its ``max_*`` bound; stragglers (when *n_pes*
        is given) dilate a random minority of PEs.  Crash-at-barrier
        faults are deliberately excluded: they require the checkpoint
        harness (:func:`repro.fault.chaos.run_chaos`), not a bare
        conveyor swap.
        """
        def draw(bound: float) -> float:
            return float(rng.uniform(0.0, bound)) if rng.random() < 0.5 else 0.0

        stragglers: tuple[int, ...] = ()
        factor = 1.0
        if n_pes > 1 and rng.random() < straggler_frac:
            n_slow = int(rng.integers(1, max(2, n_pes // 2)))
            stragglers = tuple(
                int(p) for p in rng.choice(n_pes, size=n_slow, replace=False)
            )
            factor = float(rng.uniform(1.5, max_straggler_factor))
        return cls(
            seed=int(rng.integers(1 << 63)),
            drop_prob=draw(max_drop),
            duplicate_prob=draw(max_duplicate),
            delay_prob=draw(max_delay),
            reorder_prob=draw(max_reorder),
            corrupt_prob=draw(max_corrupt),
            straggler_pes=stragglers,
            straggler_factor=factor,
        )

    def describe(self) -> str:
        """Compact human-readable label (chaos report rows)."""
        parts = []
        if self.drop_prob:
            parts.append(f"drop={self.drop_prob:.2%}")
        if self.duplicate_prob:
            parts.append(f"dup={self.duplicate_prob:.2%}")
        if self.corrupt_prob:
            parts.append(f"corrupt={self.corrupt_prob:.2%}")
        if self.delay_prob:
            parts.append(f"delay={self.delay_prob:.2%}")
        if self.reorder_prob:
            parts.append(f"reorder={self.reorder_prob:.2%}")
        if self.straggler_pes and self.straggler_factor > 1.0:
            parts.append(
                f"stragglers={list(self.straggler_pes)}x{self.straggler_factor:g}"
            )
        if self.crash_pes:
            parts.append(f"crash={list(self.crash_pes)}")
        return " ".join(parts) if parts else "fault-free"
