"""Per-tenant serving metrics: latency, hit rate, rejections, SLOs.

One :class:`~repro.serve.metrics.ServeMetrics` per tenant, all sharing
one histogram geometry so they merge exactly (the engine's global
histogram is always the bucket-wise sum of the per-tenant ones — a
property the test suite pins).  On top of the stock serving counters
each tenant gets an *SLO attainment* gauge: the fraction of its
latency samples at or under the spec's ``slo_ms`` target, read
straight off the histogram via
:meth:`~repro.serve.metrics.LatencyHistogram.fraction_below`.
"""

from __future__ import annotations

from ..serve.metrics import LatencyHistogram, ServeMetrics
from .registry import TenantRegistry

__all__ = ["TenantMetricsSet"]


class TenantMetricsSet:
    """Lazy tenant -> :class:`ServeMetrics` table with SLO grading."""

    def __init__(self, registry: TenantRegistry | None = None):
        self.registry = registry
        self._metrics: dict[str, ServeMetrics] = {}
        # One geometry for every tenant so histograms merge exactly.
        self._proto = LatencyHistogram()

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._metrics

    def __iter__(self):
        return iter(self._metrics)

    def get(self, tenant: str) -> ServeMetrics:
        """The tenant's metrics, created on first sight."""
        m = self._metrics.get(tenant)
        if m is None:
            m = ServeMetrics(latency=LatencyHistogram.like(self._proto))
            self._metrics[tenant] = m
        return m

    def set_elapsed(self, elapsed: float) -> None:
        """Stamp one run's wall-clock span on every tenant."""
        for m in self._metrics.values():
            m.elapsed = elapsed

    def slo_attainment(self, tenant: str) -> float | None:
        """Fraction of the tenant's samples within its SLO (None = no SLO)."""
        if self.registry is None or tenant not in self.registry:
            return None
        slo_ms = self.registry.spec(tenant).slo_ms
        if slo_ms is None:
            return None
        return self.get(tenant).latency.fraction_below(slo_ms * 1e-3)

    def merged(self) -> ServeMetrics:
        """Bucket-exact fold of every tenant's metrics into one."""
        total = ServeMetrics(latency=LatencyHistogram.like(self._proto))
        for m in self._metrics.values():
            total.latency.merge(m.latency)
            total.n_queries += m.n_queries
            total.n_found += m.n_found
            total.cache_hits += m.cache_hits
            total.cache_misses += m.cache_misses
            total.rejected += m.rejected
            for cause, n in m.rejected_by_cause.items():
                total.rejected_by_cause[cause] = (
                    total.rejected_by_cause.get(cause, 0) + n)
            total.elapsed = max(total.elapsed, m.elapsed)
        return total

    def snapshot(self) -> dict:
        """Tenant -> metrics snapshot, plus the SLO gauge when graded."""
        out = {}
        for tenant, m in self._metrics.items():
            doc = m.snapshot()
            attainment = self.slo_attainment(tenant)
            if attainment is not None:
                doc["slo"] = {
                    "target_ms": self.registry.spec(tenant).slo_ms,
                    "attainment": attainment,
                }
            out[tenant] = doc
        return out
