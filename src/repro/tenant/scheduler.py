"""Deficit round-robin: weighted-fair chunk scheduling at shard workers.

A FIFO shard queue lets one flooding tenant put a wall of chunks in
front of everyone else's traffic — the serving-side version of the
hot-PE imbalance the paper's L3 protocol exists to break.  The fix is
the classic deficit round-robin (Shreedhar & Varghese): each backlogged
tenant keeps a *deficit counter*; on its turn it is granted
``quantum * weight`` key-credits, and its queued chunks are served
while the deficit covers them.  Over any saturated window each tenant
receives service proportional to its weight, within an additive error
of one quantum plus one maximum chunk — the bound the `fair-share` DST
invariant checks, while `no-starvation` checks the dual guarantee that
a backlogged tenant's head chunk is served within
``ceil(chunk / (quantum * weight))`` of its turns.

:class:`DRRQueue` exposes the same surface the engine's micro-batching
workers already use on :class:`asyncio.Queue` — ``put_nowait`` /
``get`` / ``get_nowait`` / ``empty`` / ``qsize`` — so weighted
fairness drops in without touching the coalescing loop.  Anything
with ``.keys`` (sized) and ``.tenant`` attributes schedules; a
``tenant`` of ``None`` rides in a shared best-effort lane at the
default weight.
"""

from __future__ import annotations

import asyncio
import math
from collections import OrderedDict, deque

__all__ = ["DRRQueue"]

#: Lane used for untagged chunks (requests without a tenant).
_ANON = None


class DRRQueue:
    """Asyncio-compatible deficit-round-robin queue over tagged chunks.

    * ``weights`` — tenant name -> relative weight (missing tenants,
      including the anonymous ``None`` lane, use *default_weight*);
    * ``quantum`` — key-credits granted per unit weight per turn; the
      knob trading scheduling overhead (small quantum = more turns)
      against burst fairness (large quantum = coarser interleaving).

    Self-auditing: the queue tracks how many grant turns each tenant
    waited for the chunk it eventually got.  DRR theory bounds that at
    ``ceil(size / (quantum * weight))``; :attr:`starvation_violations`
    counts services that exceeded it (always 0 unless the scheduler is
    broken — the hook the DST `no-starvation` invariant pulls on).
    """

    def __init__(self, weights: dict[str, float] | None = None, *,
                 quantum: int = 64, default_weight: float = 1.0):
        if quantum < 1:
            raise ValueError("quantum must be >= 1 key")
        if default_weight <= 0:
            raise ValueError("default_weight must be > 0")
        self.quantum = int(quantum)
        self.default_weight = float(default_weight)
        self.weights = dict(weights or {})
        if any(w <= 0 for w in self.weights.values()):
            raise ValueError("tenant weights must be > 0")
        self._queues: OrderedDict[object, deque] = OrderedDict()
        self._active: deque = deque()       # backlogged tenants, turn order
        self._deficit: dict[object, float] = {}
        self._waits: dict[object, int] = {}  # grant turns since last service
        self._fresh = True                   # head of _active owed a grant?
        self._n_chunks = 0
        self._event = asyncio.Event()
        #: Keys served per tenant (the fair-share measurement).
        self.served_keys: dict[object, int] = {}
        #: Chunks served per tenant.
        self.served_chunks: dict[object, int] = {}
        #: Services that waited more grant turns than DRR allows.
        self.starvation_violations = 0

    # -- asyncio.Queue surface -----------------------------------------

    def qsize(self) -> int:
        return self._n_chunks

    def empty(self) -> bool:
        return self._n_chunks == 0

    def put_nowait(self, chunk) -> None:
        tenant = getattr(chunk, "tenant", _ANON)
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q:
            self._active.append(tenant)
            self._deficit.setdefault(tenant, 0.0)
            self._waits.setdefault(tenant, 0)
            if len(self._active) == 1:
                self._fresh = True
        q.append(chunk)
        self._n_chunks += 1
        self._event.set()

    def get_nowait(self):
        chunk = self._pop()
        if chunk is None:
            raise asyncio.QueueEmpty
        return chunk

    async def get(self):
        while True:
            chunk = self._pop()
            if chunk is not None:
                return chunk
            self._event.clear()
            if self._n_chunks:  # lost race with a concurrent put
                continue
            await self._event.wait()

    # -- the scheduler -------------------------------------------------

    def weight_of(self, tenant) -> float:
        return self.weights.get(tenant, self.default_weight)

    def grant_bound(self, size: int, tenant) -> int:
        """Max grant turns DRR needs to serve a *size*-key head chunk."""
        return max(1, math.ceil(size / (self.quantum * self.weight_of(tenant))))

    def _pop(self):
        """Serve the next chunk under DRR order, or None when idle."""
        if self._n_chunks == 0:
            return None
        while True:
            tenant = self._active[0]
            if self._fresh:
                # Turn start: one quantum of key-credit, scaled by weight.
                self._deficit[tenant] += self.quantum * self.weight_of(tenant)
                self._waits[tenant] += 1
                self._fresh = False
            q = self._queues[tenant]
            head = q[0]
            need = int(head.keys.size)
            if self._deficit[tenant] >= need:
                q.popleft()
                self._n_chunks -= 1
                self._deficit[tenant] -= need
                if self._waits[tenant] > self.grant_bound(need, tenant) + 1:
                    self.starvation_violations += 1
                self._waits[tenant] = 0
                self.served_keys[tenant] = (
                    self.served_keys.get(tenant, 0) + need)
                self.served_chunks[tenant] = (
                    self.served_chunks.get(tenant, 0) + 1)
                if not q:
                    # Classic DRR: an emptied flow forfeits its deficit
                    # (credit must not survive idle periods).
                    self._active.popleft()
                    self._deficit[tenant] = 0.0
                    self._fresh = True
                return head
            # Head too big for the remaining credit: next tenant's turn.
            self._active.rotate(-1)
            self._fresh = True

    # -- introspection -------------------------------------------------

    def backlog(self) -> dict:
        """Tenant -> queued chunk count (for metrics/debugging)."""
        return {t: len(q) for t, q in self._queues.items() if q}

    def stats(self) -> dict:
        return {
            "quantum": self.quantum,
            "served_keys": {str(t): n for t, n in self.served_keys.items()},
            "served_chunks": {str(t): n for t, n in self.served_chunks.items()},
            "starvation_violations": self.starvation_violations,
            "backlog": {str(t): n for t, n in self.backlog().items()},
        }
