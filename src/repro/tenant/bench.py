"""The tenant-bench experiment: antagonist vs. victim isolation.

One deterministic, seeded experiment used by both the ``dakc
tenant-bench`` CLI and ``benchmarks/bench_extension_tenant.py``:

1. count a dataset into a database and shard it;
2. drive a well-behaved *victim* tenant open-loop (small paced query
   groups) three times over the same key stream:

   * **solo** — victim alone: the baseline p99;
   * **isolated** — an *antagonist* tenant floods the engine from
     closed-loop worker tasks, with the multi-tenancy controls ON
     (token-bucket quota + priority shedding at admission, DRR
     weighted-fair batching at the shard queues);
   * **unprotected** — the same flood with the controls OFF (no
     quota, FIFO queues): the antagonist's chunk walls land in front
     of every victim request;

3. report the victim's p99 degradation in both contested runs.  The
   acceptance claim is ``isolated`` within 10% of ``solo`` while
   ``unprotected`` degrades by an order more — and the victim's
   answers stay bit-identical to the scalar oracle throughout.

Latency is dominated by *simulated* store service cost
(``flush_service_time`` / ``flush_service_per_key``) plus the batching
window, so the p99s measure queueing — which isolation controls — and
not host-dependent Python overhead.  A final section demonstrates the
:class:`~repro.tenant.autoscaler.Autoscaler` driving live cluster
topology changes: a synthetic hot spell splits the ring, a cold spell
merges it back, and every count answers exactly before, during, and
after the moves.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace

import numpy as np

from ..core.result import KmerCounts
from .autoscaler import Autoscaler, AutoscalerConfig
from .registry import QuotaExceeded, TenantRegistry, TenantSpec

__all__ = ["TenantBenchResult", "run_tenant_bench", "autoscale_demo"]

VICTIM = "victim"
ANTAGONIST = "antagonist"


@dataclass(frozen=True)
class TenantBenchResult:
    """Outcome of one solo/isolated/unprotected comparison."""

    solo: dict
    isolated: dict
    unprotected: dict
    answers_match: bool
    fairness: dict
    autoscale: dict
    params: dict

    @property
    def isolated_degradation(self) -> float:
        """Victim p99 inflation with the antagonist and isolation ON."""
        return self.isolated["p99_ms"] / self.solo["p99_ms"] - 1.0

    @property
    def unprotected_degradation(self) -> float:
        """Victim p99 inflation with the antagonist and isolation OFF."""
        return self.unprotected["p99_ms"] / self.solo["p99_ms"] - 1.0

    def to_doc(self) -> dict:
        """Machine-readable record (``BENCH_tenant.json``)."""
        return {
            "experiment": "tenant-bench",
            "params": self.params,
            "answers_match": self.answers_match,
            "solo": self.solo,
            "isolated": self.isolated,
            "unprotected": self.unprotected,
            "isolated_degradation": self.isolated_degradation,
            "unprotected_degradation": self.unprotected_degradation,
            "fairness": self.fairness,
            "autoscale": self.autoscale,
        }


def _registry(isolation: bool, *, victim_weight: float, antag_rate: float,
              antag_burst: int, victim_slo_ms: float) -> TenantRegistry:
    """Tenant table for one scenario.

    With isolation ON the antagonist is rate-limited and deprioritised;
    OFF it runs unlimited at the victim's own class — the registry
    still exists (so the code path is identical) but grants everything.
    """
    if isolation:
        antag = TenantSpec(ANTAGONIST, weight=1.0, rate=antag_rate,
                           burst=antag_burst, priority=1)
    else:
        antag = TenantSpec(ANTAGONIST, weight=1.0)
    victim = TenantSpec(VICTIM, weight=4.0, slo_ms=victim_slo_ms)
    return TenantRegistry([victim, antag])


async def _drive_victim(engine, groups: list[np.ndarray], *,
                        interval: float,
                        warmup: int = 16) -> tuple[np.ndarray, np.ndarray, int]:
    """Open-loop victim: one group every *interval* seconds, all timed.

    Returns (latencies_s, answers, n_rejected_groups).  Rejected
    groups answer zero (they are the isolation failure being measured;
    the bench asserts there are none in the accepted scenarios).
    *warmup* untimed rounds run first so cold-start costs (allocator,
    asyncio scheduling, NumPy dispatch) don't land in the first
    scenario's tail percentiles.
    """
    from ..serve.engine import Overloaded  # lazy: serve <-> tenant cycle

    loop = asyncio.get_running_loop()
    for g in groups[:warmup]:
        await engine.query_many(g, tenant=VICTIM)
        await asyncio.sleep(interval / 4)
    lat = np.zeros(len(groups))
    answers: list[np.ndarray | None] = [None] * len(groups)
    rejected = 0
    t0 = loop.time()

    async def one(i: int, group: np.ndarray) -> None:
        nonlocal rejected
        delay = t0 + i * interval - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        ts = loop.time()
        try:
            answers[i] = await engine.query_many(group, tenant=VICTIM)
        except (Overloaded, QuotaExceeded):
            answers[i] = np.zeros(group.size, dtype=np.int64)
            rejected += 1
        lat[i] = loop.time() - ts

    await asyncio.gather(*(one(i, g) for i, g in enumerate(groups)))
    return lat, np.concatenate(answers), rejected


async def _flood(engine, batches: list[np.ndarray], stop: asyncio.Event,
                 offset: int) -> int:
    """One closed-loop antagonist worker; returns batches answered."""
    from ..serve.engine import Overloaded  # lazy: serve <-> tenant cycle

    served = 0
    i = offset
    while not stop.is_set():
        batch = batches[i % len(batches)]
        i += 1
        try:
            await engine.query_many(batch, tenant=ANTAGONIST)
            served += 1
        except QuotaExceeded as exc:
            await asyncio.sleep(min(max(exc.retry_after, 1e-3), 0.05))
        except Overloaded as exc:
            await asyncio.sleep(min(max(exc.retry_after, 1e-3), 0.02))
    return served


def _scenario(store, victim_groups: list[np.ndarray],
              antag_batches: list[np.ndarray], *, isolation: bool,
              flooders: int, interval: float, antag_rate: float,
              antag_burst: int, victim_slo_ms: float, config) -> dict:
    """Run one contention scenario; returns the victim's view of it."""
    from ..serve.engine import QueryEngine  # lazy: serve <-> tenant cycle

    registry = _registry(isolation, victim_weight=4.0, antag_rate=antag_rate,
                         antag_burst=antag_burst, victim_slo_ms=victim_slo_ms)
    if not isolation:
        # "Unprotected" means every mechanism off: unlimited quota above
        # AND plain FIFO shard queues here, else DRR's weighted grants
        # would still shield the victim from the flood.
        config = replace(config, fair_scheduling=False)

    async def drive():
        async with QueryEngine(store, config, tenants=registry) as engine:
            stop = asyncio.Event()
            floods = [asyncio.create_task(_flood(engine, antag_batches, stop, j))
                      for j in range(flooders)]
            lat, answers, rejected = await _drive_victim(
                engine, victim_groups, interval=interval)
            stop.set()
            antag_served = sum(await asyncio.gather(*floods))
            engine.tenant_metrics.set_elapsed(len(victim_groups) * interval)
            return lat, answers, rejected, antag_served, engine

    lat, answers, rejected, antag_served, engine = asyncio.run(drive())
    return {
        "isolation": isolation,
        "flooders": flooders,
        "p50_ms": float(np.percentile(lat, 50) * 1e3),
        "p99_ms": float(np.percentile(lat, 99) * 1e3),
        "max_ms": float(lat.max() * 1e3),
        "victim_rejected_groups": rejected,
        "antagonist_batches_served": antag_served,
        "tenants": engine.tenant_metrics.snapshot(),
        "_answers": answers,  # stripped before the JSON doc
    }


def run_tenant_bench(
    counts: KmerCounts,
    *,
    n_victim_groups: int = 400,
    victim_group: int = 32,
    victim_interval: float = 15e-3,
    antag_batch: int = 256,
    flooders: int = 16,
    antag_rate: float = 32.0,
    n_shards: int = 2,
    zipf_s: float = 1.1,
    seed: int = 0,
    victim_slo_ms: float = 100.0,
    config=None,
    autoscale_nodes: int = 3,
) -> TenantBenchResult:
    """Antagonist-vs-victim isolation experiment; see the module doc.

    Default sizing rationale: the simulated flush service cost (30 ms
    fixed) dwarfs host scheduling jitter (a few ms at p99), so the
    solo-vs-isolated p99 ratio measures isolation, not the OS.  The
    antagonist's token bucket (32 keys/s against 256-key batches)
    admits its initial burst during warmup and then starves it for the
    whole timed window — the quota doing its job — while the
    unprotected run (quota unlimited, FIFO queues) lets the same 16
    closed-loop flooders stack multi-flush walls in front of every
    victim group.
    """
    from ..cluster.bench import expected_counts   # lazy: import cycles
    from ..serve.engine import EngineConfig
    from ..serve.shards import ShardedStore
    from ..serve.workload import zipf_workload

    config = config or EngineConfig(
        batch_size=256,
        batch_window=2e-3,
        max_inflight=8192,
        flush_service_time=30e-3,
        flush_service_per_key=1e-5,
    )
    store = ShardedStore.from_counts(counts, n_shards)

    victim_stream = zipf_workload(
        counts, n_victim_groups * victim_group, s=zipf_s, seed=seed,
        miss_fraction=0.02)
    victim_groups = [victim_stream.keys[i:i + victim_group]
                     for i in range(0, victim_stream.keys.size, victim_group)]
    antag_stream = zipf_workload(
        counts, 16 * antag_batch, s=zipf_s, seed=seed + 1)
    antag_batches = [antag_stream.keys[i:i + antag_batch]
                     for i in range(0, antag_stream.keys.size, antag_batch)]

    oracle = expected_counts(counts, victim_stream.keys)

    common = dict(interval=victim_interval, antag_rate=antag_rate,
                  antag_burst=antag_batch, victim_slo_ms=victim_slo_ms,
                  config=config)
    solo = _scenario(store, victim_groups, antag_batches,
                     isolation=True, flooders=0, **common)
    isolated = _scenario(store, victim_groups, antag_batches,
                         isolation=True, flooders=flooders, **common)
    unprotected = _scenario(store, victim_groups, antag_batches,
                            isolation=False, flooders=flooders, **common)

    # Bit-exactness: every non-rejected scenario must equal the oracle.
    match = all(
        np.array_equal(scn.pop("_answers"), oracle)
        for scn in (solo, isolated, unprotected)
        if scn["victim_rejected_groups"] == 0
    )

    autoscale = autoscale_demo(counts, n_nodes=autoscale_nodes, seed=seed)
    fairness = drr_fairness_demo(quantum=config.quantum_keys)

    return TenantBenchResult(
        solo=solo, isolated=isolated, unprotected=unprotected,
        answers_match=match, fairness=fairness, autoscale=autoscale,
        params={
            "n_victim_groups": n_victim_groups,
            "victim_group": victim_group,
            "victim_interval_s": victim_interval,
            "antag_batch": antag_batch,
            "flooders": flooders,
            "antag_rate_keys_s": antag_rate,
            "n_shards": n_shards,
            "zipf_s": zipf_s,
            "seed": seed,
            "victim_slo_ms": victim_slo_ms,
            "n_distinct": int(counts.n_distinct),
            "k": int(counts.k),
            "quantum_keys": config.quantum_keys,
            "flush_service_time": config.flush_service_time,
            "flush_service_per_key": config.flush_service_per_key,
        },
    )


class _FakeChunk:
    """Minimal schedulable: anything with sized .keys and a .tenant."""

    __slots__ = ("keys", "tenant")

    def __init__(self, n: int, tenant: str):
        self.keys = np.empty(n, dtype=np.uint64)
        self.tenant = tenant


def drr_fairness_demo(*, quantum: int = 64, weights=None,
                      chunk: int = 16, backlog_keys: int = 4000) -> dict:
    """Deterministic DRR evidence: served shares track weights.

    Backlogs every tenant, drains the queue until the lightest tenant
    has received *backlog_keys* keys, and reports each tenant's served
    fraction against its weight share over that saturated window.  No
    clocks, no asyncio — this is the same measurement the DST
    `fair-share` invariant fuzzes, surfaced in the bench record.
    """
    from .scheduler import DRRQueue

    weights = dict(weights or {VICTIM: 4.0, ANTAGONIST: 1.0})
    q = DRRQueue(weights, quantum=quantum)
    for tenant, w in weights.items():
        total = int(backlog_keys * w * 2)  # 2x so nobody drains early
        for _ in range(total // chunk):
            q.put_nowait(_FakeChunk(chunk, tenant))
    target = min(weights, key=weights.get)
    while q.served_keys.get(target, 0) < backlog_keys:
        q.get_nowait()
    total_served = sum(q.served_keys.values())
    total_weight = sum(weights.values())
    shares = {t: q.served_keys.get(t, 0) / total_served for t in weights}
    return {
        "quantum": quantum,
        "chunk_keys": chunk,
        "weights": weights,
        "served_keys": {t: int(q.served_keys.get(t, 0)) for t in weights},
        "served_share": shares,
        "weight_share": {t: w / total_weight for t, w in weights.items()},
        "max_share_error": max(
            abs(shares[t] - weights[t] / total_weight) for t in weights),
        "starvation_violations": q.starvation_violations,
    }


def autoscale_demo(counts: KmerCounts, *, n_nodes: int = 3,
                   seed: int = 0, chunk_keys: int = 4096) -> dict:
    """Hot spell -> split, cold spell -> merge; exact answers throughout.

    Loads are synthetic (the decision machine only sees node -> qps
    maps), but the topology changes are real: each decision drives
    :func:`repro.cluster.rebalance.rebalance` on a live router, and the
    full spectrum is re-queried for bit-exactness after every move.
    """
    from ..cluster.node import ClusterNode, RangeStore, build_cluster
    from ..cluster.router import ClusterRouter

    ring, nodes = build_cluster(counts, n_nodes, rf=2, seed=seed)
    router = ClusterRouter(ring, nodes)
    cfg = AutoscalerConfig(hot_load=1000.0, cold_load=100.0, patience=2,
                           cooldown=0, min_nodes=2, max_nodes=n_nodes + 2)
    scaler = Autoscaler(cfg)

    async def drive() -> dict:
        async def exact() -> bool:
            out = await router.query_many(counts.kmers)
            return bool(np.array_equal(out, counts.counts))

        doc: dict = {"config": cfg.to_doc(), "n_nodes_start": len(router.nodes)}
        doc["exact_before"] = await exact()

        hot = {nid: 5 * cfg.hot_load for nid in router.nodes}
        cold = {nid: cfg.cold_load / 10 for nid in router.nodes}
        make_node = lambda nid: ClusterNode(nid, RangeStore.empty())  # noqa: E731

        decisions = []
        for _ in range(cfg.patience):
            decision, report = await scaler.step(
                router, {nid: 5 * cfg.hot_load for nid in router.nodes},
                make_node=make_node, chunk_keys=chunk_keys)
        decisions.append({"action": decision.action, "node": decision.node,
                          "reason": decision.reason,
                          "moved_keys": report.moved_keys if report else 0})
        doc["n_nodes_after_split"] = len(router.nodes)
        doc["exact_after_split"] = await exact()

        for _ in range(cfg.patience):
            decision, report = await scaler.step(
                router, {nid: cfg.cold_load / 10 for nid in router.nodes},
                make_node=make_node, chunk_keys=chunk_keys)
        decisions.append({"action": decision.action, "node": decision.node,
                          "reason": decision.reason,
                          "moved_keys": report.moved_keys if report else 0})
        doc["n_nodes_after_merge"] = len(router.nodes)
        doc["exact_after_merge"] = await exact()
        doc["decisions"] = decisions
        doc["hot_sample_qps"] = hot
        doc["cold_sample_qps"] = cold
        return doc

    return asyncio.run(drive())
