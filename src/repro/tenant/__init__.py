"""repro.tenant — multi-tenant QoS over the serving read path.

One shared k-mer count database, many tenants with different weights,
quotas, priorities, and SLOs.  The layer adds four mechanisms to
:mod:`repro.serve`:

* :mod:`repro.tenant.registry` — per-tenant token-bucket rate limits,
  burst credits, and priority classes; admission rejects over-quota
  work with a typed :class:`QuotaExceeded` (carrying a retry-after
  hint) *before* it consumes queue depth;
* :mod:`repro.tenant.scheduler` — deficit-round-robin weighted-fair
  batching at the shard workers, so each flush mixes tenants in
  proportion to weight instead of FIFO arrival order;
* :mod:`repro.tenant.metrics` — per-tenant latency histograms, hit
  rates, rejection causes, and SLO-attainment gauges that merge
  bucket-exactly into the engine totals;
* :mod:`repro.tenant.autoscaler` — a load-driven state machine that
  splits hot rings and merges cold ones through live
  :mod:`repro.cluster` rebalancing, bit-exact during the moves.

:mod:`repro.tenant.workload` generates per-tenant traffic (diurnal
cycles + seeded bursts) and :mod:`repro.tenant.bench` runs the
antagonist-vs-victim isolation experiment behind ``dakc tenant-bench``.
Every scheduling knob is carried by :class:`repro.dst.Schedule`, and
the DST harness fuzzes the `no-starvation` and `fair-share`
invariants over it.  See ``docs/TENANCY.md``.
"""

from .registry import QuotaExceeded, TenantRegistry, TenantSpec, UnknownTenant
from .scheduler import DRRQueue

# repro.serve and repro.tenant import each other (the engine embeds the
# tenant layer; tenant metrics extend serve metrics).  Forcing the full
# serve package here — after the cycle-free registry/scheduler modules,
# before the serve-dependent ones — makes either import order work.
from .. import serve as _serve  # noqa: F401  (import-order anchor)

from .autoscaler import Autoscaler, AutoscalerConfig, Decision  # noqa: E402
from .bench import TenantBenchResult, autoscale_demo, run_tenant_bench  # noqa: E402
from .metrics import TenantMetricsSet  # noqa: E402
from .workload import (  # noqa: E402
    DiurnalSpec,
    TenantLoadSpec,
    merged_arrival_groups,
    tenant_workload,
)

__all__ = [
    "TenantSpec",
    "TenantRegistry",
    "QuotaExceeded",
    "UnknownTenant",
    "DRRQueue",
    "TenantMetricsSet",
    "Autoscaler",
    "AutoscalerConfig",
    "Decision",
    "DiurnalSpec",
    "TenantLoadSpec",
    "tenant_workload",
    "merged_arrival_groups",
    "TenantBenchResult",
    "run_tenant_bench",
    "autoscale_demo",
]
