"""Load-driven shard autoscaler: split hot rings, merge cold ones.

The decision side is a small deterministic state machine —
:meth:`Autoscaler.observe` folds one per-node load sample
(node -> qps) into hot/cold streak counters and emits a
:class:`Decision` — so DST can fuzz it on a virtual clock with no
cluster attached.  The actuation side (:meth:`Autoscaler.apply`) drives
:func:`repro.cluster.rebalance.rebalance` live: a *split* derives the
ring with one joiner and migrates ranges onto it while the router keeps
answering (bit-exact during the move — the rebalance tests pin that);
a *merge* derives the ring without the coldest node, migrates its
ranges away, then evicts the node object.

State machine (per observe tick)::

            mean load > hot_load          mean load < cold_load
    idle ------------------------> hot streak       cold streak
      ^        (streak < patience: keep counting)        |
      |   streak >= patience: emit split / merge,        |
      +------- enter cooldown for `cooldown` ticks <-----+

Mixed or in-band samples reset both streaks; any emitted action resets
them and starts the cooldown, so one overload episode produces one
topology change, not a thundering herd of them.  ``min_nodes`` /
``max_nodes`` clamp the topology; a decision that would leave the band
is emitted as a ``hold`` with the reason recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["AutoscalerConfig", "Decision", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds and damping for :class:`Autoscaler`."""

    hot_load: float = 1000.0    # mean qps/node above which we want a split
    cold_load: float = 100.0    # mean qps/node below which we want a merge
    patience: int = 3           # consecutive out-of-band ticks before acting
    cooldown: int = 5           # ticks to hold after any action
    min_nodes: int = 2
    max_nodes: int = 16

    def __post_init__(self) -> None:
        if self.hot_load <= self.cold_load:
            raise ValueError("hot_load must exceed cold_load")
        if self.cold_load < 0:
            raise ValueError("cold_load must be >= 0")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")

    def to_doc(self) -> dict:
        return {
            "hot_load": self.hot_load, "cold_load": self.cold_load,
            "patience": self.patience, "cooldown": self.cooldown,
            "min_nodes": self.min_nodes, "max_nodes": self.max_nodes,
        }


@dataclass(frozen=True)
class Decision:
    """One observe tick's verdict: hold, or change the topology."""

    action: str                 # "hold" | "split" | "merge"
    node: int | None = None     # hottest node (split) / coldest node (merge)
    reason: str = ""

    def __post_init__(self) -> None:
        if self.action not in ("hold", "split", "merge"):
            raise ValueError(f"unknown action {self.action!r}")


@dataclass
class Autoscaler:
    """Per-tick load watcher emitting split/merge decisions."""

    config: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    hot_streak: int = 0
    cold_streak: int = 0
    cooldown_left: int = 0
    #: Every non-hold decision, in order (for tests and the DST digest).
    history: list = field(default_factory=list)

    # -- decision side (pure, DST-fuzzable) ----------------------------

    def observe(self, load: Mapping[int, float]) -> Decision:
        """Fold one load sample (node -> qps) and decide."""
        if not load:
            return Decision("hold", reason="no sample")
        if self.cooldown_left > 0:
            self.cooldown_left -= 1
            return Decision("hold", reason="cooldown")
        cfg = self.config
        n_nodes = len(load)
        mean = sum(load.values()) / n_nodes
        if mean > cfg.hot_load:
            self.hot_streak += 1
            self.cold_streak = 0
            if self.hot_streak >= cfg.patience:
                if n_nodes >= cfg.max_nodes:
                    return Decision("hold", reason="at max_nodes")
                hottest = max(load, key=lambda n: (load[n], n))
                return self._emit(Decision(
                    "split", node=hottest,
                    reason=f"mean {mean:.1f} qps > {cfg.hot_load:.1f} "
                           f"for {self.hot_streak} ticks"))
        elif mean < cfg.cold_load:
            self.cold_streak += 1
            self.hot_streak = 0
            if self.cold_streak >= cfg.patience:
                if n_nodes <= cfg.min_nodes:
                    return Decision("hold", reason="at min_nodes")
                coldest = min(load, key=lambda n: (load[n], n))
                return self._emit(Decision(
                    "merge", node=coldest,
                    reason=f"mean {mean:.1f} qps < {cfg.cold_load:.1f} "
                           f"for {self.cold_streak} ticks"))
        else:
            self.hot_streak = 0
            self.cold_streak = 0
        return Decision("hold", reason="within band")

    def _emit(self, decision: Decision) -> Decision:
        self.hot_streak = 0
        self.cold_streak = 0
        self.cooldown_left = self.config.cooldown
        self.history.append(decision)
        return decision

    # -- actuation side (drives live cluster rebalancing) --------------

    async def apply(self, router, decision: Decision, *,
                    make_node, chunk_keys: int = 4096):
        """Actuate a decision on a live router; returns a report or None.

        * split: register ``make_node(new_id)`` (an empty
          :class:`~repro.cluster.node.ClusterNode`), then rebalance onto
          the ring with it joined;
        * merge: rebalance onto the ring without ``decision.node``, then
          evict the drained node object.

        Queries keep flowing during either move; the rebalance protocol
        guarantees bit-exact answers throughout.
        """
        from ..cluster.rebalance import rebalance  # lazy: avoid cycle

        if decision.action == "hold":
            return None
        if decision.action == "split":
            new_id = max(router.nodes) + 1
            router.add_node(make_node(new_id))
            return await rebalance(router, router.ring.with_node(new_id),
                                   chunk_keys=chunk_keys)
        # merge
        report = await rebalance(router,
                                 router.ring.without_node(decision.node),
                                 chunk_keys=chunk_keys)
        router.remove_node(decision.node)
        return report

    async def step(self, router, load: Mapping[int, float], *,
                   make_node, chunk_keys: int = 4096):
        """observe + apply in one call; returns (decision, report|None)."""
        decision = self.observe(load)
        report = await self.apply(router, decision, make_node=make_node,
                                  chunk_keys=chunk_keys)
        return decision, report
