"""Tenant identity, quotas, and admission: who may send how much.

"Millions of users" means the serving stack faces *tenants*, not one
anonymous stream: each named client carries a weight (its fair share
of shard-worker batch slots), a token-bucket rate limit with burst
credits (how many keys per second it may admit, and how far it may
briefly overshoot), a priority class (how early it is shed when the
engine saturates), and an optional latency SLO that the per-tenant
metrics grade.  The :class:`TenantRegistry` is the one table the
query engine consults on every request; over-quota work is rejected
with a typed :class:`QuotaExceeded` carrying a *retry-after* hint —
before the request consumes any queue depth, so an abusive tenant
cannot convert its rejected traffic into latency for everyone else.

Token buckets take an explicit clock (``now``), which keeps admission
a pure function of ``(spec, traffic, clock)`` — the property that lets
:mod:`repro.dst` drive the same admission decisions from a virtual
clock and fuzz them deterministically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

__all__ = ["QuotaExceeded", "UnknownTenant", "TenantSpec", "TokenBucket",
           "TenantRegistry"]


class QuotaExceeded(RuntimeError):
    """A tenant's token bucket cannot cover the request right now.

    Carries the tenant name, the request size, and ``retry_after`` —
    the seconds until the bucket will have refilled enough to admit a
    request of this size (the hint a well-behaved client sleeps on).
    """

    def __init__(self, tenant: str, requested: int, retry_after: float):
        super().__init__(
            f"tenant {tenant!r} over quota: {requested} keys requested, "
            f"retry after {retry_after:.4f}s")
        self.tenant = tenant
        self.requested = requested
        self.retry_after = retry_after


class UnknownTenant(KeyError):
    """A request named a tenant the registry has never heard of."""

    def __init__(self, tenant: str):
        super().__init__(tenant)
        self.tenant = tenant

    def __str__(self) -> str:
        return f"unknown tenant {self.tenant!r} (register a TenantSpec first)"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's service contract.

    * ``weight`` — relative share of shard-worker batch slots under
      contention (the DRR scheduler serves ~``weight / sum(weights)``
      of the saturated throughput to this tenant);
    * ``rate`` / ``burst`` — token-bucket quota in keys/second and
      bucket capacity in keys (``None`` rate = unlimited; ``burst``
      defaults to one second of rate);
    * ``priority`` — shedding class: class *p* sees an effective
      admission bound of ``max_inflight >> p``, so best-effort traffic
      is rejected while the engine still has headroom for class 0;
    * ``slo_ms`` — per-query latency target graded by the SLO
      attainment gauge in :class:`~repro.tenant.metrics.TenantMetricsSet`.
    """

    name: str
    weight: float = 1.0
    rate: float | None = None
    burst: float | None = None
    priority: int = 0
    slo_ms: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if not (self.weight > 0 and math.isfinite(self.weight)):
            raise ValueError("tenant weight must be a positive finite float")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be > 0 keys/s (None = unlimited)")
        if self.burst is not None and self.burst <= 0:
            raise ValueError("burst must be > 0 keys (None = 1s of rate)")
        if self.priority < 0:
            raise ValueError("priority class must be >= 0")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be > 0")

    @property
    def bucket_capacity(self) -> float | None:
        """Effective burst credit in keys (None = unlimited tenant)."""
        if self.rate is None:
            return None
        return self.burst if self.burst is not None else self.rate

    def to_doc(self) -> dict:
        return {"name": self.name, "weight": self.weight, "rate": self.rate,
                "burst": self.burst, "priority": self.priority,
                "slo_ms": self.slo_ms}

    @classmethod
    def from_doc(cls, doc: dict) -> "TenantSpec":
        return cls(
            name=str(doc["name"]),
            weight=float(doc.get("weight", 1.0)),
            rate=None if doc.get("rate") is None else float(doc["rate"]),
            burst=None if doc.get("burst") is None else float(doc["burst"]),
            priority=int(doc.get("priority", 0)),
            slo_ms=None if doc.get("slo_ms") is None else float(doc["slo_ms"]),
        )


class TokenBucket:
    """Classic token bucket with an explicit clock.

    Holds up to *burst* tokens, refilling at *rate* tokens/second.
    ``try_take(n, now)`` either debits *n* tokens or reports the
    seconds until they will exist — callers surface that as the
    retry-after hint.  Passing ``now`` explicitly (monotonic seconds)
    keeps the bucket deterministic under a virtual clock.
    """

    __slots__ = ("rate", "burst", "tokens", "_t")

    def __init__(self, rate: float, burst: float):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)  # a fresh tenant starts with full credit
        self._t: float | None = None

    def _refill(self, now: float) -> None:
        if self._t is None:
            self._t = now
            return
        if now > self._t:
            self.tokens = min(self.burst, self.tokens + (now - self._t) * self.rate)
            self._t = now

    def available(self, now: float) -> float:
        """Tokens on hand at *now* (after refill)."""
        self._refill(now)
        return self.tokens

    def try_take(self, n: float, now: float) -> float | None:
        """Debit *n* tokens; returns None on success, else retry-after.

        The hint is exact for the refill model: after that many
        seconds the bucket holds at least ``min(n, burst)`` tokens.
        Requests larger than the bucket itself can never succeed in
        one take; they get the time to a *full* bucket (clients should
        split such requests).
        """
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return None
        deficit = min(n, self.burst) - self.tokens
        return max(deficit, 0.0) / self.rate

    def refund(self, n: float) -> None:
        """Return tokens debited for work that was never enqueued."""
        self.tokens = min(self.burst, self.tokens + n)


class TenantRegistry:
    """The admission table: specs plus live token buckets.

    The query engine calls :meth:`admit` on every request; the DRR
    scheduler reads :meth:`weights`.  Registration order is preserved
    (it seeds the scheduler's initial round-robin order).
    """

    def __init__(self, specs: "list[TenantSpec] | tuple[TenantSpec, ...]" = ()):
        self._specs: dict[str, TenantSpec] = {}
        self._buckets: dict[str, TokenBucket] = {}
        for spec in specs:
            self.register(spec)

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def register(self, spec: TenantSpec) -> TenantSpec:
        """Add (or replace) one tenant's contract; resets its bucket."""
        self._specs[spec.name] = spec
        if spec.rate is not None:
            self._buckets[spec.name] = TokenBucket(spec.rate, spec.bucket_capacity)
        else:
            self._buckets.pop(spec.name, None)
        return spec

    def spec(self, tenant: str) -> TenantSpec:
        try:
            return self._specs[tenant]
        except KeyError:
            raise UnknownTenant(tenant) from None

    def bucket(self, tenant: str) -> TokenBucket | None:
        """The tenant's live bucket (None for unlimited tenants)."""
        self.spec(tenant)
        return self._buckets.get(tenant)

    def weights(self) -> dict[str, float]:
        """Tenant -> DRR weight, in registration order."""
        return {name: spec.weight for name, spec in self._specs.items()}

    def admit(self, tenant: str, n: int, now: float | None = None) -> TenantSpec:
        """Charge *n* keys to the tenant's quota or raise.

        Raises :class:`UnknownTenant` for unregistered names and
        :class:`QuotaExceeded` (with the retry-after hint) when the
        bucket cannot cover the request.  Returns the spec so callers
        get priority/weight without a second lookup.
        """
        spec = self.spec(tenant)
        bucket = self._buckets.get(tenant)
        if bucket is not None:
            t = time.monotonic() if now is None else now
            hint = bucket.try_take(float(n), t)
            if hint is not None:
                raise QuotaExceeded(tenant, int(n), hint)
        return spec

    def refund(self, tenant: str, n: int) -> None:
        """Return quota debited for a request rejected downstream."""
        bucket = self._buckets.get(tenant)
        if bucket is not None:
            bucket.refund(float(n))

    def to_doc(self) -> dict:
        return {"tenants": [s.to_doc() for s in self._specs.values()]}

    @classmethod
    def from_doc(cls, doc: dict) -> "TenantRegistry":
        return cls([TenantSpec.from_doc(d) for d in doc.get("tenants", [])])
