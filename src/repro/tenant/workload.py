"""Per-tenant load generation: diurnal cycles and seeded bursts.

Multi-tenant serving benchmarks need traffic whose *shape* differs per
tenant — an interactive tenant with a day/night cycle, a batch tenant
that floods in bursts — not just different rates.  This module layers a
:class:`DiurnalSpec` (sinusoidal rate modulation) on top of the serving
layer's exact :class:`~repro.serve.workload.BurstSpec` warp, and merges
several tenants' streams into one globally time-ordered sequence of
``(tenant, keys)`` arrival groups for the load driver.

The diurnal overlay uses the same inhomogeneous-Poisson time-change as
the burst warp: with cumulative rate ``M(t) = integral of m``, mapping
homogeneous arrivals ``T`` through ``M^{-1}`` yields arrivals with
instantaneous rate ``base * m(t)``.  The sinusoid has no closed-form
inverse, so ``M^{-1}`` is evaluated by monotone interpolation on a
dense grid — deterministic for a given spec, accurate to the grid
resolution (``period / 512``), and order-preserving.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..core.result import KmerCounts
from ..serve.workload import BurstSpec, QueryWorkload, zipf_workload

__all__ = ["DiurnalSpec", "TenantLoadSpec", "tenant_workload",
           "merged_arrival_groups"]


@dataclass(frozen=True)
class DiurnalSpec:
    """Sinusoidal rate modulation: ``m(t) = 1 + A sin(2pi (t-phase)/P)``.

    *amplitude* ``A`` in [0, 1) keeps the rate positive; *period* ``P``
    is the cycle length in seconds (a benchmark's "day"); *phase*
    shifts where in the cycle the run starts.  Peak rate is ``1 + A``
    times the base, trough ``1 - A``.
    """

    amplitude: float = 0.5
    period: float = 10.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("diurnal period must be > 0")

    @property
    def active(self) -> bool:
        return self.amplitude > 0.0

    def rate_at(self, t: np.ndarray) -> np.ndarray:
        """Instantaneous rate multiplier m(t)."""
        t = np.asarray(t, dtype=np.float64)
        return 1.0 + self.amplitude * np.sin(
            2.0 * math.pi * (t - self.phase) / self.period)

    def to_doc(self) -> dict:
        return {"amplitude": self.amplitude, "period": self.period,
                "phase": self.phase}

    @classmethod
    def from_doc(cls, doc: dict) -> "DiurnalSpec":
        return cls(amplitude=float(doc["amplitude"]),
                   period=float(doc["period"]),
                   phase=float(doc.get("phase", 0.0)))


def _diurnal_warp(arrivals: np.ndarray, spec: DiurnalSpec) -> np.ndarray:
    """Warp homogeneous arrivals through the sinusoid's ``M^{-1}``.

    ``M`` is computed by trapezoidal cumulation of ``m`` on a dense
    grid and inverted with :func:`np.interp` (both strictly monotone
    since ``m >= 1 - A > 0``).
    """
    if arrivals.size == 0 or not spec.active:
        return arrivals
    t_last = float(arrivals[-1])
    # m >= 1 - A, so reaching M(t) = t_last needs at most
    # t_last / (1 - A) of warped time; pad a period for safety.
    horizon = t_last / (1.0 - spec.amplitude) + spec.period
    step = spec.period / 512.0
    grid = np.arange(0.0, horizon + step, step)
    m = spec.rate_at(grid)
    cum = np.concatenate(
        [[0.0], np.cumsum((m[:-1] + m[1:]) / 2.0 * np.diff(grid))])
    return np.interp(arrivals, cum, grid)


@dataclass(frozen=True)
class TenantLoadSpec:
    """One tenant's traffic shape for a multi-tenant run."""

    tenant: str
    n_queries: int
    rate_qps: float = 10_000.0
    zipf_s: float = 1.1
    miss_fraction: float = 0.0
    diurnal: DiurnalSpec | None = None
    burst: BurstSpec | None = None

    def __post_init__(self) -> None:
        if self.n_queries < 0:
            raise ValueError("n_queries must be >= 0")
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be > 0")


def tenant_workload(counts: KmerCounts, spec: TenantLoadSpec, *,
                    seed: int = 0) -> QueryWorkload:
    """Generate one tenant's stream: Zipf keys, burst + diurnal warps.

    The burst warp (exact, piecewise-linear) runs inside
    :func:`zipf_workload`; the diurnal warp composes on top, so a
    tenant can carry both a day cycle and sharp periodic bursts.
    """
    wl = zipf_workload(
        counts, spec.n_queries, s=spec.zipf_s, seed=seed,
        rate_qps=spec.rate_qps, miss_fraction=spec.miss_fraction,
        burst=spec.burst)
    if spec.diurnal is not None and spec.diurnal.active:
        wl = replace(wl, arrivals=_diurnal_warp(wl.arrivals, spec.diurnal))
    return wl


def merged_arrival_groups(
    workloads: dict[str, QueryWorkload], tick: float = 1e-3
) -> list[tuple[str, np.ndarray]]:
    """Merge per-tenant streams into global-time-ordered (tenant, keys).

    Each element is one tenant's keys arriving within one *tick*;
    different tenants' groups interleave by arrival slot, modelling
    concurrent clients hitting the same engine.  Slot ties are broken
    by the dict's tenant order (deterministic in Python).
    """
    if tick <= 0:
        raise ValueError("tick must be > 0")
    tagged: list[tuple[int, int, str, np.ndarray]] = []
    for order, (tenant, wl) in enumerate(workloads.items()):
        if not wl.keys.size:
            continue
        slot = (wl.arrivals // tick).astype(np.int64)
        bounds = np.flatnonzero(np.diff(slot)) + 1
        starts = np.concatenate([[0], bounds])
        for i, grp in enumerate(np.split(wl.keys, bounds)):
            tagged.append((int(slot[starts[i]]), order, tenant, grp))
    tagged.sort(key=lambda t: (t[0], t[1]))
    return [(tenant, grp) for _, _, tenant, grp in tagged]
