"""Vectorised super-k-mer batch kernels: the counting fast path.

:mod:`repro.seq.minimizers` defines super-k-mers and provides the
readable per-read splitter (:func:`~repro.seq.minimizers.split_superkmers`,
kept as the test oracle).  This module is the production path: a whole
*batch* of encoded reads is flattened into one code array and split
into super-k-mer runs with a fixed number of NumPy passes — zero
per-k-mer (and zero per-read) Python in the hot loop.  The same kernel
feeds every consumer of super-k-mers in the codebase:

* **streaming counting** (:mod:`repro.apps.streaming`): fused
  extract -> encode -> accumulate via :func:`count_superkmer_batch`;
* **spill binning** (:mod:`repro.ooc.spill`): batch split + the
  splitmix64 owner hash via :func:`partition_superkmers`;
* **distributed routing** (:mod:`repro.core.minipart`): packed wire
  accounting via :func:`superkmer_wire_bytes` / :func:`pack_spans`.

The split kernel works on *window* arrays: a batch of ``m`` total
bases has ``m - k + 1`` candidate k-mer windows, of which a window is
**valid** iff it does not cross a read boundary and contains no
ambiguous base.  Maximal runs of valid windows sharing one minimizer
are the super-k-mers; the whole decomposition is boolean algebra over
three window-aligned arrays (validity, minimizer equality, read id),
identical in result to running the per-read splitter on every read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.owner import owner_pe, splitmix64, splitmix64_inverse
from .alphabet import INVALID_CODE
from .kmers import MAX_K

__all__ = [
    "DEFAULT_MINIMIZER_LEN",
    "SuperKmerBatch",
    "flatten_reads",
    "split_superkmers_flat",
    "split_superkmers_batch",
    "pack_spans",
    "partition_superkmers",
    "count_superkmer_batch",
    "superkmer_wire_bytes",
]

#: Default minimizer length of the fast path (KMC2/KMC3 use 7-9; the
#: out-of-core spiller has always used ``min(k, 7)``).
DEFAULT_MINIMIZER_LEN: int = 7


def _check_kw(k: int, w: int) -> None:
    if not 1 <= k <= MAX_K:
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")
    if w > k:
        raise ValueError("minimizer length must be <= k")
    if w < 1:
        raise ValueError("minimizer length must be >= 1")


def _cumsum0(a: np.ndarray) -> np.ndarray:
    """``[0, a0, a0+a1, ...]`` — offsets of variable-length records."""
    out = np.zeros(a.size + 1, dtype=np.int64)
    np.cumsum(a, out=out[1:])
    return out


def _span_positions(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat source index of every element of every span, span-major."""
    total = int(lengths.sum())
    within = np.arange(total, dtype=np.int64) - np.repeat(
        _cumsum0(lengths)[:-1], lengths)
    return np.repeat(starts, lengths) + within


def _sliding_min(a: np.ndarray, length: int) -> np.ndarray:
    """Minimum of every length-``length`` window of *a* (block trick).

    ``out[i] = min(a[i : i + length])`` for all ``a.size - length + 1``
    windows, in two :func:`numpy.minimum.accumulate` passes: split *a*
    into blocks of ``length``, take prefix minima and suffix minima
    per block, then every window is ``min(suffix[i],
    prefix[i + length - 1])`` — O(n) total regardless of window size.
    """
    if length == 1:
        return a
    pad = (-a.size) % length
    if pad:
        a = np.concatenate(
            [a, np.full(pad, np.iinfo(a.dtype).max, dtype=a.dtype)])
    blocks = a.reshape(-1, length)
    prefix = np.minimum.accumulate(blocks, axis=1).reshape(-1)
    suffix = np.minimum.accumulate(
        blocks[:, ::-1], axis=1)[:, ::-1].reshape(-1)
    n_out = a.size - pad - length + 1
    return np.minimum(suffix[:n_out], prefix[length - 1:length - 1 + n_out])


@dataclass(slots=True)
class SuperKmerBatch:
    """Super-k-mer runs of one read batch, as flat index arrays.

    ``codes`` is the concatenated 2-bit encoding of every read in the
    batch (ambiguous bases included as :data:`INVALID_CODE` — spans
    never cover them); super-k-mer ``i`` is the span
    ``codes[starts[i] : starts[i] + lengths[i]]``, covers
    ``lengths[i] - k + 1`` k-mers, and carries ``minimizers[i]`` (the
    routing key) plus ``read_ids[i]`` (its source read).
    """

    codes: np.ndarray       # uint8, flat batch encoding
    starts: np.ndarray      # int64, span start per super-k-mer
    lengths: np.ndarray     # int64, span bases per super-k-mer
    minimizers: np.ndarray  # uint64, shared minimizer per super-k-mer
    read_ids: np.ndarray    # int64, source read per super-k-mer
    k: int
    w: int
    # Split-kernel byproducts reused by kmers(); dropped by take().
    _window_kmers: np.ndarray | None = field(default=None, repr=False)
    _window_valid: np.ndarray | None = field(default=None, repr=False)

    # -- shape ---------------------------------------------------------

    @property
    def n_superkmers(self) -> int:
        return int(self.starts.size)

    @property
    def n_kmers_per(self) -> np.ndarray:
        """k-mers covered by each super-k-mer (``lengths - k + 1``)."""
        return self.lengths - self.k + 1

    @property
    def n_kmers(self) -> int:
        return int(self.n_kmers_per.sum())

    @property
    def n_bases(self) -> int:
        return int(self.lengths.sum())

    # -- derived forms -------------------------------------------------

    def kmers(self) -> np.ndarray:
        """All covered k-mers as packed ``uint64``, span-major order.

        Within a read this is exactly the valid-window order of
        :func:`repro.seq.kmers.extract_kmers`; across reads it is
        batch order.  Uses the split kernel's window array when still
        attached, else ``k`` vectorised gathers over the spans.
        """
        if self._window_kmers is not None:
            return self._window_kmers[self._window_valid]
        if self.n_superkmers == 0:
            return np.empty(0, dtype=np.uint64)
        pos = _span_positions(self.starts, self.n_kmers_per)
        out = np.zeros(pos.size, dtype=np.uint64)
        for j in range(self.k):
            np.left_shift(out, np.uint64(2), out=out)
            np.bitwise_or(out, self.codes[pos + j].astype(np.uint64), out=out)
        return out

    def gather_spans(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous ``(codes, lengths)`` of the selected super-k-mers.

        The returned code array owns its memory (one gather), so a
        caller buffering a subset — the spill writer — does not pin
        the whole batch.
        """
        idx = np.asarray(indices, dtype=np.int64)
        lengths = self.lengths[idx]
        flat = self.codes[_span_positions(self.starts[idx], lengths)]
        return flat, lengths

    def pack(self) -> tuple[np.ndarray, np.ndarray]:
        """2-bit packed wire form: ``(uint32 lengths, byte blob)``.

        Identical layout to :func:`repro.ooc.format.pack_superkmers`
        (4 bases/byte, first base in the high bits, per-record byte
        padding), so a packed batch drops straight into spill bins.
        """
        return pack_spans(self.codes, self.starts, self.lengths)

    def wire_bytes(self, header_bytes: int = 8) -> int:
        """Total packed bytes on the wire, *header_bytes* per record."""
        return superkmer_wire_bytes(self.lengths, header_bytes=header_bytes)

    def take(self, indices: np.ndarray) -> "SuperKmerBatch":
        """Sub-batch of the selected super-k-mers (shares ``codes``)."""
        idx = np.asarray(indices, dtype=np.int64)
        return SuperKmerBatch(
            codes=self.codes, starts=self.starts[idx],
            lengths=self.lengths[idx], minimizers=self.minimizers[idx],
            read_ids=self.read_ids[idx], k=self.k, w=self.w)


def _empty_batch(codes: np.ndarray, k: int, w: int) -> SuperKmerBatch:
    i64 = np.empty(0, dtype=np.int64)
    return SuperKmerBatch(codes=codes, starts=i64, lengths=i64.copy(),
                          minimizers=np.empty(0, dtype=np.uint64),
                          read_ids=i64.copy(), k=k, w=w)


def flatten_reads(reads: np.ndarray | list) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate encoded reads into ``(flat codes, offsets)``.

    Accepts a 2-D ``uint8`` matrix (rows = equal-length reads) or a
    list of 1-D code arrays; ``offsets`` has ``n_reads + 1`` entries.
    """
    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        n, m = reads.shape
        flat = np.ascontiguousarray(reads, dtype=np.uint8).reshape(-1)
        return flat, np.arange(n + 1, dtype=np.int64) * m
    rows = [np.asarray(r, dtype=np.uint8).reshape(-1) for r in reads]
    lengths = np.array([r.size for r in rows], dtype=np.int64)
    flat = (np.concatenate(rows) if rows
            else np.empty(0, dtype=np.uint8))
    return flat, _cumsum0(lengths)


def split_superkmers_flat(
    codes: np.ndarray, offsets: np.ndarray, k: int, w: int
) -> SuperKmerBatch:
    """Split a flattened read batch into super-k-mers (the kernel).

    *codes* is the concatenation of every read's 2-bit encoding
    (ambiguous bases as :data:`INVALID_CODE`); *offsets* delimits the
    reads.  Equivalent to per-read
    :func:`~repro.seq.minimizers.split_superkmers` — same spans, same
    minimizers, same order — in a fixed number of vectorised passes:
    one boundary/ambiguity mask, ``k`` shifted ORs for the window
    k-mers, ``k - w + 1`` reductions for the minimizers, and boolean
    run detection.
    """
    _check_kw(k, w)
    codes = np.asarray(codes, dtype=np.uint8)
    offsets = np.asarray(offsets, dtype=np.int64)
    m = codes.size
    if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != m:
        raise ValueError("offsets must run from 0 to codes.size")
    if m < k:
        return _empty_batch(codes, k, w)
    n_win = m - k + 1
    read_lengths = np.diff(offsets)
    if read_lengths.size and read_lengths.min() < 0:
        raise ValueError("offsets must be non-decreasing")
    read_id = np.repeat(np.arange(read_lengths.size, dtype=np.int64),
                        read_lengths)
    # Window i covers codes[i : i+k]: valid iff it stays inside one
    # read and covers no ambiguous base.
    valid = read_id[:n_win] == read_id[k - 1:]
    invalid = codes == INVALID_CODE
    if invalid.any():
        cum = _cumsum0(invalid)
        valid &= (cum[k:k + n_win] - cum[:n_win]) == 0
    if not valid.any():
        return _empty_batch(codes, k, w)
    kmers = np.zeros(n_win, dtype=np.uint64)
    for j in range(k):
        np.left_shift(kmers, np.uint64(2), out=kmers)
        np.bitwise_or(kmers, codes[j:j + n_win].astype(np.uint64), out=kmers)
    # Minimizer hashes: hash every w-mer ONCE, then slide a length
    # ``k - w + 1`` window minimum over the hashes with the two-pass
    # block trick (prefix + suffix minima per block).  This replaces
    # the per-window ``k - w + 1`` hash reductions of
    # :func:`repro.seq.minimizers.minimizers_of_kmers` with O(1)
    # passes, and is exactly equivalent: splitmix64 is injective, so
    # the hash-minimal w-mer is unique and run boundaries (hash
    # equality) match value equality.  The w-mer *values* are
    # recovered from the winning hashes via the mixer's inverse, but
    # only where they are needed (at run starts).
    wmers = np.zeros(m - w + 1, dtype=np.uint64)
    for j in range(w):
        np.left_shift(wmers, np.uint64(2), out=wmers)
        np.bitwise_or(wmers, codes[j:j + wmers.size].astype(np.uint64),
                      out=wmers)
    hashes = splitmix64(wmers)
    mins = _sliding_min(hashes, k - w + 1)[:n_win]
    # Run boundaries: a valid window starts a super-k-mer when its
    # predecessor window is invalid (segment/read boundary) or carries
    # a different minimizer; symmetric for run ends.
    # "same run" needs equal minimizers AND the same source read; the
    # read check only matters for k == 1, where adjacent windows in
    # different reads are both valid.
    win_read = read_id[:n_win]
    same = np.empty(n_win, dtype=bool)
    same[0] = False
    same[1:] = (mins[1:] == mins[:-1]) & (win_read[1:] == win_read[:-1])
    prev_valid = np.empty(n_win, dtype=bool)
    prev_valid[0] = False
    prev_valid[1:] = valid[:-1]
    next_valid = np.empty(n_win, dtype=bool)
    next_valid[-1] = False
    next_valid[:-1] = valid[1:]
    next_same = np.empty(n_win, dtype=bool)
    next_same[-1] = False
    next_same[:-1] = same[1:]
    starts = np.flatnonzero(valid & (~prev_valid | ~same))
    ends = np.flatnonzero(valid & (~next_valid | ~next_same))
    return SuperKmerBatch(
        codes=codes, starts=starts, lengths=ends - starts + k,
        minimizers=splitmix64_inverse(mins[starts]),
        read_ids=read_id[starts], k=k, w=w,
        _window_kmers=kmers, _window_valid=valid)


def split_superkmers_batch(
    reads: np.ndarray | list, k: int, w: int
) -> SuperKmerBatch:
    """Split a batch of encoded reads (matrix or list) in one pass."""
    flat, offsets = flatten_reads(reads)
    return split_superkmers_flat(flat, offsets, k, w)


def pack_spans(
    codes: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """2-bit pack arbitrary spans of a code array into wire form.

    Returns ``(uint32 lengths, byte blob)`` in the spill-bin chunk
    layout: 4 bases/byte, first base in the high bits, each record
    padded to a whole byte.  Spans may overlap (batch super-k-mers
    share their ``k - 1`` overlap bases) — each is packed standalone.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have the same shape")
    lengths32 = lengths.astype(np.uint32)
    if lengths.size == 0:
        return lengths32, np.empty(0, dtype=np.uint8)
    if lengths.min() <= 0:
        raise ValueError("cannot pack an empty super-k-mer")
    padded = -(-lengths // 4) * 4
    offs = _cumsum0(padded)
    staging = np.zeros(int(offs[-1]), dtype=np.uint8)
    flat = codes[_span_positions(starts, lengths)]
    if flat.size and flat.max() > 3:
        raise ValueError("super-k-mer codes must be 2-bit (no ambiguity)")
    within = np.arange(flat.size, dtype=np.int64) - np.repeat(
        _cumsum0(lengths)[:-1], lengths)
    staging[np.repeat(offs[:-1], lengths) + within] = flat
    blob = (
        (staging[0::4] << 6) | (staging[1::4] << 4)
        | (staging[2::4] << 2) | staging[3::4]
    ).astype(np.uint8)
    return lengths32, blob


def superkmer_wire_bytes(lengths: np.ndarray, *, header_bytes: int = 8) -> int:
    """Packed wire bytes of super-k-mer spans: ``ceil(len/4) + header``."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if header_bytes < 0:
        raise ValueError("header_bytes must be >= 0")
    return int((-(-lengths // 4) + header_bytes).sum())


def partition_superkmers(
    batch: SuperKmerBatch, n_bins: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Route a batch to bins by the splitmix64 hash of its minimizers.

    Returns ``(owners, order, boundaries)``: ``owners[i]`` is the bin
    of super-k-mer ``i`` (the same :func:`repro.core.owner.owner_pe`
    assignment used by every shard/ring/bin in this codebase),
    ``order`` permutes super-k-mers so bins are contiguous, and
    ``boundaries`` has ``n_bins + 1`` entries such that bin ``b`` owns
    ``order[boundaries[b] : boundaries[b+1]]``.  Because a minimizer
    is a pure function of k-mer content, every occurrence of a k-mer
    lands in exactly one bin: bins are closed multisets and can be
    counted independently.
    """
    owners = owner_pe(batch.minimizers, n_bins)
    order = np.argsort(owners, kind="stable")
    boundaries = _cumsum0(np.bincount(owners, minlength=n_bins))
    return owners, order, boundaries


def count_superkmer_batch(
    batch: SuperKmerBatch, *, canonical: bool = False, n_bins: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """Fused route -> extract -> sort -> accumulate of one batch.

    Returns sorted ``(unique_kmers, counts)``.  With ``n_bins == 1``
    (the in-process default) the whole batch feeds one hybrid sort;
    with more bins the batch is partitioned by minimizer owner first
    and each closed bin is counted independently — the shape the
    distributed/out-of-core layers run, exposed here so tests can pin
    bin-count invariance.
    """
    from ..sort.accumulate import accumulate_sorted, merge_count_arrays
    from .kmers import canonical_kmers

    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    k = batch.k

    def _count(kmers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if canonical:
            kmers = canonical_kmers(kmers, k)
        # numpy's introsort beats the simulation-grade python-level
        # radix (hybrid_sort) by an order of magnitude at batch sizes;
        # accumulate_sorted only needs *a* sorted array.
        return accumulate_sorted(np.sort(kmers))

    if n_bins == 1:
        return _count(batch.kmers())
    _, order, boundaries = partition_superkmers(batch, n_bins)
    kmers = batch.kmers()
    nk_per = batch.n_kmers_per
    kmer_offsets = _cumsum0(nk_per)[:-1]
    parts = []
    for b in range(n_bins):
        idx = order[boundaries[b]:boundaries[b + 1]]
        if idx.size == 0:
            continue
        pos = _span_positions(kmer_offsets[idx], nk_per[idx])
        parts.append(_count(kmers[pos]))
    return merge_count_arrays(parts)
