"""DNA alphabet definitions and lookup tables.

The paper works on the DNA alphabet ``Sigma = {A, C, G, T}`` with the
standard 2-bit encoding used by essentially every k-mer counter
(Jellyfish, KMC3, HySortK, DAKC):

====  =====  ==========
base  code   complement
====  =====  ==========
A     0      T
C     1      G
G     2      C
T     3      A
====  =====  ==========

This module provides the canonical constant tables used by the rest of
:mod:`repro.seq`.  All tables are NumPy arrays so that encoding and
decoding of whole reads is vectorised (see the HPC guide: avoid
per-character Python loops in hot paths).
"""

from __future__ import annotations

import numpy as np

#: The DNA alphabet in code order.
BASES: str = "ACGT"

#: Number of symbols in the alphabet.
SIGMA: int = 4

#: Bits needed per symbol (2 bits for 4 symbols).
BITS_PER_BASE: int = 2

#: Map base character -> 2-bit code.
BASE_TO_CODE: dict[str, int] = {b: i for i, b in enumerate(BASES)}

#: Map 2-bit code -> base character.
CODE_TO_BASE: dict[int, str] = {i: b for i, b in enumerate(BASES)}

#: Complement of each 2-bit code: A<->T (0<->3), C<->G (1<->2).
#: Note ``complement(c) == 3 - c`` for the standard encoding.
COMPLEMENT_CODE: np.ndarray = np.array([3, 2, 1, 0], dtype=np.uint8)

#: Sentinel code used for non-ACGT characters (e.g. ``N``) during
#: vectorised encoding.  Reads containing ambiguous bases are split at
#: these positions before k-mer extraction, mirroring how production
#: counters (KMC3, HySortK) skip k-mers spanning an ``N``.
INVALID_CODE: int = 255

# 256-entry ASCII lookup table: byte value -> 2-bit code or INVALID_CODE.
# Both upper- and lower-case bases are accepted, as FASTA files commonly
# use lower-case for soft-masked (repeat) regions.
_ASCII_TO_CODE = np.full(256, INVALID_CODE, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _ASCII_TO_CODE[ord(_base)] = _code
    _ASCII_TO_CODE[ord(_base.lower())] = _code

#: Vectorised ASCII byte -> 2-bit code lookup table (uint8[256]).
ASCII_TO_CODE: np.ndarray = _ASCII_TO_CODE

# Reverse table for decoding: 2-bit code -> ASCII byte value.
_CODE_TO_ASCII = np.zeros(4, dtype=np.uint8)
for _base, _code in BASE_TO_CODE.items():
    _CODE_TO_ASCII[_code] = ord(_base)

#: Vectorised 2-bit code -> ASCII byte lookup table (uint8[4]).
CODE_TO_ASCII: np.ndarray = _CODE_TO_ASCII


def is_valid_base(ch: str) -> bool:
    """Return True if *ch* is a (case-insensitive) ACGT base."""
    return len(ch) == 1 and ch.upper() in BASE_TO_CODE


def complement_base(ch: str) -> str:
    """Return the Watson-Crick complement of a single base character."""
    code = BASE_TO_CODE[ch.upper()]
    return CODE_TO_BASE[3 - code]


def reverse_complement_str(seq: str) -> str:
    """Reverse-complement a DNA string (pure-Python reference path).

    For bulk work use :func:`repro.seq.encoding.reverse_complement_codes`
    which operates on encoded arrays.
    """
    return "".join(complement_base(c) for c in reversed(seq))
