"""ART-Illumina-style short-read simulation.

The paper generates its synthetic FASTQ inputs with the ART Illumina
simulator on a uniform-random genome (Section VI, Table V).  We
reproduce the relevant behaviour: fixed-length reads sampled from
random positions of a reference genome, with an optional per-base
substitution error model (ART's default HiSeq profile has a mean
substitution rate well under 1%; indels are rare enough that every
sorting-based counter treats reads as fixed-length, and we do too).

Reads come back as a dense ``(n_reads, read_len)`` ``uint8`` code
matrix — the layout the vectorised k-mer extractor consumes directly —
plus helpers to materialise FASTQ records for I/O round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .encoding import decode_codes
from .fastx import SeqRecord

__all__ = ["ReadSimConfig", "simulate_reads", "reads_to_records", "coverage_to_n_reads"]


@dataclass(frozen=True, slots=True)
class ReadSimConfig:
    """Parameters of the read simulator.

    Attributes
    ----------
    read_len:
        Length of every read (paper datasets use 125-151 bp).
    coverage:
        Mean sequencing depth; determines the number of reads as
        ``ceil(coverage * genome_len / read_len)`` unless ``n_reads``
        is given explicitly.
    n_reads:
        Explicit read count (overrides *coverage* when not None).
    error_rate:
        Per-base substitution probability (ART HiSeq-like default 0.1%).
    seed:
        RNG seed for reproducibility.
    """

    read_len: int = 150
    coverage: float = 16.0
    n_reads: int | None = None
    error_rate: float = 0.001
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.read_len < 1:
            raise ValueError("read_len must be >= 1")
        if self.coverage <= 0 and self.n_reads is None:
            raise ValueError("coverage must be > 0 when n_reads is not given")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        if self.n_reads is not None and self.n_reads < 0:
            raise ValueError("n_reads must be >= 0")


def coverage_to_n_reads(genome_len: int, read_len: int, coverage: float) -> int:
    """Number of reads to reach *coverage* over a genome."""
    if genome_len < read_len:
        return 0
    return int(np.ceil(coverage * genome_len / read_len))


def simulate_reads(
    genome: np.ndarray,
    config: ReadSimConfig,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample fixed-length reads from *genome*.

    Returns a ``(n_reads, read_len)`` ``uint8`` array of 2-bit codes.
    Substitution errors replace a base by one of the three alternatives
    uniformly (never a silent substitution), matching how ART's
    substitution channel perturbs counts: errors create spurious
    low-frequency k-mers, thickening the count=1 band.
    """
    genome = np.asarray(genome, dtype=np.uint8)
    if rng is None:
        rng = np.random.default_rng(config.seed)
    m = config.read_len
    if genome.size < m:
        return np.empty((0, m), dtype=np.uint8)
    n = config.n_reads if config.n_reads is not None else coverage_to_n_reads(
        genome.size, m, config.coverage
    )
    if n == 0:
        return np.empty((0, m), dtype=np.uint8)
    starts = rng.integers(0, genome.size - m + 1, size=n)
    # Gather windows: fancy-index with a (n, m) index matrix.
    idx = starts[:, None] + np.arange(m)[None, :]
    reads = genome[idx]
    if config.error_rate > 0.0:
        err_mask = rng.random(reads.shape) < config.error_rate
        n_err = int(err_mask.sum())
        if n_err:
            # Substitute with a *different* base: add 1..3 mod 4.
            bump = rng.integers(1, 4, size=n_err, dtype=np.uint8)
            reads[err_mask] = (reads[err_mask] + bump) % 4
    return reads


def reads_to_records(reads: np.ndarray, *, prefix: str = "read") -> list[SeqRecord]:
    """Materialise a read matrix as FASTQ-ready records."""
    out: list[SeqRecord] = []
    for i in range(reads.shape[0]):
        seq = decode_codes(reads[i])
        out.append(SeqRecord(f"{prefix}{i}", seq, "I" * len(seq)))
    return out
