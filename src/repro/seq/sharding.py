"""Distributed input partitioning: byte-range FASTQ/FASTA sharding.

A distributed counter's first act is splitting the input file across
ranks *without any rank reading the whole file*: each rank seeks to
its byte range and realigns to the next record boundary.  The paper
excludes I/O time from its measurements (Section VI) but the system
still needs this substrate; HySortK's "poorly optimised I/O" that the
paper works around lives exactly here.

Record realignment is the subtle part for FASTQ: ``@`` occurs in
quality strings too, so a line starting with ``@`` is only a header if
the line two below starts with ``+`` (the standard disambiguation).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from .fastx import SeqRecord, read_fastq, sniff_format

__all__ = ["Shard", "compute_shards", "read_shard", "shard_fastq", "count_records"]


@dataclass(frozen=True, slots=True)
class Shard:
    """One rank's byte range of an input file (aligned to records)."""

    index: int
    start: int
    end: int  # exclusive

    @property
    def nbytes(self) -> int:
        return self.end - self.start


def _align_fastq(fh, pos: int, file_size: int) -> int:
    """Smallest record-start offset >= pos in an open binary FASTQ."""
    if pos <= 0:
        return 0
    if pos >= file_size:
        return file_size
    fh.seek(pos)
    fh.readline()  # discard the (possibly partial) current line
    while True:
        line_start = fh.tell()
        line = fh.readline()
        if not line:
            return file_size
        if line.startswith(b"@"):
            # A header iff the line after next starts with '+'.
            after = fh.tell()
            fh.readline()  # sequence
            plus = fh.readline()
            fh.seek(after)
            if plus.startswith(b"+"):
                return line_start


def _align_fasta(fh, pos: int, file_size: int) -> int:
    """Smallest '>'-line offset >= pos in an open binary FASTA."""
    if pos <= 0:
        return 0
    if pos >= file_size:
        return file_size
    fh.seek(pos)
    fh.readline()
    while True:
        line_start = fh.tell()
        line = fh.readline()
        if not line:
            return file_size
        if line.startswith(b">"):
            return line_start


def compute_shards(path: str | os.PathLike, n_shards: int) -> list[Shard]:
    """Partition a FASTX file into *n_shards* record-aligned byte ranges.

    Every record belongs to exactly one shard; shards may be empty for
    tiny files.  Only O(n_shards) seeks are performed — no shard scans
    another shard's bytes.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    path = Path(path)
    file_size = path.stat().st_size
    fmt = sniff_format(path)
    align = _align_fastq if fmt == "fastq" else _align_fasta
    bounds = [0]
    with open(path, "rb") as fh:
        for i in range(1, n_shards):
            target = file_size * i // n_shards
            aligned = align(fh, target, file_size)
            bounds.append(max(aligned, bounds[-1]))
    bounds.append(file_size)
    return [Shard(i, bounds[i], bounds[i + 1]) for i in range(n_shards)]


def read_shard(path: str | os.PathLike, shard: Shard) -> list[SeqRecord]:
    """Read exactly the records of one shard."""
    fmt = sniff_format(path)
    records: list[SeqRecord] = []
    with open(path, "rb") as fh:
        fh.seek(shard.start)
        payload = fh.read(shard.nbytes)
    text = payload.decode("ascii")
    if not text.strip():
        return records
    import io

    if fmt == "fastq":
        records = list(read_fastq(io.StringIO(text)))
    else:
        from .fastx import read_fasta

        records = list(read_fasta(io.StringIO(text)))
    return records


def shard_fastq(
    path: str | os.PathLike, n_shards: int
) -> list[list[SeqRecord]]:
    """Convenience: compute shards and read each (for simulated ranks)."""
    return [read_shard(path, s) for s in compute_shards(path, n_shards)]


def count_records(path: str | os.PathLike) -> int:
    """Total record count (single full scan; reference for tests)."""
    fmt = sniff_format(path)
    if fmt == "fastq":
        return sum(1 for _ in read_fastq(path))
    from .fastx import read_fasta

    return sum(1 for _ in read_fasta(path))
