"""FASTQ quality handling: Phred scores, trimming, masking.

Production counters preprocess reads before counting (KMC3 and
HySortK both skip low-quality ends and ambiguous bases).  This module
supplies that preprocessing: Phred+33 decoding, quality statistics,
end-trimming and low-quality masking — all vectorised, feeding the
encoded-read pipeline directly.
"""

from __future__ import annotations

import numpy as np

from .encoding import encode_seq
from .fastx import SeqRecord

__all__ = [
    "PHRED_OFFSET",
    "decode_phred",
    "encode_phred",
    "mean_quality",
    "expected_errors",
    "trim_record",
    "mask_low_quality",
    "prepare_reads",
]

#: Standard Sanger/Illumina 1.8+ Phred offset.
PHRED_OFFSET: int = 33


def decode_phred(qual: str) -> np.ndarray:
    """Quality string -> integer Phred scores (vectorised)."""
    raw = np.frombuffer(qual.encode("ascii"), dtype=np.uint8)
    if raw.size and raw.min() < PHRED_OFFSET:
        raise ValueError("quality string below Phred+33 range")
    return (raw - PHRED_OFFSET).astype(np.int16)


def encode_phred(scores: np.ndarray) -> str:
    """Integer Phred scores -> quality string."""
    scores = np.asarray(scores)
    if scores.size and (scores.min() < 0 or scores.max() > 93):
        raise ValueError("Phred scores must be in [0, 93]")
    return (scores.astype(np.uint8) + PHRED_OFFSET).tobytes().decode("ascii")


def mean_quality(qual: str) -> float:
    """Mean Phred score of a read (0.0 for empty)."""
    scores = decode_phred(qual)
    return float(scores.mean()) if scores.size else 0.0


def expected_errors(qual: str) -> float:
    """Expected substitution errors: sum of 10^(-Q/10)."""
    scores = decode_phred(qual)
    return float(np.sum(10.0 ** (-scores / 10.0))) if scores.size else 0.0


def trim_record(record: SeqRecord, *, min_quality: int = 20,
                min_length: int = 1) -> SeqRecord | None:
    """Trim low-quality ends (BWA-style running-sum trimming).

    Cuts the longest prefix/suffix whose scores fall below
    *min_quality*; returns None when fewer than *min_length* bases
    survive.  Records without quality pass through unchanged.
    """
    if record.qual is None:
        return record
    scores = decode_phred(record.qual)
    good = scores >= min_quality
    if not good.any():
        return None
    first = int(np.argmax(good))
    last = len(good) - int(np.argmax(good[::-1]))
    if last - first < min_length:
        return None
    return SeqRecord(record.name, record.seq[first:last], record.qual[first:last])


def mask_low_quality(record: SeqRecord, *, min_quality: int = 10) -> SeqRecord:
    """Replace bases below *min_quality* with ``N`` (k-mers spanning
    them are then skipped by the extractor)."""
    if record.qual is None:
        return record
    scores = decode_phred(record.qual)
    seq = np.frombuffer(record.seq.encode("ascii"), dtype=np.uint8).copy()
    seq[scores < min_quality] = ord("N")
    return SeqRecord(record.name, seq.tobytes().decode("ascii"), record.qual)


def prepare_reads(
    records,
    *,
    min_quality: int = 20,
    mask_quality: int = 10,
    min_length: int = 32,
) -> list[np.ndarray]:
    """Full preprocessing: trim ends, mask interior, encode.

    Returns encoded code arrays ready for the counters; k-mer windows
    spanning masked positions are dropped during extraction.
    """
    out: list[np.ndarray] = []
    for rec in records:
        trimmed = trim_record(rec, min_quality=min_quality, min_length=min_length)
        if trimmed is None:
            continue
        masked = mask_low_quality(trimmed, min_quality=mask_quality)
        out.append(encode_seq(masked.seq, validate=False))
    return out
