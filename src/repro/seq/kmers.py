"""k-mer extraction, packing and manipulation.

Implements the k-mer generation kernel of Algorithm 1 (``GetFirstKmer``
plus the rolling ``(kmer << 2) | Encode(base)`` update) in two forms:

* :func:`iter_kmers` — the faithful per-base rolling loop, used as the
  reference implementation in tests;
* :func:`extract_kmers` — the vectorised NumPy version used by all the
  actual counters (k shifted adds over the window array instead of a
  per-window Python loop).

k-mers of length ``k <= 32`` are stored in unsigned 64-bit integers, as
in the paper ("k-mers of length <= 32 are stored as 64-bit integers";
Section IV-C).  The *storage width* follows the model's
``2 ** ceil(log2(2k))`` bits rule (Section V), e.g. k=31 -> 64 bits,
k=15 -> 32 bits; this width feeds the analytical model's byte counts.
"""

from __future__ import annotations

import math
from collections.abc import Iterator

import numpy as np

from .alphabet import BASES, INVALID_CODE
from .encoding import encode_base, encode_seq

__all__ = [
    "MAX_K",
    "kmer_width_bits",
    "kmer_storage_bytes",
    "extract_kmers",
    "extract_kmers_from_reads",
    "iter_kmers",
    "kmer_to_str",
    "str_to_kmer",
    "reverse_complement_kmer",
    "reverse_complement_kmers",
    "canonical_kmers",
    "count_kmers_in_read",
]

#: Largest supported k (64-bit packed representation, as in the paper).
MAX_K: int = 32


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise ValueError(f"k must be in [1, {MAX_K}], got {k}")


def kmer_width_bits(k: int) -> int:
    """Storage width in bits for a k-mer: ``2 ** ceil(log2(2k))``.

    This is the paper's storage rule (Section V): a k-mer needs ``2k``
    bits, rounded up to the next power-of-two machine width.
    """
    _check_k(k)
    return 2 ** math.ceil(math.log2(2 * k))


def kmer_storage_bytes(k: int) -> int:
    """Storage width in bytes (``kmer_width_bits / 8``), min 1."""
    return max(1, kmer_width_bits(k) // 8)


def extract_kmers(codes: np.ndarray, k: int) -> np.ndarray:
    """Extract all k-mers of an encoded read as packed ``uint64``.

    Vectorised: performs ``k`` shifted ORs over the windowed view
    rather than one Python-level loop per window.  A read of ``m``
    bases yields ``m - k + 1`` k-mers (empty array if ``m < k``).

    Windows containing an invalid code (ambiguous base) are dropped,
    matching the standard treatment of ``N`` bases.
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    m = codes.size
    if m < k:
        return np.empty(0, dtype=np.uint64)
    n_win = m - k + 1
    kmers = np.zeros(n_win, dtype=np.uint64)
    for j in range(k):
        np.left_shift(kmers, np.uint64(2), out=kmers)
        np.bitwise_or(kmers, codes[j : j + n_win].astype(np.uint64), out=kmers)
    invalid = codes == INVALID_CODE
    if invalid.any():
        # A window [i, i+k) is valid iff no invalid code falls in it.
        bad = np.convolve(invalid.astype(np.int64), np.ones(k, dtype=np.int64))
        kmers = kmers[bad[k - 1 : k - 1 + n_win] == 0]
    return kmers


def extract_kmers_from_reads(reads: list[np.ndarray] | np.ndarray, k: int) -> np.ndarray:
    """Extract and concatenate k-mers from a batch of encoded reads.

    Accepts either a list of per-read code arrays or a 2-D ``uint8``
    array of equal-length reads (rows are reads).  The 2-D form is the
    fast path for simulated short-read data where every read has the
    same length, and extracts all k-mers with ``k`` vectorised passes
    over the whole matrix.
    """
    _check_k(k)
    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        n, m = reads.shape
        if m < k:
            return np.empty(0, dtype=np.uint64)
        if reads.size and reads.max() > 3:
            # Ambiguous bases present: the dense path would fold the
            # sentinel codes into garbage k-mers.  Fall back to the
            # per-read extractor, which drops windows spanning them.
            return extract_kmers_from_reads([row for row in reads], k)
        n_win = m - k + 1
        kmers = np.zeros((n, n_win), dtype=np.uint64)
        for j in range(k):
            np.left_shift(kmers, np.uint64(2), out=kmers)
            np.bitwise_or(
                kmers, reads[:, j : j + n_win].astype(np.uint64), out=kmers
            )
        return kmers.ravel()
    parts = [extract_kmers(r, k) for r in reads]
    if not parts:
        return np.empty(0, dtype=np.uint64)
    return np.concatenate(parts)


def iter_kmers(seq: str, k: int) -> Iterator[int]:
    """Faithful scalar transcription of Algorithm 1's k-mer generation.

    ``GetFirstKmer`` builds the first window; subsequent windows roll
    with ``kmer = ((kmer << 2) | code) & mask``.  Reference path for
    tests; use :func:`extract_kmers` for real workloads.
    """
    _check_k(k)
    if len(seq) < k:
        return
    codes = encode_seq(seq)
    mask = (1 << (2 * k)) - 1
    # GetFirstKmer(R[1:k])
    kmer = 0
    for i in range(k):
        kmer = (kmer << 2) | int(codes[i])
    yield kmer
    # Rolling update for j = k+1 .. m
    for j in range(k, len(seq)):
        kmer = ((kmer << 2) | int(codes[j])) & mask
        yield kmer


def kmer_to_str(kmer: int, k: int) -> str:
    """Decode a packed k-mer integer back to its DNA string."""
    _check_k(k)
    kmer = int(kmer)
    if kmer >> (2 * k):
        raise ValueError(f"kmer value out of range for k={k}")
    out = []
    for i in range(k):
        shift = 2 * (k - 1 - i)
        out.append(BASES[(kmer >> shift) & 0x3])
    return "".join(out)


def str_to_kmer(s: str) -> int:
    """Encode a DNA string of length <= 32 into a packed k-mer integer."""
    _check_k(len(s))
    kmer = 0
    for ch in s:
        kmer = (kmer << 2) | encode_base(ch)
    return kmer


def reverse_complement_kmer(kmer: int, k: int) -> int:
    """Reverse complement of a single packed k-mer (scalar reference)."""
    _check_k(k)
    out = 0
    kmer = int(kmer)
    for _ in range(k):
        out = (out << 2) | (3 - (kmer & 0x3))
        kmer >>= 2
    return out


def reverse_complement_kmers(kmers: np.ndarray, k: int) -> np.ndarray:
    """Vectorised reverse complement of packed ``uint64`` k-mers.

    Uses the classic bit-swap ladder: complement all bases (XOR with
    all-ones over 2k bits), then reverse the order of 2-bit groups by
    swapping progressively larger blocks.
    """
    _check_k(k)
    x = np.asarray(kmers, dtype=np.uint64).copy()
    mask = np.uint64((1 << (2 * k)) - 1) if k < 32 else np.uint64(0xFFFFFFFFFFFFFFFF)
    # Complement: 3 - c == c ^ 0b11 for each 2-bit group.
    x = (x ^ np.uint64(0xFFFFFFFFFFFFFFFF)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    # Reverse 2-bit groups within the full 64-bit word.
    c1 = np.uint64(0x3333333333333333)
    c2 = np.uint64(0x0F0F0F0F0F0F0F0F)
    x = ((x >> np.uint64(2)) & c1) | ((x & c1) << np.uint64(2))
    x = ((x >> np.uint64(4)) & c2) | ((x & c2) << np.uint64(4))
    x = x.byteswap()
    # The groups are now reversed across 64 bits; shift down so the
    # k-mer occupies the low 2k bits again.
    x = x >> np.uint64(64 - 2 * k)
    return x & mask


def canonical_kmers(kmers: np.ndarray, k: int) -> np.ndarray:
    """Elementwise ``min(kmer, revcomp(kmer))`` — the canonical form.

    The paper's algorithms count k-mers as parsed (no canonicalisation
    appears in Algorithms 1-4), but genomics pipelines built on top of
    a counter usually want canonical counts, so the public API exposes
    this as an option.
    """
    rc = reverse_complement_kmers(kmers, k)
    return np.minimum(np.asarray(kmers, dtype=np.uint64), rc)


def count_kmers_in_read(m: int, k: int) -> int:
    """Number of k-mers in a read of length *m*: ``max(0, m - k + 1)``."""
    _check_k(k)
    return max(0, m - k + 1)
