"""128-bit k-mer support: k up to 64 (the paper's future work).

Section VII: *"the k-mer sizes in DAKC, while sufficient for short-read
genome assembly, are limited for the case of long reads due to our use
of at most 64-bit integers ... larger integer support (e.g., 128-bit)
to extend the range of supported k-mer sizes is another natural next
step."*

This module implements that step.  A big k-mer is a pair of unsigned
64-bit words ``(hi, lo)`` holding the 2-bit-packed sequence in its low
``2k`` bits; all kernels (extraction, comparison, sorting, accumulate,
reverse complement, owner hashing) operate on parallel ``hi``/``lo``
arrays, staying fully vectorised.

For ``k <= 32`` the representation degenerates to ``hi == 0`` and all
results agree with the 64-bit path (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alphabet import BASES
from .encoding import encode_seq
from .kmers import reverse_complement_kmers

__all__ = [
    "MAX_BIG_K",
    "BigKmerArray",
    "extract_big_kmers",
    "extract_big_kmers_from_reads",
    "big_kmer_to_str",
    "str_to_big_kmer",
    "reverse_complement_big",
    "canonical_big",
    "lexsort_big",
    "accumulate_sorted_big",
    "big_kmer_width_bits",
]

#: Largest supported k with the 128-bit representation.
MAX_BIG_K: int = 64

_U64_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_BIG_K:
        raise ValueError(f"k must be in [1, {MAX_BIG_K}], got {k}")


def big_kmer_width_bits(k: int) -> int:
    """Storage width rule ``2^ceil(log2 2k)`` extended to 128 bits."""
    _check_k(k)
    import math

    return 2 ** math.ceil(math.log2(2 * k))


@dataclass(frozen=True)
class BigKmerArray:
    """A column of 128-bit k-mers: parallel ``hi``/``lo`` word arrays."""

    k: int
    hi: np.ndarray  # uint64
    lo: np.ndarray  # uint64

    def __post_init__(self) -> None:
        _check_k(self.k)
        hi = np.ascontiguousarray(self.hi, dtype=np.uint64)
        lo = np.ascontiguousarray(self.lo, dtype=np.uint64)
        if hi.shape != lo.shape or hi.ndim != 1:
            raise ValueError("hi and lo must be 1-D arrays of equal length")
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "lo", lo)

    def __len__(self) -> int:
        return int(self.hi.size)

    def __getitem__(self, idx) -> "BigKmerArray":
        return BigKmerArray(self.k, np.atleast_1d(self.hi[idx]), np.atleast_1d(self.lo[idx]))

    def as_python_ints(self) -> list[int]:
        """Materialise as arbitrary-precision ints (tests/oracles)."""
        return [(int(h) << 64) | int(l) for h, l in zip(self.hi.tolist(), self.lo.tolist())]

    @classmethod
    def from_python_ints(cls, k: int, values: list[int]) -> "BigKmerArray":
        hi = np.array([v >> 64 for v in values], dtype=np.uint64)
        lo = np.array([v & ((1 << 64) - 1) for v in values], dtype=np.uint64)
        return cls(k, hi, lo)

    @classmethod
    def empty(cls, k: int) -> "BigKmerArray":
        return cls(k, np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint64))


def extract_big_kmers(codes: np.ndarray, k: int) -> BigKmerArray:
    """Extract all k-mers (k <= 64) of an encoded read, vectorised.

    The rolling update of Algorithm 1 generalises to 128 bits:
    ``(hi, lo) = (hi << 2 | lo >> 62, lo << 2 | code)``, applied per
    window offset over the whole read at once.
    """
    _check_k(k)
    codes_u8 = np.asarray(codes, dtype=np.uint8)
    codes = codes_u8.astype(np.uint64)
    m = codes.size
    if m < k:
        return BigKmerArray.empty(k)
    n_win = m - k + 1
    hi = np.zeros(n_win, dtype=np.uint64)
    lo = np.zeros(n_win, dtype=np.uint64)
    two = np.uint64(2)
    carry_shift = np.uint64(62)
    for j in range(k):
        np.left_shift(hi, two, out=hi)
        np.bitwise_or(hi, lo >> carry_shift, out=hi)
        np.left_shift(lo, two, out=lo)
        np.bitwise_or(lo, codes[j : j + n_win], out=lo)
    # Mask away bits above 2k.
    if k < 32:
        lo &= np.uint64((1 << (2 * k)) - 1)
        hi &= np.uint64(0)
    elif k < 64:
        hi &= np.uint64((1 << (2 * (k - 32))) - 1)
    # Drop windows spanning an ambiguous base (same policy as the
    # 64-bit extractor).
    invalid = codes_u8 > 3
    if invalid.any():
        bad = np.convolve(invalid.astype(np.int64), np.ones(k, dtype=np.int64))
        keep = bad[k - 1 : k - 1 + n_win] == 0
        hi, lo = hi[keep], lo[keep]
    return BigKmerArray(k, hi, lo)


def extract_big_kmers_from_reads(reads, k: int) -> BigKmerArray:
    """Extract + concatenate big k-mers from a read matrix or list."""
    _check_k(k)
    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        parts = [extract_big_kmers(row, k) for row in reads]
    else:
        parts = [extract_big_kmers(np.asarray(r, dtype=np.uint8), k) for r in reads]
    parts = [p for p in parts if len(p)]
    if not parts:
        return BigKmerArray.empty(k)
    return BigKmerArray(
        k,
        np.concatenate([p.hi for p in parts]),
        np.concatenate([p.lo for p in parts]),
    )


def str_to_big_kmer(s: str) -> tuple[int, int]:
    """Encode a DNA string (<= 64 bases) as an ``(hi, lo)`` pair."""
    _check_k(len(s))
    value = 0
    for code in encode_seq(s).tolist():
        value = (value << 2) | code
    return value >> 64, value & ((1 << 64) - 1)


def big_kmer_to_str(hi: int, lo: int, k: int) -> str:
    """Decode an ``(hi, lo)`` pair back to its DNA string."""
    _check_k(k)
    value = (int(hi) << 64) | int(lo)
    if value >> (2 * k):
        raise ValueError(f"value out of range for k={k}")
    return "".join(BASES[(value >> (2 * (k - 1 - i))) & 0x3] for i in range(k))


def reverse_complement_big(kmers: BigKmerArray) -> BigKmerArray:
    """Vectorised 128-bit reverse complement.

    Reverse-complement each 64-bit word as a 32-mer, swap the words,
    then shift the 128-bit value down so the k-mer re-occupies the low
    ``2k`` bits.
    """
    k = kmers.k
    rc_lo_word = reverse_complement_kmers(kmers.lo, 32)  # full-word rc
    rc_hi_word = reverse_complement_kmers(kmers.hi, 32)
    # After per-word reversal + swap, the 128-bit value holds the
    # reversed complement in its HIGH 2k bits; shift right by 128-2k.
    new_hi = rc_lo_word
    new_lo = rc_hi_word
    shift = 128 - 2 * k
    if shift == 0:
        return BigKmerArray(k, new_hi, new_lo)
    if shift < 64:
        s = np.uint64(shift)
        inv = np.uint64(64 - shift)
        lo = (new_lo >> s) | (new_hi << inv)
        hi = new_hi >> s
    else:
        s = np.uint64(shift - 64)
        lo = new_hi >> s
        hi = np.zeros_like(new_hi)
    return BigKmerArray(k, hi, lo)


def canonical_big(kmers: BigKmerArray) -> BigKmerArray:
    """Elementwise min(kmer, revcomp) on the 128-bit representation."""
    rc = reverse_complement_big(kmers)
    take_rc = (rc.hi < kmers.hi) | ((rc.hi == kmers.hi) & (rc.lo < kmers.lo))
    hi = np.where(take_rc, rc.hi, kmers.hi)
    lo = np.where(take_rc, rc.lo, kmers.lo)
    return BigKmerArray(kmers.k, hi, lo)


def lexsort_big(kmers: BigKmerArray) -> BigKmerArray:
    """Sort big k-mers lexicographically by (hi, lo)."""
    order = np.lexsort((kmers.lo, kmers.hi))
    return BigKmerArray(kmers.k, kmers.hi[order], kmers.lo[order])


def accumulate_sorted_big(kmers: BigKmerArray) -> tuple[BigKmerArray, np.ndarray]:
    """Run-length accumulate a sorted :class:`BigKmerArray`."""
    n = len(kmers)
    if n == 0:
        return BigKmerArray.empty(kmers.k), np.empty(0, dtype=np.int64)
    hi, lo = kmers.hi, kmers.lo
    if n > 1:
        bad = (hi[:-1] > hi[1:]) | ((hi[:-1] == hi[1:]) & (lo[:-1] > lo[1:]))
        if bad.any():
            raise ValueError("accumulate_sorted_big requires a sorted array")
    change = np.empty(n, dtype=bool)
    change[0] = True
    change[1:] = (hi[1:] != hi[:-1]) | (lo[1:] != lo[:-1])
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], n)
    uniq = BigKmerArray(kmers.k, hi[starts].copy(), lo[starts].copy())
    return uniq, (ends - starts).astype(np.int64)
