"""Read-set composition statistics.

Sequencing QC lives upstream of counting: base composition, GC
content, per-position quality profiles and low-complexity screening
decide what reaches the counter.  These are the vectorised utilities a
`fastqc`-style report draws on, operating directly on the encoded read
matrices the rest of the library uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fastx import SeqRecord
from .quality import decode_phred

__all__ = [
    "base_composition",
    "gc_content",
    "per_position_composition",
    "quality_profile",
    "dust_score",
    "ReadSetSummary",
    "summarize_reads",
]


def base_composition(reads: np.ndarray | list) -> np.ndarray:
    """Fraction of A/C/G/T over all bases (4-vector)."""
    if isinstance(reads, np.ndarray):
        flat = reads.ravel()
    else:
        flat = np.concatenate([np.asarray(r, dtype=np.uint8) for r in reads]) if reads else np.empty(0, np.uint8)
    if flat.size == 0:
        return np.zeros(4)
    counts = np.bincount(flat[flat <= 3], minlength=4)
    total = counts.sum()
    return counts / total if total else np.zeros(4)


def gc_content(reads: np.ndarray | list) -> float:
    """GC fraction of the read set (codes 1=C and 2=G)."""
    comp = base_composition(reads)
    return float(comp[1] + comp[2])


def per_position_composition(reads: np.ndarray) -> np.ndarray:
    """(read_len, 4) per-cycle base fractions (matrix input only).

    Sequencing-cycle biases (adapter contamination, hexamer priming)
    show up as position-dependent skew here.
    """
    if reads.ndim != 2:
        raise ValueError("per-position composition needs a 2-D read matrix")
    n, m = reads.shape
    out = np.zeros((m, 4))
    if n == 0:
        return out
    for base in range(4):
        out[:, base] = (reads == base).mean(axis=0)
    return out


def quality_profile(records: list[SeqRecord]) -> np.ndarray:
    """Mean Phred score per cycle (ragged reads padded with NaN-skip)."""
    if not records:
        return np.zeros(0)
    max_len = max(len(r.seq) for r in records)
    sums = np.zeros(max_len)
    counts = np.zeros(max_len)
    for rec in records:
        if rec.qual is None:
            continue
        scores = decode_phred(rec.qual)
        sums[: scores.size] += scores
        counts[: scores.size] += 1
    with np.errstate(invalid="ignore", divide="ignore"):
        profile = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return profile


def dust_score(codes: np.ndarray, *, window: int = 3) -> float:
    """DUST-style low-complexity score of one encoded sequence.

    Counts triplet (default) frequencies; a perfectly diverse sequence
    scores ~0, a mononucleotide run scores ~1.  The standard screen
    for masking simple repeats before k-mer analysis.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size - window + 1
    if n <= 1:
        return 0.0
    words = np.zeros(n, dtype=np.int64)
    for j in range(window):
        words = (words << 2) | codes[j : j + n].astype(np.int64)
    counts = np.bincount(words, minlength=4**window).astype(np.float64)
    # Sum over c*(c-1)/2, normalised by the maximum (all-one-word).
    score = float((counts * (counts - 1)).sum() / 2.0)
    max_score = n * (n - 1) / 2.0
    return score / max_score if max_score else 0.0


@dataclass(frozen=True, slots=True)
class ReadSetSummary:
    """Headline QC numbers of a read set."""

    n_reads: int
    total_bases: int
    mean_read_length: float
    gc: float
    composition: tuple[float, float, float, float]
    mean_dust: float


def summarize_reads(reads: np.ndarray | list, *, dust_sample: int = 100) -> ReadSetSummary:
    """One-call QC summary of an encoded read set."""
    if isinstance(reads, np.ndarray):
        rows = list(reads)
    else:
        rows = [np.asarray(r, dtype=np.uint8) for r in reads]
    n = len(rows)
    total = sum(int(r.size) for r in rows)
    comp = base_composition(rows)
    sample = rows[:: max(1, n // dust_sample)] if n else []
    dust = float(np.mean([dust_score(r) for r in sample])) if sample else 0.0
    return ReadSetSummary(
        n_reads=n,
        total_bases=total,
        mean_read_length=total / n if n else 0.0,
        gc=float(comp[1] + comp[2]),
        composition=tuple(float(x) for x in comp),
        mean_dust=dust,
    )
