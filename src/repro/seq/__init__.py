"""Sequence substrate: DNA encoding, k-mer extraction, I/O, simulation.

Public surface of the :mod:`repro.seq` subpackage.  Everything the
k-mer counting algorithms need from the genomics side lives here:

* :mod:`repro.seq.alphabet` — the 2-bit DNA alphabet and lookup tables;
* :mod:`repro.seq.encoding` — vectorised ASCII <-> 2-bit conversion;
* :mod:`repro.seq.kmers` — packed ``uint64`` k-mer extraction;
* :mod:`repro.seq.fastx` — FASTA/FASTQ reading and writing;
* :mod:`repro.seq.genomes` — synthetic genome generators;
* :mod:`repro.seq.readsim` — ART-Illumina-style read simulation;
* :mod:`repro.seq.datasets` — the Table V dataset registry.
"""

from .alphabet import BASES, SIGMA
from .datasets import (
    ALL_SPECS,
    REAL_SPECS,
    SYNTHETIC_SPECS,
    DatasetSpec,
    Workload,
    get_spec,
    materialize,
    synthetic_spec,
    table5_rows,
)
from .encoding import decode_codes, encode_batch, encode_seq
from .fastx import SeqRecord, read_fasta, read_fastq, read_fastx, write_fasta, write_fastq
from .genomes import RepeatSpec, repeat_genome, uniform_genome
from .kmers import (
    MAX_K,
    canonical_kmers,
    extract_kmers,
    extract_kmers_from_reads,
    iter_kmers,
    kmer_storage_bytes,
    kmer_to_str,
    kmer_width_bits,
    reverse_complement_kmer,
    reverse_complement_kmers,
    str_to_kmer,
)
from .bigkmers import (
    MAX_BIG_K,
    BigKmerArray,
    canonical_big,
    extract_big_kmers,
    extract_big_kmers_from_reads,
    reverse_complement_big,
)
from .composition import (
    ReadSetSummary,
    base_composition,
    dust_score,
    gc_content,
    per_position_composition,
    quality_profile,
    summarize_reads,
)
from .minimizers import (
    SuperKmer,
    minimizers_of_kmers,
    read_minimizers,
    split_superkmers,
    superkmer_compression_ratio,
)
from .quality import (
    decode_phred,
    encode_phred,
    expected_errors,
    mask_low_quality,
    mean_quality,
    prepare_reads,
    trim_record,
)
from .readsim import ReadSimConfig, reads_to_records, simulate_reads
from .sharding import Shard, compute_shards, read_shard, shard_fastq
from .superkmers import (
    DEFAULT_MINIMIZER_LEN,
    SuperKmerBatch,
    count_superkmer_batch,
    flatten_reads,
    pack_spans,
    partition_superkmers,
    split_superkmers_batch,
    split_superkmers_flat,
    superkmer_wire_bytes,
)

__all__ = [
    "BASES",
    "SIGMA",
    "MAX_K",
    "DatasetSpec",
    "Workload",
    "ALL_SPECS",
    "REAL_SPECS",
    "SYNTHETIC_SPECS",
    "get_spec",
    "materialize",
    "synthetic_spec",
    "table5_rows",
    "encode_seq",
    "encode_batch",
    "decode_codes",
    "SeqRecord",
    "read_fasta",
    "read_fastq",
    "read_fastx",
    "write_fasta",
    "write_fastq",
    "RepeatSpec",
    "uniform_genome",
    "repeat_genome",
    "extract_kmers",
    "extract_kmers_from_reads",
    "iter_kmers",
    "canonical_kmers",
    "kmer_to_str",
    "str_to_kmer",
    "kmer_width_bits",
    "kmer_storage_bytes",
    "reverse_complement_kmer",
    "reverse_complement_kmers",
    "ReadSimConfig",
    "simulate_reads",
    "reads_to_records",
    "MAX_BIG_K",
    "BigKmerArray",
    "extract_big_kmers",
    "extract_big_kmers_from_reads",
    "canonical_big",
    "reverse_complement_big",
    "decode_phred",
    "encode_phred",
    "mean_quality",
    "expected_errors",
    "trim_record",
    "mask_low_quality",
    "prepare_reads",
    "minimizers_of_kmers",
    "read_minimizers",
    "SuperKmer",
    "split_superkmers",
    "superkmer_compression_ratio",
    "DEFAULT_MINIMIZER_LEN",
    "SuperKmerBatch",
    "split_superkmers_flat",
    "split_superkmers_batch",
    "flatten_reads",
    "pack_spans",
    "partition_superkmers",
    "count_superkmer_batch",
    "superkmer_wire_bytes",
    "Shard",
    "compute_shards",
    "read_shard",
    "shard_fastq",
    "base_composition",
    "gc_content",
    "per_position_composition",
    "quality_profile",
    "dust_score",
    "ReadSetSummary",
    "summarize_reads",
]
