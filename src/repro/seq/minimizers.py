"""Minimizers and super-k-mers.

The minimizer of a k-mer is its smallest length-``w`` substring under
a scrambling hash order.  Consecutive k-mers of a read usually share
their minimizer, so a read splits into few *super-k-mers* — maximal
runs of k-mers with one minimizer, stored as a single substring of
``run + k - 1`` bases.  Two classic uses, both exercised here:

* **binning** (KMC3, Section II-A): the minimizer selects the bin a
  k-mer is counted in, keeping adjacent k-mers together
  (:mod:`repro.baselines.kmc3` builds on this module);
* **communication compression**: shipping super-k-mers instead of
  k-mers cuts the bytes of Phase 1 by up to ``k/4``x on top of DAKC's
  L2/L3 layers — the kmerind-style optimisation
  (:func:`superkmer_compression_ratio` quantifies it per workload).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.owner import splitmix64
from .alphabet import INVALID_CODE
from .kmers import extract_kmers

__all__ = [
    "minimizers_of_kmers",
    "read_minimizers",
    "SuperKmer",
    "split_superkmers",
    "superkmer_compression_ratio",
]


def minimizers_of_kmers(kmers: np.ndarray, k: int, w: int) -> np.ndarray:
    """Minimizer (the hash-minimal w-mer) of each packed k-mer.

    Vectorised: one :func:`numpy.minimum` reduction per window offset.
    Hash order (splitmix64) rather than lexicographic order spreads
    the minimizer distribution, exactly as KMC3's signature ordering
    does.
    """
    if w > k:
        raise ValueError("minimizer length must be <= k")
    if w < 1:
        raise ValueError("minimizer length must be >= 1")
    kmers = np.asarray(kmers, dtype=np.uint64)
    n_windows = k - w + 1
    wmask = np.uint64((1 << (2 * w)) - 1)
    best = None
    best_val = None
    for j in range(n_windows):
        shift = np.uint64(2 * (n_windows - 1 - j))
        wmer = (kmers >> shift) & wmask
        hval = splitmix64(wmer)
        if best is None:
            best, best_val = wmer.copy(), hval.copy()
        else:
            take = hval < best_val
            best[take] = wmer[take]
            best_val[take] = hval[take]
    return best


def read_minimizers(codes: np.ndarray, k: int, w: int) -> np.ndarray:
    """Per-window minimizers of one encoded read (m-k+1 entries)."""
    kmers = extract_kmers(codes, k)
    if kmers.size == 0:
        return np.empty(0, dtype=np.uint64)
    return minimizers_of_kmers(kmers, k, w)


@dataclass(frozen=True, slots=True)
class SuperKmer:
    """A maximal run of k-mers sharing one minimizer.

    ``start``/``n_bases`` locate the substring in the source read;
    the super-k-mer covers ``n_bases - k + 1`` k-mers.
    """

    start: int
    n_bases: int
    minimizer: int

    def n_kmers(self, k: int) -> int:
        return self.n_bases - k + 1


def _split_valid_segment(codes: np.ndarray, k: int, w: int, offset: int) -> list[SuperKmer]:
    """Split one ambiguity-free read segment (``start`` shifted by *offset*)."""
    mins = read_minimizers(codes, k, w)
    if mins.size == 0:
        return []
    change = np.empty(mins.size, dtype=bool)
    change[0] = True
    change[1:] = mins[1:] != mins[:-1]
    starts = np.flatnonzero(change)
    ends = np.append(starts[1:], mins.size)
    return [
        SuperKmer(start=offset + int(s), n_bases=int(e - s) + k - 1,
                  minimizer=int(mins[s]))
        for s, e in zip(starts, ends)
    ]


def split_superkmers(codes: np.ndarray, k: int, w: int) -> list[SuperKmer]:
    """Split one encoded read into its super-k-mers.

    Edge cases are handled cleanly rather than degenerately:

    * a read shorter than ``k`` (hence shorter than ``k + w - 1`` too)
      holds no k-mer and returns ``[]``;
    * an all-homopolymer read has one minimizer throughout and returns
      exactly one super-k-mer spanning the read;
    * ambiguous bases (``INVALID_CODE``) split the read into valid
      segments first, so every returned ``start``/``n_bases`` substring
      is ambiguity-free and reproduces its k-mers exactly — the naive
      path would silently misalign offsets against the dropped windows.

    Every returned super-k-mer satisfies ``n_bases >= k`` (covers at
    least one k-mer); together they cover each of the read's valid
    k-mers exactly once.
    """
    if w > k:
        raise ValueError("minimizer length must be <= k")
    if w < 1:
        raise ValueError("minimizer length must be >= 1")
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size < k:
        return []
    invalid = codes == INVALID_CODE
    if not invalid.any():
        return _split_valid_segment(codes, k, w, 0)
    # Valid segments between ambiguous bases; only those long enough to
    # hold a k-mer contribute.
    boundaries = np.flatnonzero(invalid)
    out: list[SuperKmer] = []
    seg_start = 0
    for b in list(boundaries) + [codes.size]:
        if b - seg_start >= k:
            out.extend(_split_valid_segment(codes[seg_start:b], k, w, seg_start))
        seg_start = int(b) + 1
    return out


def superkmer_compression_ratio(
    reads: np.ndarray | list, k: int, w: int, *, header_bytes: int = 8
) -> float:
    """Wire-volume ratio of raw k-mers vs 2-bit-packed super-k-mers.

    Raw k-mers cost 8 bytes each; a super-k-mer costs its packed bases
    (1/4 byte per base) plus a fixed header.  Ratios well above 1 mean
    super-k-mer shipping would compress Phase-1 traffic further.
    """
    rows = reads if not isinstance(reads, np.ndarray) else list(reads)
    kmer_bytes = 0
    sk_bytes = 0
    for row in rows:
        codes = np.asarray(row, dtype=np.uint8)
        sks = split_superkmers(codes, k, w)
        kmer_bytes += 8 * sum(sk.n_kmers(k) for sk in sks)
        sk_bytes += sum(-(-sk.n_bases // 4) + header_bytes for sk in sks)
    return kmer_bytes / sk_bytes if sk_bytes else 1.0
