"""Minimal FASTA/FASTQ reading and writing.

The paper's inputs are FASTQ files produced by the ART Illumina
simulator or downloaded from NCBI SRA ("In the input FASTA/Q files,
each DNA character is represented using an 8-bit ASCII character").
This module provides the parsing substrate: a small, dependency-free
reader/writer pair good enough to round-trip the synthetic datasets we
generate and to ingest externally produced files.

Parsing is line-oriented and streams records; it does not build an
index.  I/O time is excluded from the distributed measurements in the
paper and in our benchmarks, so simplicity beats cleverness here.
"""

from __future__ import annotations

import io
import os
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SeqRecord",
    "read_fasta",
    "read_fastq",
    "read_fastx",
    "write_fasta",
    "write_fastq",
    "sniff_format",
]


@dataclass(frozen=True, slots=True)
class SeqRecord:
    """One sequence record: identifier, bases, optional quality string."""

    name: str
    seq: str
    qual: str | None = None

    def __len__(self) -> int:  # pragma: no cover - trivial
        return len(self.seq)


def _open_text(path: str | os.PathLike[str] | io.TextIOBase):
    if isinstance(path, io.TextIOBase):
        return path, False
    return open(Path(path), "rt", encoding="ascii"), True


def read_fasta(path: str | os.PathLike[str] | io.TextIOBase) -> Iterator[SeqRecord]:
    """Stream records from a FASTA file (multi-line sequences allowed)."""
    fh, should_close = _open_text(path)
    try:
        name: str | None = None
        chunks: list[str] = []
        for line in fh:
            line = line.rstrip("\r\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield SeqRecord(name, "".join(chunks))
                name = line[1:].split()[0] if len(line) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise ValueError("FASTA file does not start with '>'")
                chunks.append(line.strip())
        if name is not None:
            yield SeqRecord(name, "".join(chunks))
    finally:
        if should_close:
            fh.close()


def read_fastq(path: str | os.PathLike[str] | io.TextIOBase) -> Iterator[SeqRecord]:
    """Stream records from a FASTQ file (4-line records)."""
    fh, should_close = _open_text(path)
    try:
        while True:
            header = fh.readline()
            if not header:
                return
            header = header.rstrip("\r\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise ValueError(f"malformed FASTQ header: {header!r}")
            seq = fh.readline().rstrip("\r\n")
            plus = fh.readline().rstrip("\r\n")
            qual = fh.readline().rstrip("\r\n")
            if not plus.startswith("+"):
                raise ValueError(f"malformed FASTQ separator: {plus!r}")
            if len(qual) != len(seq):
                raise ValueError(
                    f"quality length {len(qual)} != sequence length {len(seq)}"
                )
            yield SeqRecord(header[1:].split()[0] if len(header) > 1 else "", seq, qual)
    finally:
        if should_close:
            fh.close()


def sniff_format(path: str | os.PathLike[str]) -> str:
    """Guess 'fasta' or 'fastq' from the first non-blank character."""
    with open(Path(path), "rt", encoding="ascii") as fh:
        for line in fh:
            s = line.strip()
            if not s:
                continue
            if s.startswith(">"):
                return "fasta"
            if s.startswith("@"):
                return "fastq"
            break
    raise ValueError(f"cannot determine FASTA/FASTQ format of {path}")


def read_fastx(path: str | os.PathLike[str]) -> Iterator[SeqRecord]:
    """Read either FASTA or FASTQ, dispatching on content."""
    fmt = sniff_format(path)
    return read_fasta(path) if fmt == "fasta" else read_fastq(path)


def write_fasta(
    path: str | os.PathLike[str] | io.TextIOBase,
    records: Iterable[SeqRecord],
    *,
    line_width: int = 0,
) -> int:
    """Write records as FASTA; returns the number of records written.

    ``line_width > 0`` wraps sequence lines at that width.
    """
    fh, should_close = (
        (path, False) if isinstance(path, io.TextIOBase) else (open(Path(path), "wt"), True)
    )
    n = 0
    try:
        for rec in records:
            fh.write(f">{rec.name}\n")
            if line_width and line_width > 0:
                for i in range(0, len(rec.seq), line_width):
                    fh.write(rec.seq[i : i + line_width] + "\n")
            else:
                fh.write(rec.seq + "\n")
            n += 1
    finally:
        if should_close:
            fh.close()
    return n


def write_fastq(
    path: str | os.PathLike[str] | io.TextIOBase,
    records: Iterable[SeqRecord],
    *,
    default_qual: str = "I",
) -> int:
    """Write records as FASTQ; records lacking quality get *default_qual*."""
    fh, should_close = (
        (path, False) if isinstance(path, io.TextIOBase) else (open(Path(path), "wt"), True)
    )
    n = 0
    try:
        for rec in records:
            qual = rec.qual if rec.qual is not None else default_qual * len(rec.seq)
            if len(qual) != len(rec.seq):
                raise ValueError("quality length mismatch")
            fh.write(f"@{rec.name}\n{rec.seq}\n+\n{qual}\n")
            n += 1
    finally:
        if should_close:
            fh.close()
    return n
