"""Vectorised 2-bit DNA encoding and decoding.

The first stage of every k-mer counter (Section V, Phase 1 of the
paper's model) converts 8-bit ASCII DNA characters into a 2-bit
encoding.  These routines are the NumPy equivalents of the paper's
``Encode`` primitive in Algorithm 1:

    ``kmer <- (kmer << 2) OR Encode(R[i][j])``

All functions operate on whole reads (arrays) at once; scalar helpers
exist only as readable references used in tests.
"""

from __future__ import annotations

import numpy as np

from .alphabet import (
    ASCII_TO_CODE,
    BASES,
    CODE_TO_ASCII,
    COMPLEMENT_CODE,
    INVALID_CODE,
)

__all__ = [
    "encode_base",
    "encode_seq",
    "encode_batch",
    "decode_codes",
    "encode_reads",
    "reverse_complement_codes",
    "codes_to_str",
    "pack_codes_2bit",
    "unpack_codes_2bit",
]


def encode_base(ch: str) -> int:
    """Encode a single base character to its 2-bit code.

    Raises :class:`ValueError` on ambiguous/non-ACGT characters.
    """
    code = int(ASCII_TO_CODE[ord(ch)])
    if code == INVALID_CODE:
        raise ValueError(f"invalid DNA base: {ch!r}")
    return code


def encode_seq(seq: str | bytes, *, validate: bool = True) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` array of 2-bit codes.

    Parameters
    ----------
    seq:
        DNA sequence as ``str`` or ASCII ``bytes``.
    validate:
        If True (default), raise :class:`ValueError` when the sequence
        contains a non-ACGT character.  If False, invalid characters
        are passed through as :data:`~repro.seq.alphabet.INVALID_CODE`
        so callers may split reads at them (the KMC3/HySortK treatment
        of ``N`` bases).

    Returns
    -------
    numpy.ndarray
        ``uint8`` array of codes, same length as *seq*.
    """
    if isinstance(seq, str):
        raw = np.frombuffer(seq.encode("ascii"), dtype=np.uint8)
    else:
        raw = np.frombuffer(bytes(seq), dtype=np.uint8)
    codes = ASCII_TO_CODE[raw]
    if validate and (codes == INVALID_CODE).any():
        bad = raw[codes == INVALID_CODE][0]
        raise ValueError(f"invalid DNA base: {chr(bad)!r}")
    return codes


def encode_batch(
    seqs: list[str | bytes], *, validate: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Encode a batch of DNA strings into one flat code array.

    Returns ``(codes, offsets)`` where ``codes`` is the concatenated
    2-bit encoding of every sequence and ``offsets`` (``len(seqs)+1``
    entries) delimits them: sequence ``i`` is
    ``codes[offsets[i]:offsets[i+1]]``.  One join, one LUT gather —
    no per-read Python.  *validate* behaves as in :func:`encode_seq`.
    """
    if not seqs:
        return np.empty(0, dtype=np.uint8), np.zeros(1, dtype=np.int64)
    if isinstance(seqs[0], bytes):
        joined = b"".join(seqs)
        lengths = np.array([len(s) for s in seqs], dtype=np.int64)
    else:
        joined = "".join(seqs).encode("ascii")
        lengths = np.array([len(s) for s in seqs], dtype=np.int64)
    raw = np.frombuffer(joined, dtype=np.uint8)
    codes = ASCII_TO_CODE[raw]
    if validate and (codes == INVALID_CODE).any():
        bad = raw[codes == INVALID_CODE][0]
        raise ValueError(f"invalid DNA base: {chr(bad)!r}")
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    return codes, offsets


def decode_codes(codes: np.ndarray) -> str:
    """Decode a 2-bit code array back into a DNA string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max(initial=0) > 3:
        raise ValueError("code array contains invalid (>3) entries")
    return CODE_TO_ASCII[codes].tobytes().decode("ascii")


# Kept as an alias with a name matching its usage in fastx/readsim.
codes_to_str = decode_codes


def encode_reads(reads: list[str], *, validate: bool = True) -> list[np.ndarray]:
    """Encode a batch of reads; returns one code array per read."""
    return [encode_seq(r, validate=validate) for r in reads]


def reverse_complement_codes(codes: np.ndarray) -> np.ndarray:
    """Reverse-complement an encoded sequence (vectorised)."""
    codes = np.asarray(codes, dtype=np.uint8)
    return COMPLEMENT_CODE[codes[::-1]]


def pack_codes_2bit(codes: np.ndarray) -> tuple[np.ndarray, int]:
    """Pack a 2-bit code array into a dense byte array (4 bases/byte).

    This is the in-memory representation a production counter uses for
    read storage (the paper: "converts the ASCII characters into a
    2-bit DNA encoding").  Returns ``(packed, n_bases)``; the packed
    array stores base ``i`` in bits ``2*(i % 4)`` of byte ``i // 4``.
    """
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    padded = np.zeros((n + 3) // 4 * 4, dtype=np.uint8)
    padded[:n] = codes
    grouped = padded.reshape(-1, 4)
    packed = (
        grouped[:, 0]
        | (grouped[:, 1] << 2)
        | (grouped[:, 2] << 4)
        | (grouped[:, 3] << 6)
    ).astype(np.uint8)
    return packed, n


def unpack_codes_2bit(packed: np.ndarray, n_bases: int) -> np.ndarray:
    """Inverse of :func:`pack_codes_2bit`."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.size * 4 < n_bases:
        raise ValueError("packed array too short for n_bases")
    out = np.empty(packed.size * 4, dtype=np.uint8)
    out[0::4] = packed & 0x3
    out[1::4] = (packed >> 2) & 0x3
    out[2::4] = (packed >> 4) & 0x3
    out[3::4] = (packed >> 6) & 0x3
    return out[:n_bases]


def random_codes(rng: np.random.Generator, n: int) -> np.ndarray:
    """Uniform random 2-bit code array of length *n* (test/data helper)."""
    return rng.integers(0, len(BASES), size=n, dtype=np.uint8)
