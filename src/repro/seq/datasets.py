"""Dataset registry reproducing Table V of the paper.

The paper evaluates on 13 synthetic datasets (*Synthetic 20* ..
*Synthetic 32*, where *Synthetic XY* is a FASTQ generated from a
uniform-random genome of ``2**XY`` bases at 150 bp read length) and 7
real SRA datasets (Table V).  We cannot ship hundreds of gigabytes of
FASTQ, so the registry stores the *full-scale descriptors* (used to
print Table V and to drive the analytical model at paper scale) plus a
:func:`materialize` path that generates a scaled-down replica
preserving read length, coverage, and — for the repeat-heavy genomes —
the heavy-hitter skew profile that drives the paper's L3 experiments.

The ``fidelity`` knob is the linear shrink factor on genome length:
``fidelity=1.0`` would regenerate the paper-scale input (do not do this
on a laptop for scale 32), while the default used by the benchmark
harness is ``2**-10`` (each genome 1024x smaller, coverage preserved).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .genomes import RepeatSpec, repeat_genome, uniform_genome
from .readsim import ReadSimConfig, simulate_reads

__all__ = [
    "DatasetSpec",
    "Workload",
    "SYNTHETIC_SPECS",
    "REAL_SPECS",
    "ALL_SPECS",
    "get_spec",
    "synthetic_spec",
    "materialize",
    "table5_rows",
]

#: Read length used by all synthetic datasets in the paper.
SYNTHETIC_READ_LEN = 150

#: Approximate coverage of the paper's synthetic datasets
#: (349,500 reads x 150 bp over a 2^20-base genome  ~= 50x).
SYNTHETIC_COVERAGE = 50.0


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Full-scale description of one Table V dataset.

    Attributes
    ----------
    key:
        Registry key, e.g. ``"synthetic-24"`` or ``"human"``.
    display:
        Name as printed in Table V (``Synthetic 24`` / SRA accession).
    organism:
        Organism name for real datasets ("-" for synthetic).
    n_reads:
        Read count at full scale (Table V column "Reads").
    read_len:
        Read length in bases.
    fastq_bytes:
        Approximate FASTQ size at full scale (Table V column).
    genome_len:
        Underlying genome length in bases.
    heavy:
        True if the genome is known to contain high-frequency k-mers
        (Human, T. aestivum — the paper enables L3 for these).
    repeat_fraction:
        Fraction of the genome covered by tandem repeats when
        materialised (0 for uniform synthetic genomes).
    """

    key: str
    display: str
    organism: str
    n_reads: int
    read_len: int
    fastq_bytes: int
    genome_len: int
    heavy: bool = False
    repeat_fraction: float = 0.0

    @property
    def coverage(self) -> float:
        """Mean sequencing depth implied by the descriptor."""
        return self.n_reads * self.read_len / self.genome_len

    @property
    def total_bases(self) -> int:
        """Total DNA bases across all reads (``n * m`` in the model)."""
        return self.n_reads * self.read_len

    def n_kmers(self, k: int) -> int:
        """Total k-mers generated at full scale: ``n * (m - k + 1)``."""
        return self.n_reads * max(0, self.read_len - k + 1)


@dataclass(frozen=True, slots=True)
class Workload:
    """A materialised (scaled) dataset ready to feed a counter."""

    spec: DatasetSpec
    reads: np.ndarray  # (n_reads, read_len) uint8 codes
    genome_len: int
    fidelity: float
    seed: int

    @property
    def n_reads(self) -> int:
        return int(self.reads.shape[0])

    @property
    def read_len(self) -> int:
        return int(self.reads.shape[1])

    @property
    def total_bases(self) -> int:
        return self.n_reads * self.read_len

    def n_kmers(self, k: int) -> int:
        return self.n_reads * max(0, self.read_len - k + 1)


def _synthetic(scale: int) -> DatasetSpec:
    genome_len = 2**scale
    n_reads = int(math.ceil(SYNTHETIC_COVERAGE * genome_len / SYNTHETIC_READ_LEN))
    # FASTQ bytes ~ 2 lines of read_len (seq + qual) + ~2 small lines.
    fastq_bytes = n_reads * (2 * SYNTHETIC_READ_LEN + 2 + 10)
    return DatasetSpec(
        key=f"synthetic-{scale}",
        display=f"Synthetic {scale}",
        organism="-",
        n_reads=n_reads,
        read_len=SYNTHETIC_READ_LEN,
        fastq_bytes=fastq_bytes,
        genome_len=genome_len,
    )


#: Synthetic 20 .. Synthetic 32, as in Table V.
SYNTHETIC_SPECS: dict[str, DatasetSpec] = {
    s.key: s for s in (_synthetic(scale) for scale in range(20, 33))
}

# Real datasets of Table V.  Read counts, read lengths and FASTQ sizes
# are the paper's; genome lengths are the published genome sizes, and
# the repeat fractions encode each genome's known repeat burden (Human
# and T. aestivum are the two the paper flags as heavy-hitter genomes).
_REAL = [
    #      key            display        organism         reads        len  fastq (bytes)    genome length  heavy repeat
    ("p-aeruginosa", "SRR29163078", "P. aeruginosa", 10_190_262, 151, int(3.8e9), 6_300_000, False, 0.0),
    ("s-coelicolor", "SRR28892189", "S. coelicolor", 15_137_459, 150, int(6.3e9), 8_700_000, False, 0.0),
    ("f-vesca", "SRR26113965", "F. vesca", 56_271_131, 150, int(24e9), 240_000_000, False, 0.01),
    ("p-sinus", "SRR25743144", "P. sinus", 139_993_564, 151, int(59e9), 1_200_000_000, False, 0.01),
    ("ambystoma", "SRR7443702", "Ambystoma sp.", 141_903_420, 125, int(45e9), 3_200_000_000, False, 0.02),
    ("human", "SRR28206931", "Human", 263_469_656, 149, int(95e9), 3_100_000_000, True, 0.06),
    ("t-aestivum", "SRR29871703", "T. aestivum", 345_818_242, 150, int(145e9), 17_000_000_000, True, 0.08),
]

#: The 7 real datasets of Table V (keyed by short organism slug).
REAL_SPECS: dict[str, DatasetSpec] = {
    key: DatasetSpec(key, disp, org, n, m, sz, g, heavy, rep)
    for key, disp, org, n, m, sz, g, heavy, rep in _REAL
}

#: Every Table V dataset.
ALL_SPECS: dict[str, DatasetSpec] = {**SYNTHETIC_SPECS, **REAL_SPECS}


def get_spec(key: str) -> DatasetSpec:
    """Look up a dataset spec by registry key (raises KeyError)."""
    try:
        return ALL_SPECS[key]
    except KeyError:
        known = ", ".join(sorted(ALL_SPECS))
        raise KeyError(f"unknown dataset {key!r}; known: {known}") from None


def synthetic_spec(scale: int) -> DatasetSpec:
    """Spec for *Synthetic <scale>* (creates it if outside 20..32)."""
    key = f"synthetic-{scale}"
    return SYNTHETIC_SPECS.get(key, _synthetic(scale))


#: Minimum genome length a materialised workload may shrink to.
MIN_GENOME_LEN = 2_048


def materialize(
    spec: DatasetSpec | str,
    *,
    fidelity: float = 2**-10,
    seed: int = 0,
    max_reads: int | None = None,
    error_rate: float = 0.001,
    coverage: float | None = None,
) -> Workload:
    """Generate a scaled-down replica of a Table V dataset.

    The genome shrinks by *fidelity*; the read count shrinks to keep
    the spec's coverage (or an explicit *coverage* override — useful
    when an experiment needs a larger genome for the same k-mer
    budget, e.g. the C3 tuning sweep).  Heavy-hitter genomes get their
    repeat tracts regenerated at the same repeat fraction, so the
    k-mer count distribution keeps its skew shape at every fidelity.
    """
    if isinstance(spec, str):
        spec = get_spec(spec)
    if not 0 < fidelity <= 1:
        raise ValueError("fidelity must be in (0, 1]")
    if coverage is not None and coverage <= 0:
        raise ValueError("coverage override must be positive")
    genome_len = max(MIN_GENOME_LEN, int(spec.genome_len * fidelity))
    rng = np.random.default_rng(seed)
    if spec.repeat_fraction > 0:
        genome = repeat_genome(
            genome_len,
            RepeatSpec(fraction=spec.repeat_fraction, n_tracts=8),
            rng=rng,
        )
    else:
        genome = uniform_genome(genome_len, rng=rng)
    cov = coverage if coverage is not None else spec.coverage
    n_reads = int(math.ceil(cov * genome_len / spec.read_len))
    if max_reads is not None:
        n_reads = min(n_reads, max_reads)
    cfg = ReadSimConfig(
        read_len=spec.read_len,
        coverage=cov,
        n_reads=n_reads,
        error_rate=error_rate,
        seed=seed,
    )
    reads = simulate_reads(genome, cfg, rng=rng)
    return Workload(spec=spec, reads=reads, genome_len=genome_len,
                    fidelity=fidelity, seed=seed)


def _fmt_size(nbytes: int) -> str:
    if nbytes >= 1e9:
        return f"{nbytes / 1e9:.1f} GB"
    return f"{nbytes / 1e6:.2f} MB"


def table5_rows() -> list[dict[str, str]]:
    """Rows of Table V: dataset inventory at full (paper) scale."""
    rows = []
    for spec in ALL_SPECS.values():
        rows.append(
            {
                "Data": spec.display,
                "Reads": f"{spec.n_reads:,}",
                "Read Length": str(spec.read_len),
                "Fastq Size": _fmt_size(spec.fastq_bytes),
                "Name": spec.organism,
            }
        )
    return rows
