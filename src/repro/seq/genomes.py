"""Synthetic genome generation.

Two generators back the reproduction datasets:

* :func:`uniform_genome` — bases sampled i.i.d. uniformly from
  ``{A,C,G,T}``, exactly how the paper builds its *Synthetic XY*
  genomes ("sampled uniformly randomly from the alphabet").  Such
  genomes are "well-behaved by construction" (Section VI-G): virtually
  no k-mer repeats beyond sequencing coverage, so load is balanced and
  the L3 heavy-hitter layer buys nothing.

* :func:`repeat_genome` — a uniform backbone with tandem-repeat tracts
  spliced in (e.g. ``(AATGG)n`` — the centromeric human repeat the
  paper cites from the HySortK paper).  Repeats create *heavy-hitter*
  k-mers whose counts are orders of magnitude above the rest, which is
  what stresses load balance and motivates the L3 protocol.

Genomes are returned as encoded ``uint8`` code arrays; use
:func:`repro.seq.encoding.decode_codes` to materialise a string.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .encoding import decode_codes, encode_seq

__all__ = [
    "uniform_genome",
    "repeat_genome",
    "RepeatSpec",
    "HUMAN_CENTROMERIC_REPEAT",
]

#: The (AATGG)n centromeric repeat unit reported for the human genome.
HUMAN_CENTROMERIC_REPEAT: str = "AATGG"


def uniform_genome(length: int, *, rng: np.random.Generator | None = None,
                   seed: int | None = None) -> np.ndarray:
    """Generate a uniform-random genome of *length* bases (encoded)."""
    if length < 0:
        raise ValueError("length must be >= 0")
    if rng is None:
        rng = np.random.default_rng(seed)
    return rng.integers(0, 4, size=length, dtype=np.uint8)


@dataclass(frozen=True, slots=True)
class RepeatSpec:
    """Description of tandem-repeat content to splice into a genome.

    Attributes
    ----------
    unit:
        Repeat unit as a DNA string (default: human (AATGG)n).
    fraction:
        Fraction of the genome's bases covered by repeat tracts
        (0 <= fraction < 1).
    n_tracts:
        Number of distinct tracts the repeat content is split into.
        More tracts spread the same heavy k-mers across more reads.
    """

    unit: str = HUMAN_CENTROMERIC_REPEAT
    fraction: float = 0.05
    n_tracts: int = 4

    def __post_init__(self) -> None:
        if not self.unit:
            raise ValueError("repeat unit must be non-empty")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")
        if self.n_tracts < 1:
            raise ValueError("n_tracts must be >= 1")


def repeat_genome(
    length: int,
    repeats: RepeatSpec | list[RepeatSpec] | None = None,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> np.ndarray:
    """Generate a genome with heavy-hitter tandem repeats.

    The backbone is uniform-random; for each :class:`RepeatSpec`,
    ``fraction * length`` bases are overwritten by ``n_tracts`` tracts
    of the repeat unit at random non-overlapping-ish positions.
    Overlap between tracts of different specs is permitted (it only
    makes k-mers heavier), but each tract stays within bounds.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    genome = uniform_genome(length, rng=rng)
    if repeats is None:
        repeats = [RepeatSpec()]
    if isinstance(repeats, RepeatSpec):
        repeats = [repeats]
    for spec in repeats:
        total = int(length * spec.fraction)
        if total == 0:
            continue
        unit_codes = encode_seq(spec.unit)
        tract_len = max(len(spec.unit), total // spec.n_tracts)
        n_tracts = max(1, total // tract_len)
        tract = np.tile(unit_codes, tract_len // len(spec.unit) + 1)[:tract_len]
        for _ in range(n_tracts):
            if length <= tract_len:
                start = 0
                genome[: min(length, tract_len)] = tract[: min(length, tract_len)]
                continue
            start = int(rng.integers(0, length - tract_len))
            genome[start : start + tract_len] = tract
    return genome


def genome_to_str(genome: np.ndarray) -> str:
    """Decode an encoded genome back to a DNA string."""
    return decode_codes(genome)
