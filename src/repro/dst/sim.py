"""The seeded Simulation: one schedule in, one trajectory out.

Runs a schedule through the five stateful layers of the stack —

* **runtime**: ``dakc_count`` on the simulated machine under the
  schedule's fault plan, wire ordering and actor interleaving;
* **lsm**: durable ingest of the same reads through an
  :class:`~repro.lsm.store.LsmStore` with the schedule's crash point
  armed, then a recovery reopen;
* **ooc**: the same reads counted out-of-core under the schedule's
  spill interleaving, fused into a second LSM store;
* **cluster**: the counted database served through a replicated
  router while the schedule's membership script churns nodes;
* **tenant**: the multi-tenant QoS machinery — DRR weighted-fair
  scheduling, token-bucket quotas, and the autoscaler decision
  machine — driven on a virtual clock under the schedule's tenant
  weights, rates, quantum, and scaler thresholds —

and checks the invariant registry against what each layer observed.
Everything a layer does is a pure function of ``(reads, SimConfig,
Schedule)``: RNG streams spawn from the schedule seed, wall-clock
features (router hedging) are disabled, and the trajectory digest
covers only logical outcomes (no timestamps, no paths).  Running the
same schedule twice must produce byte-identical digests — the
determinism contract ``dakc dst run`` verifies before trusting a
campaign.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..cluster.router import RouterConfig
from ..cluster.script import run_membership_script
from ..core.dakc import DakcConfig, DeliveryIntegrityError, dakc_count
from ..core.seeds import spawn_seeds
from ..core.serial import serial_count
from ..fault.injector import FaultyConveyor
from ..fault.reliability import ReliabilityError, ReliableConveyor
from ..lsm.crash import UNACKED_POINTS, CrashPoints, SimulatedCrash
from ..lsm.store import LsmConfig, LsmStore
from ..runtime.actor import ActorRuntime
from ..runtime.conveyors import Conveyor
from ..runtime.cost import CostModel
from ..runtime.machine import laptop
from ..serve.cache import HotKeyCache
from .invariants import InvariantRegistry, Violation, default_registry
from .schedule import Schedule

__all__ = ["SimConfig", "Trajectory", "Simulation"]


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Workload and topology knobs of the simulated universe.

    Deliberately tiny: a schedule must run in tens of milliseconds so
    a 200-schedule budget finishes in CI, and small state spaces reach
    their corner cases (memtable flushes, compactions, relay traffic)
    with far fewer operations.
    """

    k: int = 9
    n_reads: int = 24
    read_len: int = 40
    # runtime layer
    nodes: int = 2
    cores_per_node: int = 2
    max_rounds: int = 8  # reliability retransmission budget
    # lsm layer
    n_batches: int = 4
    memtable_bytes: int = 2048  # tiny: forces flushes (and crash windows)
    max_runs: int = 2           # tiny: forces compactions
    cache_capacity: int = 16
    # ooc layer
    ooc_bins: int = 4
    ooc_ceiling: int = 768  # tiny: forces multi-wave spill interleavings
    # cluster layer
    n_nodes: int = 4
    rf: int = 2
    vnodes: int = 8
    n_queries: int = 192
    group_size: int = 48
    miss_queries: int = 16

    @property
    def n_pes(self) -> int:
        return self.nodes * self.cores_per_node

    def to_doc(self) -> dict:
        return {
            "k": self.k, "n_reads": self.n_reads, "read_len": self.read_len,
            "nodes": self.nodes, "cores_per_node": self.cores_per_node,
            "max_rounds": self.max_rounds, "n_batches": self.n_batches,
            "memtable_bytes": self.memtable_bytes, "max_runs": self.max_runs,
            "cache_capacity": self.cache_capacity,
            "ooc_bins": self.ooc_bins, "ooc_ceiling": self.ooc_ceiling,
            "n_nodes": self.n_nodes,
            "rf": self.rf, "vnodes": self.vnodes,
            "n_queries": self.n_queries, "group_size": self.group_size,
            "miss_queries": self.miss_queries,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "SimConfig":
        return cls(**{k: int(v) for k, v in doc.items()})


@dataclass(slots=True)
class Trajectory:
    """What one schedule did, reduced to its logical outcome."""

    schedule: Schedule
    violations: list[Violation]
    events: dict
    digest: str

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_doc(self) -> dict:
        return {
            "schedule": self.schedule.to_doc(),
            "violations": [v.to_doc() for v in self.violations],
            "events": self.events,
            "digest": self.digest,
        }


def _digest(schedule: Schedule, events: dict) -> str:
    doc = {"schedule": schedule.to_doc(), "events": events}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _counts_fingerprint(counts) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(counts.kmers).tobytes())
    h.update(np.ascontiguousarray(counts.counts).tobytes())
    return h.hexdigest()[:16]


class _AckTracingConveyor(ReliableConveyor):
    """Reliable conveyor recording cumulative-ack window regressions.

    The monotone-acks invariant: a flow's dedup-window base may only
    advance.  Checked at the delivery point — the only place the base
    moves — so a regression is caught the moment it happens.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.ack_regressions = 0
        self._high_base: dict[tuple[int, int], int] = {}

    def _deliver(self, pe, arrival, group) -> None:
        super()._deliver(pe, arrival, group)
        for flow, window in self._windows.items():
            high = self._high_base.get(flow, 0)
            if window.base < high:
                self.ack_regressions += 1
            else:
                self._high_base[flow] = window.base


class Simulation:
    """Deterministic ``(schedule, reads) -> trajectory`` machine."""

    def __init__(self, config: SimConfig | None = None,
                 registry: InvariantRegistry | None = None) -> None:
        self.config = config if config is not None else SimConfig()
        self.registry = registry if registry is not None else default_registry()

    # -- inputs --------------------------------------------------------

    def make_reads(self, seed: int) -> list[np.ndarray]:
        """The default read set for a schedule rooted at *seed*."""
        data_seed = spawn_seeds(seed, 1)[0]
        rng = np.random.default_rng(data_seed)
        return [
            rng.integers(0, 4, size=self.config.read_len).astype(np.uint8)
            for _ in range(self.config.n_reads)
        ]

    # -- layers --------------------------------------------------------

    def _run_runtime(self, schedule: Schedule, reads: list[np.ndarray],
                     reference) -> tuple[dict, dict]:
        cfg = self.config
        cost = CostModel(laptop(nodes=cfg.nodes, cores=cfg.cores_per_node))
        dakc_cfg = DakcConfig(protocol=schedule.protocol, mode=schedule.mode,
                              verify_delivery=False)
        plan = schedule.plan
        faulty = plan is not None and not plan.benign
        holder: dict[str, Conveyor] = {}

        def conveyor_factory(*args, **kwargs):
            if faulty and schedule.protect:
                conv = _AckTracingConveyor(*args, plan=plan,
                                           max_rounds=cfg.max_rounds, **kwargs)
            elif faulty:
                conv = FaultyConveyor(*args, plan=plan, **kwargs)
            else:
                conv = Conveyor(*args, **kwargs)
            if schedule.drain_seed is not None:
                hook_rng = np.random.default_rng(schedule.drain_seed)
                conv.order_hook = (
                    lambda arrival, seq, hop: float(hook_rng.random()))
            holder["conveyor"] = conv
            return conv

        runtime_factory = None
        if schedule.mode == "exact" and (schedule.step_seed is not None
                                         or schedule.mailbox_seed is not None):
            step_rng = np.random.default_rng(schedule.step_seed or 0)
            box_rng = np.random.default_rng(schedule.mailbox_seed or 0)
            step_order = None
            if schedule.step_seed is not None:
                def step_order(round_no, n_pes):
                    return [int(p) for p in step_rng.permutation(n_pes)]
            mailbox_order = None
            if schedule.mailbox_seed is not None:
                def mailbox_order(pe, pending):
                    order = box_rng.permutation(len(pending))
                    return [pending[i] for i in order]

            def runtime_factory(cost, stats, conveyor):
                return ActorRuntime(cost, stats, conveyor,
                                    step_order=step_order,
                                    mailbox_order=mailbox_order)

        error = None
        counts = None
        sim_time = None
        try:
            counts, stats = dakc_count(
                reads, cfg.k, cost, dakc_cfg,
                conveyor_factory=conveyor_factory,
                runtime_factory=runtime_factory,
            )
            sim_time = stats.sim_time
        except (DeliveryIntegrityError, ReliabilityError) as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            cost.set_dilation(None)

        conv = holder.get("conveyor")
        delivered = (sum(conv.delivered_elements(pe)
                         for pe in range(cost.n_pes))
                     if conv is not None else 0)
        fs = getattr(conv, "fault_stats", None)
        ctx = {
            "error": error,
            "expects_exact": schedule.protect or not faulty,
            "counts_match": None if counts is None else counts == reference,
            "n_distinct": None if counts is None else int(counts.n_distinct),
            "oracle_distinct": int(reference.n_distinct),
            "injected": conv.injected_elements if conv is not None else 0,
            "delivered": delivered,
            "dropped": fs.dropped_elements if fs is not None else 0,
            "duplicated": fs.duplicated_elements if fs is not None else 0,
            "protect": schedule.protect,
            "faulty": faulty,
            "ack_regressions": getattr(conv, "ack_regressions", 0),
        }
        events = {
            "mode": schedule.mode,
            "protocol": schedule.protocol,
            "error": error,
            "counts": None if counts is None else _counts_fingerprint(counts),
            "sim_time": sim_time,
            "injected": ctx["injected"],
            "delivered": ctx["delivered"],
            "dropped": ctx["dropped"],
            "duplicated": ctx["duplicated"],
            "checksum_failures": getattr(conv, "checksum_failures", 0),
        }
        return ctx, events

    def _run_lsm(self, schedule: Schedule, reads: list[np.ndarray],
                 reference, workdir: str | Path) -> tuple[dict, dict]:
        cfg = self.config
        lsm_cfg = LsmConfig(memtable_bytes=cfg.memtable_bytes,
                            max_runs=cfg.max_runs, fan_in=cfg.max_runs)
        crash = CrashPoints()
        if schedule.crash_point is not None:
            crash.arm(schedule.crash_point, nth=schedule.crash_nth)
        store_dir = Path(workdir) / "lsm"
        store = LsmStore(store_dir, cfg.k, config=lsm_cfg, crash=crash)
        cache = HotKeyCache(cfg.cache_capacity)
        store.subscribe(cache.invalidate_many)

        probe_rng = np.random.default_rng(spawn_seeds(schedule.seed, 2)[1])
        n_probe = min(8, int(reference.kmers.size))
        probe_keys = (probe_rng.choice(reference.kmers, size=n_probe,
                                       replace=False)
                      if n_probe else np.empty(0, dtype=np.uint64))
        batches = [reads[i::cfg.n_batches] for i in range(cfg.n_batches)]
        batches = [b for b in batches if b]

        acked: list[np.ndarray] = []
        crashed_at = None
        stale_serves = 0
        for batch in batches:
            try:
                store.ingest(batch)
            except SimulatedCrash as exc:
                point = str(exc)
                crashed_at = point
                # The WAL append halves fire *before* the record is
                # durable — a crash there loses the batch by contract.
                # Everywhere else the batch is already on disk.
                if point not in UNACKED_POINTS:
                    acked.extend(batch)
                break
            acked.extend(batch)
            # Serve a few hot keys through the subscribed cache: any
            # hit must reflect every ingest so far.
            for key in probe_keys:
                truth = int(store.get(np.asarray([key], dtype=np.uint64))[0])
                hit = cache.get(int(key))
                if hit is not None and hit != truth:
                    stale_serves += 1
                cache.offer(int(key), truth)

        if crashed_at is None:
            store.close()  # clean shutdown (memtable survives via WAL)
        else:
            store.wal.close()  # abandon the "process"; release the handle

        recovered = LsmStore(store_dir, config=lsm_cfg)
        snapshot = recovered.snapshot()
        recovered.close()
        if acked:
            oracle = serial_count(acked, cfg.k)
            match = snapshot == oracle
            detail = (f"recovered {int(snapshot.n_distinct)} distinct vs "
                      f"{int(oracle.n_distinct)} acknowledged"
                      if not match else None)
        else:
            match = int(snapshot.n_distinct) == 0
            detail = (None if match else
                      f"empty ack set but store holds "
                      f"{int(snapshot.n_distinct)} distinct keys")

        ctx = {"recovered_match": match, "detail": detail,
               "stale_serves": stale_serves}
        events = {
            "crash_point": schedule.crash_point,
            "crash_nth": schedule.crash_nth,
            "fired": list(crash.fired),
            "hit_counts": dict(sorted(crash.hit_counts.items())),
            "acked_reads": len(acked),
            "recovered": _counts_fingerprint(snapshot),
            "recovered_match": match,
            "stale_serves": stale_serves,
        }
        return ctx, events

    def _run_ooc(self, schedule: Schedule, reads: list[np.ndarray],
                 reference, workdir: str | Path) -> tuple[dict, dict]:
        """Out-of-core count the reads under the schedule's spill order.

        Both the merged result and the fused LSM store must equal the
        serial oracle whatever interleaving the spill seed forces, and
        pass 2 must reread exactly the bytes pass 1 spilled.
        """
        cfg = self.config
        from ..ooc import OocStats, ooc_count, seeded_order

        stats = OocStats()
        flush_order = bin_order = None
        if schedule.spill_seed is not None:
            flush_child, bin_child = spawn_seeds(schedule.spill_seed, 2)
            flush_order = seeded_order(flush_child)

            def bin_order(ids, _seed=bin_child):
                ids = sorted(int(i) for i in ids)
                np.random.default_rng(_seed).shuffle(ids)
                return ids

        error = None
        counts = None
        snapshot = None
        try:
            store = LsmStore(Path(workdir) / "ooc", cfg.k,
                             config=LsmConfig(memtable_bytes=cfg.ooc_ceiling,
                                              max_runs=cfg.max_runs,
                                              fan_in=cfg.max_runs))
            try:
                counts = ooc_count(
                    reads, cfg.k, n_bins=cfg.ooc_bins,
                    memory_bytes=cfg.ooc_ceiling,
                    workdir=Path(workdir) / "ooc-bins",
                    store=store, stats=stats,
                    flush_order=flush_order, bin_order=bin_order)
                snapshot = store.snapshot()
            finally:
                store.close()
        except Exception as exc:  # any crash here is itself a violation
            error = f"{type(exc).__name__}: {exc}"

        ctx = {
            "error": error,
            "counts_match": None if counts is None else counts == reference,
            "store_match": None if snapshot is None else snapshot == reference,
            "oracle_distinct": int(reference.n_distinct),
            "n_distinct": None if counts is None else int(counts.n_distinct),
            "bytes_spilled": stats.bytes_spilled,
            "bytes_reread": stats.bytes_reread,
        }
        events = {
            "error": error,
            "spill_permuted": schedule.spill_seed is not None,
            "counts": None if counts is None else _counts_fingerprint(counts),
            "store": None if snapshot is None else _counts_fingerprint(snapshot),
            "spill": stats.to_doc(),
        }
        return ctx, events

    def _run_cluster(self, schedule: Schedule, reference) -> tuple[dict, dict]:
        cfg = self.config
        _, query_seed, ring_seed = spawn_seeds(schedule.seed, 3)
        burst = schedule.burst()
        groups = None
        if burst is not None:
            # Bursty stream: Zipf keys with the schedule's burst overlay
            # on a seed-derived (wall-clock-free) arrival timeline, cut
            # into arrival groups — membership events now interleave
            # with burst-sized batch swings instead of fixed chunks.
            from ..serve.workload import arrival_groups, zipf_workload

            rate = float(cfg.n_queries)  # stream spans ~1 simulated second
            stream = zipf_workload(
                reference, cfg.n_queries, s=1.1, seed=query_seed,
                rate_qps=rate,
                miss_fraction=cfg.miss_queries / max(cfg.n_queries, 1),
                burst=burst,
            )
            keys = stream.keys
            groups = arrival_groups(stream, tick=cfg.group_size / rate)
        else:
            rng = np.random.default_rng(query_seed)
            n_hits = max(0, cfg.n_queries - cfg.miss_queries)
            keys = rng.choice(reference.kmers, size=n_hits)
            misses = rng.integers(0, 1 << 63, size=cfg.miss_queries,
                                  dtype=np.uint64)
            keys = np.concatenate([keys.astype(np.uint64), misses])
            rng.shuffle(keys)

        error = None
        answers = router = None
        try:
            answers, router = run_membership_script(
                reference, keys, schedule.membership,
                n_nodes=cfg.n_nodes, rf=cfg.rf, vnodes=cfg.vnodes,
                seed=ring_seed, group_size=cfg.group_size,
                router_config=RouterConfig(hedging=False),
                groups=groups,
            )
        except Exception as exc:  # a legal script must never fail
            error = f"{type(exc).__name__}: {exc}"

        ctx: dict = {"error": error}
        events: dict = {
            "membership": [f"{e.kind}:{e.node}@{e.at}"
                           for e in schedule.membership],
            "error": error,
        }
        if burst is not None:
            events["burst"] = burst.to_doc()
            events["n_groups"] = len(groups)
        if error is None:
            from ..cluster.bench import expected_counts

            oracle = expected_counts(reference, keys)
            mismatches = int((answers != oracle).sum())
            table = router.ring.table()
            live = set(router.ring.node_ids)
            rf_ok = True
            rf_detail = None
            for i, row in enumerate(table.rows):
                owners = {int(n) for n in row}
                if len(owners) != cfg.rf or not owners <= live:
                    rf_ok = False
                    rf_detail = (f"token row {i} owners {sorted(owners)} "
                                 f"(rf={cfg.rf}, ring={sorted(live)})")
                    break
            ctx.update({
                "answers_match": mismatches == 0,
                "mismatches": mismatches,
                "n_queries": int(keys.size),
                "rf_ok": rf_ok,
                "rf_detail": rf_detail,
            })
            events.update({
                "ring": [int(n) for n in router.ring.node_ids],
                "mismatches": mismatches,
                "rf_ok": rf_ok,
            })
        return ctx, events

    def _run_tenant(self, schedule: Schedule) -> tuple[dict, dict]:
        """Drive the multi-tenant QoS machinery on a virtual clock.

        Pure and synchronous — no asyncio, no wall time: the DRR
        scheduler is drained chunk by chunk over a saturated backlog,
        the token buckets are stepped on explicit virtual timestamps,
        and the autoscaler decision machine is fed seeded synthetic
        load samples.  The `no-starvation` and `fair-share` invariants
        check the drained window; bucket admissions must never exceed
        ``burst + rate * elapsed`` (`quota-conservation`).
        """
        from ..tenant.registry import TokenBucket
        from ..tenant.scheduler import DRRQueue

        rng = np.random.default_rng(spawn_seeds(schedule.seed, 5)[4])
        weights = tuple(schedule.tenant_weights) or (1.0, 2.0)
        quantum = schedule.tenant_quantum or 16
        names = [f"t{i}" for i in range(len(weights))]
        wmap = dict(zip(names, weights))
        queue = DRRQueue(wmap, quantum=quantum)

        class _Chunk:
            __slots__ = ("keys", "tenant")

            def __init__(self, n: int, tenant: str):
                self.keys = np.empty(n, dtype=np.uint64)
                self.tenant = tenant

        # Saturated window: backlog each tenant with 2x the keys it
        # could possibly be served before the lightest tenant reaches
        # its measurement target, so every tenant stays backlogged.
        cmax = 16
        per_unit = max(600, 40 * quantum)
        for name, w in wmap.items():
            remaining = int(2 * per_unit * w)
            while remaining > 0:
                n = min(int(rng.integers(1, cmax + 1)), remaining)
                queue.put_nowait(_Chunk(n, name))
                remaining -= n
        lightest = min(wmap, key=wmap.get)
        target = int(per_unit * wmap[lightest])
        while queue.served_keys.get(lightest, 0) < target:
            queue.get_nowait()

        total_served = sum(queue.served_keys.values())
        total_weight = sum(wmap.values())
        shares = {t: queue.served_keys.get(t, 0) / total_served
                  for t in wmap}
        share_error = max(abs(shares[t] - wmap[t] / total_weight)
                          for t in wmap)
        # DRR's additive service bound per tenant over the window is
        # one quantum grant plus one maximum chunk.
        epsilon = (len(wmap) * (quantum * max(weights) + cmax) / total_served
                   + 0.03)

        # Token buckets on a virtual clock: admissions can never exceed
        # the burst plus the refill earned by the elapsed virtual time.
        rates = tuple(schedule.tenant_rates) or (0.0,) * len(weights)
        overdraft = 0
        quota_events = []
        for name, rate in zip(names, rates):
            if rate <= 0:
                continue
            burst = max(rate, float(cmax))
            bucket = TokenBucket(rate, burst)
            admitted = 0.0
            rejections = 0
            now = 0.0
            for _ in range(40):
                now += float(rng.uniform(0.0, 0.2))
                n = int(rng.integers(1, cmax + 1))
                if bucket.try_take(n, now) is None:
                    admitted += n
                else:
                    rejections += 1
                if admitted > burst + rate * now + 1e-9:
                    overdraft += 1
            quota_events.append({
                "tenant": name, "rate": rate,
                "admitted": int(admitted), "rejections": rejections,
                "elapsed": round(now, 6),
            })

        # Autoscaler decision machine under a hot spell then a cold
        # spell of synthetic per-node loads (digest coverage: the same
        # schedule must always produce the same decision sequence).
        from ..tenant.autoscaler import Autoscaler, AutoscalerConfig

        hot = schedule.scaler_hot or 1000.0
        cold = schedule.scaler_cold or 100.0
        scaler = Autoscaler(AutoscalerConfig(
            hot_load=hot, cold_load=cold, patience=2, cooldown=1,
            min_nodes=2, max_nodes=8))
        n_nodes = 3
        decisions = []
        for phase, level in (("hot", hot * 2), ("cold", cold / 2)):
            for _ in range(5):
                sample = {i: level * float(rng.uniform(0.8, 1.2))
                          for i in range(n_nodes)}
                decision = scaler.observe(sample)
                if decision.action != "hold":
                    n_nodes += 1 if decision.action == "split" else -1
                decisions.append(f"{phase}:{decision.action}")

        ctx = {
            "share_error": share_error,
            "epsilon": epsilon,
            "starvation_violations": queue.starvation_violations,
            "all_progressed": all(queue.served_keys.get(t, 0) > 0
                                  for t in wmap),
            "quota_overdraft": overdraft,
        }
        events = {
            "weights": list(weights),
            "quantum": quantum,
            "served_keys": {t: int(queue.served_keys.get(t, 0))
                            for t in wmap},
            "share_error": share_error,
            "starvation_violations": queue.starvation_violations,
            "quota": quota_events,
            "scaler": decisions,
            "n_nodes_final": n_nodes,
        }
        return ctx, events

    # -- the trajectory ------------------------------------------------

    def run(self, schedule: Schedule, reads: list[np.ndarray] | None = None,
            workdir: str | Path | None = None) -> Trajectory:
        """Execute one schedule; returns its digested trajectory."""
        if reads is None:
            reads = self.make_reads(schedule.seed)
        reference = serial_count(reads, self.config.k)

        violations: list[Violation] = []
        events: dict = {"config": self.config.to_doc()}

        runtime_ctx, events["runtime"] = self._run_runtime(
            schedule, reads, reference)
        violations += self.registry.check("runtime", runtime_ctx)

        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="dakc-dst-") as tmp:
                lsm_ctx, events["lsm"] = self._run_lsm(
                    schedule, reads, reference, tmp)
                ooc_ctx, events["ooc"] = self._run_ooc(
                    schedule, reads, reference, tmp)
        else:
            lsm_ctx, events["lsm"] = self._run_lsm(
                schedule, reads, reference, workdir)
            ooc_ctx, events["ooc"] = self._run_ooc(
                schedule, reads, reference, workdir)
        violations += self.registry.check("lsm", lsm_ctx)
        violations += self.registry.check("ooc", ooc_ctx)

        cluster_ctx, events["cluster"] = self._run_cluster(schedule, reference)
        violations += self.registry.check("cluster", cluster_ctx)

        tenant_ctx, events["tenant"] = self._run_tenant(schedule)
        violations += self.registry.check("tenant", tenant_ctx)

        events["violations"] = [v.to_doc() for v in violations]
        return Trajectory(
            schedule=schedule,
            violations=violations,
            events=events,
            digest=_digest(schedule, events),
        )
