"""Replayable repro bundles: a failure you can attach to a bug report.

A bundle is one JSON file holding everything needed to retrace a
failing trajectory on any machine: the (shrunk) schedule, the sim
config, the exact read set, the violations observed, and the digest
the replay must reproduce.  ``dakc dst replay bundle.json`` reruns it
and reports whether the violation still fires — byte-identical digest
included — which is the regression test a fix must pass.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .invariants import InvariantRegistry, Violation
from .schedule import Schedule
from .sim import SimConfig, Simulation, Trajectory

__all__ = ["ReproBundle", "save_bundle", "load_bundle", "replay_bundle"]

BUNDLE_FORMAT = "dakc-dst-bundle-v1"


@dataclass(slots=True)
class ReproBundle:
    """One failing trajectory, fully self-contained."""

    schedule: Schedule
    config: SimConfig
    reads: list[np.ndarray]
    violations: list[Violation] = field(default_factory=list)
    digest: str = ""
    invariant: str = ""

    def to_doc(self) -> dict:
        return {
            "format": BUNDLE_FORMAT,
            "invariant": self.invariant,
            "digest": self.digest,
            "schedule": self.schedule.to_doc(),
            "config": self.config.to_doc(),
            "violations": [v.to_doc() for v in self.violations],
            "reads": [[int(b) for b in read] for read in self.reads],
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ReproBundle":
        if doc.get("format") != BUNDLE_FORMAT:
            raise ValueError(
                f"not a DST repro bundle (format={doc.get('format')!r})")
        return cls(
            schedule=Schedule.from_doc(doc["schedule"]),
            config=SimConfig.from_doc(doc["config"]),
            reads=[np.asarray(read, dtype=np.uint8) for read in doc["reads"]],
            violations=[Violation.from_doc(v)
                        for v in doc.get("violations", [])],
            digest=str(doc.get("digest", "")),
            invariant=str(doc.get("invariant", "")),
        )

    @classmethod
    def from_failure(cls, config: SimConfig, schedule: Schedule,
                     reads: list[np.ndarray],
                     trajectory: Trajectory) -> "ReproBundle":
        return cls(
            schedule=schedule,
            config=config,
            reads=[np.asarray(r, dtype=np.uint8) for r in reads],
            violations=list(trajectory.violations),
            digest=trajectory.digest,
            invariant=(trajectory.violations[0].invariant
                       if trajectory.violations else ""),
        )


def save_bundle(bundle: ReproBundle, path: str | Path) -> Path:
    """Write a bundle as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle.to_doc(), indent=2, sort_keys=True))
    return path


def load_bundle(path: str | Path) -> ReproBundle:
    return ReproBundle.from_doc(json.loads(Path(path).read_text()))


def replay_bundle(bundle: ReproBundle, *,
                  registry: InvariantRegistry | None = None) -> Trajectory:
    """Rerun a bundle's trajectory (same config, schedule and reads)."""
    sim = Simulation(bundle.config, registry=registry)
    return sim.run(bundle.schedule, reads=bundle.reads)
