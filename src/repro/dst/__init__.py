"""repro.dst — deterministic simulation testing for the whole stack.

FoundationDB-style testing discipline applied to the reproduction:
every source of nondeterminism in a test run — RNG streams, conveyor
drain order, actor mailbox and step order, fault plans, LSM crash
points, cluster membership timing — is owned by one seeded
:class:`Simulation`, making ``seed -> trajectory`` a pure function.
On top of that:

* :mod:`~repro.dst.schedule` — the :class:`Schedule` (one point in the
  nondeterminism space) and the :class:`ScheduleFuzzer` that sweeps
  drain/mailbox permutations crossed with fault plans, crash-point
  products and membership scripts;
* :mod:`~repro.dst.invariants` — a pluggable registry of checkers
  (serial-oracle multiset equality, packet conservation, monotone
  acks, WAL-recovery exactness, cache staleness, ring ownership = RF);
* :mod:`~repro.dst.sim` — the :class:`Simulation` that runs one
  schedule through the runtime, LSM and cluster layers and digests the
  logical outcome;
* :mod:`~repro.dst.shrink` — greedy delta debugging that minimises a
  failing ``(reads, config, schedule)`` triple;
* :mod:`~repro.dst.bundle` — replayable JSON repro bundles
  (``dakc dst replay <bundle>``);
* :mod:`~repro.dst.runner` — the fuzz campaign driver behind
  ``dakc dst run | sweep``.
"""

from .bundle import ReproBundle, load_bundle, replay_bundle, save_bundle
from .invariants import Invariant, InvariantRegistry, Violation, default_registry
from .runner import DstReport, dst_run, dst_sweep, format_dst_report
from .schedule import Schedule, ScheduleFuzzer
from .shrink import shrink_failure
from .sim import SimConfig, Simulation, Trajectory

__all__ = [
    "Schedule",
    "ScheduleFuzzer",
    "Invariant",
    "InvariantRegistry",
    "Violation",
    "default_registry",
    "SimConfig",
    "Simulation",
    "Trajectory",
    "shrink_failure",
    "ReproBundle",
    "save_bundle",
    "load_bundle",
    "replay_bundle",
    "DstReport",
    "dst_run",
    "dst_sweep",
    "format_dst_report",
]
