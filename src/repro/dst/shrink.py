"""Greedy delta debugging over failing (reads, schedule) triples.

A fuzz-found violation usually arrives wrapped in noise: dozens of
reads, a fault plan with five active fault classes, a membership
script, a crash point — most of it irrelevant.  :func:`shrink_failure`
minimises the repro while preserving the *same* invariant violation:

1. **reads** — classic ddmin over the read list (halves, then
   complements, recursing to finer granularity);
2. **schedule fields** — each nondeterminism source is nulled in turn
   (fault plan dropped, crash point disarmed, permutation seeds
   cleared, membership script emptied) and the simplification is kept
   whenever the violation survives;
3. **structure** — the surviving membership script and fault plan are
   element-wise minimised (drop events, zero fault classes).

Every candidate costs one simulation, so the shrinker is budgeted;
the result is the smallest failing triple found within the budget,
not a global minimum — the standard ddmin trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .schedule import Schedule
from .sim import Simulation, Trajectory

__all__ = ["ShrinkResult", "shrink_failure"]


@dataclass(slots=True)
class ShrinkResult:
    """The minimised repro and the shrink accounting."""

    schedule: Schedule
    reads: list[np.ndarray]
    trajectory: Trajectory
    invariant: str
    runs: int
    reads_before: int
    reads_after: int


def _still_fails(sim: Simulation, schedule: Schedule,
                 reads: list[np.ndarray], invariant: str) -> Trajectory | None:
    """The trajectory if it reproduces *invariant*, else None."""
    trajectory = sim.run(schedule, reads=reads)
    if any(v.invariant == invariant for v in trajectory.violations):
        return trajectory
    return None


def _ddmin_reads(sim: Simulation, schedule: Schedule,
                 reads: list[np.ndarray], invariant: str,
                 budget: list[int]) -> tuple[list[np.ndarray], Trajectory | None]:
    """Zeller/Hildebrandt ddmin over the read list."""
    best: Trajectory | None = None
    n = 2
    while len(reads) >= 2 and budget[0] > 0:
        chunk = max(1, len(reads) // n)
        subsets = [reads[i:i + chunk] for i in range(0, len(reads), chunk)]
        reduced = False
        # Try each subset alone, then each complement.
        candidates = subsets + [
            [r for j, s in enumerate(subsets) for r in s if j != i]
            for i in range(len(subsets))
        ]
        for cand in candidates:
            if not cand or len(cand) >= len(reads) or budget[0] <= 0:
                continue
            budget[0] -= 1
            t = _still_fails(sim, schedule, cand, invariant)
            if t is not None:
                reads, best = cand, t
                n = max(2, len(subsets) - 1)
                reduced = True
                break
        if not reduced:
            if n >= len(reads):
                break
            n = min(len(reads), 2 * n)
    return reads, best


def _simplify_schedule(sim: Simulation, schedule: Schedule,
                       reads: list[np.ndarray], invariant: str,
                       budget: list[int]) -> tuple[Schedule, Trajectory | None]:
    """Null each nondeterminism source; keep whatever still fails."""
    best: Trajectory | None = None
    simplifications: list[dict] = [
        {"plan": None},
        {"crash_point": None, "crash_nth": 1},
        {"membership": ()},
        {"drain_seed": None},
        {"spill_seed": None},
        {"mailbox_seed": None, "step_seed": None},
        {"mode": "fast", "mailbox_seed": None, "step_seed": None},
        {"protocol": "1D"},
        {"protect": True},
        {"tenant_weights": (), "tenant_rates": (), "tenant_quantum": 0},
        {"scaler_hot": 0.0, "scaler_cold": 0.0},
    ]
    for fields in simplifications:
        if budget[0] <= 0:
            break
        if all(getattr(schedule, k) == v for k, v in fields.items()):
            continue
        candidate = replace(schedule, **fields)
        budget[0] -= 1
        t = _still_fails(sim, candidate, reads, invariant)
        if t is not None:
            schedule, best = candidate, t
    # Element-wise: drop membership events one at a time.
    events = list(schedule.membership)
    i = 0
    while i < len(events) and budget[0] > 0:
        candidate = replace(schedule,
                            membership=tuple(events[:i] + events[i + 1:]))
        budget[0] -= 1
        t = _still_fails(sim, candidate, reads, invariant)
        if t is not None:
            events.pop(i)
            schedule, best = candidate, t
        else:
            i += 1
    # Element-wise: zero each active fault class of the plan.
    if schedule.plan is not None:
        plan = schedule.plan
        for field_name in ("drop_prob", "duplicate_prob", "delay_prob",
                           "reorder_prob", "corrupt_prob"):
            if budget[0] <= 0:
                break
            if getattr(plan, field_name) == 0.0:
                continue
            cand_plan = replace(plan, **{field_name: 0.0})
            candidate = replace(schedule, plan=cand_plan)
            budget[0] -= 1
            t = _still_fails(sim, candidate, reads, invariant)
            if t is not None:
                plan = cand_plan
                schedule, best = candidate, t
        if plan.straggler_pes and budget[0] > 0:
            candidate = replace(
                schedule, plan=replace(plan, straggler_pes=(),
                                       straggler_factor=1.0))
            budget[0] -= 1
            t = _still_fails(sim, candidate, reads, invariant)
            if t is not None:
                schedule, best = candidate, t
    return schedule, best


def shrink_failure(sim: Simulation, schedule: Schedule,
                   reads: list[np.ndarray], *,
                   invariant: str | None = None,
                   max_runs: int = 200) -> ShrinkResult:
    """Minimise a failing ``(schedule, reads)`` pair.

    ``invariant`` pins which violation must survive every shrink step
    (default: the first violation of the original failure).  Raises
    ``ValueError`` if the pair does not fail to begin with.
    """
    trajectory = sim.run(schedule, reads=reads)
    if not trajectory.violations:
        raise ValueError("shrink_failure needs a failing (schedule, reads)")
    if invariant is None:
        invariant = trajectory.violations[0].invariant
    elif not any(v.invariant == invariant for v in trajectory.violations):
        raise ValueError(f"run does not violate {invariant!r}")

    budget = [max_runs]
    reads_before = len(reads)
    best = trajectory

    schedule, t = _simplify_schedule(sim, schedule, reads, invariant, budget)
    if t is not None:
        best = t
    reads, t = _ddmin_reads(sim, schedule, reads, invariant, budget)
    if t is not None:
        best = t
    # A second schedule pass: smaller inputs often unlock
    # simplifications the first pass could not keep.
    schedule, t = _simplify_schedule(sim, schedule, reads, invariant, budget)
    if t is not None:
        best = t

    return ShrinkResult(
        schedule=schedule,
        reads=reads,
        trajectory=best,
        invariant=invariant,
        runs=max_runs - budget[0],
        reads_before=reads_before,
        reads_after=len(reads),
    )
