"""Fuzz-campaign driver behind ``dakc dst run | sweep``.

:func:`dst_run` executes one campaign: generate ``budget`` schedules
from a root seed, run each through the :class:`Simulation`, verify the
determinism contract on a sample of them (same schedule twice must
digest identically), shrink every distinct failure and emit repro
bundles.  :func:`dst_sweep` fans one budget across several root seeds
— the cheap way to widen coverage without growing any one campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .bundle import ReproBundle, save_bundle
from .invariants import InvariantRegistry, Violation
from .schedule import Schedule, ScheduleFuzzer
from .shrink import shrink_failure
from .sim import SimConfig, Simulation

__all__ = ["DstReport", "dst_run", "dst_sweep", "format_dst_report"]


@dataclass(slots=True)
class DstReport:
    """Everything one campaign observed."""

    seed: int
    budget: int
    schedules_run: int = 0
    violations: list[tuple[Schedule, list[Violation]]] = field(
        default_factory=list)
    bundles: list[Path] = field(default_factory=list)
    determinism_checked: int = 0
    determinism_ok: bool = True
    digests: dict[int, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations and self.determinism_ok

    def to_doc(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "schedules_run": self.schedules_run,
            "violations": [
                {"schedule": s.to_doc(), "violations": [v.to_doc() for v in vs]}
                for s, vs in self.violations
            ],
            "bundles": [str(p) for p in self.bundles],
            "determinism_checked": self.determinism_checked,
            "determinism_ok": self.determinism_ok,
            "ok": self.ok,
        }


def dst_run(
    *,
    budget: int = 200,
    seed: int = 0,
    config: SimConfig | None = None,
    registry: InvariantRegistry | None = None,
    shrink: bool = True,
    shrink_budget: int = 150,
    out_dir: str | Path | None = None,
    max_bundles: int = 5,
    determinism_every: int = 50,
    progress=None,
) -> DstReport:
    """Run one fuzz campaign of *budget* schedules rooted at *seed*.

    Every ``determinism_every``-th schedule is executed twice and the
    digests compared — the cheap continuous audit that the simulation
    really is a pure function of its schedule.  Failures are shrunk
    (up to *max_bundles* of them) and written as repro bundles under
    *out_dir* when given.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    config = config if config is not None else SimConfig()
    sim = Simulation(config, registry=registry)
    fuzzer = ScheduleFuzzer(seed=seed, n_pes=config.n_pes,
                            n_nodes=config.n_nodes, rf=config.rf)
    report = DstReport(seed=seed, budget=budget)

    for i, schedule in enumerate(fuzzer.schedules(budget)):
        trajectory = sim.run(schedule)
        report.schedules_run += 1
        report.digests[i] = trajectory.digest
        if determinism_every and i % determinism_every == 0:
            report.determinism_checked += 1
            if sim.run(schedule).digest != trajectory.digest:
                report.determinism_ok = False
        if trajectory.violations:
            report.violations.append((schedule, list(trajectory.violations)))
            if shrink and len(report.bundles) < max_bundles:
                reads = sim.make_reads(schedule.seed)
                result = shrink_failure(sim, schedule, reads,
                                        max_runs=shrink_budget)
                bundle = ReproBundle.from_failure(
                    config, result.schedule, result.reads, result.trajectory)
                if out_dir is not None:
                    path = (Path(out_dir) /
                            f"dst-{seed}-{i:04d}-{result.invariant}.json")
                    report.bundles.append(save_bundle(bundle, path))
        if progress is not None:
            progress(i, trajectory)
    return report


def dst_sweep(
    seeds: list[int],
    *,
    budget: int = 100,
    config: SimConfig | None = None,
    out_dir: str | Path | None = None,
    **kwargs,
) -> list[DstReport]:
    """One campaign per root seed (independent schedule spaces)."""
    return [
        dst_run(budget=budget, seed=s, config=config, out_dir=out_dir,
                **kwargs)
        for s in seeds
    ]


def format_dst_report(report: DstReport) -> str:
    """Render one campaign as a text summary."""
    lines = [
        f"dst campaign: seed={report.seed} budget={report.budget} "
        f"ran={report.schedules_run}",
        f"determinism: {report.determinism_checked} schedules replayed, "
        + ("digests identical" if report.determinism_ok
           else "DIGEST MISMATCH — simulation is not deterministic"),
    ]
    if not report.violations:
        lines.append("violations: none")
    else:
        lines.append(f"violations: {len(report.violations)} schedule(s)")
        for schedule, violations in report.violations[:10]:
            lines.append(f"  - {schedule.describe()}")
            for v in violations:
                lines.append(f"      [{v.layer}/{v.invariant}] {v.detail}")
        if len(report.violations) > 10:
            lines.append(f"  ... and {len(report.violations) - 10} more")
    for path in report.bundles:
        lines.append(f"bundle: {path}")
    lines.append(f"verdict: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
