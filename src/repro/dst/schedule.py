"""Schedules: one point each in the stack's nondeterminism space.

A :class:`Schedule` pins down everything a production run would leave
to chance — which faults fire, in what order messages pop off the
drain heap, how actor mailboxes interleave, where the LSM store
crashes, when cluster nodes churn.  Replaying the same schedule over
the same input is guaranteed to retrace the same trajectory, which is
what makes a fuzz-found failure a unit test instead of a war story.

The :class:`ScheduleFuzzer` sweeps that space deterministically: the
``i``-th schedule of a campaign is a pure function of ``(root seed,
i)`` via spawned child streams (:mod:`repro.core.seeds`), so two
machines running ``dakc dst run --seed 0`` explore identical
schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..cluster.script import MembershipEvent, sample_script, script_from_doc, script_to_doc
from ..core.seeds import spawn_seeds
from ..fault.models import FaultPlan
from ..lsm.crash import CRASH_POINTS

__all__ = ["Schedule", "ScheduleFuzzer"]


@dataclass(frozen=True, slots=True)
class Schedule:
    """Every knob one simulated trajectory depends on."""

    #: Root seed: input data, query streams and ring placement derive
    #: from it through spawned child streams.
    seed: int = 0
    #: DAKC execution mode ("fast" vectorised / "exact" actor loop).
    mode: str = "fast"
    #: Conveyors virtual topology (1D / 2D / 3D).
    protocol: str = "1D"
    #: Run the reliability layer over the (possibly faulty) wire.
    protect: bool = True
    #: Permutation stream for the conveyor drain heap (None = arrival
    #: order, the production behaviour).
    drain_seed: int | None = None
    #: Permutation streams for the actor runtime (exact mode only).
    mailbox_seed: int | None = None
    step_seed: int | None = None
    #: Permutation stream for out-of-core spill: which bins flush when
    #: the memory ceiling is hit, and the pass-2 bin counting order
    #: (None = the production largest-first / ascending policy).
    spill_seed: int | None = None
    #: Wire/straggler fault plan (None = healthy fabric).
    plan: FaultPlan | None = None
    #: LSM crash point to arm, and on which traversal it fires.
    crash_point: str | None = None
    crash_nth: int = 1
    #: Scripted cluster membership churn.
    membership: tuple[MembershipEvent, ...] = ()
    #: Burst overlay on the cluster query stream (plain floats so the
    #: JSON round-trip stays trivial; amplitude 1.0 / duration 0.0
    #: means no bursts — the production arrival process).
    burst_amplitude: float = 1.0
    burst_duration: float = 0.0
    burst_period: float = 0.5
    #: Multi-tenant scheduling knobs for the tenant layer: per-tenant
    #: DRR weights, per-tenant token-bucket rates (0.0 = unlimited;
    #: same length as the weights), and the scheduler quantum
    #: (0 = layer default).  Empty tuples mean the layer's canonical
    #: two-tenant default — the canary still exercises the scheduler.
    tenant_weights: tuple = ()
    tenant_rates: tuple = ()
    tenant_quantum: int = 0
    #: Autoscaler thresholds driven through the decision machine
    #: (0.0 = layer defaults).
    scaler_hot: float = 0.0
    scaler_cold: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in ("fast", "exact"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.crash_point is not None and self.crash_point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {self.crash_point!r}")
        if self.crash_nth < 1:
            raise ValueError("crash_nth must be >= 1")
        if self.burst_amplitude < 1.0:
            raise ValueError("burst_amplitude must be >= 1")
        if self.burst_period <= 0:
            raise ValueError("burst_period must be > 0")
        if not 0.0 <= self.burst_duration <= self.burst_period:
            raise ValueError("need 0 <= burst_duration <= burst_period")
        if any(w <= 0 for w in self.tenant_weights):
            raise ValueError("tenant weights must be > 0")
        if any(r < 0 for r in self.tenant_rates):
            raise ValueError("tenant rates must be >= 0")
        if self.tenant_rates and len(self.tenant_rates) != len(self.tenant_weights):
            raise ValueError("tenant_rates must match tenant_weights in length")
        if self.tenant_quantum < 0:
            raise ValueError("tenant_quantum must be >= 0")
        if self.scaler_hot < 0 or self.scaler_cold < 0:
            raise ValueError("scaler thresholds must be >= 0")
        if (self.scaler_hot or self.scaler_cold) and \
                self.scaler_hot <= self.scaler_cold:
            raise ValueError("scaler_hot must exceed scaler_cold")

    def burst(self):
        """The schedule's :class:`~repro.serve.workload.BurstSpec`,
        or ``None`` when the overlay is inactive."""
        if self.burst_amplitude <= 1.0 or self.burst_duration <= 0.0:
            return None
        from ..serve.workload import BurstSpec

        return BurstSpec(amplitude=self.burst_amplitude,
                         duration=self.burst_duration,
                         period=self.burst_period)

    # -- serialisation -------------------------------------------------

    def to_doc(self) -> dict:
        """JSON-friendly encoding (repro bundles, digests)."""
        return {
            "seed": self.seed,
            "mode": self.mode,
            "protocol": self.protocol,
            "protect": self.protect,
            "drain_seed": self.drain_seed,
            "mailbox_seed": self.mailbox_seed,
            "step_seed": self.step_seed,
            "spill_seed": self.spill_seed,
            "plan": None if self.plan is None else self.plan.to_doc(),
            "crash_point": self.crash_point,
            "crash_nth": self.crash_nth,
            "membership": script_to_doc(self.membership),
            "burst_amplitude": self.burst_amplitude,
            "burst_duration": self.burst_duration,
            "burst_period": self.burst_period,
            "tenant_weights": list(self.tenant_weights),
            "tenant_rates": list(self.tenant_rates),
            "tenant_quantum": self.tenant_quantum,
            "scaler_hot": self.scaler_hot,
            "scaler_cold": self.scaler_cold,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "Schedule":
        """Rebuild a schedule from :meth:`to_doc` output."""
        plan = doc.get("plan")
        return cls(
            seed=int(doc.get("seed", 0)),
            mode=str(doc.get("mode", "fast")),
            protocol=str(doc.get("protocol", "1D")),
            protect=bool(doc.get("protect", True)),
            drain_seed=doc.get("drain_seed"),
            mailbox_seed=doc.get("mailbox_seed"),
            step_seed=doc.get("step_seed"),
            spill_seed=doc.get("spill_seed"),
            plan=None if plan is None else FaultPlan.from_doc(plan),
            crash_point=doc.get("crash_point"),
            crash_nth=int(doc.get("crash_nth", 1)),
            membership=script_from_doc(doc.get("membership", [])),
            burst_amplitude=float(doc.get("burst_amplitude", 1.0)),
            burst_duration=float(doc.get("burst_duration", 0.0)),
            burst_period=float(doc.get("burst_period", 0.5)),
            tenant_weights=tuple(float(w)
                                 for w in doc.get("tenant_weights", [])),
            tenant_rates=tuple(float(r) for r in doc.get("tenant_rates", [])),
            tenant_quantum=int(doc.get("tenant_quantum", 0)),
            scaler_hot=float(doc.get("scaler_hot", 0.0)),
            scaler_cold=float(doc.get("scaler_cold", 0.0)),
        )

    def simplified(self, **overrides) -> "Schedule":
        """A copy with fields nulled/overridden (shrinking helper)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        parts = [f"seed={self.seed}", self.mode, self.protocol]
        if not self.protect:
            parts.append("bare")
        if self.drain_seed is not None:
            parts.append("drain-permuted")
        if self.mailbox_seed is not None or self.step_seed is not None:
            parts.append("actor-permuted")
        if self.spill_seed is not None:
            parts.append("spill-permuted")
        if self.plan is not None and not self.plan.benign:
            parts.append(self.plan.describe())
        if self.crash_point is not None:
            parts.append(f"crash@{self.crash_point}#{self.crash_nth}")
        if self.membership:
            parts.append("churn=" + ",".join(
                f"{e.kind}:{e.node}@{e.at}" for e in self.membership))
        if self.burst() is not None:
            parts.append(f"burst=x{self.burst_amplitude:.1f}"
                         f"/{self.burst_duration:.2f}s"
                         f"@{self.burst_period:.2f}s")
        if self.tenant_weights:
            spec = ":".join(f"{w:g}" for w in self.tenant_weights)
            parts.append(f"tenants={spec}@q{self.tenant_quantum or 'dflt'}")
        if self.scaler_hot:
            parts.append(f"scaler={self.scaler_hot:g}/{self.scaler_cold:g}")
        return " ".join(parts)


@dataclass(slots=True)
class ScheduleFuzzer:
    """Deterministic generator over the schedule space.

    ``schedules(n)`` yields the first *n* schedules of the campaign
    rooted at ``seed``; schedule ``i`` is drawn from the ``i``-th
    spawned child stream, so any prefix is stable under a larger
    budget and two campaigns with different roots never share a
    stream.  Schedule 0 is always the fault-free production ordering —
    a canary: if *it* violates an invariant the harness itself is
    broken.
    """

    seed: int = 0
    n_pes: int = 4
    n_nodes: int = 4
    rf: int = 2
    n_batches: int = 4
    modes: tuple[str, ...] = ("fast", "exact")
    protocols: tuple[str, ...] = ("1D", "2D")
    crash_points: tuple[str, ...] = field(default=CRASH_POINTS)

    def schedule(self, index: int) -> Schedule:
        """The ``index``-th schedule of this campaign (pure function)."""
        child = spawn_seeds(self.seed, index + 1)[index]
        if index == 0:
            return Schedule(seed=child)
        rng = np.random.default_rng(child)
        mode = str(rng.choice(self.modes))
        protocol = str(rng.choice(self.protocols))
        protect = bool(rng.random() < 0.7)
        plan = None
        if rng.random() < 0.6:
            plan = FaultPlan.sample(rng, n_pes=self.n_pes)
            if plan.benign:
                plan = None
        drain_seed = int(rng.integers(1 << 63)) if rng.random() < 0.6 else None
        mailbox_seed = step_seed = None
        if mode == "exact":
            if rng.random() < 0.6:
                mailbox_seed = int(rng.integers(1 << 63))
            if rng.random() < 0.6:
                step_seed = int(rng.integers(1 << 63))
        crash_point = None
        crash_nth = 1
        if rng.random() < 0.5:
            crash_point = str(rng.choice(self.crash_points))
            crash_nth = int(rng.integers(1, 3))
        membership = sample_script(rng, n_nodes=self.n_nodes, rf=self.rf,
                                   n_batches=self.n_batches)
        burst_amplitude, burst_duration, burst_period = 1.0, 0.0, 0.5
        if rng.random() < 0.35:
            burst_amplitude = float(rng.uniform(2.0, 8.0))
            burst_period = float(rng.uniform(0.1, 0.5))
            burst_duration = float(burst_period * rng.uniform(0.1, 0.6))
        spill_seed = int(rng.integers(1 << 63)) if rng.random() < 0.5 else None
        # Tenant-layer draws come last so every earlier field keeps its
        # historical value for a given (root, index) pair.
        tenant_weights: tuple = ()
        tenant_rates: tuple = ()
        tenant_quantum = 0
        if rng.random() < 0.45:
            n_tenants = int(rng.integers(2, 5))
            tenant_weights = tuple(
                round(float(rng.uniform(0.25, 4.0)), 3)
                for _ in range(n_tenants))
            tenant_rates = tuple(
                0.0 if rng.random() < 0.5
                else round(float(rng.uniform(8.0, 256.0)), 3)
                for _ in range(n_tenants))
            tenant_quantum = int(2 ** rng.integers(2, 7))
        scaler_hot = scaler_cold = 0.0
        if rng.random() < 0.4:
            scaler_cold = round(float(rng.uniform(10.0, 200.0)), 3)
            scaler_hot = round(scaler_cold * float(rng.uniform(2.0, 10.0)), 3)
        return Schedule(
            seed=child,
            mode=mode,
            protocol=protocol,
            protect=protect,
            drain_seed=drain_seed,
            mailbox_seed=mailbox_seed,
            step_seed=step_seed,
            spill_seed=spill_seed,
            plan=plan,
            crash_point=crash_point,
            crash_nth=crash_nth,
            membership=membership,
            burst_amplitude=burst_amplitude,
            burst_duration=burst_duration,
            burst_period=burst_period,
            tenant_weights=tenant_weights,
            tenant_rates=tenant_rates,
            tenant_quantum=tenant_quantum,
            scaler_hot=scaler_hot,
            scaler_cold=scaler_cold,
        )

    def schedules(self, n: int):
        """Yield the first *n* schedules of the campaign."""
        for i in range(n):
            yield self.schedule(i)
