"""Pluggable invariant checkers over simulated trajectories.

An :class:`Invariant` is a named predicate over one layer's observed
facts.  The :class:`Simulation` builds a plain-dict context per layer
(``runtime`` / ``lsm`` / ``cluster``) and asks the registry to check
it; each failed check becomes a :class:`Violation` carried on the
trajectory.  Keeping checkers data-driven (dict in, detail-string out)
means a test can register a bespoke invariant without touching the
simulator.

The default catalogue is the contract the stack already claims in
prose, made executable:

``serial-multiset``
    Whenever the delivery contract promises exactness (reliability
    layer on, or a fault-free wire), the counted multiset equals the
    serial oracle bit-for-bit.
``packet-conservation``
    Conveyor ledger balance: with reliable delivery (or no faults)
    every injected element is delivered exactly once; on a bare faulty
    wire ``delivered == injected - dropped + duplicated``.
``monotone-acks``
    The reliability layer's cumulative-ack windows never move
    backwards.
``wal-recovery``
    Reopening a (possibly crashed) LSM store yields exactly the
    acknowledged batches — no lost ack, no resurrected torn write.
``cache-no-stale``
    A serving cache subscribed to the store never returns a
    pre-ingest count.
``ooc-exact``
    Out-of-core counting — whatever spill interleaving the schedule
    forces — produces the oracle multiset, both as the merged result
    and through the fused LSM store.
``spill-conservation``
    Pass 2 rereads exactly the bytes pass 1 spilled: no bin lost, none
    read twice.
``ring-rf``
    Every routing-table row names exactly RF distinct live-ring
    members.
``cluster-exact``
    Every query answered during membership churn matches the serial
    oracle.
``no-starvation``
    Under the DRR scheduler, every admitted (backlogged) tenant makes
    progress within its bounded number of grant turns — no service
    ever exceeds the ``ceil(chunk / (quantum * weight))`` bound, and
    no tenant goes unserved across a saturated window.
``fair-share``
    Over a saturated scheduling window, each tenant's served fraction
    stays within the DRR additive error (one quantum grant plus one
    maximum chunk, per tenant) of its weight share.
``quota-conservation``
    A token bucket never admits more work than its burst plus the
    refill earned by the elapsed virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Violation", "Invariant", "InvariantRegistry", "default_registry"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant breach observed on a trajectory."""

    invariant: str
    layer: str
    detail: str

    def to_doc(self) -> dict:
        return {"invariant": self.invariant, "layer": self.layer,
                "detail": self.detail}

    @classmethod
    def from_doc(cls, doc: dict) -> "Violation":
        return cls(invariant=str(doc["invariant"]), layer=str(doc["layer"]),
                   detail=str(doc["detail"]))


@dataclass(frozen=True, slots=True)
class Invariant:
    """A named checker over one layer's observation dict.

    ``check(ctx)`` returns ``None`` when the invariant holds, or a
    human-readable detail string describing the breach.
    """

    name: str
    layer: str
    check: Callable[[dict], str | None]


@dataclass(slots=True)
class InvariantRegistry:
    """Checkers grouped by layer; extensible per-test."""

    _invariants: list[Invariant] = field(default_factory=list)

    def register(self, invariant: Invariant) -> None:
        if any(i.name == invariant.name for i in self._invariants):
            raise ValueError(f"invariant {invariant.name!r} already registered")
        self._invariants.append(invariant)

    def names(self) -> tuple[str, ...]:
        return tuple(i.name for i in self._invariants)

    def check(self, layer: str, ctx: dict) -> list[Violation]:
        """Run every checker registered for *layer* over *ctx*."""
        out: list[Violation] = []
        for inv in self._invariants:
            if inv.layer != layer:
                continue
            detail = inv.check(ctx)
            if detail is not None:
                out.append(Violation(inv.name, layer, detail))
        return out


# -- the default catalogue --------------------------------------------


def _serial_multiset(ctx: dict) -> str | None:
    if ctx.get("error") is not None or not ctx.get("expects_exact", False):
        return None
    if ctx.get("counts_match", True):
        return None
    return ("counted multiset != serial oracle "
            f"({ctx.get('n_distinct', '?')} distinct counted vs "
            f"{ctx.get('oracle_distinct', '?')} expected)")


def _packet_conservation(ctx: dict) -> str | None:
    if ctx.get("error") is not None:
        return None  # the run already failed loudly; no ledger to balance
    injected = ctx.get("injected", 0)
    delivered = ctx.get("delivered", 0)
    if ctx.get("protect", True) or not ctx.get("faulty", False):
        expected = injected
        label = "reliable/clean wire"
    else:
        expected = injected - ctx.get("dropped", 0) + ctx.get("duplicated", 0)
        label = "bare faulty wire"
    if delivered == expected:
        return None
    return (f"{label}: delivered {delivered} elements, expected {expected} "
            f"(injected {injected}, dropped {ctx.get('dropped', 0)}, "
            f"duplicated {ctx.get('duplicated', 0)})")


def _monotone_acks(ctx: dict) -> str | None:
    regressions = ctx.get("ack_regressions", 0)
    if not regressions:
        return None
    return f"cumulative-ack window moved backwards {regressions} time(s)"


def _wal_recovery(ctx: dict) -> str | None:
    if ctx.get("recovered_match", True):
        return None
    return ctx.get("detail") or "reopened store != acknowledged-batch oracle"


def _cache_no_stale(ctx: dict) -> str | None:
    stale = ctx.get("stale_serves", 0)
    if not stale:
        return None
    return f"cache served {stale} pre-ingest count(s) after updates"


def _ooc_exact(ctx: dict) -> str | None:
    if ctx.get("error") is not None:
        return f"out-of-core count crashed: {ctx['error']}"
    if not ctx.get("counts_match", True):
        return ("out-of-core multiset != serial oracle "
                f"({ctx.get('n_distinct', '?')} distinct counted vs "
                f"{ctx.get('oracle_distinct', '?')} expected)")
    if not ctx.get("store_match", True):
        return "fused LSM store != serial oracle after out-of-core ingest"
    return None


def _spill_conservation(ctx: dict) -> str | None:
    if ctx.get("error") is not None:
        return None  # ooc-exact already reports the crash
    spilled = ctx.get("bytes_spilled", 0)
    reread = ctx.get("bytes_reread", 0)
    if spilled == reread:
        return None
    return f"spilled {spilled} bytes but pass 2 reread {reread}"


def _ring_rf(ctx: dict) -> str | None:
    if ctx.get("rf_ok", True):
        return None
    return ctx.get("rf_detail") or "routing table row without RF distinct owners"


def _cluster_exact(ctx: dict) -> str | None:
    if ctx.get("error") is not None:
        return f"membership script failed: {ctx['error']}"
    if ctx.get("answers_match", True):
        return None
    return (f"{ctx.get('mismatches', '?')} of {ctx.get('n_queries', '?')} "
            "answers differ from the serial oracle during churn")


def _no_starvation(ctx: dict) -> str | None:
    violations = ctx.get("starvation_violations", 0)
    if violations:
        return (f"{violations} service(s) waited more grant turns than "
                "the DRR bound allows")
    if not ctx.get("all_progressed", True):
        return "a backlogged tenant was never served in the saturated window"
    return None


def _fair_share(ctx: dict) -> str | None:
    error = ctx.get("share_error", 0.0)
    epsilon = ctx.get("epsilon", 1.0)
    if error <= epsilon:
        return None
    return (f"served share off weight share by {error:.4f} "
            f"(allowed {epsilon:.4f}) under saturation")


def _quota_conservation(ctx: dict) -> str | None:
    overdraft = ctx.get("quota_overdraft", 0)
    if not overdraft:
        return None
    return f"token bucket over-admitted at {overdraft} sample point(s)"


def default_registry() -> InvariantRegistry:
    """The stock invariant catalogue (one registry per simulation)."""
    registry = InvariantRegistry()
    registry.register(Invariant("serial-multiset", "runtime", _serial_multiset))
    registry.register(Invariant("packet-conservation", "runtime",
                                _packet_conservation))
    registry.register(Invariant("monotone-acks", "runtime", _monotone_acks))
    registry.register(Invariant("wal-recovery", "lsm", _wal_recovery))
    registry.register(Invariant("cache-no-stale", "lsm", _cache_no_stale))
    registry.register(Invariant("ooc-exact", "ooc", _ooc_exact))
    registry.register(Invariant("spill-conservation", "ooc",
                                _spill_conservation))
    registry.register(Invariant("ring-rf", "cluster", _ring_rf))
    registry.register(Invariant("cluster-exact", "cluster", _cluster_exact))
    registry.register(Invariant("no-starvation", "tenant", _no_starvation))
    registry.register(Invariant("fair-share", "tenant", _fair_share))
    registry.register(Invariant("quota-conservation", "tenant",
                                _quota_conservation))
    return registry
