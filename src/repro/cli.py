"""Command-line interface: ``dakc`` / ``python -m repro``.

Subcommands:

* ``count``    — count k-mers in a FASTA/FASTQ file (or a generated
  dataset replica) with any algorithm and print a summary/spectrum.
* ``datasets`` — print Table V (the dataset inventory).
* ``model``    — evaluate the analytical model for a dataset/machine.
* ``bench``    — regenerate a paper table or figure by id (``fig7``,
  ``table5``, ...), or ``all``.
* ``simulate`` — generate a synthetic FASTQ replica to disk.
* ``chaos``    — fault-injection campaign: DAKC on a lossy fabric with
  the reliability/checkpoint layer, validated against the serial oracle.
* ``serve-bench`` — query-serving benchmark: the sharded/batched/cached
  read path vs. naive per-query lookups on a Zipf workload (optionally
  over a live LSM store).
* ``cluster-bench`` — replicated serving-cluster benchmark: router
  overhead, hedged-request tail latency under a straggler, and the
  RF=2 chaos proof (node kill + live rebalance, bit-exact answers).
* ``tenant-bench`` — multi-tenant QoS benchmark: an antagonist floods
  the engine while a paced victim measures p99; quotas + DRR isolation
  on vs. unbounded off, plus the fairness and autoscaler proofs.
* ``ingest``   — durably append reads into an updatable LSM k-mer
  store (WAL + memtable + sorted runs).
* ``compact``  — merge an LSM store's runs down to the configured
  read-amplification bound.
* ``trace``    — query-trace tooling (repro.trace): ``record`` a served
  workload, ``profile`` its exact LRU miss-ratio curve, ``sample`` it
  spatially/temporally, ``replay`` it bit-identically.
* ``xp``       — declarative experiments (repro.xp): ``run`` a spec's
  sweep under its warmup/repetition policy, ``gate`` it against the
  ledger baseline with Mann-Whitney + minimum-effect thresholds,
  ``report`` the cross-PR trajectory, ``import-legacy`` the historical
  ``BENCH_*.json`` files into the versioned ledger.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dakc",
        description="DAKC reproduction: distributed asynchronous k-mer counting "
        "on a simulated PGAS machine.",
    )
    parser.add_argument("--version", action="version", version=f"dakc {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_count = sub.add_parser("count", help="count k-mers in a FASTX file or dataset")
    src = p_count.add_mutually_exclusive_group(required=True)
    src.add_argument("--input", help="FASTA/FASTQ file path")
    src.add_argument("--dataset", help="Table V dataset key (e.g. synthetic-24)")
    p_count.add_argument("-k", type=int, default=31, help="k-mer length (default 31)")
    p_count.add_argument("--algorithm", default="auto",
                         help="auto|fast|serial|dakc|bsp|pakman|pakman*|hysortk|"
                              "kmc3 (auto = vectorised fast path for --input, "
                              "dakc simulation for --dataset)")
    p_count.add_argument("--nodes", type=int, default=1, help="simulated node count")
    p_count.add_argument("--machine", default="phoenix-intel",
                         help="machine preset (phoenix-intel|phoenix-amd|laptop)")
    p_count.add_argument("--protocol", default="1D", help="Conveyors topology (DAKC)")
    p_count.add_argument("--canonical", action="store_true",
                         help="count canonical (strand-folded) k-mers")
    p_count.add_argument("--budget", type=int, default=400_000,
                         help="replica k-mer budget when using --dataset")
    p_count.add_argument("--top", type=int, default=0,
                         help="print the N most frequent k-mers")
    p_count.add_argument("--spectrum", type=int, default=0,
                         help="print the k-mer spectrum up to this count")
    p_count.add_argument("--output", help="write counts as TSV to this path")
    p_count.add_argument("--save", help="write counts as a binary .npz database")

    sub.add_parser("datasets", help="print Table V")

    p_model = sub.add_parser("model", help="evaluate the analytical model (Sec. V)")
    p_model.add_argument("--dataset", default="synthetic-30")
    p_model.add_argument("-k", type=int, default=31)
    p_model.add_argument("--nodes", type=int, default=32)
    p_model.add_argument("--machine", default="phoenix-intel")

    p_bench = sub.add_parser("bench", help="regenerate a paper table/figure")
    p_bench.add_argument("experiment", help="experiment id (fig1..fig13, "
                         "table2..table5) or 'all' or 'list'")
    p_bench.add_argument("--budget", type=int, default=None,
                         help="override the replica k-mer budget")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--report", help="also write a markdown report here")

    p_sim = sub.add_parser("simulate", help="write a synthetic FASTQ replica")
    p_sim.add_argument("--dataset", default="synthetic-20")
    p_sim.add_argument("--fidelity", type=float, default=2**-10)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--output", required=True, help="FASTQ output path")

    p_an = sub.add_parser("analyze", help="spectrum analysis of a count database")
    p_an.add_argument("database", help=".npz written by `count --save` or a .tsv dump")
    p_an.add_argument("--max-count", type=int, default=1000)

    p_cmp = sub.add_parser("compare", help="compare two count databases")
    p_cmp.add_argument("a", help="first database (.npz or .tsv)")
    p_cmp.add_argument("b", help="second database (.npz or .tsv)")

    p_sw = sub.add_parser("sweep", help="custom strong-scaling sweep")
    p_sw.add_argument("--dataset", default="synthetic-26")
    p_sw.add_argument("-k", type=int, default=31)
    p_sw.add_argument("--algorithms", default="dakc,pakman*,hysortk",
                      help="comma-separated algorithm list")
    p_sw.add_argument("--nodes", default="1,2,4,8,16",
                      help="comma-separated node counts")
    p_sw.add_argument("--budget", type=int, default=200_000)
    p_sw.add_argument("--plot", action="store_true", help="ASCII log-log chart")

    p_cal = sub.add_parser("calibrate",
                           help="microbenchmark this host into a machine config")
    p_cal.add_argument("--cores", type=int, default=8,
                       help="core count to assume for node-level rates")
    p_cal.add_argument("--quick", action="store_true",
                       help="small measurement sizes (noisy, fast)")

    p_chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign: DAKC under a lossy fabric, "
        "validated against the serial oracle",
    )
    p_chaos.add_argument("--dataset", default="synthetic-20",
                         help="Table V dataset key for the replica workload")
    p_chaos.add_argument("-k", type=int, default=31)
    p_chaos.add_argument("--nodes", type=int, default=2)
    p_chaos.add_argument("--machine", default="laptop",
                         help="machine preset (phoenix-intel|phoenix-amd|laptop)")
    p_chaos.add_argument("--protocol", default="1D",
                         help="Conveyors topology (1D|2D|3D)")
    p_chaos.add_argument("--budget", type=int, default=100_000,
                         help="replica k-mer budget")
    p_chaos.add_argument("--drop", default="0.01,0.05",
                         help="comma-separated drop probabilities to sweep")
    p_chaos.add_argument("--duplicate", type=float, default=0.01,
                         help="duplication probability")
    p_chaos.add_argument("--corrupt", type=float, default=0.005,
                         help="payload bit-flip probability")
    p_chaos.add_argument("--delay", type=float, default=0.0,
                         help="delivery delay probability")
    p_chaos.add_argument("--crash", default="",
                         help="comma-separated PE indices to crash at the "
                         "phase boundary (checkpoint/restart protects them)")
    p_chaos.add_argument("--straggler", default="",
                         help="comma-separated PE indices running slow")
    p_chaos.add_argument("--straggler-factor", type=float, default=2.0,
                         help="clock dilation of straggler PEs (>= 1)")
    p_chaos.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve-bench",
        help="query-serving benchmark: naive scalar lookups vs. the "
        "sharded/batched/cached engine on a Zipf workload",
    )
    serve_src = p_serve.add_mutually_exclusive_group()
    serve_src.add_argument("--database", help=".npz count database to serve "
                           "(written by `count --save`)")
    serve_src.add_argument("--dataset", default="synthetic-20",
                           help="Table V dataset key to count and serve")
    serve_src.add_argument("--lsm-store", help="serve a live LSM store "
                           "directory (written by `dakc ingest`)")
    p_serve.add_argument("-k", type=int, default=15, help="k-mer length")
    p_serve.add_argument("--budget", type=int, default=100_000,
                         help="replica k-mer budget when using --dataset")
    p_serve.add_argument("--queries", type=int, default=40_000,
                         help="queries in the generated stream")
    p_serve.add_argument("--shards", type=int, default=8,
                         help="virtual shards (splitmix64-partitioned)")
    p_serve.add_argument("--zipf", type=float, default=1.1,
                         help="Zipf exponent of key popularity")
    p_serve.add_argument("--miss-fraction", type=float, default=0.02,
                         help="fraction of queries for absent keys")
    p_serve.add_argument("--batch-size", type=int, default=256,
                         help="micro-batch coalescing target (keys)")
    p_serve.add_argument("--batch-window", type=float, default=5e-4,
                         help="seconds a partial batch waits for company")
    p_serve.add_argument("--max-inflight", type=int, default=8192,
                         help="admission bound in keys (backpressure)")
    p_serve.add_argument("--cache-capacity", type=int, default=4096,
                         help="hot-key cache slots (0 disables the cache)")
    p_serve.add_argument("--cache-threshold", type=int, default=2,
                         help="sightings before a key earns a cache slot")
    p_serve.add_argument("--t2-capacity", type=int, default=0,
                         help="second cache tier slots (0 = single tier; "
                         "t2 hits charge a simulated device latency)")
    p_serve.add_argument("--group-size", type=int, default=256,
                         help="keys per client arrival group")
    p_serve.add_argument("--concurrency", type=int, default=8,
                         help="client groups kept in flight")
    _add_burst_args(p_serve)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--json", help="write the metrics snapshot here")
    p_serve.add_argument("--trace-out",
                         help="record the engine's query trace here (.npz)")

    p_ten = sub.add_parser(
        "tenant-bench",
        help="multi-tenant QoS benchmark: antagonist floods, victim "
        "measures p99 — quota/DRR isolation on vs. unbounded off",
    )
    ten_src = p_ten.add_mutually_exclusive_group()
    ten_src.add_argument("--database", help=".npz count database to serve "
                         "(written by `count --save`)")
    ten_src.add_argument("--dataset", default="synthetic-20",
                         help="Table V dataset key to count and serve")
    p_ten.add_argument("-k", type=int, default=15, help="k-mer length")
    p_ten.add_argument("--budget", type=int, default=100_000,
                       help="replica k-mer budget when using --dataset")
    p_ten.add_argument("--victim-groups", type=int, default=400,
                       help="timed victim arrival groups")
    p_ten.add_argument("--victim-group", type=int, default=32,
                       help="keys per victim group")
    p_ten.add_argument("--victim-interval", type=float, default=15e-3,
                       help="seconds between victim arrivals (open loop)")
    p_ten.add_argument("--victim-slo-ms", type=float, default=100.0,
                       help="victim latency SLO target (ms)")
    p_ten.add_argument("--antag-batch", type=int, default=256,
                       help="keys per antagonist batch")
    p_ten.add_argument("--flooders", type=int, default=16,
                       help="concurrent antagonist flooder tasks")
    p_ten.add_argument("--antag-rate", type=float, default=32.0,
                       help="antagonist quota refill rate (keys/s) when "
                       "isolation is on")
    p_ten.add_argument("--shards", type=int, default=2,
                       help="engine shards")
    p_ten.add_argument("--zipf", type=float, default=1.1,
                       help="Zipf exponent of key popularity")
    p_ten.add_argument("--autoscale-nodes", type=int, default=3,
                       help="starting cluster size for the autoscaler demo")
    p_ten.add_argument("--quick", action="store_true",
                       help="smoke-test sizes (CI): fewer groups, shorter "
                       "flushes")
    p_ten.add_argument("--seed", type=int, default=0)
    p_ten.add_argument("--json", help="write the full result document here")

    p_cl = sub.add_parser(
        "cluster-bench",
        help="replicated serving cluster: router overhead, hedged "
        "tail latency under a straggler, and the RF=2 chaos proof",
    )
    cl_src = p_cl.add_mutually_exclusive_group()
    cl_src.add_argument("--database", help=".npz count database to serve "
                        "(written by `count --save`)")
    cl_src.add_argument("--dataset", default="synthetic-20",
                        help="Table V dataset key to count and serve")
    p_cl.add_argument("-k", type=int, default=15, help="k-mer length")
    p_cl.add_argument("--budget", type=int, default=100_000,
                      help="replica k-mer budget when using --dataset")
    p_cl.add_argument("--cluster-nodes", type=int, default=6,
                      help="cluster members (each holds an rf/N slice)")
    p_cl.add_argument("--rf", type=int, default=2,
                      help="replication factor (copies of every key)")
    p_cl.add_argument("--vnodes", type=int, default=16,
                      help="virtual nodes (ring tokens) per member")
    p_cl.add_argument("--queries", type=int, default=30_000,
                      help="queries in the generated Zipf stream")
    p_cl.add_argument("--zipf", type=float, default=1.1,
                      help="Zipf exponent of key popularity")
    p_cl.add_argument("--miss-fraction", type=float, default=0.02,
                      help="fraction of queries for absent keys")
    p_cl.add_argument("--group-size", type=int, default=256,
                      help="keys per client batch")
    p_cl.add_argument("--concurrency", type=int, default=8,
                      help="client batches kept in flight")
    p_cl.add_argument("--service-time", type=float, default=2e-4,
                      help="simulated seconds per node batch lookup")
    p_cl.add_argument("--straggler-delay", type=float, default=2e-2,
                      help="dilated service time of the injected straggler")
    p_cl.add_argument("--chunk-keys", type=int, default=2048,
                      help="keys per rebalance copy chunk")
    p_cl.add_argument("--repeats", type=int, default=3,
                      help="best-of repeats for the overhead section")
    _add_burst_args(p_cl)
    p_cl.add_argument("--seed", type=int, default=0)
    p_cl.add_argument("--json", help="write the benchmark document here")
    p_cl.add_argument("--trace-out",
                      help="record the routed query trace here (.npz)")

    p_ing = sub.add_parser(
        "ingest",
        help="durably append reads into an updatable LSM k-mer store",
    )
    p_ing.add_argument("--store", required=True,
                       help="store directory (created on first use)")
    ing_src = p_ing.add_mutually_exclusive_group(required=True)
    ing_src.add_argument("--input", help="FASTA/FASTQ file to ingest")
    ing_src.add_argument("--dataset", help="Table V dataset key to ingest "
                         "as a generated replica")
    p_ing.add_argument("-k", type=int, default=31,
                       help="k-mer length (checked against the store)")
    p_ing.add_argument("--budget", type=int, default=100_000,
                       help="replica k-mer budget when using --dataset")
    p_ing.add_argument("--seed", type=int, default=0,
                       help="replica seed when using --dataset")
    p_ing.add_argument("--batch-records", type=int, default=10_000,
                       help="reads per WAL record / ingest batch")
    p_ing.add_argument("--memtable-mb", type=float, default=8.0,
                       help="memtable byte budget before flushing a run")
    p_ing.add_argument("--max-runs", type=int, default=8,
                       help="run-count bound (read-amplification fan-in)")
    p_ing.add_argument("--canonical", action="store_true",
                       help="count canonical (strand-folded) k-mers")
    p_ing.add_argument("--no-compact", action="store_true",
                       help="skip inline compaction (compact later)")
    p_ing.add_argument("--flush", action="store_true",
                       help="flush the memtable to a run before exiting")

    p_cpt = sub.add_parser(
        "compact",
        help="merge an LSM store's runs down to the configured bound",
    )
    p_cpt.add_argument("--store", required=True, help="store directory")
    p_cpt.add_argument("--max-runs", type=int, default=8,
                       help="run-count bound to compact down to")
    p_cpt.add_argument("--fan-in", type=int, default=8,
                       help="runs merged per compaction step")
    p_cpt.add_argument("--flush", action="store_true",
                       help="flush the memtable to a run first")

    p_ooc = sub.add_parser(
        "ooc-count",
        help="two-pass out-of-core count under a hard memory ceiling "
             "(repro.ooc)",
    )
    ooc_src = p_ooc.add_mutually_exclusive_group(required=True)
    ooc_src.add_argument("--input", help="FASTA/FASTQ file to count")
    ooc_src.add_argument("--dataset", help="Table V dataset key to count "
                         "as a generated replica")
    p_ooc.add_argument("-k", type=int, default=31, help="k-mer length")
    p_ooc.add_argument("-w", type=int, default=None,
                       help="minimizer length (default min(k, 7))")
    p_ooc.add_argument("--n-bins", type=int, default=64,
                       help="minimizer-partitioned spill bins")
    p_ooc.add_argument("--memory-mb", type=float, default=1.0,
                       help="hard memory ceiling for pass-1 buffering "
                            "(and the fused store's memtable budget)")
    p_ooc.add_argument("--budget", type=int, default=100_000,
                       help="replica k-mer budget when using --dataset")
    p_ooc.add_argument("--seed", type=int, default=0,
                       help="replica seed when using --dataset")
    p_ooc.add_argument("--canonical", action="store_true",
                       help="count canonical (strand-folded) k-mers")
    p_ooc.add_argument("--store", default=None,
                       help="fuse counted bins into this LSM store directory")
    p_ooc.add_argument("--workdir", default=None,
                       help="spill-bin directory (default: private tempdir)")
    p_ooc.add_argument("--keep-bins", action="store_true",
                       help="leave spill bins on disk after pass 2")
    p_ooc.add_argument("--machine", default="laptop",
                       help="machine preset pricing the disk traffic "
                            "(phoenix-intel|phoenix-amd|laptop)")
    p_ooc.add_argument("--verify", action="store_true",
                       help="recount in memory and assert bit-identical "
                            "results (small inputs only)")
    p_ooc.add_argument("--json", default=None,
                       help="write the run report here")

    p_dst = sub.add_parser(
        "dst",
        help="deterministic simulation testing: fuzz schedules, replay "
             "repro bundles (repro.dst)",
    )
    dst_sub = p_dst.add_subparsers(dest="dst_command", required=True)
    p_dst_run = dst_sub.add_parser(
        "run", help="fuzz one campaign of schedules and check invariants")
    p_dst_run.add_argument("--budget", type=int, default=200,
                           help="schedules to run")
    p_dst_run.add_argument("--seed", type=int, default=0,
                           help="campaign root seed")
    p_dst_run.add_argument("--out", default=None,
                           help="directory for shrunk repro bundles")
    p_dst_run.add_argument("--no-shrink", action="store_true",
                           help="report failures without minimising them")
    p_dst_run.add_argument("--json", default=None,
                           help="also write the campaign report as JSON here")
    p_dst_replay = dst_sub.add_parser(
        "replay", help="re-run a repro bundle and verify the violation")
    p_dst_replay.add_argument("bundle", help="path to a dst repro bundle")
    p_dst_sweep = dst_sub.add_parser(
        "sweep", help="one campaign per root seed")
    p_dst_sweep.add_argument("--seeds", default="0,1,2",
                             help="comma-separated campaign root seeds")
    p_dst_sweep.add_argument("--budget", type=int, default=100,
                             help="schedules per campaign")
    p_dst_sweep.add_argument("--out", default=None,
                             help="directory for shrunk repro bundles")

    p_tr = sub.add_parser(
        "trace",
        help="query-trace capture, reuse-distance cache modelling, "
             "sampling, and deterministic replay (repro.trace)",
    )
    tr_sub = p_tr.add_subparsers(dest="trace_command", required=True)

    p_tr_rec = tr_sub.add_parser(
        "record", help="serve a Zipf(+burst) stream and record its trace")
    tr_src = p_tr_rec.add_mutually_exclusive_group()
    tr_src.add_argument("--database", help=".npz count database to serve")
    tr_src.add_argument("--dataset", default="synthetic-20",
                        help="Table V dataset key to count and serve")
    p_tr_rec.add_argument("-k", type=int, default=15, help="k-mer length")
    p_tr_rec.add_argument("--budget", type=int, default=100_000,
                          help="replica k-mer budget when using --dataset")
    p_tr_rec.add_argument("--queries", type=int, default=40_000)
    p_tr_rec.add_argument("--shards", type=int, default=8)
    p_tr_rec.add_argument("--zipf", type=float, default=1.1)
    p_tr_rec.add_argument("--miss-fraction", type=float, default=0.02)
    p_tr_rec.add_argument("--cache-capacity", type=int, default=4096,
                          help="t1 cache slots (0 disables the cache)")
    p_tr_rec.add_argument("--cache-threshold", type=int, default=2)
    p_tr_rec.add_argument("--t2-capacity", type=int, default=0,
                          help="second cache tier slots (0 = single tier)")
    _add_burst_args(p_tr_rec)
    p_tr_rec.add_argument("--seed", type=int, default=0)
    p_tr_rec.add_argument("--out", required=True,
                          help="trace output path (.npz)")

    p_tr_prof = tr_sub.add_parser(
        "profile", help="reuse-distance profile: exact LRU miss-ratio curve")
    p_tr_prof.add_argument("trace", help="trace file written by `trace record`")
    p_tr_prof.add_argument("--capacities",
                           help="comma-separated cache capacities "
                           "(default: log-spaced up to the working set)")
    p_tr_prof.add_argument("--measure", action="store_true",
                           help="also brute-force-simulate LRU at each "
                           "capacity and report the model error")
    p_tr_prof.add_argument("--json", help="write the profile document here")

    p_tr_rep = tr_sub.add_parser(
        "replay", help="replay a recorded trace through a fresh engine")
    p_tr_rep.add_argument("trace", help="trace file to replay")
    rep_src = p_tr_rep.add_mutually_exclusive_group()
    rep_src.add_argument("--database", help=".npz count database to serve")
    rep_src.add_argument("--dataset", default="synthetic-20",
                         help="Table V dataset key to count and serve")
    p_tr_rep.add_argument("-k", type=int, default=15, help="k-mer length")
    p_tr_rep.add_argument("--budget", type=int, default=100_000,
                          help="replica k-mer budget when using --dataset")
    p_tr_rep.add_argument("--shards", type=int, default=8)
    p_tr_rep.add_argument("--cache-capacity", type=int, default=4096)
    p_tr_rep.add_argument("--cache-threshold", type=int, default=2)
    p_tr_rep.add_argument("--t2-capacity", type=int, default=0)
    p_tr_rep.add_argument("--tick", type=float, default=1e-3,
                          help="arrival-group granularity (seconds)")
    p_tr_rep.add_argument("--group-size", type=int, default=256,
                          help="max keys per replayed client batch")
    p_tr_rep.add_argument("--concurrency", type=int, default=8)
    p_tr_rep.add_argument("--json", help="write the replay document here")

    p_tr_smp = tr_sub.add_parser(
        "sample", help="spatially (SHARDS) or temporally sample a trace")
    p_tr_smp.add_argument("trace", help="trace file to sample")
    p_tr_smp.add_argument("--out", required=True,
                          help="sampled trace output path (.npz)")
    p_tr_smp.add_argument("--rate", type=float, default=None,
                          help="spatial (hash-filter) sampling rate in (0,1]")
    p_tr_smp.add_argument("--salt", type=int, default=0,
                          help="re-salt the spatial filter for an "
                          "independent sample")
    p_tr_smp.add_argument("--window", type=float, default=None,
                          help="temporal: keep this many seconds ...")
    p_tr_smp.add_argument("--every", type=float, default=None,
                          help="... out of every this many seconds")
    p_tr_smp.add_argument("--check", action="store_true",
                          help="compare the sampled (rescaled) miss-ratio "
                          "curve against the full trace's exact curve")

    p_xp = sub.add_parser(
        "xp",
        help="declarative experiments: seeded sweeps with repetition "
             "policy, bootstrap CIs, and statistical perf gating "
             "(repro.xp)",
    )
    xp_sub = p_xp.add_subparsers(dest="xp_command", required=True)

    p_xp_run = xp_sub.add_parser(
        "run", help="run one spec's sweep and append the envelope to "
                    "the ledger")
    _add_xp_run_args(p_xp_run)
    p_xp_run.add_argument("--json", default=None,
                          help="also write the result envelope here")

    p_xp_gate = xp_sub.add_parser(
        "gate", help="run a spec (or load --current) and compare it "
                     "against the ledger baseline; exit 1 on a "
                     "significant regression")
    _add_xp_run_args(p_xp_gate)
    p_xp_gate.add_argument("--current", default=None,
                           help="gate this saved envelope instead of "
                                "running the spec")
    p_xp_gate.add_argument("--baseline", default=None,
                           help="explicit baseline envelope path "
                                "(default: newest passing ledger entry)")
    p_xp_gate.add_argument("--alpha", type=float, default=0.01,
                           help="Mann-Whitney significance level")
    p_xp_gate.add_argument("--min-effect", type=float, default=0.10,
                           help="minimum relative median shift that can "
                                "fail the gate")
    p_xp_gate.add_argument("--report-only", action="store_true",
                           help="print the verdict but always exit 0")
    p_xp_gate.add_argument("--json", default=None,
                           help="write the gate verdict document here")

    p_xp_rep = xp_sub.add_parser(
        "report", help="print an experiment's cross-PR ledger trajectory")
    p_xp_rep.add_argument("experiment", nargs="?", default=None,
                          help="experiment id (default: list all)")
    p_xp_rep.add_argument("--ledger", default=None,
                          help="ledger directory (default "
                               "benchmarks/results/ledger)")

    p_xp_list = xp_sub.add_parser(
        "list", help="list targets, spec files, and ledger experiments")
    p_xp_list.add_argument("--ledger", default=None)
    p_xp_list.add_argument("--specs", default="benchmarks/xp",
                           help="directory holding declarative specs")

    p_xp_imp = xp_sub.add_parser(
        "import-legacy",
        help="one-shot migration of the historical BENCH_*.json files "
             "into the versioned ledger (originals stay in place)")
    p_xp_imp.add_argument("--results", default="benchmarks/results",
                          help="directory holding BENCH_*.json")
    p_xp_imp.add_argument("--ledger", default=None)

    p_tl = sub.add_parser("timeline", help="ASCII Gantt of a simulated run")
    p_tl.add_argument("--dataset", default="synthetic-20")
    p_tl.add_argument("-k", type=int, default=31)
    p_tl.add_argument("--algorithm", default="dakc")
    p_tl.add_argument("--nodes", type=int, default=2)
    p_tl.add_argument("--budget", type=int, default=100_000)
    p_tl.add_argument("--width", type=int, default=100)
    p_tl.add_argument("--chrome", help="also write Chrome trace-event JSON "
                      "here (open in Perfetto / chrome://tracing)")

    return parser


def _add_xp_run_args(parser) -> None:
    """Flags shared by ``xp run`` and ``xp gate``."""
    parser.add_argument("spec", help="experiment spec (.json or .toml)")
    parser.add_argument("--ledger", default=None,
                        help="ledger directory (default "
                             "benchmarks/results/ledger)")
    parser.add_argument("--no-ledger", action="store_true",
                        help="do not append the result envelope")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the spec's root seed")
    parser.add_argument("--repetitions", type=int, default=None,
                        help="override the spec's repetition count")
    parser.add_argument("--warmup", type=int, default=None,
                        help="override the spec's warmup count")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="overrides",
                        help="override a fixed parameter (JSON value; "
                             "repeatable)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shrink to 0 warmups / 2 "
                             "repetitions and skip the ledger append "
                             "(quick numbers never become baselines)")


def _add_burst_args(parser) -> None:
    """Burst-overlay flags shared by the workload-driving commands."""
    parser.add_argument("--burst-amplitude", type=float, default=1.0,
                        help="rate multiplier inside bursts (1 = no bursts)")
    parser.add_argument("--burst-duration", type=float, default=0.05,
                        help="seconds of burst per period")
    parser.add_argument("--burst-period", type=float, default=0.5,
                        help="seconds from burst start to burst start")


def _burst_from_args(args):
    """A BurstSpec from the shared flags, or None when amplitude <= 1."""
    if getattr(args, "burst_amplitude", 1.0) <= 1.0:
        return None
    from .serve import BurstSpec

    return BurstSpec(amplitude=args.burst_amplitude,
                     duration=args.burst_duration,
                     period=args.burst_period)


def _cmd_count(args) -> int:
    from .api import count_kmers
    from .bench.tables import format_time
    from .bench.workloads import build_workload
    from .seq.kmers import kmer_to_str

    if args.dataset:
        workload = build_workload(args.dataset, args.k, budget_kmers=args.budget)
        reads = workload.reads
        source = f"{workload.spec.display} (replica, {workload.n_reads} reads)"
    else:
        reads = args.input
        source = args.input

    # "auto": real files get the vectorised super-k-mer fast path;
    # dataset replicas keep the simulated dakc run (the paper's view).
    algorithm = args.algorithm
    if algorithm == "auto":
        algorithm = "fast" if args.input else "dakc"

    run = count_kmers(
        reads,
        args.k,
        algorithm=algorithm,
        machine=args.machine,
        nodes=args.nodes,
        protocol=args.protocol,
        canonical=args.canonical,
    )
    kc = run.counts
    print(f"# source:        {source}")
    print(f"# algorithm:     {run.algorithm}  (k={args.k}, nodes={args.nodes})")
    print(f"# total k-mers:  {kc.total:,}")
    print(f"# distinct:      {kc.n_distinct:,}")
    print(f"# max count:     {kc.max_count:,}")
    if run.stats.sim_time:
        print(f"# simulated kernel time: {format_time(run.stats.sim_time)}")
        print(f"# global syncs: {run.stats.global_syncs}")
    if args.top:
        order = kc.counts.argsort()[::-1][: args.top]
        print(f"# top {args.top} k-mers:")
        for i in order:
            print(f"{kmer_to_str(int(kc.kmers[i]), args.k)}\t{int(kc.counts[i])}")
    if args.spectrum:
        spec = kc.spectrum(max_count=args.spectrum)
        print("# spectrum (count\t#distinct):")
        for c in range(1, len(spec)):
            print(f"{c}\t{int(spec[c])}")
    if args.output:
        from .apps.store import dump_text

        dump_text(args.output, kc)
        print(f"# wrote {kc.n_distinct} rows to {args.output}")
    if args.save:
        from .apps.store import save_counts

        save_counts(args.save, kc, canonical=args.canonical)
        print(f"# saved binary database to {args.save}")
    return 0


def _load_database(path: str):
    from .apps.store import load_counts, load_text

    if str(path).endswith(".npz"):
        counts, _ = load_counts(path)
        return counts
    return load_text(path)


def _cmd_analyze(args) -> int:
    from .apps.spectrum import (
        estimate_error_rate,
        estimate_genome_size,
        solid_threshold,
        spectrum_features,
    )

    kc = _load_database(args.database)
    feats = spectrum_features(kc, max_count=args.max_count)
    print(f"# database:           {args.database} (k={kc.k})")
    print(f"# distinct k-mers:    {kc.n_distinct:,}")
    print(f"# total occurrences:  {kc.total:,}")
    print(f"# error valley:       count = {feats.valley}")
    print(f"# coverage peak:      count = {feats.peak}")
    print(f"# error mass:         {feats.error_mass:,} occurrences")
    print(f"# signal mass:        {feats.signal_mass:,} occurrences")
    print(f"# solid threshold:    {solid_threshold(kc, max_count=args.max_count)}")
    print(f"# est. genome size:   {estimate_genome_size(kc, max_count=args.max_count):,} bp")
    print(f"# est. error rate:    {estimate_error_rate(kc, max_count=args.max_count):.4%}")
    return 0


def _cmd_compare(args) -> int:
    from .apps.setops import containment, intersect, jaccard, symmetric_difference

    a = _load_database(args.a)
    b = _load_database(args.b)
    shared = intersect(a, b)
    print(f"# A: {args.a}  ({a.n_distinct:,} distinct, k={a.k})")
    print(f"# B: {args.b}  ({b.n_distinct:,} distinct, k={b.k})")
    print(f"# shared distinct:    {shared.n_distinct:,}")
    print(f"# unique to either:   {symmetric_difference(a, b).n_distinct:,}")
    print(f"# jaccard:            {jaccard(a, b):.4f}")
    print(f"# containment(A in B): {containment(a, b):.4f}")
    print(f"# containment(B in A): {containment(b, a):.4f}")
    return 0


def _cmd_sweep(args) -> int:
    from .bench.harness import run_point
    from .bench.plots import scaling_chart
    from .bench.tables import format_time, print_table
    from .bench.workloads import build_workload

    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    node_counts = [int(n) for n in args.nodes.split(",")]
    w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
    print(f"# sweep: {w.spec.display} replica ({w.n_kmers(args.k):,} k-mers), "
          f"k={args.k}")
    rows = []
    curves: dict[str, dict[int, float]] = {a: {} for a in algorithms}
    for nodes in node_counts:
        row = {"nodes": nodes}
        for algo in algorithms:
            pt = run_point(algo, w, args.k, nodes=nodes)
            row[algo] = "OOM" if pt.oom else format_time(pt.sim_time)
            if not pt.oom:
                curves[algo][nodes] = pt.sim_time
        rows.append(row)
    print_table(rows, title="simulated kernel time")
    if args.plot:
        print(scaling_chart(curves, title="log-log scaling (lower is better)"))
    return 0


def _cmd_calibrate(args) -> int:
    from .runtime.calibrate import calibrate_machine

    print("measuring host (this takes a few seconds)...")
    result = calibrate_machine(cores=args.cores, quick=args.quick)
    m = result.machine
    print(f"# INT64 throughput (1 thread): {result.int64_ops / 1e9:.2f} GOp/s")
    print(f"# streaming memory bandwidth:  {result.memory_bandwidth / 1e9:.2f} GB/s")
    print(f"# estimated LLC size:          {result.cache_bytes / 1e6:.1f} MB")
    print("# resulting machine (Table IV analog):")
    print(f"#   c_node    = {m.c_node / 1e9:.1f} GOp/s  ({args.cores} cores)")
    print(f"#   beta_mem  = {m.beta_mem / 1e9:.1f} GB/s")
    print(f"#   Z         = {m.cache_bytes / 1e6:.1f} MB, L = {m.line_bytes} B")
    print(f"#   beta_link = {m.beta_link / 1e9:.1f} GB/s (inherited; no NIC to measure)")
    print("use: MachineConfig from repro.runtime.calibrate.calibrate_machine()")
    return 0


def _cmd_timeline(args) -> int:
    from .api import count_kmers
    from .bench.workloads import build_workload
    from .runtime.cost import CostModel
    from .runtime.machine import phoenix_intel
    from .runtime.trace import Tracer, render_gantt, to_chrome_trace

    w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
    tracer = Tracer()
    machine = phoenix_intel(args.nodes)
    cost = CostModel(machine, cores_per_pe=machine.cores_per_node, tracer=tracer)
    if args.algorithm == "dakc":
        from .core.dakc import dakc_count

        _, stats = dakc_count(w.reads, args.k, cost)
    elif args.algorithm in ("bsp", "pakman*", "pakman"):
        from .core.bsp import BspConfig, bsp_count

        sort = "quicksort" if args.algorithm == "pakman" else "radix"
        _, stats = bsp_count(
            w.reads, args.k, cost,
            BspConfig(batch_size=max(1, w.n_kmers(args.k) // (args.nodes * 4)),
                      sort=sort),
        )
    else:
        raise ValueError(f"timeline supports dakc/bsp/pakman*, not {args.algorithm!r}")
    print(f"# {args.algorithm} on {w.spec.display} replica, {args.nodes} nodes, "
          f"{stats.global_syncs} global syncs, sim time {stats.sim_time:.3g}s")
    print(render_gantt(tracer, width=args.width))
    if args.chrome:
        with open(args.chrome, "w") as fh:
            fh.write(to_chrome_trace(tracer))
        print(f"# wrote Chrome trace ({len(tracer.spans)} spans) to {args.chrome}")
    return 0


def _cmd_chaos(args) -> int:
    from .api import resolve_machine
    from .bench.workloads import build_workload
    from .core.dakc import DakcConfig
    from .fault import FaultPlan, chaos_sweep, format_report
    from .fault.chaos import derive_plan_seeds
    from .runtime.cost import CostModel

    drops = [float(d) for d in args.drop.split(",") if d.strip()]
    crash = tuple(int(p) for p in args.crash.split(",") if p.strip())
    stragglers = tuple(int(p) for p in args.straggler.split(",") if p.strip())
    w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
    m = resolve_machine(args.machine, args.nodes)
    cost = CostModel(m, cores_per_pe=m.cores_per_node)
    config = DakcConfig(protocol=args.protocol)
    plan_seeds = derive_plan_seeds(args.seed, len(drops) + 1)
    plans = [FaultPlan(seed=plan_seeds[0])]  # fault-free baseline first
    plans += [
        FaultPlan(
            seed=plan_seeds[i],
            drop_prob=drop,
            duplicate_prob=args.duplicate,
            corrupt_prob=args.corrupt,
            delay_prob=args.delay,
            crash_pes=crash,
            straggler_pes=stragglers,
            straggler_factor=args.straggler_factor if stragglers else 1.0,
        )
        for i, drop in enumerate(drops, start=1)
    ]
    print(f"# chaos: {w.spec.display} replica ({w.n_kmers(args.k):,} k-mers), "
          f"k={args.k}, {args.protocol} protocol, {cost.n_pes} PEs")
    print("# every plan runs with the reliability layer (and checkpointing "
          "when PEs crash), then bare for fault-detection")
    outcomes = chaos_sweep(w.reads, args.k, cost, plans, config=config)
    print(format_report(outcomes))
    return 0 if all(o.passed for o in outcomes) else 1


def _iter_ingest_batches(args):
    """Yield read batches (lists of 1-D code arrays) for `dakc ingest`."""
    if args.dataset:
        from .bench.workloads import build_workload

        w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
        reads = w.reads
        for lo in range(0, reads.shape[0], args.batch_records):
            yield [reads[i] for i in range(lo, min(lo + args.batch_records,
                                                   reads.shape[0]))]
        return
    from .seq.encoding import encode_seq
    from .seq.fastx import read_fastx

    batch = []
    for rec in read_fastx(args.input):
        batch.append(encode_seq(rec.seq, validate=False))
        if len(batch) >= args.batch_records:
            yield batch
            batch = []
    if batch:
        yield batch


def _cmd_ingest(args) -> int:
    from .lsm import LsmConfig, LsmStore

    config = LsmConfig(
        memtable_bytes=int(args.memtable_mb * (1 << 20)),
        max_runs=args.max_runs,
        fan_in=args.max_runs,
        canonical=args.canonical,
        auto_compact=not args.no_compact,
    )
    with LsmStore(args.store, args.k, config=config) as store:
        n = 0
        for batch in _iter_ingest_batches(args):
            n += store.ingest(batch)
        if args.flush:
            store.flush()
            if not args.no_compact:
                store.compact()
        info = store.describe()
        print(f"# store:      {args.store}  (k={store.k}, "
              f"canonical={store.config.canonical})")
        print(f"# ingested:   {n:,} records "
              f"({store.stats.batches_ingested} WAL batches)")
        print(f"# memtable:   {info['memtable']['n_distinct']:,} distinct, "
              f"{info['memtable']['nbytes']:,} / "
              f"{info['memtable']['budget_bytes']:,} bytes")
        print(f"# runs:       {store.n_runs}  "
              f"({store.stats.flushes} flushes, "
              f"{store.stats.compactions} compactions this session)")
        for run in info["runs"]:
            print(f"#   {run['name']}: {run['n_keys']:,} keys, "
                  f"{run['nbytes']:,} bytes")
        print(f"# wal:        seq {info['wal']['last_seq']} "
              f"(applied {info['wal']['applied_seq']}), "
              f"{info['wal']['nbytes']:,} bytes")
        print(f"# total occurrences: {store.total:,}")
    return 0


def _cmd_ooc_count(args) -> int:
    import json as _json
    from pathlib import Path

    from .api import resolve_machine
    from .ooc import OocStats, ooc_count
    from .runtime.cost import CostModel
    from .runtime.stats import PEStats

    k = args.k
    if args.dataset:
        from .bench.workloads import build_workload

        w = build_workload(args.dataset, k, budget_kmers=args.budget,
                           seed=args.seed)
        reads = [w.reads[i] for i in range(w.reads.shape[0])]
        source = args.dataset
    else:
        from .seq.encoding import encode_seq
        from .seq.fastx import read_fastx

        reads = [encode_seq(rec.seq, validate=False)
                 for rec in read_fastx(args.input)]
        source = args.input

    ceiling = int(args.memory_mb * (1 << 20))
    cost = CostModel(resolve_machine(args.machine, 1))
    pe = PEStats(0)
    stats = OocStats()

    store = None
    if args.store is not None:
        from .lsm import LsmConfig, LsmStore

        store = LsmStore(args.store, k, config=LsmConfig(
            memtable_bytes=ceiling, canonical=args.canonical))
    try:
        counts = ooc_count(
            reads, k, w=args.w, n_bins=args.n_bins, memory_bytes=ceiling,
            workdir=args.workdir, canonical=args.canonical, store=store,
            cost=cost, pe_stats=pe, stats=stats, keep_bins=args.keep_bins)
        store_doc = None
        if store is not None:
            store.flush()
            store.compact()
            store_doc = store.describe()
    finally:
        if store is not None:
            store.close()

    verified = None
    if args.verify:
        from .core.serial import serial_count

        verified = counts == serial_count(reads, k, canonical=args.canonical)

    m = cost.machine
    disk_time = (pe.disk_ops * m.disk_latency
                 + (pe.disk_bytes_written + pe.disk_bytes_read)
                 / cost.pe_disk_bw)
    print(f"# source:     {source}  ({stats.n_reads:,} reads, "
          f"{stats.n_kmers:,} k-mers, k={k})")
    print(f"# ceiling:    {ceiling:,} bytes "
          f"(peak buffered {stats.peak_buffered_bytes:,}, "
          f"{stats.n_ceiling_hits} ceiling hits)")
    print(f"# pass 1:     {stats.n_superkmers:,} super-k-mers into "
          f"{stats.n_bins_used} bins, {stats.n_flushes} flushes")
    print(f"# disk:       {stats.bytes_spilled:,} B spilled, "
          f"{stats.bytes_reread:,} B reread "
          f"(beta_disk {m.beta_disk / 1e9:.1f} GB/s -> "
          f"{disk_time * 1e3:.3f} ms charged)")
    print(f"# result:     {counts.n_distinct:,} distinct, "
          f"{counts.total:,} occurrences")
    if store_doc is not None:
        print(f"# store:      {args.store}  "
              f"({store_doc['stats']['bulk_loads']} bulk loads, "
              f"{store_doc['stats']['flushes']} flushes, "
              f"{store_doc['stats']['compactions']} compactions, "
              f"{len(store_doc['runs'])} runs)")
    if verified is not None:
        print(f"# verify:     {'bit-identical to in-memory count' if verified else 'MISMATCH vs in-memory count'}")
    if args.json:
        doc = {
            "source": source, "k": k, "n_bins": args.n_bins,
            "ceiling_bytes": ceiling, "machine": args.machine,
            "spill": stats.to_doc(),
            "disk_time_s": disk_time,
            "n_distinct": counts.n_distinct, "total": counts.total,
            "store": store_doc, "verified": verified,
        }
        Path(args.json).parent.mkdir(parents=True, exist_ok=True)
        Path(args.json).write_text(_json.dumps(doc, indent=2) + "\n")
    return 0 if verified in (None, True) else 1


def _cmd_compact(args) -> int:
    from .lsm import LsmConfig, LsmStore

    config = LsmConfig(max_runs=args.max_runs, fan_in=args.fan_in,
                       auto_compact=False)
    with LsmStore(args.store, config=config) as store:
        before = store.n_runs
        if args.flush:
            store.flush()
        merges = store.compact()
        print(f"# store:   {args.store}  (k={store.k})")
        print(f"# runs:    {before} -> {store.n_runs} "
              f"({merges} merges, {store.stats.runs_merged} runs rewritten)")
        for run in store.runs:
            print(f"#   {run.path.name}: {run.n_keys:,} keys, "
                  f"{run.nbytes:,} bytes")
    return 0


def _cmd_serve_bench(args) -> int:
    from .serve import EngineConfig, run_serve_bench

    lsm_view = None
    if args.lsm_store:
        from .lsm import LsmStore

        lsm = LsmStore(args.lsm_store)
        kc = lsm.snapshot()
        lsm_view = lsm.read_view(args.shards)
        source = f"{args.lsm_store} (live LSM store, {lsm.n_runs} runs)"
    elif args.database:
        from .apps.store import load_counts

        kc, _ = load_counts(args.database)
        source = args.database
    else:
        from .bench.workloads import build_workload
        from .core.serial import serial_count

        w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
        kc = serial_count(w.reads, args.k)
        source = f"{w.spec.display} (replica)"

    config = EngineConfig(
        batch_size=args.batch_size,
        batch_window=args.batch_window,
        max_inflight=args.max_inflight,
    )
    recorder = None
    if args.trace_out:
        from .trace import TraceRecorder

        recorder = TraceRecorder(k=kc.k, seed=args.seed,
                                 source=f"serve-bench seed={args.seed}")
    result = run_serve_bench(
        kc,
        n_queries=args.queries,
        n_shards=args.shards,
        zipf_s=args.zipf,
        seed=args.seed,
        miss_fraction=args.miss_fraction,
        config=config,
        cache_capacity=args.cache_capacity,
        cache_threshold=args.cache_threshold,
        t2_capacity=args.t2_capacity,
        group_size=args.group_size,
        concurrency=args.concurrency,
        store=lsm_view,
        burst=_burst_from_args(args),
        recorder=recorder,
    )
    if lsm_view is not None:
        lsm_view.store.close()
    naive, served = result.naive.snapshot(), result.served.snapshot()
    print(f"# database:   {source}  ({kc.n_distinct:,} distinct, k={kc.k})")
    print(f"# workload:   {args.queries:,} queries, Zipf({args.zipf}), "
          f"seed {args.seed}, {args.miss_fraction:.0%} misses")
    print(f"# engine:     {args.shards} shards, batch<={args.batch_size}, "
          f"window {args.batch_window * 1e3:.2f} ms, "
          f"cache {args.cache_capacity} slots (admit>={args.cache_threshold})")
    print(f"# answers match: {result.answers_match}")
    for label, snap in (("naive", naive), ("served", served)):
        lat = snap["latency_ms"]
        print(f"# {label:>6}: {snap['throughput_qps']:>12,.0f} qps   "
              f"p50 {lat['p50']:.3f} ms   p99 {lat['p99']:.3f} ms")
    print(f"# cache hit rate: {served['cache']['hit_rate']:.1%}   "
          f"mean batch: {served['batching']['mean_batch_size']:.1f} keys   "
          f"rejected: {served['queue']['rejected']}")
    print(f"# speedup (served/naive): {result.speedup:.2f}x")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(result.to_doc(), fh, indent=2)
            fh.write("\n")
        print(f"# wrote metrics snapshot to {args.json}")
    if recorder is not None:
        trace = recorder.save(args.trace_out)
        print(f"# recorded {trace.n_records:,} trace records to "
              f"{args.trace_out}")
    if not result.answers_match:
        print("error: served answers diverged from the naive oracle",
              file=sys.stderr)
        return 1
    return 0


def _cmd_tenant_bench(args) -> int:
    from .tenant import run_tenant_bench

    if args.database:
        from .apps.store import load_counts

        kc, _ = load_counts(args.database)
        source = args.database
    else:
        from .bench.workloads import build_workload
        from .core.serial import serial_count

        w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
        kc = serial_count(w.reads, args.k)
        source = f"{w.spec.display} (replica)"

    kwargs = dict(
        n_victim_groups=args.victim_groups,
        victim_group=args.victim_group,
        victim_interval=args.victim_interval,
        antag_batch=args.antag_batch,
        flooders=args.flooders,
        antag_rate=args.antag_rate,
        n_shards=args.shards,
        zipf_s=args.zipf,
        seed=args.seed,
        victim_slo_ms=args.victim_slo_ms,
        autoscale_nodes=args.autoscale_nodes,
    )
    if args.quick:
        from .serve import EngineConfig

        kwargs.update(
            n_victim_groups=min(args.victim_groups, 120),
            victim_interval=min(args.victim_interval, 8e-3),
            flooders=min(args.flooders, 8),
            config=EngineConfig(
                batch_size=256, batch_window=1e-3, max_inflight=8192,
                flush_service_time=10e-3, flush_service_per_key=1e-5),
        )
    res = run_tenant_bench(kc, **kwargs)

    print(f"# database:   {source}  ({kc.n_distinct:,} distinct, k={kc.k})")
    print(f"# victim:     {kwargs['n_victim_groups']} groups x "
          f"{args.victim_group} keys @ {kwargs['victim_interval'] * 1e3:.1f} ms "
          f"(SLO {args.victim_slo_ms:.0f} ms)")
    print(f"# antagonist: {kwargs['flooders']} flooders x {args.antag_batch} "
          f"keys, quota {args.antag_rate:g} keys/s when isolated")
    for label in ("solo", "isolated", "unprotected"):
        sc = getattr(res, label)
        print(f"# {label:>11}: p50 {sc['p50_ms']:8.2f} ms   "
              f"p99 {sc['p99_ms']:8.2f} ms   "
              f"rejected groups {sc['victim_rejected_groups']}")
    print(f"# victim p99 degradation: isolated "
          f"{res.isolated_degradation:+.1%}, unprotected "
          f"{res.unprotected_degradation:+.1%}")
    fair = res.fairness
    print(f"# DRR fairness: max share error {fair['max_share_error']:.4f}, "
          f"starvation violations {fair['starvation_violations']}")
    scale = res.autoscale
    actions = [d["action"] for d in scale["decisions"]
               if d["action"] != "hold"]
    print(f"# autoscaler: {' -> '.join(actions) or 'no action'}   "
          f"exact after split/merge: "
          f"{scale['exact_after_split']}/{scale['exact_after_merge']}")
    print(f"# answers match oracle: {res.answers_match}")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(res.to_doc(), fh, indent=2)
            fh.write("\n")
        print(f"# wrote result document to {args.json}")
    if not res.answers_match:
        print("error: served answers diverged from the scalar oracle",
              file=sys.stderr)
        return 1
    return 0


def _cmd_cluster_bench(args) -> int:
    from .cluster import run_cluster_bench

    if args.database:
        from .apps.store import load_counts

        kc, _ = load_counts(args.database)
        source = args.database
    else:
        from .bench.workloads import build_workload
        from .core.serial import serial_count

        w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
        kc = serial_count(w.reads, args.k)
        source = f"{w.spec.display} (replica)"

    recorder = None
    if args.trace_out:
        from .trace import TraceRecorder

        recorder = TraceRecorder(k=kc.k, seed=args.seed,
                                 source=f"cluster-bench seed={args.seed}")
    doc = run_cluster_bench(
        kc,
        n_nodes=args.cluster_nodes,
        rf=args.rf,
        vnodes=args.vnodes,
        n_queries=args.queries,
        zipf_s=args.zipf,
        seed=args.seed,
        miss_fraction=args.miss_fraction,
        group_size=args.group_size,
        concurrency=args.concurrency,
        service_time=args.service_time,
        straggler_delay=args.straggler_delay,
        chunk_keys=args.chunk_keys,
        repeats=args.repeats,
        burst=_burst_from_args(args),
        recorder=recorder,
    )
    if recorder is not None:
        trace = recorder.save(args.trace_out)
        print(f"# recorded {trace.n_records:,} trace records to "
              f"{args.trace_out}")
    ov, hd, ch = doc["overhead"], doc["hedging"], doc["chaos"]
    print(f"# database:  {source}  ({kc.n_distinct:,} distinct, k={kc.k})")
    print(f"# cluster:   {args.cluster_nodes} nodes, rf={args.rf}, "
          f"{args.vnodes} vnodes, seed {args.seed}")
    print(f"# workload:  {args.queries:,} queries, Zipf({args.zipf}), "
          f"{args.miss_fraction:.0%} misses")
    print(f"# overhead:  engine {ov['engine_qps']:,.0f} qps vs "
          f"router {ov['router_qps']:,.0f} qps "
          f"({ov['overhead_frac']:+.1%}; answers match: "
          f"{ov['answers_match']})")
    print(f"# hedging:   p99 {hd['unhedged']['p99_ms']:.2f} ms unhedged -> "
          f"{hd['hedged']['p99_ms']:.2f} ms hedged "
          f"({hd['p99_reduction']:.1%} cut; "
          f"{hd['hedged']['hedges_fired']} fired, "
          f"{hd['hedged']['hedges_won']} won)")
    reb = ch["rebalance"] or {}
    print(f"# chaos:     killed node {ch['killed_node']}, joined "
          f"{ch['joined_node']}, moved {reb.get('moved_keys', 0):,} keys "
          f"in {reb.get('chunks', 0)} chunks")
    print(f"# exactness: {ch['exact']}  (retries {ch['retries']}, "
          f"failovers {ch['failovers']})")
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"# wrote benchmark document to {args.json}")
    if not (ov["answers_match"] and ch["answers_exact"]):
        print("error: cluster answers diverged from the serial oracle",
              file=sys.stderr)
        return 1
    return 0


def _cmd_datasets(_args) -> int:
    from .bench.tables import print_table
    from .seq.datasets import table5_rows

    print_table(table5_rows(), title="Table V: Datasets Used in Experiments")
    return 0


def _cmd_model(args) -> int:
    from .api import resolve_machine
    from .bench.tables import format_time, print_table
    from .model.analytical import predict
    from .model.roofline import roofline_point
    from .seq.datasets import get_spec

    spec = get_spec(args.dataset)
    machine = resolve_machine(args.machine, args.nodes)
    pred = predict(spec.n_reads, spec.read_len, args.k, machine)
    rows = [
        {"phase": "1 (generate+reshuffle)",
         "compute": format_time(pred.phase1.t_comp),
         "intranode": format_time(pred.phase1.t_intra),
         "internode": format_time(pred.phase1.t_inter),
         "total(sum)": format_time(pred.phase1.total("sum"))},
        {"phase": "2 (sort+accumulate)",
         "compute": format_time(pred.phase2.t_comp),
         "intranode": format_time(pred.phase2.t_intra),
         "internode": format_time(pred.phase2.t_inter),
         "total(sum)": format_time(pred.phase2.total("sum"))},
    ]
    print_table(rows, title=f"Analytical model: {spec.display} @ {args.nodes} nodes")
    print(f"T_total (sum model): {format_time(pred.t_total('sum'))}")
    print(f"T_total (max model): {format_time(pred.t_total('max'))}")
    shares = pred.breakdown()
    print("Breakdown: " + ", ".join(f"{k} {100 * v:.1f}%" for k, v in shares.items()))
    roof = roofline_point(spec.n_reads, spec.read_len, args.k, machine)
    print(
        f"Operational intensity: {roof.intensity:.3f} iadd64/B "
        f"(machine balance {roof.machine_balance:.2f}) -> {roof.bound}-bound"
    )
    return 0


def _cmd_bench(args) -> int:
    from .bench.experiments import list_experiments, run_experiment

    if args.experiment == "list":
        for exp in list_experiments():
            print(exp)
        return 0
    exp_ids = list_experiments() if args.experiment == "all" else [args.experiment]
    kwargs = {"seed": args.seed}
    if args.budget is not None:
        kwargs["budget"] = args.budget
    results = []
    for exp_id in exp_ids:
        result = run_experiment(exp_id, **kwargs)
        results.append(result)
        print(result.render())
    if args.report:
        from .bench.report import write_report

        out = write_report(args.report, results=results)
        print(f"# wrote markdown report to {out}")
    return 0


def _cmd_simulate(args) -> int:
    from .seq.datasets import materialize
    from .seq.fastx import write_fastq
    from .seq.readsim import reads_to_records

    w = materialize(args.dataset, fidelity=args.fidelity, seed=args.seed)
    n = write_fastq(args.output, reads_to_records(w.reads))
    print(f"wrote {n} reads ({w.read_len} bp, genome {w.genome_len} b) to {args.output}")
    return 0


def _cmd_dst(args) -> int:
    from .dst import dst_run, dst_sweep, format_dst_report, load_bundle, replay_bundle

    if args.dst_command == "run":
        report = dst_run(budget=args.budget, seed=args.seed,
                         shrink=not args.no_shrink, out_dir=args.out)
        print(format_dst_report(report))
        if args.json:
            import json

            with open(args.json, "w") as fh:
                json.dump(report.to_doc(), fh, indent=2, sort_keys=True)
            print(f"# wrote campaign report to {args.json}")
        return 0 if report.ok else 1
    if args.dst_command == "replay":
        bundle = load_bundle(args.bundle)
        trajectory = replay_bundle(bundle)
        reproduced = (not bundle.invariant
                      or any(v.invariant == bundle.invariant
                             for v in trajectory.violations))
        same_digest = (not bundle.digest or trajectory.digest == bundle.digest)
        print(f"# schedule: {bundle.schedule.describe()}")
        print(f"# digest: {trajectory.digest}"
              + ("" if same_digest else f" (bundle recorded {bundle.digest})"))
        for v in trajectory.violations:
            print(f"[{v.layer}/{v.invariant}] {v.detail}")
        if not trajectory.violations:
            print("no violations: the recorded failure no longer reproduces")
        print(f"verdict: {'REPRODUCED' if reproduced and same_digest else 'CHANGED'}")
        return 0 if reproduced and same_digest else 1
    # sweep
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    reports = dst_sweep(seeds, budget=args.budget, out_dir=args.out)
    for report in reports:
        print(format_dst_report(report))
        print()
    return 0 if all(r.ok for r in reports) else 1


def _trace_counts(args):
    """Load/build the count database a trace command serves against."""
    if getattr(args, "database", None):
        from .apps.store import load_counts

        kc, _ = load_counts(args.database)
        return kc, args.database
    from .bench.workloads import build_workload
    from .core.serial import serial_count

    w = build_workload(args.dataset, args.k, budget_kmers=args.budget)
    return serial_count(w.reads, args.k), f"{w.spec.display} (replica)"


def _cmd_trace(args) -> int:
    import json

    import numpy as np

    from .trace import load_trace

    if args.trace_command == "record":
        from .serve import run_serve_bench
        from .trace import TraceRecorder

        kc, source = _trace_counts(args)
        recorder = TraceRecorder(k=kc.k, seed=args.seed,
                                 source=f"trace record seed={args.seed}")
        result = run_serve_bench(
            kc, n_queries=args.queries, n_shards=args.shards,
            zipf_s=args.zipf, seed=args.seed,
            miss_fraction=args.miss_fraction,
            cache_capacity=args.cache_capacity,
            cache_threshold=args.cache_threshold,
            t2_capacity=args.t2_capacity,
            burst=_burst_from_args(args), recorder=recorder,
        )
        trace = recorder.save(args.out)
        tiers = trace.tier_counts()
        print(f"# database:  {source}  ({kc.n_distinct:,} distinct, k={kc.k})")
        print(f"# recorded:  {trace.n_records:,} records over "
              f"{trace.duration:.3f} s  (answers match: "
              f"{result.answers_match})")
        print(f"# tiers:     t1 {tiers['t1']:,}  t2 {tiers['t2']:,}  "
              f"store {tiers['store']:,}")
        print(f"# wrote trace to {args.out}")
        return 0 if result.answers_match else 1

    if args.trace_command == "profile":
        from .trace import profile_trace
        from .trace.replay import measured_miss_ratio_curve

        trace = load_trace(args.trace)
        caps = ([int(c) for c in args.capacities.split(",") if c.strip()]
                if args.capacities else None)
        profile = profile_trace(trace, caps)
        doc = {"trace": trace.describe(), **profile.to_doc()}
        d = doc["trace"]
        print(f"# trace:     {args.trace}  ({d['n_records']:,} records, "
              f"{d['n_distinct']:,} distinct keys, k={d['k']})")
        print(f"# cold miss floor: {d['n_distinct'] / max(d['n_records'], 1):.1%}")
        measured = None
        if args.measure:
            measured = measured_miss_ratio_curve(trace.keys,
                                                 profile.capacities)
            doc["measured_miss_ratio"] = measured.tolist()
            doc["model_error_pp"] = float(
                np.abs(np.asarray(doc["miss_ratio"]) - measured).max()) * 100
        header = "# capacity   predicted-miss"
        if measured is not None:
            header += "   measured-miss"
        print(header)
        for j, cap in enumerate(profile.capacities):
            line = f"  {int(cap):>8}   {doc['miss_ratio'][j]:>14.4f}"
            if measured is not None:
                line += f"   {measured[j]:>13.4f}"
            print(line)
        if measured is not None:
            print(f"# max model error: {doc['model_error_pp']:.3f} pp")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            print(f"# wrote profile document to {args.json}")
        return 0

    if args.trace_command == "replay":
        from .serve import ShardedStore
        from .trace import replay_trace

        trace = load_trace(args.trace)
        kc, source = _trace_counts(args)
        store = ShardedStore.from_counts(kc, args.shards)
        result = replay_trace(
            trace, store, cache_capacity=args.cache_capacity,
            cache_threshold=args.cache_threshold,
            t2_capacity=args.t2_capacity, tick=args.tick,
            group_size=args.group_size, concurrency=args.concurrency,
        )
        snap = result.metrics.snapshot()
        print(f"# trace:     {args.trace}  ({trace.n_records:,} records)")
        print(f"# database:  {source}  ({kc.n_distinct:,} distinct, k={kc.k})")
        print(f"# replayed:  {result.n_groups} arrival groups at "
              f"{snap['throughput_qps']:,.0f} qps")
        print(f"# cache hit rate: {snap['cache']['hit_rate']:.1%}")
        print(f"# answers bit-identical to scalar oracle: "
              f"{result.answers_match}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result.to_doc(), fh, indent=2)
                fh.write("\n")
            print(f"# wrote replay document to {args.json}")
        if not result.answers_match:
            print("error: replayed answers diverged from the scalar oracle",
                  file=sys.stderr)
            return 1
        return 0

    # sample
    from .trace import save_trace, spatial_sample, temporal_sample

    trace = load_trace(args.trace)
    if (args.rate is None) == (args.window is None):
        raise ValueError("pick one: --rate (spatial) or --window/--every "
                         "(temporal)")
    if args.rate is not None:
        sampled = spatial_sample(trace, args.rate, salt=args.salt)
        kind = f"spatial rate={args.rate} salt={args.salt}"
    else:
        if args.every is None:
            raise ValueError("--window needs --every")
        sampled = temporal_sample(trace, window=args.window, every=args.every)
        kind = f"temporal {args.window}s/{args.every}s"
    save_trace(args.out, sampled)
    kept = sampled.n_records / max(trace.n_records, 1)
    print(f"# sampled:   {kind}")
    print(f"# kept:      {sampled.n_records:,} / {trace.n_records:,} "
          f"records ({kept:.1%})")
    if args.check:
        from .trace import measured_miss_ratio_curve, scaled_miss_ratio_curve
        from .trace.profiler import default_capacities

        caps = default_capacities(int(np.unique(trace.keys).size), points=8)
        full = measured_miss_ratio_curve(trace.keys, caps)
        est = scaled_miss_ratio_curve(sampled, caps)
        err = float(np.abs(est - full).max()) * 100
        print(f"# sampled-vs-full miss-ratio error: {err:.2f} pp "
              f"(capacities {caps.tolist()})")
    print(f"# wrote sampled trace to {args.out}")
    return 0


def _xp_load_spec(args):
    """Load the spec named by *args* and apply CLI overrides."""
    import dataclasses
    import json

    from .xp import RepetitionPolicy, load_spec

    spec = load_spec(args.spec)
    if getattr(args, "quick", False):
        # Quick runs shrink the policy and never reach the ledger; an
        # explicit --repetitions/--warmup still wins below.
        spec = dataclasses.replace(
            spec, policy=RepetitionPolicy(warmup=0, repetitions=2))
        args.no_ledger = True
    if args.seed is not None:
        spec = dataclasses.replace(spec, seed=args.seed)
    if args.repetitions is not None or args.warmup is not None:
        policy = RepetitionPolicy(
            warmup=args.warmup if args.warmup is not None
            else spec.policy.warmup,
            repetitions=args.repetitions if args.repetitions is not None
            else spec.policy.repetitions,
        )
        spec = dataclasses.replace(spec, policy=policy)
    if args.overrides:
        fixed = dict(spec.fixed)
        for item in args.overrides:
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(f"--set needs KEY=VALUE, got {item!r}")
            try:
                fixed[key] = json.loads(raw)
            except json.JSONDecodeError:
                fixed[key] = raw  # bare string
        spec = dataclasses.replace(spec, fixed=fixed)
    return spec


def _cmd_xp(args) -> int:
    import json

    from .xp import (
        Ledger,
        format_envelope,
        format_gate,
        format_trajectory,
        gate_envelopes,
        import_legacy,
        run_spec,
    )
    from .xp.ledger import DEFAULT_LEDGER_DIR
    from .xp.targets import list_targets

    ledger = Ledger(args.ledger if getattr(args, "ledger", None)
                    else DEFAULT_LEDGER_DIR)

    if args.xp_command == "run":
        spec = _xp_load_spec(args)
        envelope = run_spec(spec, progress=print)
        print(format_envelope(envelope))
        if not args.no_ledger:
            print(f"# ledger entry: {ledger.append(envelope)}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(envelope, fh, indent=2)
                fh.write("\n")
            print(f"# wrote envelope to {args.json}")
        if not envelope["ok"]:
            print("error: correctness checks failed", file=sys.stderr)
            return 1
        return 0

    if args.xp_command == "gate":
        spec = _xp_load_spec(args)
        if args.current:
            envelope = ledger.load(args.current)
        else:
            envelope = run_spec(spec, progress=print)
        baseline = (ledger.load(args.baseline) if args.baseline
                    else ledger.baseline(spec.experiment))
        if baseline is None:
            print(f"# no ledger baseline for {spec.experiment!r}; "
                  f"recording this run as the first entry")
            if not args.no_ledger and not args.current:
                print(f"# ledger entry: {ledger.append(envelope)}")
            return 0
        result = gate_envelopes(baseline, envelope, alpha=args.alpha,
                                min_effect=args.min_effect)
        print(format_gate(result))
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(result.to_doc(), fh, indent=2)
                fh.write("\n")
            print(f"# wrote gate verdict to {args.json}")
        # A regressed run never silently becomes the next baseline.
        if not args.no_ledger and not args.current and (
                result.ok or args.report_only):
            print(f"# ledger entry: {ledger.append(envelope)}")
        if not result.ok and not args.report_only:
            print("error: statistically significant regression",
                  file=sys.stderr)
            return 1
        return 0

    if args.xp_command == "report":
        if args.experiment:
            print(format_trajectory(ledger, args.experiment))
            return 0
        experiments = ledger.experiments()
        if not experiments:
            print(f"# empty ledger at {ledger.root}")
            return 0
        for exp in experiments:
            print(f"{exp}  ({len(ledger.entries(exp))} entries)")
        return 0

    if args.xp_command == "list":
        print("# targets:")
        for target in list_targets():
            print(f"  {target.name:<20} {target.description}")
        from pathlib import Path

        specs_dir = Path(args.specs)
        specs = (sorted(specs_dir.glob("*.json"))
                 + sorted(specs_dir.glob("*.toml"))
                 if specs_dir.is_dir() else [])
        print(f"# specs in {specs_dir}:")
        for path in specs:
            print(f"  {path}")
        if not specs:
            print("  (none)")
        print(f"# ledger experiments in {ledger.root}:")
        for exp in ledger.experiments() or ["  (none)"]:
            print(f"  {exp}" if not exp.startswith("  ") else exp)
        return 0

    # import-legacy
    imported = import_legacy(args.results, ledger)
    for name, path in imported:
        print(f"{name} -> {path if path else 'skipped (already imported)'}")
    if not imported:
        print(f"# no BENCH_*.json under {args.results}")
    return 0


_COMMANDS = {
    "count": _cmd_count,
    "datasets": _cmd_datasets,
    "model": _cmd_model,
    "bench": _cmd_bench,
    "simulate": _cmd_simulate,
    "chaos": _cmd_chaos,
    "serve-bench": _cmd_serve_bench,
    "tenant-bench": _cmd_tenant_bench,
    "cluster-bench": _cmd_cluster_bench,
    "ingest": _cmd_ingest,
    "ooc-count": _cmd_ooc_count,
    "compact": _cmd_compact,
    "dst": _cmd_dst,
    "trace": _cmd_trace,
    "xp": _cmd_xp,
    "analyze": _cmd_analyze,
    "compare": _cmd_compare,
    "timeline": _cmd_timeline,
    "calibrate": _cmd_calibrate,
    "sweep": _cmd_sweep,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
