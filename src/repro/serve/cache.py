"""Hot-key cache with heavy-hitter admission.

Hashing spreads *distinct* k-mers across shards but concentrates every
occurrence of one heavy-hitter key on one owner — the imbalance the
paper's L3 protocol attacks on the write path by absorbing heavy
updates locally.  Serving has the mirror problem: a Zipf-skewed query
stream hammers the hot key's shard.  The mirror fix is a small
front-side cache that answers the heavy hitters before they reach the
shard queues.

Plain LRU caches are churned by one-hit wonders (a long tail of keys
seen once evicts the genuinely hot set).  :class:`HotKeyCache` applies
the L3 admission idea to the cache itself: a key must be *seen* at
least ``admit_threshold`` times before it earns a slot, tracked by a
bounded second-chance counter table, so only traffic-proven heavy
hitters occupy cache capacity.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["HotKeyCache"]


class HotKeyCache:
    """Bounded LRU over ``key -> count`` with threshold admission.

    * :meth:`get` — cache lookup; refreshes recency on a hit.
    * :meth:`offer` — present a key/value seen at the store; it is
      admitted once its observation count reaches *admit_threshold*
      (``1`` = classic LRU, admit on first sight).

    The candidate counter table is itself LRU-bounded (default 4x the
    cache capacity) so cold keys cannot grow state without bound —
    the same fixed-footprint discipline as the L3 heavy-hitter table.
    """

    def __init__(
        self,
        capacity: int,
        *,
        admit_threshold: int = 1,
        candidate_capacity: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if admit_threshold < 1:
            raise ValueError("admit_threshold must be >= 1")
        self.capacity = capacity
        self.admit_threshold = admit_threshold
        self.candidate_capacity = (
            4 * capacity if candidate_capacity is None else candidate_capacity
        )
        self._data: OrderedDict[int, int] = OrderedDict()
        self._seen: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def get(self, key: int) -> int | None:
        """Cached count for *key*, or None on a miss."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def offer(self, key: int, value: int) -> bool:
        """Record a store-answered key; admit it if it proved hot.

        Returns True if the key is (now) resident.
        """
        if key in self._data:
            # Keep resident entries fresh (counts can change under
            # rebuilds) without burning an admission observation.
            self._data[key] = value
            self._data.move_to_end(key)
            return True
        seen = self._seen.get(key, 0) + 1
        if seen < self.admit_threshold:
            self._seen[key] = seen
            self._seen.move_to_end(key)
            if len(self._seen) > self.candidate_capacity:
                self._seen.popitem(last=False)
            return False
        self._seen.pop(key, None)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
        return True

    def invalidate(self, key: int) -> bool:
        """Drop one key (e.g. after a database rebuild)."""
        return self._data.pop(key, None) is not None

    def invalidate_many(self, keys) -> int:
        """Drop every cached entry in *keys*; returns entries dropped.

        The ingest-invalidation hook: a live store notifies with the
        distinct k-mers of each absorbed batch, and any of them that
        were cached must be forgotten or the cache would keep serving
        pre-ingest counts.
        """
        dropped = 0
        for key in keys:
            if self._data.pop(int(key), None) is not None:
                dropped += 1
        return dropped

    def clear(self) -> None:
        self._data.clear()
        self._seen.clear()

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0
