"""Hot-key cache with heavy-hitter admission.

Hashing spreads *distinct* k-mers across shards but concentrates every
occurrence of one heavy-hitter key on one owner — the imbalance the
paper's L3 protocol attacks on the write path by absorbing heavy
updates locally.  Serving has the mirror problem: a Zipf-skewed query
stream hammers the hot key's shard.  The mirror fix is a small
front-side cache that answers the heavy hitters before they reach the
shard queues.

Plain LRU caches are churned by one-hit wonders (a long tail of keys
seen once evicts the genuinely hot set).  :class:`HotKeyCache` applies
the L3 admission idea to the cache itself: a key must be *seen* at
least ``admit_threshold`` times before it earns a slot, tracked by a
bounded second-chance counter table, so only traffic-proven heavy
hitters occupy cache capacity.

:class:`TieredCache` extends the same admission discipline to two
tiers (a small RAM t1 over a larger-but-slower t2 with promotion and
demotion between them) — the Cydonia multi-tier direction; its
capacity-vs-hit-rate behaviour is what the reuse-distance profiler in
:mod:`repro.trace` predicts from recorded query traces.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["HotKeyCache", "TieredCache", "base_key",
           "TIER_T1", "TIER_T2", "TIER_STORE"]

#: Tier labels shared by the caches, the engine, and the trace
#: recorder (:mod:`repro.trace`): which layer answered a query.
TIER_T1: int = 0     # RAM tier (HotKeyCache, or TieredCache t1)
TIER_T2: int = 1     # larger-but-slower second tier (TieredCache t2)
TIER_STORE: int = -1  # cache miss: the sharded store answered


def base_key(key) -> int:
    """The raw k-mer behind a cache key.

    Multi-tenant serving tags cache entries per tenant by using
    ``(tenant, kmer)`` tuples as cache keys — one tenant's traffic
    must not prime hits for another (a cross-tenant hit would dodge
    the second tenant's quota accounting).  Both caches treat keys
    opaquely, so tagged and raw keys coexist; this helper recovers
    the k-mer either way for store-driven invalidation.
    """
    return key[1] if type(key) is tuple else key


class HotKeyCache:
    """Bounded LRU over ``key -> count`` with threshold admission.

    * :meth:`get` — cache lookup; refreshes recency on a hit.
    * :meth:`offer` — present a key/value seen at the store; it is
      admitted once its observation count reaches *admit_threshold*
      (``1`` = classic LRU, admit on first sight).

    The candidate counter table is itself LRU-bounded (default 4x the
    cache capacity) so cold keys cannot grow state without bound —
    the same fixed-footprint discipline as the L3 heavy-hitter table.
    """

    def __init__(
        self,
        capacity: int,
        *,
        admit_threshold: int = 1,
        candidate_capacity: int | None = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if admit_threshold < 1:
            raise ValueError("admit_threshold must be >= 1")
        self.capacity = capacity
        self.admit_threshold = admit_threshold
        self.candidate_capacity = (
            4 * capacity if candidate_capacity is None else candidate_capacity
        )
        self._data: OrderedDict[int, int] = OrderedDict()
        self._seen: OrderedDict[int, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Tier that answered the most recent :meth:`get` hit.  A
        #: single-tier cache always answers from RAM; the attribute
        #: exists so the engine and trace recorder can treat
        #: :class:`HotKeyCache` and :class:`TieredCache` uniformly.
        self.last_tier = TIER_T1

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def get(self, key: int) -> int | None:
        """Cached count for *key*, or None on a miss."""
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def offer(self, key: int, value: int) -> bool:
        """Record a store-answered key; admit it if it proved hot.

        Returns True if the key is (now) resident.
        """
        if key in self._data:
            # Keep resident entries fresh (counts can change under
            # rebuilds) without burning an admission observation.
            self._data[key] = value
            self._data.move_to_end(key)
            return True
        seen = self._seen.get(key, 0) + 1
        if seen < self.admit_threshold:
            self._seen[key] = seen
            self._seen.move_to_end(key)
            if len(self._seen) > self.candidate_capacity:
                self._seen.popitem(last=False)
            return False
        self._seen.pop(key, None)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1
        return True

    def invalidate(self, key: int) -> bool:
        """Drop one key (e.g. after a database rebuild)."""
        return self._data.pop(key, None) is not None

    def invalidate_many(self, keys) -> int:
        """Drop every cached entry for the k-mers in *keys*.

        The ingest-invalidation hook: a live store notifies with the
        distinct k-mers of each absorbed batch, and any of them that
        were cached must be forgotten or the cache would keep serving
        pre-ingest counts.  Tenant-tagged entries (``(tenant, kmer)``
        keys) are matched by their k-mer, so one ingest invalidates
        every tenant's copy; returns entries dropped (which can exceed
        ``len(keys)`` when several tenants cached the same k-mer).
        """
        targets = {int(k) for k in keys}
        if not targets or not self._data:
            return 0
        victims = [ck for ck in self._data if base_key(ck) in targets]
        for ck in victims:
            del self._data[ck]
        return len(victims)

    def clear(self) -> None:
        self._data.clear()
        self._seen.clear()

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def stats(self) -> dict:
        """JSON-serialisable counter snapshot (one tier)."""
        return {
            "tiers": 1,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "resident": len(self._data),
            "capacity": self.capacity,
            "candidates": len(self._seen),
            "candidate_capacity": self.candidate_capacity,
            "admit_threshold": self.admit_threshold,
        }


class TieredCache:
    """Two-tier hot-key cache: a small RAM t1 over a larger, slower t2.

    The Cydonia/MT-cache shape: t1 is the hand-sized RAM tier that
    answers at memory speed; t2 is bigger but each hit costs
    ``t2_latency`` simulated seconds (a flash read, charged through
    the serving metrics the way the cost model charges β_link for
    remote PUTs).  Movement between the tiers is the standard
    exclusive policy:

    * **admission** — a store-answered key passes the same L3-style
      threshold gate as :class:`HotKeyCache`, then lands in t1;
    * **demotion** — a key evicted from t1 (LRU) falls into t2
      instead of being forgotten;
    * **promotion** — a t2 hit moves the key back up to t1 (possibly
      demoting t1's LRU victim in turn);
    * **eviction** — only t2's LRU tail leaves the cache entirely.

    The tiers are exclusive (a key lives in t1 *or* t2), so total
    resident capacity is ``t1_capacity + t2_capacity``.
    """

    def __init__(
        self,
        t1_capacity: int,
        t2_capacity: int,
        *,
        admit_threshold: int = 1,
        candidate_capacity: int | None = None,
        t2_latency: float = 25e-6,
    ):
        if t1_capacity < 1 or t2_capacity < 1:
            raise ValueError("tier capacities must be >= 1")
        if admit_threshold < 1:
            raise ValueError("admit_threshold must be >= 1")
        if t2_latency < 0:
            raise ValueError("t2_latency must be >= 0")
        self.t1_capacity = t1_capacity
        self.t2_capacity = t2_capacity
        self.admit_threshold = admit_threshold
        self.candidate_capacity = (
            4 * t1_capacity if candidate_capacity is None else candidate_capacity
        )
        self.t2_latency = t2_latency
        self._t1: OrderedDict[int, int] = OrderedDict()
        self._t2: OrderedDict[int, int] = OrderedDict()
        self._seen: OrderedDict[int, int] = OrderedDict()
        self.t1_hits = 0
        self.t2_hits = 0
        self.misses = 0
        self.promotions = 0
        self.demotions = 0
        self.evictions = 0          # keys that left the cache entirely (t2 LRU)
        self.t2_time_charged = 0.0  # simulated seconds spent on t2 hits
        self.last_tier = TIER_T1

    def __len__(self) -> int:
        return len(self._t1) + len(self._t2)

    def __contains__(self, key: int) -> bool:
        return key in self._t1 or key in self._t2

    # -- lookups -------------------------------------------------------

    def get(self, key: int) -> int | None:
        """Cached count for *key*, or None on a miss.

        Sets :attr:`last_tier` to the answering tier; a t2 hit promotes
        the key to t1 and charges :attr:`t2_latency`.
        """
        value = self._t1.get(key)
        if value is not None:
            self._t1.move_to_end(key)
            self.t1_hits += 1
            self.last_tier = TIER_T1
            return value
        value = self._t2.pop(key, None)
        if value is not None:
            self.t2_hits += 1
            self.t2_time_charged += self.t2_latency
            self.promotions += 1
            self.last_tier = TIER_T2
            self._insert_t1(key, value)
            return value
        self.misses += 1
        return None

    def offer(self, key: int, value: int) -> bool:
        """Record a store-answered key; admit it if it proved hot.

        Returns True if the key is (now) resident in either tier.
        """
        if key in self._t1:
            self._t1[key] = value
            self._t1.move_to_end(key)
            return True
        if key in self._t2:
            # Refresh the stale value in place; residency in t2 is
            # promotion-on-*hit*, not on offer.
            self._t2[key] = value
            self._t2.move_to_end(key)
            return True
        seen = self._seen.get(key, 0) + 1
        if seen < self.admit_threshold:
            self._seen[key] = seen
            self._seen.move_to_end(key)
            if len(self._seen) > self.candidate_capacity:
                self._seen.popitem(last=False)
            return False
        self._seen.pop(key, None)
        self._insert_t1(key, value)
        return True

    def _insert_t1(self, key: int, value: int) -> None:
        """Place a key at t1 MRU, demoting/evicting down the tiers."""
        self._t1[key] = value
        if len(self._t1) > self.t1_capacity:
            victim, victim_value = self._t1.popitem(last=False)
            self.demotions += 1
            self._t2[victim] = victim_value
            self._t2.move_to_end(victim)
            if len(self._t2) > self.t2_capacity:
                self._t2.popitem(last=False)
                self.evictions += 1

    # -- invalidation ---------------------------------------------------

    def invalidate(self, key: int) -> bool:
        """Drop one key from whichever tier holds it."""
        return (self._t1.pop(key, None) is not None
                or self._t2.pop(key, None) is not None)

    def invalidate_many(self, keys) -> int:
        """Drop every cached entry for the k-mers in *keys*.

        Matches tenant-tagged ``(tenant, kmer)`` entries by their
        k-mer, across both tiers (see :func:`base_key`).
        """
        targets = {int(k) for k in keys}
        if not targets:
            return 0
        dropped = 0
        for tier in (self._t1, self._t2):
            victims = [ck for ck in tier if base_key(ck) in targets]
            for ck in victims:
                del tier[ck]
            dropped += len(victims)
        return dropped

    def clear(self) -> None:
        self._t1.clear()
        self._t2.clear()
        self._seen.clear()

    # -- accounting -----------------------------------------------------

    @property
    def hits(self) -> int:
        return self.t1_hits + self.t2_hits

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def stats(self) -> dict:
        """JSON-serialisable per-tier counter snapshot."""
        return {
            "tiers": 2,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "t1": {
                "hits": self.t1_hits,
                "resident": len(self._t1),
                "capacity": self.t1_capacity,
            },
            "t2": {
                "hits": self.t2_hits,
                "resident": len(self._t2),
                "capacity": self.t2_capacity,
                "latency_s": self.t2_latency,
                "time_charged_s": self.t2_time_charged,
            },
            "candidates": len(self._seen),
            "candidate_capacity": self.candidate_capacity,
            "admit_threshold": self.admit_threshold,
        }
