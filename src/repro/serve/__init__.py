"""repro.serve — the read path: serving k-mer counts under load.

The counting layers (:mod:`repro.core`) build an ordered count
database; this package answers queries against it at service scale:

* :mod:`repro.serve.shards` — splitmix64-sharded sorted-array stores
  with vectorised batch lookups;
* :mod:`repro.serve.engine` — asyncio front end: bounded admission
  (:class:`Overloaded` backpressure), per-shard micro-batching, and a
  naive one-at-a-time baseline to measure against;
* :mod:`repro.serve.cache` — hot-key LRU with L3-style heavy-hitter
  admission;
* :mod:`repro.serve.workload` — seeded Zipf open-loop load generation
  from a real counted spectrum;
* :mod:`repro.serve.metrics` — throughput, queue depth, cache hit
  rate, and latency-percentile accounting with JSON snapshots.

See ``docs/SERVING.md`` for the design and its mapping onto the
paper's heavy-hitter (L3) argument.
"""

from .bench import ServeBenchResult, run_serve_bench
from .cache import TIER_STORE, TIER_T1, TIER_T2, HotKeyCache, TieredCache
from .engine import EngineConfig, Overloaded, QueryEngine, naive_serve, replay
from .metrics import LatencyHistogram, ServeMetrics
from .shards import Shard, ShardedStore
from .workload import BurstSpec, QueryWorkload, arrival_groups, zipf_workload

__all__ = [
    "Shard",
    "ShardedStore",
    "HotKeyCache",
    "TieredCache",
    "TIER_T1",
    "TIER_T2",
    "TIER_STORE",
    "BurstSpec",
    "EngineConfig",
    "Overloaded",
    "QueryEngine",
    "naive_serve",
    "replay",
    "LatencyHistogram",
    "ServeMetrics",
    "QueryWorkload",
    "zipf_workload",
    "arrival_groups",
    "ServeBenchResult",
    "run_serve_bench",
]
