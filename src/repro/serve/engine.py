"""Asyncio query engine: admission control, micro-batching, caching.

The serving pipeline for one query is::

    client --> admission gate --> hot-key cache --> per-shard queue
                  (Overloaded)       (L3-style)         |
                                                   micro-batcher
                                                 (size/window coalesce)
                                                        |
                                              one np.searchsorted per flush

Three mechanisms carry the performance argument:

* **Bounded admission** — the engine tracks keys in flight and rejects
  work past ``max_inflight`` with a typed :class:`Overloaded` error
  instead of queueing unboundedly.  Explicit backpressure: the load
  generator sees rejections, latency stays bounded, memory stays flat.
* **Micro-batching** — per-shard workers coalesce queued requests up
  to ``batch_size`` keys or a ``batch_window`` timer and answer each
  flush with *one* vectorised lookup, amortising the per-call Python
  and NumPy overhead that makes one-at-a-time serving slow.
* **Hot-key caching** — a :class:`~repro.serve.cache.HotKeyCache`
  in front of the queues absorbs the Zipf head before it concentrates
  on one shard (the read-path analogue of the paper's L3 heavy-hitter
  aggregation).

Requests enter as key *chunks* (a single key is a chunk of one): the
batch API :meth:`QueryEngine.query_many` routes a client batch to its
shards with one vectorised owner computation, which is how a load
generator standing in for thousands of concurrent single-key clients
submits an arrival tick's worth of traffic.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from .cache import TIER_STORE, TIER_T1, TIER_T2, HotKeyCache, TieredCache
from .metrics import ServeMetrics
from .shards import ShardedStore

# The tenant layer is imported after .metrics so the partial-package
# import chain (serve -> engine -> tenant -> serve.metrics) resolves.
from ..tenant.metrics import TenantMetricsSet          # noqa: E402
from ..tenant.registry import QuotaExceeded, TenantRegistry  # noqa: E402
from ..tenant.scheduler import DRRQueue                # noqa: E402

__all__ = ["Overloaded", "EngineConfig", "QueryEngine", "naive_serve", "replay"]


class Overloaded(RuntimeError):
    """Admission queue full: the request was rejected, not queued.

    Carries ``inflight`` (keys currently admitted), ``limit`` and a
    ``retry_after`` hint — the estimated seconds until the current
    queue depth drains enough to admit a request of this size (derived
    from the engine's measured flush rate) — so clients can implement
    informed retry/shedding policies instead of blind exponential
    backoff.
    """

    def __init__(self, inflight: int, limit: int, retry_after: float = 0.0):
        super().__init__(
            f"engine overloaded: {inflight} keys in flight (limit {limit}, "
            f"retry after {retry_after:.4f}s)")
        self.inflight = inflight
        self.limit = limit
        self.retry_after = retry_after


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs for :class:`QueryEngine`."""

    batch_size: int = 256        # keys per flush (coalescing target)
    batch_window: float = 5e-4   # seconds a partial batch waits for company
    max_inflight: int = 8192     # admission bound, in keys
    workers_per_shard: int = 1   # concurrent micro-batchers per shard
    quantum_keys: int = 64       # DRR key-credit per unit tenant weight
    fair_scheduling: bool = True  # DRR queues when tenants are registered
    #: Simulated store service cost per flush (fixed + per-key seconds),
    #: awaited by the worker before the vectorised lookup.  0 = off.
    #: Benchmarks use it to model a real backend so queueing effects
    #: (and tenant isolation) are measurable above Python overhead.
    flush_service_time: float = 0.0
    flush_service_per_key: float = 0.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.workers_per_shard < 1:
            raise ValueError("workers_per_shard must be >= 1")
        if self.quantum_keys < 1:
            raise ValueError("quantum_keys must be >= 1")
        if self.flush_service_time < 0 or self.flush_service_per_key < 0:
            raise ValueError("flush service costs must be >= 0")


class _Chunk:
    """Keys of one request bound for one shard, plus their reply slot."""

    __slots__ = ("keys", "future", "tenant")

    def __init__(self, keys: np.ndarray, future: asyncio.Future,
                 tenant: str | None = None):
        self.keys = keys
        self.future = future
        self.tenant = tenant


class QueryEngine:
    """Sharded, batched, cached query front end over a ShardedStore."""

    def __init__(
        self,
        store: ShardedStore,
        config: EngineConfig | None = None,
        *,
        cache: HotKeyCache | TieredCache | None = None,
        metrics: ServeMetrics | None = None,
        recorder=None,
        tenants: TenantRegistry | None = None,
    ):
        self.store = store
        self.config = config or EngineConfig()
        self.cache = cache
        self.metrics = metrics or ServeMetrics()
        #: Optional :class:`repro.trace.TraceRecorder` (duck-typed:
        #: anything with ``record_batch(keys, tiers)``); every admitted
        #: query is logged with the tier that answered it.
        self.recorder = recorder
        #: Optional multi-tenancy: quota admission per request, DRR
        #: weighted-fair batching at the shard workers, per-tenant
        #: metrics with SLO grading, and tenant-tagged cache entries.
        self.tenants = tenants
        self.tenant_metrics = (
            TenantMetricsSet(tenants) if tenants is not None else None)
        self._tiered = isinstance(cache, TieredCache)
        if cache is not None:
            self.metrics.cache_source = cache
        self._queues: list = []
        self._workers: list[asyncio.Task] = []
        self._inflight = 0
        self._running = False
        self._unsubscribe = None
        self._drain_rate = 0.0       # EWMA keys/s through the flush path
        self._last_flush_t: float | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        if self._running:
            return
        if self.tenants is not None and self.config.fair_scheduling:
            weights = self.tenants.weights()
            self._queues = [
                DRRQueue(weights, quantum=self.config.quantum_keys)
                for _ in range(self.store.n_shards)
            ]
        else:
            self._queues = [asyncio.Queue() for _ in range(self.store.n_shards)]
        self._workers = [
            asyncio.create_task(self._worker(sid))
            for sid in range(self.store.n_shards)
            for _ in range(self.config.workers_per_shard)
        ]
        # A live store (e.g. LsmReadView) keeps changing answers under
        # us; drop cached entries for every ingested key or the cache
        # would serve pre-ingest counts forever.
        if self.cache is not None and hasattr(self.store, "subscribe"):
            self._unsubscribe = self.store.subscribe(self.cache.invalidate_many)
        self._running = True

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._queues = []

    async def __aenter__(self) -> "QueryEngine":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def inflight(self) -> int:
        """Keys admitted and not yet answered."""
        return self._inflight

    # -- query paths ---------------------------------------------------

    async def query(self, key: int, *, tenant: str | None = None) -> int:
        """Answer one key (a chunk of one; pays the batching window)."""
        result = await self.query_many(np.array([key], dtype=np.uint64),
                                       tenant=tenant)
        return int(result[0])

    def _retry_hint(self, n: int) -> float:
        """Seconds until *n* keys of admission headroom should exist.

        Derived from the current queue depth and the measured flush
        drain rate; clamped to [batch_window, 5 s] so clients never
        spin on a zero hint or stall on a cold estimate.
        """
        excess = max(self._inflight + n - self.config.max_inflight, n)
        if self._drain_rate > 0:
            hint = excess / self._drain_rate
        else:
            hint = self.config.batch_window or 1e-3
        floor = self.config.batch_window or 1e-4
        return float(min(max(hint, floor), 5.0))

    async def query_many(self, keys: np.ndarray, *,
                         tenant: str | None = None) -> np.ndarray:
        """Answer a client batch of keys; returns counts (0 = absent).

        Raises :class:`Overloaded` (rejecting the whole batch) when
        admitting it would exceed the caller's inflight budget.  With
        a tenant registry attached, *tenant* names the caller: the
        request is first charged against the tenant's token bucket
        (:class:`~repro.tenant.registry.QuotaExceeded` with a
        retry-after hint, **before** any queue depth is consumed),
        then admitted against ``max_inflight >> priority`` so lower
        classes shed while class 0 still has headroom.
        """
        if not self._running:
            raise RuntimeError("engine not started (use `async with` or start())")
        keys = np.asarray(keys, dtype=np.uint64)
        n = int(keys.size)
        if n == 0:
            return np.empty(0, dtype=np.int64)

        # -- admission: quota first, queue depth second ----------------
        tm = None
        limit = self.config.max_inflight
        if self.tenants is not None and tenant is not None:
            tm = self.tenant_metrics.get(tenant)
            try:
                spec = self.tenants.admit(tenant, n)
            except QuotaExceeded:
                self.metrics.reject(n, "quota")
                tm.reject(n, "quota")
                raise
            limit = max(1, self.config.max_inflight >> spec.priority)
        if self._inflight + n > limit:
            cause = "overload" if limit == self.config.max_inflight else "shed"
            self.metrics.reject(n, cause)
            if tm is not None:
                tm.reject(n, cause)
                # The bucket was debited for work that never queued.
                self.tenants.refund(tenant, n)
            raise Overloaded(self._inflight, limit,
                             retry_after=self._retry_hint(n))
        t0 = time.perf_counter()
        out = np.zeros(n, dtype=np.int64)

        # Cache identity: tenant-tagged entries keep one tenant's
        # traffic from priming hits (and dodging quota) for another.
        tagged = self.tenants is not None and tenant is not None
        def ckey(key, _t=tenant):
            return (_t, key) if tagged else key

        # Hot-key cache pass: answer the Zipf head without queueing.
        cache = self.cache
        virtual = 0.0
        if cache is not None and (self._tiered or self.recorder is not None):
            # Tier-attributed pass: the per-key hit tier feeds the
            # trace recorder and the t2 latency charge.
            tiers = np.full(n, TIER_STORE, dtype=np.int8)
            cache_get = cache.get
            miss_pos = []
            n_t2 = 0
            for i, key in enumerate(keys.tolist()):
                value = cache_get(ckey(key))
                if value is None:
                    miss_pos.append(i)
                elif self._tiered:
                    out[i] = value
                    tier = cache.last_tier
                    tiers[i] = tier
                    if tier == TIER_T2:
                        n_t2 += 1
                else:
                    out[i] = value
                    tiers[i] = TIER_T1
            if n_t2:
                # A t2 hit is not free: its device latency is charged
                # as virtual seconds folded into the latency histogram,
                # the way the cost model charges beta_link for remote
                # PUTs.
                virtual = n_t2 * cache.t2_latency
                self.metrics.cache_t2_hits += n_t2
                self.metrics.t2_time_charged += virtual
            if self.recorder is not None:
                self.recorder.record_batch(keys, tiers)
        elif cache is not None:
            cache_get = cache.get
            miss_pos = [i for i, key in enumerate(keys.tolist())
                        if self._cached(cache_get, ckey(key), out, i)]
        else:
            if self.recorder is not None:
                self.recorder.record_batch(keys, None)
            miss_pos = range(n)
        miss_idx = np.fromiter(miss_pos, dtype=np.int64)
        n_miss = int(miss_idx.size)
        self.metrics.cache_hits += n - n_miss
        self.metrics.cache_misses += n_miss

        if n_miss:
            miss_keys = keys[miss_idx]
            owners = np.asarray(self.store.shard_of(miss_keys))
            self._inflight += n_miss
            futures = []
            positions = []
            for sid in np.unique(owners):
                mask = owners == sid
                chunk = _Chunk(miss_keys[mask],
                               asyncio.get_running_loop().create_future(),
                               tenant=tenant)
                self._queues[int(sid)].put_nowait(chunk)
                futures.append(chunk.future)
                positions.append(miss_idx[mask])
            answered = await asyncio.gather(*futures)
            for pos, vals in zip(positions, answered):
                out[pos] = vals

        dt = time.perf_counter() - t0 + virtual
        found = int((out > 0).sum())
        self.metrics.latency.record(dt, weight=n)
        self.metrics.n_queries += n
        self.metrics.n_found += found
        if tm is not None:
            tm.latency.record(dt, weight=n)
            tm.n_queries += n
            tm.n_found += found
            tm.cache_hits += n - n_miss
            tm.cache_misses += n_miss
        return out

    @staticmethod
    def _cached(cache_get, key, out: np.ndarray, i: int) -> bool:
        """Fill out[i] from cache; True means *miss* (key still needed)."""
        value = cache_get(key)
        if value is None:
            return True
        out[i] = value
        return False

    # -- micro-batching workers ---------------------------------------

    async def _worker(self, sid: int) -> None:
        queue = self._queues[sid]
        cfg = self.config
        while True:
            chunk = await queue.get()
            batch = [chunk]
            n_keys = int(chunk.keys.size)
            if cfg.batch_window > 0 and n_keys < cfg.batch_size and queue.empty():
                # Lone partial batch: wait one window for company.
                await asyncio.sleep(cfg.batch_window)
            while n_keys < cfg.batch_size and not queue.empty():
                more = queue.get_nowait()
                batch.append(more)
                n_keys += int(more.keys.size)
            self.metrics.observe_queue_depth(queue.qsize())
            if cfg.flush_service_time > 0 or cfg.flush_service_per_key > 0:
                # Simulated store service cost: makes queueing (and so
                # isolation) measurable on an in-memory store.
                await asyncio.sleep(cfg.flush_service_time
                                    + cfg.flush_service_per_key * n_keys)
            self._flush(sid, batch, n_keys)

    def _flush(self, sid: int, batch: list[_Chunk], n_keys: int) -> None:
        """One vectorised lookup answering every chunk in the batch."""
        if len(batch) == 1:
            all_keys = batch[0].keys
        else:
            all_keys = np.concatenate([c.keys for c in batch])
        values = self.store.lookup_batch(sid, all_keys)
        now = time.perf_counter()
        if self._last_flush_t is not None:
            dt = now - self._last_flush_t
            if dt > 0:
                inst = n_keys / dt
                # EWMA of the drain rate feeds Overloaded retry hints.
                self._drain_rate = (inst if self._drain_rate == 0
                                    else 0.8 * self._drain_rate + 0.2 * inst)
        self._last_flush_t = now
        offer = self.cache.offer if self.cache is not None else None
        offset = 0
        for chunk in batch:
            end = offset + int(chunk.keys.size)
            if not chunk.future.done():
                chunk.future.set_result(values[offset:end])
            if offer is not None:
                tagged = self.tenants is not None and chunk.tenant is not None
                for key, value in zip(chunk.keys.tolist(),
                                      values[offset:end].tolist()):
                    offer((chunk.tenant, key) if tagged else key, value)
            offset = end
        self._inflight -= n_keys
        self.metrics.n_batches += 1
        self.metrics.batched_keys += n_keys


def naive_serve(
    store: ShardedStore, keys: np.ndarray, metrics: ServeMetrics | None = None
) -> tuple[np.ndarray, ServeMetrics]:
    """The baseline: answer each query with its own scalar lookup.

    No batching, no caching, no queueing — the loop anyone writes
    first, and the per-query overhead wall the engine exists to beat.
    """
    metrics = metrics or ServeMetrics()
    keys = np.asarray(keys, dtype=np.uint64)
    out = np.empty(keys.size, dtype=np.int64)
    get = store.get
    record = metrics.latency.record
    clock = time.perf_counter
    t_start = clock()
    for i, key in enumerate(keys.tolist()):
        t0 = clock()
        out[i] = get(key)
        record(clock() - t0)
    metrics.elapsed = clock() - t_start
    metrics.n_queries += int(keys.size)
    metrics.n_found += int((out > 0).sum())
    return out, metrics


async def replay(
    engine: QueryEngine,
    keys: np.ndarray,
    *,
    group_size: int = 256,
    concurrency: int = 8,
    tenant: str | None = None,
) -> np.ndarray:
    """Drive a key stream through the engine and time it.

    Splits *keys* into arrival groups of *group_size* (one group ~ one
    open-loop tick of concurrent single-key clients) and keeps up to
    *concurrency* groups in flight.  Rejected groups resolve to zeros
    and are counted in ``metrics.rejected``.  Sets ``metrics.elapsed``
    to the wall-clock span of the whole replay.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    groups = [keys[i : i + group_size] for i in range(0, keys.size, group_size)]
    results: list[np.ndarray | None] = [None] * len(groups)
    gate = asyncio.Semaphore(concurrency)

    async def one(i: int, group: np.ndarray) -> None:
        async with gate:
            try:
                results[i] = await engine.query_many(group, tenant=tenant)
            except (Overloaded, QuotaExceeded):
                results[i] = np.zeros(group.size, dtype=np.int64)

    t_start = time.perf_counter()
    await asyncio.gather(*(one(i, g) for i, g in enumerate(groups)))
    engine.metrics.elapsed = time.perf_counter() - t_start
    if not results:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(results)
