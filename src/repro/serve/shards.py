"""Sharded read-path over a counted k-mer database.

A :class:`ShardedStore` partitions a :class:`~repro.core.result.KmerCounts`
into N virtual shards with the same splitmix64 owner function the
distributed counters use to assign k-mers to PEs
(:func:`repro.core.owner.owner_pe`).  Serving inherits the counting
layer's partitioning property — every replica of a key routes to the
same shard — and also its *imbalance*: all queries for one heavy-hitter
k-mer land on one shard, which is exactly the skew the hot-key cache in
:mod:`repro.serve.cache` absorbs (the L3 argument, applied to reads).

Each shard is a sorted-array store: the global key array is strictly
increasing, so masking out one owner's keys preserves order and a batch
of lookups is one vectorised ``np.searchsorted`` instead of per-key
binary searches in Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.owner import owner_pe
from ..core.result import KmerCounts

__all__ = ["Shard", "ShardedStore"]


@dataclass(frozen=True)
class Shard:
    """One shard: sorted key array + aligned counts."""

    kmers: np.ndarray  # uint64, strictly increasing
    counts: np.ndarray  # int64

    def __post_init__(self) -> None:
        if self.kmers.shape != self.counts.shape or self.kmers.ndim != 1:
            raise ValueError("shard arrays must be 1-D and aligned")

    @property
    def n_keys(self) -> int:
        return int(self.kmers.size)

    @property
    def nbytes(self) -> int:
        return int(self.kmers.nbytes + self.counts.nbytes)

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup; absent keys answer 0."""
        keys = np.asarray(keys, dtype=np.uint64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        if self.kmers.size == 0:
            return np.zeros(keys.size, dtype=np.int64)
        idx = np.searchsorted(self.kmers, keys)
        idx_clipped = np.minimum(idx, self.kmers.size - 1)
        hit = self.kmers[idx_clipped] == keys
        return np.where(hit, self.counts[idx_clipped], 0).astype(np.int64)


class ShardedStore:
    """A counted database split into N query shards.

    The shard of a key is ``splitmix64(key) mod n_shards`` — a pure
    function of the key, so clients, load balancers, and the engine's
    micro-batcher all agree on routing without coordination.
    """

    def __init__(self, k: int, shards: list[Shard], *, n_shards: int | None = None):
        if not shards:
            raise ValueError("need at least one shard")
        self.k = k
        self.shards = shards
        self.n_shards = len(shards) if n_shards is None else n_shards
        if self.n_shards != len(shards):
            raise ValueError("n_shards must match the shard list")

    @classmethod
    def from_counts(cls, counts: KmerCounts, n_shards: int) -> "ShardedStore":
        """Partition a counted database into *n_shards* virtual shards."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        owners = owner_pe(counts.kmers, n_shards)
        shards = [
            Shard(counts.kmers[owners == s], counts.counts[owners == s])
            for s in range(n_shards)
        ]
        return cls(counts.k, shards)

    # -- routing -------------------------------------------------------

    def shard_of(self, keys: np.ndarray | int) -> np.ndarray | int:
        """Shard id(s) for the given key(s) (splitmix64 mod N)."""
        scalar = np.isscalar(keys) or isinstance(keys, (int, np.integer))
        ids = owner_pe(np.atleast_1d(np.asarray(keys, dtype=np.uint64)), self.n_shards)
        return int(ids[0]) if scalar else ids

    # -- lookups -------------------------------------------------------

    def lookup_batch(self, shard_id: int, keys: np.ndarray) -> np.ndarray:
        """One vectorised lookup against a single shard.

        The caller is responsible for routing: every key must belong to
        *shard_id* (misrouted keys simply answer 0).
        """
        return self.shards[shard_id].lookup(keys)

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Route-and-lookup a mixed batch across all shards."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.size, dtype=np.int64)
        owners = owner_pe(keys, self.n_shards)
        for s in range(self.n_shards):
            mask = owners == s
            if mask.any():
                out[mask] = self.shards[s].lookup(keys[mask])
        return out

    def get(self, key: int) -> int:
        """Scalar lookup — the naive per-query path (binary search)."""
        shard = self.shards[self.shard_of(int(key))]
        if shard.kmers.size == 0:
            return 0
        i = int(np.searchsorted(shard.kmers, np.uint64(key)))
        if i < shard.kmers.size and shard.kmers[i] == np.uint64(key):
            return int(shard.counts[i])
        return 0

    # -- introspection -------------------------------------------------

    @property
    def n_distinct(self) -> int:
        return sum(s.n_keys for s in self.shards)

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.shards)

    def shard_sizes(self) -> np.ndarray:
        """Keys per shard (the partition-balance diagnostic)."""
        return np.array([s.n_keys for s in self.shards], dtype=np.int64)
