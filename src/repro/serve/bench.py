"""The serve-bench experiment: naive vs. batched+cached serving.

One deterministic, seeded comparison used by both the ``dakc
serve-bench`` CLI and ``benchmarks/bench_extension_serve.py``:

1. count a dataset replica into a database,
2. shard it, generate a Zipf query stream from its spectrum,
3. answer the stream twice — once with the naive one-at-a-time scalar
   loop, once through the micro-batching + hot-key-cache engine,
4. check both answer vectors agree, and report throughput, latency
   percentiles, cache hit rate, and the measured speedup.

The key sequence is a pure function of the seed, so runs are
replayable; the wall-clock numbers vary with the host, but the
*speedup* is the claim under test (batching amortises per-query
overhead by ~batch_size and the cache absorbs the Zipf head, so the
margin is wide and robust).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from ..core.result import KmerCounts
from .cache import HotKeyCache, TieredCache
from .engine import EngineConfig, QueryEngine, naive_serve, replay
from .metrics import ServeMetrics
from .shards import ShardedStore
from .workload import BurstSpec, zipf_workload

__all__ = ["ServeBenchResult", "run_serve_bench"]


@dataclass(frozen=True)
class ServeBenchResult:
    """Outcome of one naive-vs-engine comparison."""

    naive: ServeMetrics
    served: ServeMetrics
    answers_match: bool
    n_queries: int
    n_shards: int
    zipf_s: float
    seed: int

    @property
    def speedup(self) -> float:
        if self.naive.throughput_qps == 0:
            return float("inf")
        return self.served.throughput_qps / self.naive.throughput_qps

    def to_doc(self) -> dict:
        """Machine-readable record (``BENCH_serve.json``)."""
        return {
            "experiment": "serve-bench",
            "seed": self.seed,
            "n_queries": self.n_queries,
            "n_shards": self.n_shards,
            "zipf_s": self.zipf_s,
            "answers_match": self.answers_match,
            "speedup": self.speedup,
            "naive": self.naive.snapshot(),
            "served": self.served.snapshot(),
        }


def run_serve_bench(
    counts: KmerCounts,
    *,
    n_queries: int = 40_000,
    n_shards: int = 8,
    zipf_s: float = 1.1,
    seed: int = 0,
    miss_fraction: float = 0.02,
    config: EngineConfig | None = None,
    cache_capacity: int = 4096,
    cache_threshold: int = 2,
    t2_capacity: int = 0,
    group_size: int = 256,
    concurrency: int = 8,
    store: ShardedStore | None = None,
    burst: BurstSpec | None = None,
    recorder=None,
) -> ServeBenchResult:
    """Serve one Zipf stream naively and through the engine; compare.

    *store* overrides the read path: anything quacking like a
    :class:`ShardedStore` (``n_shards``/``shard_of``/``lookup_batch``/
    ``get``) works — e.g. a live :class:`repro.lsm.LsmReadView` — while
    *counts* still seeds the workload's popularity ranking.
    A non-zero *t2_capacity* upgrades the hot-key cache to a
    :class:`TieredCache` (t1 = *cache_capacity* RAM slots over a
    *t2_capacity* second tier); *recorder* (a
    :class:`repro.trace.TraceRecorder`) logs the engine's query trace,
    which is how any serve bench doubles as a trace producer.
    """
    config = config or EngineConfig()
    if store is None:
        store = ShardedStore.from_counts(counts, n_shards)
    stream = zipf_workload(
        counts, n_queries, s=zipf_s, seed=seed, miss_fraction=miss_fraction,
        burst=burst,
    )

    naive_out, naive_metrics = naive_serve(store, stream.keys)

    async def drive() -> tuple[np.ndarray, ServeMetrics]:
        if cache_capacity > 0 and t2_capacity > 0:
            cache = TieredCache(cache_capacity, t2_capacity,
                                admit_threshold=cache_threshold)
        elif cache_capacity > 0:
            cache = HotKeyCache(cache_capacity, admit_threshold=cache_threshold)
        else:
            cache = None
        async with QueryEngine(store, config, cache=cache,
                               recorder=recorder) as engine:
            out = await replay(
                engine, stream.keys, group_size=group_size, concurrency=concurrency
            )
            return out, engine.metrics

    served_out, served_metrics = asyncio.run(drive())

    return ServeBenchResult(
        naive=naive_metrics,
        served=served_metrics,
        answers_match=bool(np.array_equal(naive_out, served_out)),
        n_queries=n_queries,
        n_shards=n_shards,
        zipf_s=zipf_s,
        seed=seed,
    )
