"""Seeded open-loop query workloads over a counted spectrum.

Serving benchmarks live or die by their key-popularity model.  Real
k-mer query traffic is doubly skewed: the *database* counts follow the
spectrum's heavy tail (repeats), and *query* popularity follows the
usual Zipf law of request streams.  :func:`zipf_workload` composes
both: keys are ranked by their database count (heaviest k-mer =
hottest query — the repeat everyone's pipeline keeps probing) and
drawn with probability proportional to ``rank^-s``, so the resulting
stream concentrates on exactly the keys whose *updates* concentrated
on one PE during counting (the L3 heavy hitters).

Everything is derived from a single ``numpy`` seed: the same seed
yields the same key sequence and the same Poisson arrival times, so
benchmark runs are replayable and regression-comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import KmerCounts

__all__ = ["BurstSpec", "QueryWorkload", "zipf_workload", "arrival_groups"]


@dataclass(frozen=True)
class BurstSpec:
    """Periodic rate bursts layered over the open-loop arrivals.

    The Cydonia ``BurstWorkload`` shape: every *period* seconds the
    request rate multiplies by *amplitude* for *duration* seconds,
    then relaxes back to the base open-loop rate.  The overlay is a
    deterministic time-warp of the Poisson arrival sequence (the
    time-change theorem for inhomogeneous Poisson processes), so the
    same seed still yields the same stream — and :mod:`repro.dst` can
    carry the three numbers as Schedule fields and fuzz them.
    """

    amplitude: float = 4.0  # rate multiplier inside a burst (>= 1)
    duration: float = 0.05  # seconds of burst per period
    period: float = 0.5     # seconds from burst start to burst start
    phase: float = 0.0      # offset of the first burst start

    def __post_init__(self) -> None:
        if self.amplitude < 1.0:
            raise ValueError("burst amplitude must be >= 1")
        if not 0.0 <= self.duration <= self.period:
            raise ValueError("need 0 <= duration <= period")
        if self.period <= 0:
            raise ValueError("burst period must be > 0")
        if self.phase < 0:
            raise ValueError("burst phase must be >= 0")

    @property
    def active(self) -> bool:
        """Does the overlay change the stream at all?"""
        return self.amplitude > 1.0 and self.duration > 0.0

    def in_burst(self, t: np.ndarray) -> np.ndarray:
        """Boolean mask: which times fall inside a burst window."""
        t = np.asarray(t, dtype=np.float64)
        return (t >= self.phase) & (((t - self.phase) % self.period)
                                    < self.duration)

    def to_doc(self) -> dict:
        return {"amplitude": self.amplitude, "duration": self.duration,
                "period": self.period, "phase": self.phase}

    @classmethod
    def from_doc(cls, doc: dict) -> "BurstSpec":
        return cls(amplitude=float(doc["amplitude"]),
                   duration=float(doc["duration"]),
                   period=float(doc["period"]),
                   phase=float(doc.get("phase", 0.0)))


def _burst_warp(arrivals: np.ndarray, spec: BurstSpec) -> np.ndarray:
    """Warp homogeneous Poisson arrivals into the bursty process.

    If ``T`` are Poisson points at the base rate and ``M(s)`` is the
    cumulative rate multiplier (slope *amplitude* inside burst
    windows, 1 outside), then ``M^{-1}(T)`` are Poisson points with
    instantaneous rate ``base_rate * m(s)`` — exact, vectorised, and
    order-preserving.
    """
    if arrivals.size == 0 or not spec.active:
        return arrivals
    t_max = float(arrivals[-1])
    # m >= 1 everywhere implies M(s) >= s, so covering t_max in the
    # warped domain needs at most t_max of unwarped time.
    n_periods = int(t_max / spec.period) + 2
    starts = spec.phase + spec.period * np.arange(n_periods, dtype=np.float64)
    bp = np.unique(np.concatenate([[0.0], starts, starts + spec.duration]))
    mids = (bp[:-1] + bp[1:]) / 2.0
    slope = np.where(spec.in_burst(mids), spec.amplitude, 1.0)
    cum = np.concatenate([[0.0], np.cumsum(np.diff(bp) * slope)])
    idx = np.clip(np.searchsorted(cum, arrivals, side="right") - 1,
                  0, slope.size - 1)
    return bp[idx] + (arrivals - cum[idx]) / slope[idx]


@dataclass(frozen=True)
class QueryWorkload:
    """One generated query stream."""

    keys: np.ndarray      # uint64 query keys, in arrival order
    arrivals: np.ndarray  # float64 arrival times (seconds, non-decreasing)
    zipf_s: float
    seed: int
    burst: BurstSpec | None = None

    @property
    def n_queries(self) -> int:
        return int(self.keys.size)

    @property
    def duration(self) -> float:
        """Span of the open-loop arrival schedule."""
        return float(self.arrivals[-1]) if self.arrivals.size else 0.0

    def unique_fraction(self) -> float:
        """Distinct keys / queries — low means a cache-friendly stream."""
        if not self.keys.size:
            return 0.0
        return np.unique(self.keys).size / self.keys.size


def zipf_workload(
    counts: KmerCounts,
    n_queries: int,
    *,
    s: float = 1.1,
    seed: int = 0,
    rate_qps: float = 100_000.0,
    miss_fraction: float = 0.0,
    max_support: int = 200_000,
    burst: BurstSpec | None = None,
) -> QueryWorkload:
    """Generate a Zipf(s) query stream over a counted database.

    * Keys are ranked by database count (descending, ties broken by
      key value) and sampled with ``P(rank r) ~ (r+1)^-s`` over the
      top ``max_support`` ranks.
    * *miss_fraction* of queries ask for keys absent from the
      database (uniform over the k-mer space), exercising the
      negative-lookup path.
    * Arrivals are an open-loop Poisson process at *rate_qps*; an
      optional :class:`BurstSpec` overlays periodic rate bursts
      (amplitude x the base rate inside each burst window).
    """
    if n_queries < 0:
        raise ValueError("n_queries must be >= 0")
    if s <= 0:
        raise ValueError("zipf exponent s must be > 0")
    if not 0.0 <= miss_fraction <= 1.0:
        raise ValueError("miss_fraction must be in [0, 1]")
    if counts.n_distinct == 0 and miss_fraction < 1.0 and n_queries > 0:
        raise ValueError("cannot draw hit queries from an empty database")
    rng = np.random.default_rng(seed)

    # Rank the spectrum: heaviest count first, key value as tiebreak.
    order = np.lexsort((counts.kmers, -counts.counts))
    support = order[: min(max_support, order.size)]
    ranked_keys = counts.kmers[support]
    weights = (np.arange(ranked_keys.size, dtype=np.float64) + 1.0) ** -s
    weights /= weights.sum()

    n_miss = int(round(n_queries * miss_fraction))
    n_hit = n_queries - n_miss
    hit_keys = (
        ranked_keys[rng.choice(ranked_keys.size, size=n_hit, p=weights)]
        if n_hit
        else np.empty(0, dtype=np.uint64)
    )
    miss_keys = _absent_keys(counts, n_miss, rng)
    keys = np.concatenate([hit_keys, miss_keys])
    rng.shuffle(keys)

    gaps = rng.exponential(1.0 / rate_qps, size=n_queries)
    arrivals = np.cumsum(gaps)
    if burst is not None:
        arrivals = _burst_warp(arrivals, burst)
    return QueryWorkload(keys=keys, arrivals=arrivals, zipf_s=s, seed=seed,
                         burst=burst)


def _absent_keys(counts: KmerCounts, n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw *n* keys uniformly from the k-mer space, none in the DB."""
    if n == 0:
        return np.empty(0, dtype=np.uint64)
    space = 1 << (2 * counts.k)
    out = rng.integers(0, space, size=n, dtype=np.uint64)
    for _ in range(64):  # each round fixes all residual collisions
        idx = np.searchsorted(counts.kmers, out)
        idx_c = np.minimum(idx, max(counts.kmers.size - 1, 0))
        present = counts.kmers.size > 0
        colliding = (counts.kmers[idx_c] == out) if present else np.zeros(n, bool)
        if not colliding.any():
            return out
        out[colliding] = rng.integers(0, space, size=int(colliding.sum()), dtype=np.uint64)
    raise RuntimeError("could not draw absent keys (database saturates key space)")


def arrival_groups(
    workload: QueryWorkload, tick: float = 1e-3
) -> list[np.ndarray]:
    """Bucket the stream into arrival ticks of *tick* seconds.

    Each group is the batch of keys whose Poisson arrivals fall in one
    tick — the unit a load generator submits together, standing in for
    that many concurrent single-key clients.
    """
    if tick <= 0:
        raise ValueError("tick must be > 0")
    if not workload.keys.size:
        return []
    slot = (workload.arrivals // tick).astype(np.int64)
    bounds = np.flatnonzero(np.diff(slot)) + 1
    return np.split(workload.keys, bounds)
