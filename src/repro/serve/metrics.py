"""Serving metrics: latency histograms, throughput, queue depth, cache.

The numbers a query service is judged by: tail latency (p50/p95/p99),
sustained throughput, how deep the admission queue ran, and how much
traffic the hot-key cache absorbed.  :class:`LatencyHistogram` uses
geometric buckets so the tail quantiles of millions of samples cost a
few hundred int64 counters, and :class:`ServeMetrics` aggregates one
run into a JSON-serialisable snapshot (``BENCH_serve.json`` and the
``dakc serve-bench`` report are both rendered from it).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencyHistogram", "ServeMetrics"]


class LatencyHistogram:
    """Geometric-bucket latency histogram (seconds).

    Buckets grow by a fixed ratio from *lo* to *hi* (defaults: 1 µs to
    100 s at ~12% resolution), so quantiles are accurate to one bucket
    width anywhere in the range — what HDR-style histograms give real
    services, in 200 lines fewer.
    """

    def __init__(self, lo: float = 1e-6, hi: float = 100.0, growth: float = 1.12):
        if not (0 < lo < hi) or growth <= 1.0:
            raise ValueError("need 0 < lo < hi and growth > 1")
        self.lo = lo
        self.growth = growth
        self._log_growth = math.log(growth)
        self.n_buckets = int(math.ceil(math.log(hi / lo) / self._log_growth)) + 1
        # +2: underflow bucket at index 0, overflow at the end.
        self.counts = np.zeros(self.n_buckets + 2, dtype=np.int64)
        self.n = 0
        self.total = 0.0
        self.max_seen = 0.0

    @classmethod
    def like(cls, other: "LatencyHistogram") -> "LatencyHistogram":
        """An empty histogram with exactly *other*'s bucket geometry."""
        h = cls.__new__(cls)
        h.lo = other.lo
        h.growth = other.growth
        h._log_growth = other._log_growth
        h.n_buckets = other.n_buckets
        h.counts = np.zeros_like(other.counts)
        h.n = 0
        h.total = 0.0
        h.max_seen = 0.0
        return h

    def _bucket(self, latency: float) -> int:
        if latency < self.lo:
            return 0
        i = int(math.log(latency / self.lo) / self._log_growth) + 1
        return min(i, self.n_buckets + 1)

    def record(self, latency: float, weight: int = 1) -> None:
        """Record one latency observation (*weight* identical samples)."""
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.counts[self._bucket(latency)] += weight
        self.n += weight
        self.total += latency * weight
        if latency > self.max_seen:
            self.max_seen = latency

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if other.n_buckets != self.n_buckets or other.lo != self.lo:
            raise ValueError("histogram geometries differ")
        self.counts += other.counts
        self.n += other.n
        self.total += other.total
        self.max_seen = max(self.max_seen, other.max_seen)

    def quantile(self, q: float) -> float:
        """Latency at quantile *q* in [0, 1] (upper bucket edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.n == 0:
            return 0.0
        target = q * self.n
        cum = np.cumsum(self.counts)
        i = int(np.searchsorted(cum, target, side="left"))
        if i == 0:
            return self.lo
        if i >= self.n_buckets + 1:
            return self.max_seen
        return self.lo * self.growth ** i

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples at or under *threshold* seconds.

        The SLO-attainment gauge: resolved at bucket granularity (a
        sample is counted when its whole bucket sits at or under the
        threshold), so the answer is conservative by at most one
        bucket width — the same resolution as :meth:`quantile`.
        """
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if self.n == 0:
            return 1.0
        # Buckets strictly before the one containing the threshold lie
        # entirely at or under it; include the threshold's own bucket
        # when the threshold reaches its upper edge.
        i = self._bucket(threshold)
        upper = self.lo * self.growth ** i if i <= self.n_buckets else math.inf
        if threshold >= upper:
            i += 1
        below = int(self.counts[:i].sum())
        return below / self.n

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0


@dataclass
class ServeMetrics:
    """Aggregated counters for one serving run."""

    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    n_queries: int = 0          # answered queries (cache hits + store lookups)
    n_found: int = 0            # queries whose key existed in the database
    cache_hits: int = 0
    cache_misses: int = 0       # queries that had to touch a shard
    cache_t2_hits: int = 0      # hits answered by a TieredCache's t2 tier
    t2_time_charged: float = 0.0  # simulated seconds charged for t2 hits
    rejected: int = 0           # admission-control rejections (all causes)
    #: Rejections broken down by cause — "overload" (queue depth),
    #: "quota" (tenant token bucket), "shed" (priority-class headroom).
    rejected_by_cause: dict = field(default_factory=dict)
    n_batches: int = 0          # vector lookups flushed by the engine
    batched_keys: int = 0       # keys answered by those flushes
    queue_depth_max: int = 0
    _queue_depth_sum: int = 0
    _queue_depth_samples: int = 0
    elapsed: float = 0.0        # wall-clock seconds of the measured run
    #: The live cache object (anything with ``stats()``), attached by
    #: the engine so snapshots carry the full counter table —
    #: occupancy, evictions, per-tier hits — instead of only the
    #: scalar hit rate.
    cache_source: object | None = field(default=None, repr=False, compare=False)
    _delta_base: dict | None = field(default=None, repr=False)

    # -- recording -----------------------------------------------------

    def observe_queue_depth(self, depth: int) -> None:
        self.queue_depth_max = max(self.queue_depth_max, depth)
        self._queue_depth_sum += depth
        self._queue_depth_samples += 1

    def reject(self, n: int, cause: str = "overload") -> None:
        """Count *n* rejected keys under a named rejection cause."""
        self.rejected += n
        self.rejected_by_cause[cause] = self.rejected_by_cause.get(cause, 0) + n

    # -- derived -------------------------------------------------------

    @property
    def throughput_qps(self) -> float:
        return self.n_queries / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def rejected_qps(self) -> float:
        """Admission-control rejections per second over the run."""
        return self.rejected / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        seen = self.cache_hits + self.cache_misses
        return self.cache_hits / seen if seen else 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.batched_keys / self.n_batches if self.n_batches else 0.0

    @property
    def queue_depth_mean(self) -> float:
        if not self._queue_depth_samples:
            return 0.0
        return self._queue_depth_sum / self._queue_depth_samples

    # -- export --------------------------------------------------------

    def _cache_doc(self) -> dict:
        doc = {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hit_rate,
        }
        if self.cache_t2_hits:
            doc["t2_hits"] = self.cache_t2_hits
            doc["t2_time_charged_s"] = self.t2_time_charged
        if self.cache_source is not None:
            doc["stats"] = self.cache_source.stats()
        return doc

    def snapshot(self) -> dict:
        """JSON-serialisable summary of the run."""
        return {
            "n_queries": self.n_queries,
            "n_found": self.n_found,
            "elapsed_s": self.elapsed,
            "throughput_qps": self.throughput_qps,
            "latency_ms": {
                "p50": self.latency.quantile(0.50) * 1e3,
                "p95": self.latency.quantile(0.95) * 1e3,
                "p99": self.latency.quantile(0.99) * 1e3,
                "max": self.latency.max_seen * 1e3,
                "mean": self.latency.mean * 1e3,
            },
            "cache": self._cache_doc(),
            "batching": {
                "batches": self.n_batches,
                "batched_keys": self.batched_keys,
                "mean_batch_size": self.mean_batch_size,
            },
            "queue": {
                "depth_max": self.queue_depth_max,
                "depth_mean": self.queue_depth_mean,
                "rejected": self.rejected,
                "rejected_qps": self.rejected_qps,
                "rejected_by_cause": dict(self.rejected_by_cause),
                "rejected_qps_by_cause": {
                    cause: n / self.elapsed if self.elapsed > 0 else 0.0
                    for cause, n in self.rejected_by_cause.items()
                },
            },
        }

    def snapshot_delta(self, *, now: float | None = None) -> dict:
        """Windowed summary: rates and quantiles since the *last* call.

        Lifetime-averaged numbers hide regressions in a long-running
        serve session — an hour of fast answers swamps a slow last
        minute.  ``snapshot_delta`` diffs the histogram buckets and
        counters against the previous call (the first call covers
        everything so far) and derives p50/p95/p99 and throughput for
        just that window.  *now* overrides the wall clock in tests.
        """
        t = time.perf_counter() if now is None else now
        base = self._delta_base
        if base is None:
            base = {
                "t": t - self.elapsed if self.elapsed > 0 else t,
                "counts": np.zeros_like(self.latency.counts),
                "lat_n": 0,
                "lat_total": 0.0,
                "n_queries": 0,
                "n_found": 0,
                "cache_hits": 0,
                "cache_misses": 0,
                "rejected": 0,
            }
        window = max(t - base["t"], 0.0)

        # A throwaway histogram holding only this window's samples: the
        # bucket geometry is shared, so quantiles fall out directly.
        win = LatencyHistogram.like(self.latency)
        win.counts = self.latency.counts - base["counts"]
        win.n = self.latency.n - base["lat_n"]
        win.total = self.latency.total - base["lat_total"]
        win.max_seen = self.latency.max_seen  # lifetime bound (per-window max not tracked)

        n_queries = self.n_queries - base["n_queries"]
        hits = self.cache_hits - base["cache_hits"]
        misses = self.cache_misses - base["cache_misses"]
        cache_doc = {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
        if self.cache_t2_hits:
            cache_doc["t2_hits"] = self.cache_t2_hits - base.get("cache_t2_hits", 0)
        if self.cache_source is not None:
            # Occupancy/eviction state is instantaneous, not a rate:
            # report the live table alongside the windowed counters.
            cache_doc["stats"] = self.cache_source.stats()
        doc = {
            "window_s": window,
            "n_queries": n_queries,
            "n_found": self.n_found - base["n_found"],
            "throughput_qps": n_queries / window if window > 0 else 0.0,
            "latency_ms": {
                "p50": win.quantile(0.50) * 1e3,
                "p95": win.quantile(0.95) * 1e3,
                "p99": win.quantile(0.99) * 1e3,
                "mean": win.mean * 1e3,
            },
            "cache": cache_doc,
            "rejected": self.rejected - base["rejected"],
            "rejected_qps": (self.rejected - base["rejected"]) / window
            if window > 0 else 0.0,
            "rejected_by_cause": {
                cause: n - base.get("rejected_by_cause", {}).get(cause, 0)
                for cause, n in self.rejected_by_cause.items()
            },
        }
        self._delta_base = {
            "t": t,
            "counts": self.latency.counts.copy(),
            "lat_n": self.latency.n,
            "lat_total": self.latency.total,
            "n_queries": self.n_queries,
            "n_found": self.n_found,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_t2_hits": self.cache_t2_hits,
            "rejected": self.rejected,
            "rejected_by_cause": dict(self.rejected_by_cause),
        }
        return doc

    def to_json(self, path: str | os.PathLike | None = None, **extra) -> str:
        """Render the snapshot (plus *extra* top-level keys) as JSON."""
        doc = {**extra, **self.snapshot()}
        text = json.dumps(doc, indent=2, sort_keys=False) + "\n"
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text)
        return text
