"""DAKC reproduction: asynchronous distributed-memory k-mer counting.

A from-scratch Python reproduction of *"An Asynchronous Distributed-
Memory Parallel Algorithm for k-mer Counting"* (Hati, Hayashi, Vuduc;
IPDPS 2025): the DAKC algorithm, its BSP baselines (PakMan, PakMan*,
HySortK), the KMC3 shared-memory baseline, a simulated PGAS runtime
standing in for OpenSHMEM + Conveyors + HClib-Actor, and the paper's
analytical model — plus a benchmark harness regenerating every table
and figure of the evaluation.

Quickstart::

    from repro import count_kmers
    run = count_kmers(["ACGTACGTAC"], k=5, algorithm="serial")
    print(run.counts.n_distinct)

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-vs-measured results.
"""

from .api import ALGORITHMS, CountRun, count_kmers, load_reads, resolve_machine
from .core import (
    AggregationConfig,
    BspConfig,
    DakcConfig,
    KmerCounts,
    bsp_count,
    dakc_count,
    serial_count,
)
from .runtime import CostModel, MachineConfig, RunStats, laptop, phoenix_amd, phoenix_intel
from .seq import DatasetSpec, Workload, materialize

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "count_kmers",
    "CountRun",
    "ALGORITHMS",
    "load_reads",
    "resolve_machine",
    "KmerCounts",
    "serial_count",
    "dakc_count",
    "DakcConfig",
    "bsp_count",
    "BspConfig",
    "AggregationConfig",
    "MachineConfig",
    "CostModel",
    "RunStats",
    "phoenix_intel",
    "phoenix_amd",
    "laptop",
    "DatasetSpec",
    "Workload",
    "materialize",
]
