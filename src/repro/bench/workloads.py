"""Workload construction for the experiment harness.

Benchmarks must finish in seconds on one host core, so every experiment
runs a *scaled replica* of its paper dataset: genome shrunk by a
fidelity factor, coverage/read-length/skew preserved (see
:func:`repro.seq.datasets.materialize`).  This module centralises the
scaling policy so every figure uses the same rules:

* :func:`build_workload` — materialise a dataset at a k-mer budget;
* :func:`scaled_batch_size` — shrink the paper's BSP batch
  (``b ~ 1e9``) by the same factor as the dataset, preserving each
  experiment's superstep count;
* :func:`workload_cache` — memoises materialised workloads across
  benchmarks within a session.
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..seq.datasets import DatasetSpec, Workload, get_spec, materialize

__all__ = [
    "DEFAULT_BUDGET_KMERS",
    "PAPER_BATCH",
    "build_workload",
    "fidelity_for_budget",
    "scaled_batch_size",
]

#: Default number of k-mers a quick benchmark workload should contain.
DEFAULT_BUDGET_KMERS: int = 400_000

#: The paper's typical BSP batch size (Section III-B: "typical values
#: on current systems of ~1e9").
PAPER_BATCH: int = 1_000_000_000


def fidelity_for_budget(spec: DatasetSpec, k: int, budget_kmers: int) -> float:
    """Fidelity that materialises roughly *budget_kmers* k-mers.

    The k-mer count scales linearly with genome length (coverage is
    preserved), so fidelity = budget / full-scale k-mers, clamped to
    (0, 1].
    """
    full = spec.n_kmers(k)
    if full <= 0:
        return 1.0
    return max(min(budget_kmers / full, 1.0), 1e-12)


@lru_cache(maxsize=64)
def _cached(
    spec_key: str, k: int, budget_kmers: int, seed: int, coverage: float | None
) -> Workload:
    spec = get_spec(spec_key)
    fid = fidelity_for_budget(spec, k, budget_kmers)
    if coverage is not None:
        # A lower coverage needs a proportionally larger genome to hit
        # the same k-mer budget.
        fid = min(1.0, fid * spec.coverage / coverage)
    return materialize(spec, fidelity=fid, seed=seed, coverage=coverage)


def build_workload(
    spec: DatasetSpec | str,
    k: int,
    *,
    budget_kmers: int = DEFAULT_BUDGET_KMERS,
    seed: int = 0,
    coverage: float | None = None,
) -> Workload:
    """Materialise a scaled replica holding ~*budget_kmers* k-mers.

    *coverage* overrides the spec's sequencing depth (the genome grows
    to compensate, keeping the k-mer budget).
    """
    key = spec if isinstance(spec, str) else spec.key
    return _cached(key, k, budget_kmers, seed, coverage)


def scaled_batch_size(workload: Workload, k: int, *, paper_batch: int = PAPER_BATCH) -> int:
    """The BSP batch ``b`` scaled by the workload's shrink factor.

    Preserves ``supersteps = ceil(local_kmers / b)`` between the paper
    run and the replica, so the BSP baselines pay the same number of
    synchronisation rounds they paid at full scale.
    """
    full = workload.spec.n_kmers(k)
    scaled = workload.n_kmers(k)
    if full <= 0 or scaled <= 0:
        return paper_batch
    b = int(math.ceil(paper_batch * scaled / full))
    return max(1, b)
