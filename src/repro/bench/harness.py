"""Execution harness: run any counter on any workload/machine point.

One experiment data point = (algorithm, dataset, node count).  The
harness:

1. checks the *full-scale* OOM gate (Fig. 8 semantics) via
   :func:`repro.model.footprints.check_fits` — a gated point is
   reported with ``oom=True`` and no timing, matching the paper's
   missing data points;
2. runs the scaled replica through the requested algorithm;
3. optionally cross-validates the counts against Algorithm 1;
4. returns a flat row ready for the table printers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..api import count_kmers
from ..core.l2l3 import AggregationConfig
from ..core.result import KmerCounts
from ..core.serial import serial_count
from ..model.footprints import check_fits
from ..runtime.machine import MachineConfig, phoenix_intel
from ..runtime.memory import OutOfMemoryError
from ..runtime.stats import RunStats
from ..seq.datasets import Workload
from .workloads import scaled_batch_size

__all__ = ["RunPoint", "run_point", "sweep_nodes", "best_time"]

#: Algorithms whose footprints are gated at paper scale.
_GATED = {"dakc", "pakman", "pakman*", "hysortk"}


@dataclass
class RunPoint:
    """One measured (or OOM-gated) experiment data point."""

    algorithm: str
    dataset: str
    nodes: int
    oom: bool = False
    oom_reason: str = ""
    sim_time: float = float("nan")
    phase1_time: float = float("nan")
    phase2_time: float = float("nan")
    global_syncs: int = 0
    bytes_sent: int = 0
    puts: int = 0
    receive_imbalance: float = 1.0
    peak_buffer_bytes_per_pe: int = 0
    stats: RunStats | None = field(default=None, repr=False)
    counts: KmerCounts | None = field(default=None, repr=False)

    def row(self) -> dict:
        """Flat dict for the table printers."""
        from .tables import format_time

        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "nodes": self.nodes,
            "time": "OOM" if self.oom else format_time(self.sim_time),
            "syncs": "-" if self.oom else self.global_syncs,
            "imbalance": "-" if self.oom else f"{self.receive_imbalance:.2f}",
        }


def run_point(
    algorithm: str,
    workload: Workload,
    k: int,
    *,
    machine: MachineConfig | None = None,
    nodes: int = 1,
    pe_granularity: str = "node",
    protocol: str = "1D",
    agg: AggregationConfig | None = None,
    batch_size: int | None = None,
    verify_against: KmerCounts | None = None,
    keep_stats: bool = False,
    enforce_oom_gate: bool = True,
    scale_cache: bool = True,
    scale_time: bool = True,
) -> RunPoint:
    """Run one data point; returns measurements or an OOM record.

    ``scale_cache`` shrinks the machine's LLC by the workload's
    fidelity so the scaled replica keeps the paper-scale data:cache
    ratio — without it, replica working sets fit in the 38 MB LLC and
    every out-of-cache effect (radix vs quicksort, C3 sorting
    overhead) vanishes.  ``scale_time`` shrinks the fixed latencies
    (tau, injection, message overheads) by the same factor, keeping
    the latency:bandwidth regime at its paper-scale balance — without
    it, microsecond latencies that are noise against gigabyte batches
    dominate kilobyte replicas.  The full-scale OOM gate always uses
    the real machine.
    """
    base = machine or phoenix_intel(nodes)
    m = base.with_nodes(nodes)
    point = RunPoint(algorithm=algorithm, dataset=workload.spec.display, nodes=nodes)

    if enforce_oom_gate and algorithm.lower() in _GATED:
        try:
            check_fits(algorithm, workload.spec, k, m, nodes, protocol=protocol)
        except OutOfMemoryError as exc:
            point.oom = True
            point.oom_reason = str(exc)
            return point

    if batch_size is None and algorithm.lower() in ("pakman", "pakman*", "hysortk", "bsp"):
        batch_size = scaled_batch_size(workload, k)

    full = workload.spec.n_kmers(k)
    shrink = workload.n_kmers(k) / full if full else 1.0
    if scale_cache:
        m = replace(m, cache_bytes=max(2048, int(m.cache_bytes * shrink)))
    if scale_time:
        m = m.with_time_scale(shrink)

    run = count_kmers(
        workload.reads,
        k,
        algorithm=algorithm,
        machine=m,
        pe_granularity=pe_granularity,
        protocol=protocol,
        agg=agg,
        batch_size=batch_size,
    )
    if verify_against is not None and run.counts != verify_against:
        raise AssertionError(
            f"{algorithm} disagrees with reference on {workload.spec.display}: "
            + "; ".join(run.counts.diff(verify_against))
        )
    s = run.stats
    point.sim_time = s.sim_time
    point.phase1_time = s.phase1_time
    point.phase2_time = s.phase2_time
    point.global_syncs = s.global_syncs
    point.bytes_sent = s.total_bytes_sent
    point.puts = s.total_puts
    point.receive_imbalance = s.receive_imbalance()
    point.peak_buffer_bytes_per_pe = s.peak_buffer_bytes_per_pe
    if keep_stats:
        point.stats = s
        point.counts = run.counts
    return point


def sweep_nodes(
    algorithms: list[str],
    workload: Workload,
    k: int,
    node_counts: list[int],
    *,
    machine: MachineConfig | None = None,
    verify: bool = True,
    **kwargs,
) -> list[RunPoint]:
    """Strong-scaling sweep: every algorithm at every node count."""
    reference = serial_count(workload.reads, k) if verify else None
    out: list[RunPoint] = []
    for nodes in node_counts:
        for algo in algorithms:
            out.append(
                run_point(
                    algo,
                    workload,
                    k,
                    machine=machine,
                    nodes=nodes,
                    verify_against=reference,
                    **kwargs,
                )
            )
    return out


def best_time(points: list[RunPoint], algorithm: str) -> float:
    """Best (minimum) non-OOM simulated time of one algorithm."""
    times = [p.sim_time for p in points if p.algorithm == algorithm and not p.oom]
    return min(times) if times else float("nan")
