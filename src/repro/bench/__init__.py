"""Benchmark harness: workloads, runner, tables, experiment registry."""

from .experiments import EXPERIMENTS, ExperimentResult, list_experiments, run_experiment
from .harness import RunPoint, best_time, run_point, sweep_nodes
from .plots import ascii_chart, scaling_chart
from .report import render_markdown, run_all, write_report
from .tables import format_bytes, format_speedup, format_table, format_time, print_table
from .workloads import (
    DEFAULT_BUDGET_KMERS,
    PAPER_BATCH,
    build_workload,
    fidelity_for_budget,
    scaled_batch_size,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "list_experiments",
    "RunPoint",
    "run_point",
    "sweep_nodes",
    "best_time",
    "build_workload",
    "fidelity_for_budget",
    "scaled_batch_size",
    "DEFAULT_BUDGET_KMERS",
    "PAPER_BATCH",
    "format_table",
    "print_table",
    "format_time",
    "format_bytes",
    "format_speedup",
    "render_markdown",
    "write_report",
    "run_all",
    "ascii_chart",
    "scaling_chart",
]
