"""ASCII charts for terminal-only environments.

The paper's figures are scatter/line plots; this repository runs where
no plotting stack exists, so the harness renders its series as ASCII.
Log-log axes are the default because every scaling figure in the paper
is log-log (node counts double, times shrink geometrically).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["ascii_chart", "scaling_chart"]

_MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log axis requires positive values")
        return math.log10(value)
    return value


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    *,
    width: int = 70,
    height: int = 20,
    logx: bool = True,
    logy: bool = True,
    title: str | None = None,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker from ``oxx+*...``; points sharing a cell
    keep the first-drawn marker.  Axes may be log10-scaled.
    """
    points = [(name, x, y) for name, pts in series.items() for x, y in pts]
    if not points:
        return "(no data)\n"
    xs = [_transform(x, logx) for _, x, _ in points]
    ys = [_transform(y, logy) for _, _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, x, y), tx, ty in zip(points, xs, ys):
        col = int((tx - x_lo) / x_span * (width - 1))
        row = height - 1 - int((ty - y_lo) / y_span * (height - 1))
        marker = _MARKERS[list(series).index(name) % len(_MARKERS)]
        if grid[row][col] == " ":
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = 10**y_hi if logy else y_hi
    y_bot = 10**y_lo if logy else y_lo
    lines.append(f"{ylabel} {y_top:.3g}")
    for row in grid:
        lines.append("  |" + "".join(row))
    lines.append("  +" + "-" * width)
    x_left = 10**x_lo if logx else x_lo
    x_right = 10**x_hi if logx else x_hi
    pad = max(0, width - 12)
    lines.append(f"   {x_left:.3g}{' ' * pad}{x_right:.3g}  ({xlabel})")
    lines.append(f"  {ylabel} min = {y_bot:.3g}")
    legend = "   " + "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines) + "\n"


def scaling_chart(
    times_by_algorithm: dict[str, dict[int, float]],
    *,
    title: str = "strong scaling",
    width: int = 70,
    height: int = 18,
) -> str:
    """Render {algorithm: {nodes: seconds}} as a log-log scaling plot.

    OOM/missing points (NaN) are skipped.
    """
    series = {}
    for name, curve in times_by_algorithm.items():
        pts = [
            (float(nodes), float(t))
            for nodes, t in sorted(curve.items())
            if t == t and t > 0
        ]
        if pts:
            series[name] = pts
    return ascii_chart(
        series, width=width, height=height,
        logx=True, logy=True, title=title,
        xlabel="nodes", ylabel="time(s)",
    )
