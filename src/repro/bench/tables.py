"""Plain-text table/figure rendering for the benchmark harness.

Every experiment prints the same rows/series the paper reports, as
ASCII tables (no plotting dependencies).  Keep the formatting dumb and
grep-friendly: benchmark logs are diffed across runs.
"""

from __future__ import annotations

import sys
from collections.abc import Sequence

__all__ = ["format_table", "print_table", "format_time", "format_bytes", "format_speedup"]


def format_time(seconds: float) -> str:
    """Human-scale rendering of a (simulated) duration."""
    if seconds != seconds:  # NaN
        return "-"
    if seconds >= 100:
        return f"{seconds:.0f} s"
    if seconds >= 1:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.2f} us"
    return f"{seconds * 1e9:.1f} ns"


def format_bytes(nbytes: float) -> str:
    for unit, scale in (("TB", 1e12), ("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if abs(nbytes) >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{nbytes:.0f} B"


def format_speedup(x: float) -> str:
    return "-" if x != x else f"{x:.2f}x"


def format_table(
    rows: Sequence[dict], *, title: str | None = None, columns: Sequence[str] | None = None
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"== {title} ==\n(no rows)\n" if title else "(no rows)\n"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[str(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def print_table(
    rows: Sequence[dict],
    *,
    title: str | None = None,
    columns: Sequence[str] | None = None,
    file=None,
) -> None:
    """Print dict-rows as an aligned ASCII table."""
    print(format_table(rows, title=title, columns=columns), file=file or sys.stdout)
