"""Experiment registry: one entry per table and figure of the paper.

Every function regenerates the rows/series of its table or figure on
scaled replica workloads (see DESIGN.md §3 for the index).  All return
an :class:`ExperimentResult` whose ``tables`` render with
:func:`repro.bench.tables.print_table`; the ``benchmarks/`` tree and
the CLI (``dakc bench``) are thin wrappers over this registry.

Conventions:

* node counts are *simulated* nodes (PE = node granularity unless the
  experiment is single-node, where PE = core or socket as deployed in
  the paper);
* ``budget`` is the approximate k-mer count of each replica workload;
* speedups are ratios of simulated kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.l2l3 import AggregationConfig
from ..model.analytical import predict
from ..model.params import table4_rows
from ..model.roofline import H100_BALANCE, hardware_balance, operational_intensity
from ..model.validation import validate_workload
from ..runtime.machine import phoenix_amd, phoenix_intel
from ..runtime.memory import aggregation_memory_per_pe, table3_rows
from ..runtime.topology import make_topology
from ..seq.datasets import get_spec, table5_rows
from .harness import best_time, run_point, sweep_nodes
from .tables import format_bytes, format_speedup, format_table, format_time
from .workloads import DEFAULT_BUDGET_KMERS, build_workload

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "list_experiments"]

#: Default k everywhere: the paper counts k=31 in every experiment.
K = 31


@dataclass
class ExperimentResult:
    """Rows + rendered tables of one regenerated table/figure."""

    exp_id: str
    title: str
    tables: list[tuple[str, list[dict]]] = field(default_factory=list)
    notes: str = ""

    def render(self) -> str:
        parts = [f"### {self.exp_id}: {self.title}\n"]
        for title, rows in self.tables:
            parts.append(format_table(rows, title=title))
        if self.notes:
            parts.append(f"Notes: {self.notes}\n")
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table2(*, p: int = 256, **_) -> ExperimentResult:
    """Table II: Conveyors protocol properties, verified on topologies."""
    rows = []
    for proto, mem_class in (("1D", "O(P^2)"), ("2D", "O(P^(3/2))"), ("3D", "O(P^(4/3))")):
        topo = make_topology(proto, p)
        # Sample with coprime strides so 2D/3D pairs land off-axis.
        hops = max(
            topo.hop_count(s, d)
            for s in range(0, p, max(1, min(17, p // 4 or 1)))
            for d in range(0, p, max(1, min(13, p // 4 or 1)))
        )
        rows.append(
            {
                "Protocol": proto,
                "Topology": "All-Connected" if proto == "1D" else f"{proto} HyperX",
                "Memory": mem_class,
                "Total buffers": topo.total_buffers(),
                "#Hops": hops,
            }
        )
    return ExperimentResult(
        "table2",
        "Conveyors protocols (topology, memory, hops)",
        [(f"Table II @ P={p}", rows)],
        notes="Total buffers measured on the actual virtual topologies; "
        "hop counts verified over a sample of (src, dst) pairs.",
    )


def table3(*, p: int = 256, **_) -> ExperimentResult:
    """Table III: aggregation parameters and memory per PE."""
    return ExperimentResult(
        "table3",
        "Aggregation parameters",
        [(f"Table III @ P={p}", table3_rows(p))],
    )


def table4(**_) -> ExperimentResult:
    """Table IV: model parameters for Phoenix."""
    return ExperimentResult("table4", "Model parameters (Phoenix Intel)",
                            [("Table IV", table4_rows())])


def table5(**_) -> ExperimentResult:
    """Table V: dataset inventory at paper scale."""
    return ExperimentResult("table5", "Datasets used in experiments",
                            [("Table V", table5_rows())])


# ---------------------------------------------------------------------------
# Headline and memory figures
# ---------------------------------------------------------------------------

#: Fig. 1 datasets with replica budgets roughly tracking their real
#: relative sizes (the paper's scatter sizes dots by input size).
_FIG1_DATASETS = [
    ("synthetic-24", 200_000),
    ("synthetic-26", 400_000),
    ("p-aeruginosa", 250_000),
    ("s-coelicolor", 300_000),
    ("human", 500_000),
]


def fig1(*, budget: int | None = None, seed: int = 0, **_) -> ExperimentResult:
    """Fig. 1: speedup of DAKC over baselines per dataset."""
    rows = []
    nodes_grid = [4, 8, 16]
    for key, ds_budget in _FIG1_DATASETS:
        w = build_workload(key, K, budget_kmers=budget or ds_budget, seed=seed)
        pts = sweep_nodes(["dakc", "pakman*", "hysortk"], w, K, nodes_grid, verify=False)
        t_dakc = best_time(pts, "dakc")
        t_pak = best_time(pts, "pakman*")
        t_hys = best_time(pts, "hysortk")
        kmc = run_point("kmc3", w, K, nodes=1)
        rows.append(
            {
                "dataset": w.spec.display,
                "kmers": w.n_kmers(K),
                "vs KMC3": format_speedup(kmc.sim_time / t_dakc),
                "vs PakMan*": format_speedup(t_pak / t_dakc),
                "vs HySortK": format_speedup(t_hys / t_dakc),
            }
        )
    return ExperimentResult(
        "fig1",
        "Speedup of DAKC over baselines (headline)",
        [("Fig. 1 (best configuration per method)", rows)],
        notes="Paper: 15-102x over shared memory (KMC3), 2.3x/2.8x mean over "
        "HySortK/PakMan*.",
    )


def fig2(*, node_counts: list[int] | None = None, **_) -> ExperimentResult:
    """Fig. 2: per-core memory overhead of 1D/2D/3D conveyors."""
    node_counts = node_counts or [2, 4, 8, 16, 32, 64, 128, 256]
    machine = phoenix_intel(1)
    rows = []
    for nodes in node_counts:
        p = nodes * machine.cores_per_node
        row = {"nodes": nodes, "cores (P)": p}
        for proto in ("1D", "2D", "3D"):
            row[proto] = format_bytes(aggregation_memory_per_pe(proto, p)["total"])
        rows.append(row)
    return ExperimentResult(
        "fig2",
        "Per-core memory overhead of 1D/2D/3D Conveyors (Synthetic 32 strong scaling)",
        [("Fig. 2", rows)],
        notes="1D grows linearly in P and dominates at high core counts; "
        "2D/3D stay modest (Table III closed forms).",
    )


_FIG34_BUDGETS = [50_000, 100_000, 200_000, 400_000, 800_000]


def fig3(*, seed: int = 0, budgets: list[int] | None = None, **_) -> ExperimentResult:
    """Fig. 3: LLC misses, model vs measured (8 nodes)."""
    budgets = budgets or _FIG34_BUDGETS
    machine = phoenix_intel(8)
    rows = []
    for budget in budgets:
        # Low-coverage replicas keep the genome far larger than the L3
        # window, so wire volume tracks k-mer volume as at paper scale.
        w = build_workload("synthetic-24", K, budget_kmers=budget, seed=seed,
                           coverage=2)
        row, _, _ = validate_workload(w, K, machine)
        rows.append(
            {
                "kmers": row.n_kmers,
                "P1 predicted": f"{row.predicted_misses_p1:.3g}",
                "P1 measured": f"{row.measured_misses_p1:.3g}",
                "P2 predicted": f"{row.predicted_misses_p2:.3g}",
                "P2 measured": f"{row.measured_misses_p2:.3g}",
            }
        )
    return ExperimentResult(
        "fig3",
        "Last-level cache misses: model vs measured (8 nodes)",
        [("Fig. 3", rows)],
        notes="Phase-1 prediction is a slight underestimate (optimal vs real "
        "replacement); Phase-2 prediction overestimates (worst-case radix "
        "model vs the hybrid sorter's early termination).",
    )


def fig4(*, seed: int = 0, budgets: list[int] | None = None, **_) -> ExperimentResult:
    """Fig. 4: phase times, model (Sum/Max) vs measured (8 nodes)."""
    budgets = budgets or _FIG34_BUDGETS
    machine = phoenix_intel(8)
    rows = []
    for budget in budgets:
        w = build_workload("synthetic-24", K, budget_kmers=budget, seed=seed,
                           coverage=2)
        row, _, _ = validate_workload(w, K, machine)
        rows.append(
            {
                "kmers": row.n_kmers,
                "T1 sum-model": format_time(row.predicted_t1_sum),
                "T1 max-model": format_time(row.predicted_t1_max),
                "T1 measured": format_time(row.measured_t1),
                "T2 model": format_time(row.predicted_t2),
                "T2 measured": format_time(row.measured_t2),
            }
        )
    return ExperimentResult(
        "fig4",
        "Phase execution time: model vs measured (8 nodes)",
        [("Fig. 4", rows)],
        notes="Model underestimates but stays in the same ballpark "
        "(paper's wording).",
    )


def fig5(**_) -> ExperimentResult:
    """Fig. 5: time breakdown of Synthetic 30 on 32 nodes (pure model)."""
    spec = get_spec("synthetic-30")
    machine = phoenix_intel(32)
    pred = predict(spec.n_reads, spec.read_len, K, machine)
    shares = pred.breakdown("sum")
    rows = [
        {"component": name, "share": f"{100 * val:.1f} %"}
        for name, val in shares.items()
    ]
    oi = operational_intensity(spec.n_reads, spec.read_len, K)
    roof = [
        {"quantity": "DAKC op-to-byte", "value": f"{oi:.3f} iadd64/B (1 per {1/oi:.2f} B)"},
        {"quantity": "Phoenix CPU balance", "value": f"{hardware_balance():.2f} iadd64/B"},
        {"quantity": "NVIDIA H100 balance", "value": f"{H100_BALANCE:.1f} iadd64/B"},
    ]
    return ExperimentResult(
        "fig5",
        "Compute/intranode/internode breakdown, Synthetic 30 @ 32 nodes",
        [("Fig. 5 (analytical, no overlap)", rows), ("Section VII roofline", roof)],
        notes="Paper: compute share is very small; data movement dominates.",
    )


def fig6(*, budget: int = DEFAULT_BUDGET_KMERS, seed: int = 0, **_) -> ExperimentResult:
    """Fig. 6: PakMan (quicksort) vs PakMan* (radix) ~2x."""
    rows = []
    for key in ("synthetic-27", "synthetic-28", "synthetic-29", "synthetic-30"):
        w = build_workload(key, K, budget_kmers=budget, seed=seed)
        nodes = 8
        quick = run_point("pakman", w, K, nodes=nodes)
        star = run_point("pakman*", w, K, nodes=nodes)
        rows.append(
            {
                "dataset": w.spec.display,
                "PakMan (quicksort)": format_time(quick.sim_time),
                "PakMan* (radix)": format_time(star.sim_time),
                "speedup": format_speedup(quick.sim_time / star.sim_time),
            }
        )
    return ExperimentResult(
        "fig6",
        "Radix sort in PakMan (PakMan*) vs original quicksort",
        [("Fig. 6 @ 8 nodes", rows)],
        notes="Paper reports ~2x from the sort swap alone.  Replica shows "
        "~1.2-1.4x: a comparison sort's log2(n) depth shrinks with the "
        "scaled per-rank array (11 levels vs ~26 at paper scale), so "
        "the constant-factor gap cannot fully reappear at replica size.",
    )


_FIG7_DATASETS = [
    "p-aeruginosa",
    "s-coelicolor",
    "f-vesca",
    "human",
    "synthetic-27",
    "synthetic-29",
]


def fig7(
    *,
    budget: int = DEFAULT_BUDGET_KMERS,
    seed: int = 0,
    node_counts: list[int] | None = None,
    datasets: list[str] | None = None,
    **_,
) -> ExperimentResult:
    """Fig. 7: strong scaling on real + synthetic datasets."""
    node_counts = node_counts or [1, 2, 4, 8, 16, 32]
    datasets = datasets or _FIG7_DATASETS
    tables = []
    ratios = []
    for key in datasets:
        spec = get_spec(key)
        w = build_workload(key, K, budget_kmers=budget, seed=seed)
        # The paper enables L3 only on the heavy-hitter genomes.
        agg = AggregationConfig(enable_l3=spec.heavy)
        rows = []
        for nodes in node_counts:
            d = run_point("dakc", w, K, nodes=nodes, agg=agg)
            p = run_point("pakman*", w, K, nodes=nodes)
            h = run_point("hysortk", w, K, nodes=nodes)
            rows.append(
                {
                    "nodes": nodes,
                    "DAKC": "OOM" if d.oom else format_time(d.sim_time),
                    "PakMan*": "OOM" if p.oom else format_time(p.sim_time),
                    "HySortK": "OOM" if h.oom else format_time(h.sim_time),
                }
            )
            if not (p.oom or h.oom):
                ratios.append(p.sim_time / h.sim_time)
        tables.append((f"Fig. 7 — {spec.display} ({spec.organism})", rows))
    note = ""
    if ratios:
        note = (
            f"Blocking-vs-nonblocking (Sec. VI-E): HySortK is "
            f"{np.mean(ratios):.2f}x faster than PakMan* on average "
            f"(paper: 1.17x)."
        )
    return ExperimentResult("fig7", "Strong scaling (up to 256 nodes in the paper)",
                            tables, notes=note)


def fig8(
    *, budget: int = DEFAULT_BUDGET_KMERS, seed: int = 0,
    node_counts: list[int] | None = None, **_,
) -> ExperimentResult:
    """Fig. 8: strong scaling on Synthetic 32 with OOM gating."""
    node_counts = node_counts or [16, 32, 64, 128, 256]
    w = build_workload("synthetic-32", K, budget_kmers=budget, seed=seed)
    rows = []
    for nodes in node_counts:
        d = run_point("dakc", w, K, nodes=nodes)
        p = run_point("pakman*", w, K, nodes=nodes)
        h = run_point("hysortk", w, K, nodes=nodes)
        rows.append(
            {
                "nodes": nodes,
                "DAKC": "OOM" if d.oom else format_time(d.sim_time),
                "PakMan*": "OOM" if p.oom else format_time(p.sim_time),
                "HySortK": "OOM" if h.oom else format_time(h.sim_time),
            }
        )
    return ExperimentResult(
        "fig8",
        "Strong scaling, Synthetic 32 (451 GB)",
        [("Fig. 8", rows)],
        notes="Paper: PakMan* OOMs at 16 & 32 nodes; HySortK does not run "
        "at any node count; DAKC runs everywhere.",
    )


def fig9(*, budget: int = DEFAULT_BUDGET_KMERS, seed: int = 0, **_) -> ExperimentResult:
    """Fig. 9: single-node comparison on AMD (128c) and Intel (24c)."""
    tables = []
    for label, machine, gran in (
        ("Intel node (24 cores)", phoenix_intel(1), "core"),
        ("AMD node (128 cores)", phoenix_amd(1), "core"),
    ):
        rows = []
        for key, ds_budget in (("synthetic-22", 200_000), ("synthetic-24", 400_000),
                               ("p-aeruginosa", 300_000)):
            w = build_workload(key, K, budget_kmers=ds_budget, seed=seed)
            d = run_point("dakc", w, K, machine=machine, nodes=1, pe_granularity=gran)
            kc = run_point("kmc3", w, K, machine=machine, nodes=1)
            p = run_point("pakman*", w, K, machine=machine, nodes=1, pe_granularity=gran)
            h = run_point("hysortk", w, K, machine=machine, nodes=1,
                          pe_granularity="socket")
            rows.append(
                {
                    "dataset": w.spec.display,
                    "DAKC": format_time(d.sim_time),
                    "vs KMC3": format_speedup(kc.sim_time / d.sim_time),
                    "vs PakMan*": format_speedup(p.sim_time / d.sim_time),
                    "vs HySortK": format_speedup(h.sim_time / d.sim_time),
                }
            )
        tables.append((f"Fig. 9 — {label}", rows))
    return ExperimentResult(
        "fig9",
        "Shared-memory (single node) speedups",
        tables,
        notes="Paper: DAKC ~2x over KMC3 and ~2x over the distributed "
        "baselines on one node (co-located sends become memcpys).",
    )


def fig10(
    *, base_budget: int = 100_000, seed: int = 0,
    node_counts: list[int] | None = None, **_,
) -> ExperimentResult:
    """Fig. 10: weak scaling — problem grows with the node count."""
    node_counts = node_counts or [1, 2, 4, 8, 16, 32]
    rows = []
    base_scale = 24
    for i, nodes in enumerate(node_counts):
        key = f"synthetic-{base_scale + i}"
        w = build_workload(key, K, budget_kmers=base_budget * nodes, seed=seed)
        d = run_point("dakc", w, K, nodes=nodes)
        p = run_point("pakman*", w, K, nodes=nodes)
        h = run_point("hysortk", w, K, nodes=nodes)
        rows.append(
            {
                "nodes": nodes,
                "dataset": w.spec.display,
                "DAKC": "OOM" if d.oom else format_time(d.sim_time),
                "PakMan*": "OOM" if p.oom else format_time(p.sim_time),
                "HySortK": "OOM" if h.oom else format_time(h.sim_time),
                "DAKC vs HySortK": "-" if (d.oom or h.oom) else format_speedup(h.sim_time / d.sim_time),
                "DAKC vs PakMan*": "-" if (d.oom or p.oom) else format_speedup(p.sim_time / d.sim_time),
            }
        )
    return ExperimentResult(
        "fig10",
        "Weak scaling on synthetic datasets",
        [("Fig. 10", rows)],
        notes="Paper: DAKC 1.7-3.4x over HySortK and 2.0-6.3x over PakMan*; "
        "flat lines = perfect weak scaling.",
    )


def fig11(
    *, budget: int = DEFAULT_BUDGET_KMERS, seed: int = 0,
    node_counts: list[int] | None = None, **_,
) -> ExperimentResult:
    """Fig. 11: 2D/3D Conveyors speedup over 1D (expected < 1)."""
    node_counts = node_counts or [4, 8, 16, 32]
    w = build_workload("synthetic-27", K, budget_kmers=budget, seed=seed)
    rows = []
    for nodes in node_counts:
        times = {}
        for proto in ("1D", "2D", "3D"):
            pt = run_point("dakc", w, K, nodes=nodes, protocol=proto)
            times[proto] = pt.sim_time
        rows.append(
            {
                "nodes": nodes,
                "1D": format_time(times["1D"]),
                "2D/1D speedup": format_speedup(times["1D"] / times["2D"]),
                "3D/1D speedup": format_speedup(times["1D"] / times["3D"]),
            }
        )
    return ExperimentResult(
        "fig11",
        "Choice of Conveyors topology",
        [("Fig. 11", rows)],
        notes="Paper: 1D is 10-20% faster than 2D/3D (speedups < 1) at the "
        "cost of the Fig. 2 memory overhead.",
    )


def fig12(
    *, budget: int = 300_000, seed: int = 0,
    node_counts: list[int] | None = None, **_,
) -> ExperimentResult:
    """Fig. 12: aggregation-layer ablation on Human and Synthetic 32.

    Runs at PE-per-core granularity: the heavy-hitter penalty of the
    L0-L1/L0-L2 configurations is incast at the hot owner *core*, so
    it scales with the PE count (the paper's 66x is at 6144 cores; the
    replica shows the same multiplicative trend at its smaller core
    counts).
    """
    node_counts = node_counts or [4, 16]
    configs = [
        ("L0-L1", AggregationConfig(enable_l2=False, enable_l3=False)),
        ("L0-L2", AggregationConfig(enable_l2=True, enable_l3=False)),
        ("L0-L3", AggregationConfig(enable_l2=True, enable_l3=True)),
    ]
    tables = []
    for key in ("human", "synthetic-32"):
        w = build_workload(key, K, budget_kmers=budget, seed=seed)
        rows = []
        for nodes in node_counts:
            row = {"nodes": nodes, "cores": nodes * 24}
            base = None
            for label, agg in configs:
                pt = run_point("dakc", w, K, nodes=nodes, agg=agg,
                               pe_granularity="core", enforce_oom_gate=False)
                row[label] = format_time(pt.sim_time)
                if label == "L0-L1":
                    base = pt.sim_time
                else:
                    row[f"{label} speedup"] = format_speedup(base / pt.sim_time)
            rows.append(row)
        tables.append((f"Fig. 12 — {w.spec.display}", rows))
    return ExperimentResult(
        "fig12",
        "Benefit of the application aggregation layers",
        tables,
        notes="Paper: L2 gives ~2x on uniform data (L3 adds nothing there); "
        "on Human the L3 layer is essential, with speedup growing with the "
        "core count (up to 66x over L0-L1 at 6144 cores).",
    )


def fig13(
    *, budget: int = DEFAULT_BUDGET_KMERS, seed: int = 0, nodes: int = 8, **_,
) -> ExperimentResult:
    """Fig. 13: tuning C2 and C3."""
    # A reduced-coverage replica keeps the genome much larger than any
    # swept C3, so within-chunk duplicate density stays paper-like
    # (uniform genomes have almost no repeats at C3 granularity).
    w = build_workload("synthetic-26", K, budget_kmers=budget, seed=seed, coverage=6)
    base = run_point(
        "dakc", w, K, nodes=nodes, agg=AggregationConfig()
    ).sim_time
    rows_c2 = []
    for c2 in (2, 4, 8, 16, 32, 64, 128):
        pt = run_point("dakc", w, K, nodes=nodes, agg=AggregationConfig(c2=c2))
        rows_c2.append(
            {"C2": c2, "time": format_time(pt.sim_time),
             "speedup vs C2=32": format_speedup(base / pt.sim_time)}
        )
    # The C3 sweep runs on the heavy-hitter (Human) replica: too-small
    # C3 windows fail to catch heavy k-mers (local counts stay <= 2),
    # inflating communication volume, while oversized C3 pays extra
    # sorting — both ends of the paper's Fig. 13b U-shape.
    wh = build_workload("human", K, budget_kmers=budget, seed=seed)
    base_h = run_point("dakc", wh, K, nodes=nodes, agg=AggregationConfig(),
                       enforce_oom_gate=False).sim_time
    rows_c3 = []
    for c3 in (100, 1_000, 10_000, 100_000, 1_000_000):
        pt = run_point("dakc", wh, K, nodes=nodes, agg=AggregationConfig(c3=c3),
                       enforce_oom_gate=False)
        rows_c3.append(
            {"C3": c3, "time": format_time(pt.sim_time),
             "speedup vs C3=1e4": format_speedup(base_h / pt.sim_time)}
        )
    return ExperimentResult(
        "fig13",
        "Tuning the application aggregation parameters",
        [("Fig. 13a — C2 sweep", rows_c2), ("Fig. 13b — C3 sweep", rows_c3)],
        notes="Paper: flat for C2 >= 8, degraded for C2 <= 4; flat for "
        "1e3 <= C3 <= 1e6 with degradation outside.  Replica artifact: "
        "C3 >= 1e5 shows a mild extra gain because the scaled per-PE "
        "stream is comparable to C3, letting one window deduplicate "
        "across the whole stream; at paper scale (1e9 k-mers/PE) this "
        "effect vanishes.",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
}


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)


def run_experiment(exp_id: str, **kwargs) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"fig7"``)."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(list_experiments())}"
        ) from None
    return fn(**kwargs)
