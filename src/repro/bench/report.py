"""Markdown report generation for experiment runs.

``dakc bench all --report report.md`` (or
:func:`write_report` programmatically) renders every regenerated table
and figure as a single self-contained markdown document, with the
paper's expectation quoted next to each result — the artefact a
reviewer diffing reproduction runs wants.
"""

from __future__ import annotations

import os
from datetime import datetime, timezone
from pathlib import Path

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = ["render_markdown", "write_report", "run_all"]


def _table_md(rows: list[dict]) -> str:
    if not rows:
        return "*(no rows)*\n"
    cols = list(rows[0].keys())
    lines = [
        "| " + " | ".join(str(c) for c in cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in cols) + " |")
    return "\n".join(lines) + "\n"


def render_markdown(results: list[ExperimentResult], *, title: str | None = None) -> str:
    """Render experiment results as one markdown document."""
    stamp = datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    parts = [
        f"# {title or 'DAKC reproduction — experiment report'}",
        "",
        f"*Generated {stamp} by `repro.bench.report`.*",
        "",
    ]
    for result in results:
        parts.append(f"## {result.exp_id}: {result.title}")
        parts.append("")
        for table_title, rows in result.tables:
            parts.append(f"### {table_title}")
            parts.append("")
            parts.append(_table_md(rows))
        if result.notes:
            parts.append(f"> {result.notes}")
            parts.append("")
    return "\n".join(parts)


def run_all(*, exp_ids: list[str] | None = None, **kwargs) -> list[ExperimentResult]:
    """Run a list of experiments (default: all, in registry order)."""
    ids = exp_ids or sorted(EXPERIMENTS)
    return [run_experiment(exp_id, **kwargs) for exp_id in ids]


def write_report(
    path: str | os.PathLike,
    *,
    exp_ids: list[str] | None = None,
    results: list[ExperimentResult] | None = None,
    **kwargs,
) -> Path:
    """Run experiments (or take pre-run results) and write markdown."""
    if results is None:
        results = run_all(exp_ids=exp_ids, **kwargs)
    out = Path(path)
    out.write_text(render_markdown(results))
    return out
