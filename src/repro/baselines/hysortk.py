"""HySortK baseline: the state-of-the-art BSP counter (Li & Guidi 2024).

HySortK improves on PakMan's structure in two ways the paper calls out
(Section III-B):

1. **MPI + OpenMP hybrid parallelism** — fewer, fatter ranks (the
   authors recommend one rank per NUMA domain on AMD; the paper sweeps
   threads-per-rank on Intel and reports the best).  We reproduce this
   by building the cost model with ``cores_per_pe = cores_per_socket``:
   collectives span fewer endpoints (cheaper ``tau log P``) and each
   rank owns a full socket's bandwidth.
2. **Non-blocking collectives** — the exchange of batch *i* overlaps
   the parsing of batch *i+1* (``blocking=False`` in the BSP engine).

Final counting uses multithreaded radix sort, like PakMan*.
"""

from __future__ import annotations

import numpy as np

from ..core.bsp import BspConfig, bsp_count
from ..core.result import KmerCounts
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.stats import RunStats

__all__ = ["hysortk_count", "hysortk_cost_model"]


def hysortk_cost_model(machine: MachineConfig) -> CostModel:
    """Cost model with one *threaded* rank per socket (hybrid
    parallelism; the OpenMP team pays the thread-scaling loss)."""
    return CostModel(machine, cores_per_pe=machine.cores_per_socket, threaded=True)


def hysortk_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    *,
    batch_size: int | None = None,
    canonical: bool = False,
) -> tuple[KmerCounts, RunStats]:
    """HySortK-style count: hybrid ranks + non-blocking collectives.

    When *cost* is a plain :class:`MachineConfig` the recommended
    one-rank-per-socket model is applied automatically.
    """
    if isinstance(cost, MachineConfig):
        cost = hysortk_cost_model(cost)
    res, stats = bsp_count(
        reads,
        k,
        cost,
        BspConfig(
            batch_size=batch_size,
            blocking=False,
            sort="radix",
            canonical=canonical,
        ),
    )
    stats.extra["algorithm"] = "hysortk"
    return res, stats
