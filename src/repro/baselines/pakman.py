"""PakMan and PakMan* baselines (Fig. 6 and the distributed baselines).

PakMan's KC kernel (Ghosh et al., IPDPS 2019) is the paper's MPI-only
baseline: Algorithm 2 with *blocking* Many-To-Many collectives and —
originally — a quicksort-based final count.  The paper strengthens it
by swapping in radix sort, a ~2x improvement it names **PakMan***
(Fig. 6).  Both are thin, explicit configurations of
:func:`repro.core.bsp.bsp_count` so the comparison isolates exactly
what the paper varies.
"""

from __future__ import annotations

import numpy as np

from ..core.bsp import BspConfig, bsp_count
from ..core.result import KmerCounts
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.stats import RunStats

__all__ = ["pakman_count", "pakman_star_count", "DEFAULT_BATCH"]

#: The paper's typical batch size is ~1e9 k-mers; workloads scale it
#: by their size (see repro.bench.workloads.scaled_batch_size).
DEFAULT_BATCH: int = 1_000_000_000


def pakman_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    *,
    batch_size: int | None = None,
    canonical: bool = False,
) -> tuple[KmerCounts, RunStats]:
    """Original PakMan KC kernel: blocking collectives + quicksort."""
    res, stats = bsp_count(
        reads,
        k,
        cost,
        BspConfig(
            batch_size=batch_size,
            blocking=True,
            sort="quicksort",
            canonical=canonical,
        ),
    )
    stats.extra["algorithm"] = "pakman"
    return res, stats


def pakman_star_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    *,
    batch_size: int | None = None,
    canonical: bool = False,
) -> tuple[KmerCounts, RunStats]:
    """PakMan*: the paper's strengthened baseline (radix sort)."""
    res, stats = bsp_count(
        reads,
        k,
        cost,
        BspConfig(
            batch_size=batch_size,
            blocking=True,
            sort="radix",
            canonical=canonical,
        ),
    )
    stats.extra["algorithm"] = "pakman*"
    return res, stats
