"""KMC3-style shared-memory k-mer counter (the Fig. 9 baseline).

KMC3 (Kokot et al. 2017) is the paper's shared-memory baseline: a
two-stage, minimizer-binned, multithreaded-radix-sort counter.  We
re-implement its algorithmic structure:

**Stage 1 (binning)** — reads are parsed into k-mers; each k-mer's
*minimizer* (its lexicographically smallest length-``w`` substring,
computed on the 2-bit encoding) selects one of ``n_bins`` bins.
Minimizer binning keeps adjacent k-mers of a read together, which is
why KMC gets away with many small sorts instead of one big one.

**Stage 2 (counting)** — each bin is radix-sorted and accumulated
independently (multithreaded in the original; our machine model
charges the node's full bandwidth/compute accordingly), then results
concatenate — bins partition k-mer space by minimizer, but a k-mer
maps to exactly one bin, so a final merge-by-key handles bins sharing
boundaries (none, by construction).

The original is a *disk-based out-of-core* tool: stage 1 writes bins
to storage and stage 2 reads them back.  The paper forces in-memory
mode but reports KMC3's time *including I/O* (Section VI).  We model
both: the bin write+read round trip is charged at memory bandwidth
(in-memory mode) and the FASTQ scan is charged at ``disk_bw`` to
mirror the included input I/O.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..runtime.cache import CacheAccounting
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.stats import RunStats
from ..seq.kmers import canonical_kmers, extract_kmers_from_reads, kmer_width_bits
from ..sort.accumulate import accumulate_sorted, merge_count_arrays
from ..core.owner import splitmix64
from ..core.result import KmerCounts

from ..seq.minimizers import minimizers_of_kmers

__all__ = ["Kmc3Config", "kmc3_count", "minimizers"]


@dataclass(frozen=True, slots=True)
class Kmc3Config:
    """KMC3 reproduction tunables."""

    n_bins: int = 512  # KMC3 default bin count
    minimizer_len: int = 9  # KMC3 uses 9-mers as signatures
    canonical: bool = False
    #: FASTQ input scan bandwidth (bytes/s); the paper's KMC3 numbers
    #: include I/O, so we charge the raw input at this rate.
    disk_bw: float = 2.0e9
    #: Raw FASTQ bytes per DNA base (sequence + quality + headers).
    fastq_bytes_per_base: float = 2.1

    def __post_init__(self) -> None:
        if self.n_bins < 1:
            raise ValueError("n_bins must be >= 1")
        if self.minimizer_len < 1:
            raise ValueError("minimizer_len must be >= 1")


def minimizers(kmers: np.ndarray, k: int, w: int) -> np.ndarray:
    """Minimizer of each packed k-mer (shared implementation in
    :mod:`repro.seq.minimizers`; re-exported here because minimizer
    binning is KMC3's signature design)."""
    return minimizers_of_kmers(kmers, k, w)


def kmc3_count(
    reads: np.ndarray | list,
    k: int,
    machine: MachineConfig,
    config: Kmc3Config | None = None,
) -> tuple[KmerCounts, RunStats]:
    """Count k-mers KMC3-style on one node of *machine*.

    Returns the counts and a :class:`RunStats` whose single PE
    represents the whole node (KMC3 is a shared-memory tool).
    """
    config = config or Kmc3Config()
    host_t0 = time.perf_counter()
    cost = CostModel(machine.with_nodes(1), cores_per_pe=machine.cores_per_node,
                     threaded=True)
    stats = RunStats(n_pes=1)
    pe = stats.pe[0]
    cache = CacheAccounting(machine.cache_bytes, machine.line_bytes)

    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        total_bases = int(reads.size)
    else:
        total_bases = sum(int(np.asarray(r).size) for r in reads)

    # Input I/O (KMC3's reported time includes it).
    fastq_bytes = int(total_bases * config.fastq_bytes_per_base)
    pe.advance(fastq_bytes / config.disk_bw)
    stats.extra["io_time"] = fastq_bytes / config.disk_bw

    # Stage 1: parse + minimizer binning + bin write.
    kmers = extract_kmers_from_reads(reads, k)
    if config.canonical and kmers.size:
        kmers = canonical_kmers(kmers, k)
    pe.kmers_generated = int(kmers.size)
    w = min(config.minimizer_len, k)
    mins = minimizers(kmers, k, w) if kmers.size else kmers
    bins = (splitmix64(mins) % np.uint64(config.n_bins)).astype(np.int64)
    cost.charge_compute(pe, kmers.size * (k - w + 2))  # rolling minimizer scan
    cost.charge_mem(pe, total_bases)  # read scan
    cost.charge_mem(pe, 2 * int(kmers.nbytes))  # bin write + read-back
    cache.stream(total_bases)
    cache.stream(2 * int(kmers.nbytes))
    pe.cache_misses_p1 += cache.reset()

    # Stage 2: per-bin radix sort + accumulate.
    order = np.argsort(bins, kind="stable")
    sorted_by_bin = kmers[order]
    bin_counts = np.bincount(bins, minlength=config.n_bins)
    bounds = np.zeros(config.n_bins + 1, dtype=np.int64)
    np.cumsum(bin_counts, out=bounds[1:])
    passes = max(1, kmer_width_bits(k) // 8)
    results = []
    for bi in np.flatnonzero(bin_counts):
        chunk = sorted_by_bin[bounds[bi] : bounds[bi + 1]]
        cost.charge_compute(pe, chunk.size * passes)
        cost.charge_mem(pe, 2 * chunk.nbytes * passes)
        cache.stream(2 * chunk.nbytes * passes)
        results.append(accumulate_sorted(np.sort(chunk)))
    pe.cache_misses_p2 += cache.reset()

    uniq, counts = merge_count_arrays(results)
    stats.sim_time = pe.clock
    stats.phase1_time = stats.extra["io_time"]
    stats.phase2_time = stats.sim_time - stats.phase1_time
    stats.host_seconds = time.perf_counter() - host_t0
    stats.extra["n_bins_used"] = int(np.count_nonzero(bin_counts))
    return KmerCounts(k, uniq, counts), stats
