"""Baseline counters the paper compares against (Section VI-A).

* :mod:`repro.baselines.kmc3` — KMC3-style shared-memory counter;
* :mod:`repro.baselines.pakman` — PakMan (quicksort) and PakMan*
  (radix) blocking-BSP kernels;
* :mod:`repro.baselines.hysortk` — HySortK-style non-blocking hybrid
  BSP counter.
"""

from .hysortk import hysortk_cost_model, hysortk_count
from .kmc3 import Kmc3Config, kmc3_count, minimizers
from .pakman import pakman_count, pakman_star_count

__all__ = [
    "kmc3_count",
    "Kmc3Config",
    "minimizers",
    "pakman_count",
    "pakman_star_count",
    "hysortk_count",
    "hysortk_cost_model",
]
