"""Grid expansion + execution: spec in, versioned result envelope out.

For each grid cell the runner derives a collision-free cell seed from
the spec's root seed (:func:`repro.core.seeds.spawn_seeds` — never
``seed + i``), spawns one child seed per warmup/repetition, runs the
target, and keeps per-repetition samples of every metric (plus the
runner's own wall-clock ``elapsed_s``).  Warmup repetitions execute
identically but their samples are discarded.

The envelope is self-describing: it embeds the spec, the environment
fingerprint, metric directions, raw samples, and bootstrap CIs — the
:mod:`repro.xp.ledger` appends it verbatim and the
:mod:`repro.xp.gate` needs nothing else to re-judge it later.
"""

from __future__ import annotations

import time

from ..core.seeds import spawn_seeds
from .env import fingerprint
from .ledger import LEDGER_VERSION
from .spec import ExperimentSpec
from .stats import bootstrap_ci
from .targets import get_target

__all__ = ["run_spec"]


def _summarize(samples: list[float], seed: int) -> dict:
    import numpy as np

    x = np.asarray(samples, dtype=float)
    lo, hi = bootstrap_ci(x, stat="mean", seed=seed)
    return {
        "n": int(x.size),
        "mean": float(x.mean()),
        "median": float(np.median(x)),
        "min": float(x.min()),
        "max": float(x.max()),
        "ci95": [lo, hi],
    }


def run_spec(spec: ExperimentSpec, *, progress=None) -> dict:
    """Execute every cell of *spec* and return the result envelope.

    *progress* (optional) is called with one line per cell/repetition
    milestone — the CLI passes ``print``.
    """
    target = get_target(spec.target)
    say = progress or (lambda msg: None)
    cells = spec.cells()
    policy = spec.policy
    cell_seeds = spawn_seeds(spec.seed, len(cells))

    cell_docs = []
    ok = True
    for (cid, params), cell_seed in zip(cells, cell_seeds):
        rep_seeds = spawn_seeds(cell_seed, policy.warmup + policy.repetitions)
        metrics: dict[str, list[float]] = {}
        checks: dict[str, bool] = {}
        kept_seeds = []
        for rep, rep_seed in enumerate(rep_seeds):
            warm = rep < policy.warmup
            t0 = time.perf_counter()
            outcome = target.run({**params, "seed": rep_seed})
            elapsed = time.perf_counter() - t0
            if warm:
                continue
            kept_seeds.append(rep_seed)
            samples = {"elapsed_s": elapsed, **outcome.metrics}
            for name, value in samples.items():
                metrics.setdefault(name, []).append(float(value))
            for name, value in outcome.checks.items():
                checks[name] = checks.get(name, True) and bool(value)
        cell_ok = all(checks.values())
        ok = ok and cell_ok
        summary = {name: _summarize(vals, cell_seed)
                   for name, vals in metrics.items()}
        say(f"# cell [{cid or 'default'}]: "
            f"{policy.repetitions} reps (+{policy.warmup} warmup), "
            f"mean elapsed {summary['elapsed_s']['mean']:.3f}s, "
            f"checks {'ok' if cell_ok else 'FAILED'}")
        cell_docs.append({
            "cell_id": cid,
            "params": params,
            "seeds": kept_seeds,
            "metrics": metrics,
            "checks": checks,
            "summary": summary,
        })

    directions = dict(target.directions)
    directions.setdefault("elapsed_s", "lower")
    return {
        "version": LEDGER_VERSION,
        "kind": "xp-run",
        "experiment": spec.experiment,
        "target": spec.target,
        "spec": spec.to_doc(),
        "env": fingerprint(),
        "directions": directions,
        "cells": cell_docs,
        "ok": ok,
    }
