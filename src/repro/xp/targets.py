"""Runnable targets a declarative spec can name.

A target is a named callable taking one flat ``params`` dict (the
spec's fixed params + the cell's swept params + the repetition's
``seed``) and returning a :class:`TargetOutcome`: numeric *metrics*
(each with a declared better-direction, so the gate knows which way
"worse" points) and boolean *checks* (correctness claims — a run whose
checks fail is recorded but never usable as a baseline).

The three extension benches ported here (serve, lsm, ooc) reuse the
exact production entry points their ``benchmarks/bench_extension_*``
files drive, so a declarative run measures the same code path as the
hand-rolled bench it replaces.
"""

from __future__ import annotations

import functools
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping

__all__ = ["TargetOutcome", "XpTarget", "TARGETS", "get_target",
           "list_targets"]


@dataclass(frozen=True)
class TargetOutcome:
    """What one repetition of a target measured."""

    metrics: dict = field(default_factory=dict)   # name -> float
    checks: dict = field(default_factory=dict)    # name -> bool


@dataclass(frozen=True)
class XpTarget:
    """A named, runnable experiment target."""

    name: str
    fn: Callable[[dict], TargetOutcome]
    directions: Mapping[str, str]   # metric -> 'lower' | 'higher'
    description: str

    def run(self, params: dict) -> TargetOutcome:
        return self.fn(params)


def _params(params: dict, defaults: dict) -> dict:
    """Merge spec params over target defaults; reject unknown keys."""
    unknown = set(params) - set(defaults) - {"seed"}
    if unknown:
        raise ValueError(
            f"unknown parameters {sorted(unknown)}; "
            f"this target accepts {sorted(defaults)} (+ seed)")
    merged = dict(defaults)
    merged.update(params)
    return merged


@functools.lru_cache(maxsize=8)
def _counted(dataset: str, k: int, budget: int):
    """Workload + oracle counts, cached across repetitions."""
    from ..bench.workloads import build_workload
    from ..core.serial import serial_count

    w = build_workload(dataset, k, budget_kmers=budget)
    return w, serial_count(w.reads, k)


# ---------------------------------------------------------------------------
# serve: the sharded/batched/cached read path vs the naive scalar loop
# ---------------------------------------------------------------------------

_SERVE_DEFAULTS = {
    "dataset": "synthetic-24", "k": 21, "budget": 40_000,
    "n_queries": 8_000, "n_shards": 8, "zipf_s": 1.1,
    "miss_fraction": 0.02, "cache_capacity": 4096, "cache_threshold": 2,
    "batch_size": 256, "batch_window": 5e-4, "group_size": 256,
    "concurrency": 8,
}


def _serve_bench(params: dict) -> TargetOutcome:
    from ..serve import EngineConfig, run_serve_bench

    p = _params(params, _SERVE_DEFAULTS)
    _, counts = _counted(p["dataset"], p["k"], p["budget"])
    result = run_serve_bench(
        counts,
        n_queries=p["n_queries"],
        n_shards=p["n_shards"],
        zipf_s=p["zipf_s"],
        seed=p.get("seed", 0),
        miss_fraction=p["miss_fraction"],
        config=EngineConfig(batch_size=p["batch_size"],
                            batch_window=p["batch_window"]),
        cache_capacity=p["cache_capacity"],
        cache_threshold=p["cache_threshold"],
        group_size=p["group_size"],
        concurrency=p["concurrency"],
    )
    return TargetOutcome(
        metrics={
            "speedup": result.speedup,
            "served_qps": result.served.throughput_qps,
            "naive_qps": result.naive.throughput_qps,
            "cache_hit_rate": result.served.cache_hit_rate,
            "served_p99_ms": result.served.snapshot()["latency_ms"]["p99"],
        },
        checks={"answers_match": result.answers_match},
    )


# ---------------------------------------------------------------------------
# lsm: durable ingest, bounded read amplification, incremental delta
# ---------------------------------------------------------------------------

_LSM_DEFAULTS = {
    "dataset": "synthetic-24", "k": 21, "budget": 40_000,
    "batch_records": 50, "memtable_kib": 4, "max_runs": 4, "fan_in": 4,
    "delta_fraction": 0.1,
}


def _lsm_bench(params: dict) -> TargetOutcome:
    from ..core.serial import serial_count
    from ..lsm import LsmConfig, LsmStore

    p = _params(params, _LSM_DEFAULTS)
    w, oracle = _counted(p["dataset"], p["k"], p["budget"])
    reads, k = w.reads, p["k"]
    step = p["batch_records"]
    batches = [reads[i:i + step] for i in range(0, reads.shape[0], step)]
    cut = int(reads.shape[0] * (1 - p["delta_fraction"])) or 1
    base = [reads[i:min(i + step, cut)] for i in range(0, cut, step)]
    delta = [reads[cut:]]
    config = LsmConfig(memtable_bytes=p["memtable_kib"] << 10,
                       max_runs=p["max_runs"], fan_in=p["fan_in"],
                       auto_compact=False)

    with tempfile.TemporaryDirectory(prefix="xp-lsm-") as tmp:
        tmp = Path(tmp)
        store = LsmStore(tmp / "db", k, config=config)
        t0 = time.perf_counter()
        n = 0
        for batch in batches:
            n += store.ingest(batch)
        store.flush()
        t_ingest = time.perf_counter() - t0
        sample = store.snapshot().kmers[:2048]
        store.stats.point_reads = store.stats.run_probes = 0
        store.get(sample)
        amp_before = store.stats.read_amplification
        store.compact()
        store.stats.point_reads = store.stats.run_probes = 0
        store.get(sample)
        amp_after = store.stats.read_amplification
        snapshot_exact = store.snapshot() == oracle
        store.close()

        inc = LsmStore(tmp / "inc", k,
                       config=LsmConfig(memtable_bytes=8 << 20,
                                        max_runs=p["max_runs"],
                                        fan_in=p["fan_in"],
                                        auto_compact=False))
        for batch in base:
            inc.ingest(batch)
        inc.flush()
        inc.compact()
        for batch in delta:
            inc.ingest(batch)
        incremental_exact = inc.snapshot() == serial_count(reads, k)
        t_incremental = t_rebuild = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for batch in delta:
                inc.ingest(batch)
            t_incremental = min(t_incremental, time.perf_counter() - t0)
            t0 = time.perf_counter()
            serial_count(reads, k)
            t_rebuild = min(t_rebuild, time.perf_counter() - t0)
        inc.close()

    return TargetOutcome(
        metrics={
            "ingest_records_per_s": n / t_ingest,
            "amp_before_compaction": amp_before,
            "amp_after_compaction": amp_after,
            "incremental_speedup": t_rebuild / t_incremental,
            "incremental_seconds": t_incremental,
        },
        checks={
            "snapshot_exact": bool(snapshot_exact),
            "incremental_exact": bool(incremental_exact),
            "amp_bounded": amp_after <= p["fan_in"],
        },
    )


# ---------------------------------------------------------------------------
# ooc: two-pass out-of-core count under a hard memory ceiling
# ---------------------------------------------------------------------------

_OOC_DEFAULTS = {
    "dataset": "synthetic-24", "k": 21, "budget": 30_000,
    "n_bins": 32, "overcommit": 16,
}


def _ooc_bench(params: dict) -> TargetOutcome:
    from ..core.serial import serial_count
    from ..ooc import OocStats, ooc_count

    p = _params(params, _OOC_DEFAULTS)
    w, _ = _counted(p["dataset"], p["k"], p["budget"])
    k = p["k"]
    reads = [w.reads[i] for i in range(w.reads.shape[0])]
    dataset_bytes = sum(r.size for r in reads)
    ceiling = max(4096, dataset_bytes // p["overcommit"])

    t0 = time.perf_counter()
    oracle = serial_count(reads, k)
    t_memory = time.perf_counter() - t0

    stats = OocStats()
    with tempfile.TemporaryDirectory(prefix="xp-ooc-") as tmp:
        t0 = time.perf_counter()
        counts = ooc_count(reads, k, n_bins=p["n_bins"],
                           memory_bytes=ceiling,
                           workdir=Path(tmp) / "bins", stats=stats)
        t_ooc = time.perf_counter() - t0

    return TargetOutcome(
        metrics={
            "ooc_seconds": t_ooc,
            "in_memory_seconds": t_memory,
            "slowdown_vs_memory": t_ooc / t_memory,
            "bytes_spilled": float(stats.bytes_spilled),
            "overcommit": dataset_bytes / ceiling,
        },
        checks={
            "counts_exact": counts == oracle,
            "spilled": stats.bytes_spilled > 0,
            "reread_matches_spill":
                stats.bytes_reread == stats.bytes_spilled,
        },
    )


# ---------------------------------------------------------------------------
# count: the vectorised super-k-mer fast path vs the scalar streaming
# counter — the headline records/s trajectory of the repo
# ---------------------------------------------------------------------------

_COUNT_DEFAULTS = {
    "dataset": "synthetic-24", "k": 21, "w": 7, "budget": 120_000,
    "batch_records": 100_000, "canonical": 0,
}


@functools.lru_cache(maxsize=8)
def _count_records(dataset: str, k: int, budget: int):
    """Workload decoded to SeqRecords (untimed setup), cached."""
    from ..seq.encoding import decode_codes
    from ..seq.fastx import SeqRecord

    w, oracle = _counted(dataset, k, budget)
    records = [SeqRecord(name=f"r{i}", seq=decode_codes(w.reads[i]))
               for i in range(w.reads.shape[0])]
    return records, oracle


def _count_bench(params: dict) -> TargetOutcome:
    from ..apps.streaming import count_records_streaming
    from ..core.serial import serial_count
    from ..seq.superkmers import split_superkmers_batch

    p = _params(params, _COUNT_DEFAULTS)
    k, canonical = p["k"], bool(p["canonical"])
    records, oracle = _count_records(p["dataset"], k, p["budget"])
    if canonical:
        from ..bench.workloads import build_workload
        oracle = serial_count(
            build_workload(p["dataset"], k, budget_kmers=p["budget"]).reads,
            k, canonical=True)

    t0 = time.perf_counter()
    scalar = count_records_streaming(
        records, k, batch_records=p["batch_records"],
        canonical=canonical, fast=False)
    t_scalar = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = count_records_streaming(
        records, k, batch_records=p["batch_records"],
        canonical=canonical, fast=True, w=p["w"])
    t_fast = time.perf_counter() - t0

    batch = split_superkmers_batch(
        [r for r in _counted(p["dataset"], k, p["budget"])[0].reads],
        k, min(k, p["w"]))
    wire = batch.wire_bytes()
    compression = (8.0 * batch.n_kmers / wire) if wire else 0.0

    n = len(records)
    return TargetOutcome(
        metrics={
            "fast_records_per_s": n / t_fast,
            "scalar_records_per_s": n / t_scalar,
            "speedup": t_scalar / t_fast,
            "superkmer_compression": compression,
        },
        checks={
            "fast_equals_scalar": fast == scalar,
            "fast_equals_serial_oracle": fast == oracle,
        },
    )


# ---------------------------------------------------------------------------
# chaos: fault-injected distributed counting stays exact (declarative
# port of the hand-rolled chaos sweep)
# ---------------------------------------------------------------------------

_CHAOS_DEFAULTS = {
    "dataset": "synthetic-20", "k": 15, "budget": 30_000,
    "nodes": 8, "n_plans": 3, "protocol": "2D",
    "drop_prob": 0.02, "duplicate_prob": 0.02, "corrupt_prob": 0.01,
    "crash_pe": 3,
}


def _chaos_sweep(params: dict) -> TargetOutcome:
    from ..core.dakc import DakcConfig
    from ..fault import FaultPlan
    from ..fault.chaos import derive_plan_seeds, run_chaos
    from ..runtime.cost import CostModel
    from ..runtime.machine import phoenix_intel

    p = _params(params, _CHAOS_DEFAULTS)
    w, _ = _counted(p["dataset"], p["k"], p["budget"])
    cost = lambda: CostModel(phoenix_intel(p["nodes"]), cores_per_pe=24)  # noqa: E731
    config = DakcConfig(protocol=p["protocol"])

    benign = run_chaos(w.reads, p["k"], cost(), FaultPlan(seed=p.get("seed", 0)),
                       config=config, protect=False)
    protected_clean = run_chaos(w.reads, p["k"], cost(),
                                FaultPlan(seed=p.get("seed", 0)),
                                config=config, protect=True)
    plans = [
        FaultPlan(seed=s, drop_prob=p["drop_prob"],
                  duplicate_prob=p["duplicate_prob"],
                  corrupt_prob=p["corrupt_prob"],
                  crash_pes=(p["crash_pe"],))
        for s in derive_plan_seeds(p.get("seed", 0), p["n_plans"])
    ]
    hostile = [run_chaos(w.reads, p["k"], cost(), plan,
                         config=config, protect=True)
               for plan in plans]

    overhead = (protected_clean.sim_time / benign.sim_time
                if benign.sim_time else float("inf"))
    return TargetOutcome(
        metrics={
            "fault_free_overhead": overhead,
            "retransmits": float(sum(o.retransmits for o in hostile)),
            "mean_recovery_time": (
                sum(o.recovery_time for o in hostile) / len(hostile)
                if hostile else 0.0),
        },
        checks={
            "benign_exact": benign.ok,
            "protected_clean_exact": protected_clean.ok,
            "hostile_all_exact": all(o.ok for o in hostile),
        },
    )


# ---------------------------------------------------------------------------
# dst: deterministic-simulation fuzz campaign (declarative port of the
# hand-rolled dst sweep)
# ---------------------------------------------------------------------------

_DST_DEFAULTS = {"budget": 60, "n_seeds": 2}


def _dst_sweep(params: dict) -> TargetOutcome:
    from ..core.seeds import spawn_seeds
    from ..dst.runner import dst_sweep

    p = _params(params, _DST_DEFAULTS)
    seeds = spawn_seeds(p.get("seed", 0), p["n_seeds"])
    t0 = time.perf_counter()
    reports = dst_sweep(seeds, budget=p["budget"], shrink=False)
    elapsed = time.perf_counter() - t0
    schedules = sum(r.schedules_run for r in reports)
    return TargetOutcome(
        metrics={
            "schedules_per_s": schedules / elapsed if elapsed else 0.0,
            "schedules_run": float(schedules),
            "violations": float(sum(len(r.violations) for r in reports)),
        },
        checks={
            "no_violations": all(not r.violations for r in reports),
            "deterministic": all(r.determinism_ok for r in reports),
        },
    )


# ---------------------------------------------------------------------------
# paper: any experiment of the fig/table registry, timed end to end
# ---------------------------------------------------------------------------

_PAPER_DEFAULTS = {"exp_id": "table2", "budget": 0, "exp_seed": 0}


def _paper_experiment(params: dict) -> TargetOutcome:
    from ..bench.experiments import run_experiment

    p = _params(params, _PAPER_DEFAULTS)
    kwargs = {"seed": p["exp_seed"]}
    if p["budget"]:
        kwargs["budget"] = p["budget"]
    result = run_experiment(p["exp_id"], **kwargs)
    return TargetOutcome(
        metrics={"n_tables": float(len(result.tables))},
        checks={"completed": bool(result.tables)},
    )


# ---------------------------------------------------------------------------
# synthetic: a free, deterministic target for smoke tests and CI
# ---------------------------------------------------------------------------

_SYNTH_DEFAULTS = {"base": 1.0, "scale": 1.0, "noise": 0.02}


def _synthetic_latency(params: dict) -> TargetOutcome:
    """A pretend latency: base*scale with seeded lognormal-ish noise.

    Pure function of (params, seed) — identical spec runs reproduce
    identical samples, which is what makes the gate's "re-run of the
    baseline passes" guarantee testable without wall-clock luck.
    """
    import numpy as np

    p = _params(params, _SYNTH_DEFAULTS)
    rng = np.random.default_rng(p.get("seed", 0))
    value = p["base"] * p["scale"] * float(
        np.exp(p["noise"] * rng.standard_normal()))
    return TargetOutcome(metrics={"value": value}, checks={})


TARGETS: dict[str, XpTarget] = {
    t.name: t
    for t in (
        XpTarget(
            "serve-bench", _serve_bench,
            {"speedup": "higher", "served_qps": "higher",
             "naive_qps": "higher", "cache_hit_rate": "higher",
             "served_p99_ms": "lower"},
            "sharded/batched/cached read path vs naive scalar serving",
        ),
        XpTarget(
            "lsm-bench", _lsm_bench,
            {"ingest_records_per_s": "higher",
             "amp_before_compaction": "lower",
             "amp_after_compaction": "lower",
             "incremental_speedup": "higher",
             "incremental_seconds": "lower"},
            "LSM store: durable ingest, read amplification, 10% delta "
            "vs full recount",
        ),
        XpTarget(
            "ooc-bench", _ooc_bench,
            {"ooc_seconds": "lower", "in_memory_seconds": "lower",
             "slowdown_vs_memory": "lower", "bytes_spilled": "lower",
             "overcommit": "higher"},
            "two-pass out-of-core count under a hard memory ceiling",
        ),
        XpTarget(
            "count-bench", _count_bench,
            {"fast_records_per_s": "higher",
             "scalar_records_per_s": "higher",
             "speedup": "higher",
             "superkmer_compression": "higher"},
            "vectorised super-k-mer fast path vs the scalar streaming "
            "counter, bit-identical counts",
        ),
        XpTarget(
            "chaos-sweep", _chaos_sweep,
            {"fault_free_overhead": "lower", "retransmits": "lower",
             "mean_recovery_time": "lower"},
            "fault-injected distributed counting stays exact under "
            "drop/dup/corrupt/crash plans",
        ),
        XpTarget(
            "dst-sweep", _dst_sweep,
            {"schedules_per_s": "higher", "schedules_run": "higher",
             "violations": "lower"},
            "deterministic-simulation fuzz campaign over the invariant "
            "registry",
        ),
        XpTarget(
            "paper-experiment", _paper_experiment,
            {"n_tables": "higher"},
            "any fig/table of the paper registry, timed end to end",
        ),
        XpTarget(
            "synthetic-latency", _synthetic_latency,
            {"value": "lower"},
            "deterministic pseudo-latency for smoke tests and CI",
        ),
    )
}


def get_target(name: str) -> XpTarget:
    try:
        return TARGETS[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; known: {', '.join(sorted(TARGETS))}"
        ) from None


def list_targets() -> list[XpTarget]:
    return [TARGETS[name] for name in sorted(TARGETS)]
