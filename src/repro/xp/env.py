"""Environment fingerprinting for result envelopes.

Perf numbers without provenance are rumors: every envelope the runner
or the legacy importer writes carries the git SHA (+dirty flag), the
interpreter and numpy/scipy versions, the platform, and the CPU count,
so a ledger diff can always answer "same code? same machine?".
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time

__all__ = ["fingerprint", "git_sha"]


def git_sha(cwd: str | None = None) -> tuple[str, bool]:
    """(HEAD SHA, dirty?) of the repo at *cwd*, or ('unknown', False)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=cwd, capture_output=True,
            text=True, timeout=10, check=True,
        ).stdout.strip()
        return sha, bool(status)
    except (OSError, subprocess.SubprocessError):
        return "unknown", False


def fingerprint(cwd: str | None = None) -> dict:
    """The environment fingerprint stamped into every result artifact."""
    import numpy

    try:
        import scipy
        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        scipy_version = None
    sha, dirty = git_sha(cwd)
    return {
        "git_sha": sha,
        "git_dirty": dirty,
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
