"""Human-readable rendering of envelopes, trajectories, and verdicts."""

from __future__ import annotations

from ..bench.tables import format_table
from .gate import GateResult
from .ledger import Ledger

__all__ = ["format_envelope", "format_gate", "format_trajectory"]


def _fmt(value: float) -> str:
    if value != value:
        return "-"
    if abs(value) >= 1000 or (0 < abs(value) < 0.01):
        return f"{value:.3g}"
    return f"{value:.3f}"


def format_envelope(envelope: dict) -> str:
    """One run as an aligned table: cell x metric with mean and CI."""
    env = envelope.get("env", {})
    head = (
        f"### {envelope['experiment']} "
        f"(target {envelope['target']}, "
        f"git {str(env.get('git_sha', 'unknown'))[:8]}"
        f"{'+dirty' if env.get('git_dirty') else ''}, "
        f"{env.get('timestamp', '?')})\n"
    )
    rows = []
    for cell in envelope["cells"]:
        for metric in sorted(cell["summary"]):
            s = cell["summary"][metric]
            lo, hi = s["ci95"]
            rows.append({
                "cell": cell["cell_id"] or "default",
                "metric": metric,
                "n": s["n"],
                "mean": _fmt(s["mean"]),
                "ci95": f"[{_fmt(lo)}, {_fmt(hi)}]",
                "median": _fmt(s["median"]),
            })
        for name, passed in sorted(cell["checks"].items()):
            rows.append({
                "cell": cell["cell_id"] or "default",
                "metric": f"check:{name}",
                "n": "",
                "mean": "ok" if passed else "FAILED",
                "ci95": "",
                "median": "",
            })
    status = "ok" if envelope.get("ok", True) else "CHECKS FAILED"
    return head + format_table(rows) + f"status: {status}\n"


def format_gate(result: GateResult) -> str:
    """The gate verdict, regressions first."""
    lines = [
        f"### gate: {result.experiment} "
        f"(baseline {result.baseline_sha[:8]} -> "
        f"current {result.current_sha[:8]})",
        f"# compared {len(result.comparisons)} cell-metrics; "
        f"{len(result.regressions)} regression(s), "
        f"{len(result.improvements)} improvement(s)",
    ]
    for label, items in (("REGRESSED", result.regressions),
                         ("improved", result.improvements)):
        for cell, metric, cmp in items:
            lines.append(
                f"  {label} [{cell or 'default'}] {metric}: "
                f"shift {cmp.shift:+.1%} ({cmp.direction} is better); "
                f"{cmp.reason}")
    for check in result.failed_checks:
        lines.append(f"  CHECK FAILED {check}")
    if result.missing_cells:
        lines.append(
            f"# new cells with no baseline (not gated): "
            f"{', '.join(result.missing_cells)}")
    lines.append(f"verdict: {'PASS' if result.ok else 'FAIL'}")
    return "\n".join(lines) + "\n"


def format_trajectory(ledger: Ledger, experiment: str) -> str:
    """The cross-PR history of one experiment, oldest first."""
    entries = ledger.entries(experiment)
    if not entries:
        return f"# no ledger entries for {experiment!r}\n"
    rows = []
    for path in entries:
        doc = ledger.load(path)
        env = doc.get("env", {})
        for cell in doc["cells"]:
            for metric in sorted(cell["summary"]):
                s = cell["summary"][metric]
                rows.append({
                    "entry": path.stem,
                    "git": str(env.get("git_sha", "unknown"))[:8],
                    "cell": cell["cell_id"] or "default",
                    "metric": metric,
                    "mean": _fmt(s["mean"]),
                    "n": s["n"],
                })
    return format_table(rows, title=f"ledger trajectory: {experiment}")
