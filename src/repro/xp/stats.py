"""Statistics for perf claims: CIs, shift detection, effect sizes.

The discipline (after the mubench replication's statistical-analysis
notes): a perf claim is a *distribution* comparison, never a
point-estimate ratio.  Three tools compose:

* :func:`bootstrap_ci` — seeded percentile-bootstrap confidence
  interval for the mean or median of a sample;
* :func:`mann_whitney_u` — the nonparametric two-sided rank test for
  a location shift (timings are skewed; no normality assumption);
* :func:`cliffs_delta` / :func:`relative_shift` — effect sizes, so a
  *significant but tiny* shift cannot fail a build: the gate requires
  BOTH p < alpha AND |relative median shift| >= min_effect.

With fewer than ``min_samples`` repetitions per side (e.g. legacy
single-shot imports) there is no power for a rank test, so
:func:`compare_samples` falls back to a pure effect-size rule with a
much wider threshold (``small_sample_effect``) and reports
``p_value=None``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "bootstrap_ci",
    "mann_whitney_u",
    "cliffs_delta",
    "relative_shift",
    "Comparison",
    "compare_samples",
]

_STATS = {"mean": np.mean, "median": np.median}


def bootstrap_ci(
    samples,
    *,
    stat: str = "mean",
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: int = 0,
) -> tuple[float, float]:
    """Seeded percentile-bootstrap (1-alpha) CI for mean or median."""
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        raise ValueError("bootstrap_ci needs at least one sample")
    if stat not in _STATS:
        raise ValueError(f"unknown stat {stat!r}; pick from {sorted(_STATS)}")
    fn = _STATS[stat]
    if x.size == 1:
        v = float(x[0])
        return v, v
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(n_boot, x.size))
    boots = fn(x[idx], axis=1)
    lo, hi = np.quantile(boots, [alpha / 2, 1 - alpha / 2])
    return float(lo), float(hi)


def mann_whitney_u(a, b) -> tuple[float, float]:
    """Two-sided Mann-Whitney U: (U statistic of *a*, p-value).

    Degenerate inputs (all values identical across both samples) have
    no evidence of a shift and return p = 1.0 instead of scipy's NaN.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size == 0 or b.size == 0:
        raise ValueError("mann_whitney_u needs non-empty samples")
    if np.ptp(np.concatenate([a, b])) == 0:
        return a.size * b.size / 2.0, 1.0
    from scipy.stats import mannwhitneyu

    res = mannwhitneyu(a, b, alternative="two-sided")
    return float(res.statistic), float(res.pvalue)


def cliffs_delta(a, b) -> float:
    """Cliff's delta in [-1, 1]: P(b > a) - P(b < a) over all pairs."""
    a = np.asarray(a, dtype=float)[:, None]
    b = np.asarray(b, dtype=float)[None, :]
    if a.size == 0 or b.size == 0:
        raise ValueError("cliffs_delta needs non-empty samples")
    gt = np.count_nonzero(b > a)
    lt = np.count_nonzero(b < a)
    return float((gt - lt) / (a.size * b.size))


def relative_shift(baseline, current) -> float:
    """(median(current) - median(baseline)) / |median(baseline)|."""
    mb = float(np.median(np.asarray(baseline, dtype=float)))
    mc = float(np.median(np.asarray(current, dtype=float)))
    denom = abs(mb)
    if denom == 0:
        denom = max(abs(mc), np.finfo(float).eps)
    return (mc - mb) / denom


@dataclass(frozen=True)
class Comparison:
    """Verdict of one baseline-vs-current sample comparison."""

    direction: str            # 'lower' or 'higher' is better
    n_baseline: int
    n_current: int
    shift: float              # relative median shift, signed
    p_value: float | None     # None when either side is too small to test
    delta: float              # Cliff's delta
    regressed: bool
    improved: bool
    reason: str

    def to_doc(self) -> dict:
        return {
            "direction": self.direction,
            "n_baseline": self.n_baseline,
            "n_current": self.n_current,
            "shift": self.shift,
            "p_value": self.p_value,
            "delta": self.delta,
            "regressed": self.regressed,
            "improved": self.improved,
            "reason": self.reason,
        }


def compare_samples(
    baseline,
    current,
    *,
    direction: str = "lower",
    alpha: float = 0.01,
    min_effect: float = 0.10,
    min_samples: int = 3,
    small_sample_effect: float = 0.50,
) -> Comparison:
    """Decide regressed/improved/unchanged for one metric.

    A verdict fires only when the shift is *both* statistically
    significant (Mann-Whitney p < *alpha*) *and* practically large
    (|relative median shift| >= *min_effect* in the relevant
    direction).  Below *min_samples* per side the rank test has no
    power, so only a shift beyond *small_sample_effect* fires.
    """
    if direction not in ("lower", "higher"):
        raise ValueError(f"direction must be 'lower' or 'higher', "
                         f"got {direction!r}")
    a = np.asarray(baseline, dtype=float)
    b = np.asarray(current, dtype=float)
    shift = relative_shift(a, b)
    delta = cliffs_delta(a, b)
    # A positive shift means current is larger; whether that is bad
    # depends on the metric's direction.
    bad = shift > 0 if direction == "lower" else shift < 0
    magnitude = abs(shift)

    if min(a.size, b.size) < min_samples:
        fired = magnitude >= max(min_effect, small_sample_effect)
        reason = (
            f"small-sample fallback (n={a.size} vs {b.size}): "
            f"|shift| {magnitude:.1%} vs threshold "
            f"{max(min_effect, small_sample_effect):.0%}"
        )
        return Comparison(direction, a.size, b.size, shift, None, delta,
                          regressed=fired and bad,
                          improved=fired and not bad and magnitude > 0,
                          reason=reason)

    _, p = mann_whitney_u(a, b)
    significant = p < alpha and magnitude >= min_effect
    reason = (f"p={p:.4g} (alpha={alpha}), shift={shift:+.1%} "
              f"(min effect {min_effect:.0%}), delta={delta:+.2f}")
    return Comparison(direction, a.size, b.size, shift, p, delta,
                      regressed=significant and bad,
                      improved=significant and not bad,
                      reason=reason)
