"""The cross-PR benchmark ledger: append-only, versioned, validated.

Layout (default root ``benchmarks/results/ledger/``)::

    ledger/
      <experiment-id>/
        000001-3fb30b8a.json     # <seq>-<git sha8>.json, one envelope
        000002-5b1a6d92.json

Entries are never rewritten; the sequence number gives a total order
within one experiment and the SHA ties each entry to the code that
produced it.  :func:`validate_envelope` is the single loader every
consumer (gate, report, trajectory) goes through, and
:func:`legacy_envelope` funnels the six historical, mutually
incompatible ``BENCH_*.json`` shapes into that same schema (as
single-sample entries), so the pre-ledger record stays comparable.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .env import fingerprint

__all__ = [
    "LEDGER_VERSION",
    "DEFAULT_LEDGER_DIR",
    "Ledger",
    "validate_envelope",
    "legacy_envelope",
    "import_legacy",
]

#: Bump when the envelope schema changes incompatibly.
LEDGER_VERSION = 1

#: Where the ledger lives relative to the repo root.
DEFAULT_LEDGER_DIR = Path("benchmarks") / "results" / "ledger"

_ENTRY_RE = re.compile(r"^(\d{6})-([0-9a-f]{8}|unknown)\.json$")
_DIRECTIONS = ("lower", "higher")


def validate_envelope(doc: dict) -> dict:
    """Validate one result envelope; returns it or raises ValueError."""
    if not isinstance(doc, dict):
        raise ValueError(f"envelope must be an object, got {type(doc)}")
    version = doc.get("version")
    if version != LEDGER_VERSION:
        raise ValueError(
            f"unsupported envelope version {version!r} "
            f"(this build reads version {LEDGER_VERSION})")
    for key in ("kind", "experiment", "target", "env", "directions",
                "cells"):
        if key not in doc:
            raise ValueError(f"envelope missing required key {key!r}")
    if not isinstance(doc["cells"], list) or not doc["cells"]:
        raise ValueError("envelope has no cells")
    for d in doc["directions"].values():
        if d not in _DIRECTIONS:
            raise ValueError(f"bad metric direction {d!r}")
    seen = set()
    for cell in doc["cells"]:
        for key in ("cell_id", "params", "metrics", "checks"):
            if key not in cell:
                raise ValueError(f"cell missing required key {key!r}")
        if cell["cell_id"] in seen:
            raise ValueError(f"duplicate cell id {cell['cell_id']!r}")
        seen.add(cell["cell_id"])
        for name, samples in cell["metrics"].items():
            if not isinstance(samples, list) or not samples:
                raise ValueError(
                    f"metric {name!r} of cell {cell['cell_id']!r} has no "
                    f"samples")
    return doc


class Ledger:
    """Append-only store of result envelopes under one root directory."""

    def __init__(self, root: str | Path = DEFAULT_LEDGER_DIR):
        self.root = Path(root)

    # -- write ---------------------------------------------------------

    def append(self, envelope: dict) -> Path:
        """Validate and persist one envelope; returns its path."""
        validate_envelope(envelope)
        exp_dir = self.root / envelope["experiment"]
        exp_dir.mkdir(parents=True, exist_ok=True)
        seq = 0
        for path in exp_dir.iterdir():
            m = _ENTRY_RE.match(path.name)
            if m:
                seq = max(seq, int(m.group(1)))
        sha = str(envelope.get("env", {}).get("git_sha", "unknown"))
        sha8 = sha[:8] if re.fullmatch(r"[0-9a-f]{7,40}", sha) else "unknown"
        path = exp_dir / f"{seq + 1:06d}-{sha8}.json"
        path.write_text(json.dumps(envelope, indent=2) + "\n")
        return path

    # -- read ----------------------------------------------------------

    def experiments(self) -> list[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and any(_ENTRY_RE.match(e.name)
                                            for e in p.iterdir()))

    def entries(self, experiment: str) -> list[Path]:
        """Entry paths for one experiment, oldest first."""
        exp_dir = self.root / experiment
        if not exp_dir.is_dir():
            return []
        return sorted(p for p in exp_dir.iterdir()
                      if _ENTRY_RE.match(p.name))

    def load(self, path: str | Path) -> dict:
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
        try:
            return validate_envelope(doc)
        except ValueError as exc:
            raise ValueError(f"{path}: {exc}") from exc

    def latest(self, experiment: str) -> dict | None:
        """The newest envelope for *experiment*, or None."""
        entries = self.entries(experiment)
        return self.load(entries[-1]) if entries else None

    def baseline(self, experiment: str) -> dict | None:
        """The newest envelope whose correctness checks all passed."""
        for path in reversed(self.entries(experiment)):
            doc = self.load(path)
            if doc.get("ok", True):
                return doc
        return None


# ---------------------------------------------------------------------------
# Legacy import: the six historical BENCH_*.json shapes
# ---------------------------------------------------------------------------


def _dig(doc: dict, path: str):
    cur = doc
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            raise ValueError(f"missing key {path!r}")
        cur = cur[part]
    return cur

#: Per-experiment extraction table: dotted path -> (metric, direction)
#: for numbers, or metric -> dotted path for boolean checks.
_LEGACY = {
    "serve-bench": {
        "metrics": {
            "speedup": ("speedup", "higher"),
            "served.throughput_qps": ("served_qps", "higher"),
            "naive.throughput_qps": ("naive_qps", "higher"),
            "served.cache.hit_rate": ("cache_hit_rate", "higher"),
            "served.latency_ms.p99": ("served_p99_ms", "lower"),
        },
        "checks": {"answers_match": "answers_match"},
    },
    "lsm-store": {
        "metrics": {
            "ingest.records_per_s": ("ingest_records_per_s", "higher"),
            "incremental.speedup": ("incremental_speedup", "higher"),
            "incremental.incremental_seconds":
                ("incremental_seconds", "lower"),
            "read_amplification.amp_after_compaction":
                ("amp_after_compaction", "lower"),
        },
        "checks": {},
    },
    "ooc-count": {
        "metrics": {
            "ooc_seconds": ("ooc_seconds", "lower"),
            "in_memory_seconds": ("in_memory_seconds", "lower"),
            "overcommit": ("overcommit", "higher"),
            "spill.bytes_spilled": ("bytes_spilled", "lower"),
        },
        "checks": {"counts_exact": "counts_exact",
                   "store_exact": "store_exact"},
    },
    "cluster-bench": {
        "metrics": {
            "overhead.overhead_frac": ("router_overhead_frac", "lower"),
            "hedging.p99_reduction": ("hedged_p99_reduction", "higher"),
            "hedging.hedged.throughput_qps": ("hedged_qps", "higher"),
        },
        "checks": {"answers_match": "overhead.answers_match"},
    },
    "tenant-bench": {
        "metrics": {
            "isolated_degradation": ("isolated_degradation", "lower"),
            "unprotected_degradation": ("unprotected_degradation",
                                        "higher"),
            "fairness.max_share_error": ("fairness_share_error", "lower"),
        },
        "checks": {"answers_match": "answers_match"},
    },
    "trace-bench": {
        "metrics": {
            "miss_ratio_curve.model_error_pp": ("model_error_pp", "lower"),
            "tiering.gain": ("two_tier_gain", "higher"),
        },
        "checks": {"replay_bit_identical": "ok.replay_bit_identical",
                   "model_error_le_2pp": "ok.model_error_le_2pp"},
    },
}


def legacy_envelope(doc: dict, *, source: str = "") -> dict:
    """Convert one historical ``BENCH_*.json`` document to an envelope.

    The result is a single-cell, single-sample entry under the
    experiment id the document itself declares; the gate treats
    single-sample baselines with its wide small-sample threshold.
    """
    exp = doc.get("experiment")
    if exp not in _LEGACY:
        raise ValueError(
            f"unknown legacy experiment {exp!r} "
            f"(known: {', '.join(sorted(_LEGACY))})")
    table = _LEGACY[exp]
    metrics, directions = {}, {}
    for path, (name, direction) in table["metrics"].items():
        value = _dig(doc, path)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"{exp}: {path} is not numeric: {value!r}")
        metrics[name] = [float(value)]
        directions[name] = direction
    checks = {}
    for name, path in table["checks"].items():
        checks[name] = bool(_dig(doc, path))
    env = doc.get("xp_env") or fingerprint()
    return {
        "version": LEDGER_VERSION,
        "kind": "legacy-import",
        "experiment": exp,
        "target": f"legacy:{exp}",
        "spec": {"source": source or "BENCH json"},
        "env": env,
        "directions": directions,
        "cells": [{
            "cell_id": "",
            "params": {},
            "seeds": [],
            "metrics": metrics,
            "checks": checks,
            "summary": {
                name: {"n": 1, "mean": vals[0], "median": vals[0],
                       "min": vals[0], "max": vals[0],
                       "ci95": [vals[0], vals[0]]}
                for name, vals in metrics.items()
            },
        }],
        "ok": all(checks.values()),
    }


def import_legacy(
    results_dir: str | Path,
    ledger: Ledger,
    *,
    skip_existing: bool = True,
) -> list[tuple[str, Path | None]]:
    """One-shot migration of every ``BENCH_*.json`` under *results_dir*.

    The originals stay in place; each becomes one ledger entry.  With
    *skip_existing* (default), experiments that already have a
    ``legacy-import`` entry are skipped, so reruns are idempotent.
    Returns ``(source name, entry path | None if skipped)`` pairs.
    """
    results_dir = Path(results_dir)
    out: list[tuple[str, Path | None]] = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.stem.endswith("_quick"):
            continue  # quick-mode artifacts never enter the trajectory
        doc = json.loads(path.read_text())
        envelope = legacy_envelope(doc, source=path.name)
        exp = envelope["experiment"]
        if skip_existing and any(
            self_doc.get("kind") == "legacy-import"
            for self_doc in map(ledger.load, ledger.entries(exp))
        ):
            out.append((path.name, None))
            continue
        out.append((path.name, ledger.append(envelope)))
    return out
