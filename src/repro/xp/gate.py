"""The perf gate: current run vs ledger baseline, CI-enforceable.

Semantics: for every cell the two envelopes share, and every gated
metric they both measured, run :func:`repro.xp.stats.compare_samples`
in the metric's declared direction.  The gate FAILS (exit nonzero)
only on a *statistically significant* regression that also clears the
minimum-effect threshold — a noisy rerun cannot flip it — and never
fails on improvements, new cells, or new metrics.  A current run whose
correctness checks fail always gates red: a fast wrong answer is not
a baseline anyone should inherit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .stats import Comparison, compare_samples

__all__ = ["GateResult", "gate_envelopes"]


@dataclass
class GateResult:
    """Outcome of gating one current envelope against one baseline."""

    experiment: str
    baseline_sha: str
    current_sha: str
    comparisons: list[tuple[str, str, Comparison]] = field(
        default_factory=list)              # (cell_id, metric, verdict)
    missing_cells: list[str] = field(default_factory=list)
    failed_checks: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[tuple[str, str, Comparison]]:
        return [c for c in self.comparisons if c[2].regressed]

    @property
    def improvements(self) -> list[tuple[str, str, Comparison]]:
        return [c for c in self.comparisons if c[2].improved]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.failed_checks

    def to_doc(self) -> dict:
        return {
            "experiment": self.experiment,
            "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
            "ok": self.ok,
            "n_comparisons": len(self.comparisons),
            "missing_cells": self.missing_cells,
            "failed_checks": self.failed_checks,
            "regressions": [
                {"cell": cell, "metric": metric, **cmp.to_doc()}
                for cell, metric, cmp in self.regressions
            ],
            "improvements": [
                {"cell": cell, "metric": metric, **cmp.to_doc()}
                for cell, metric, cmp in self.improvements
            ],
        }


def _gated_metrics(envelope: dict) -> tuple[str, ...]:
    return tuple(envelope.get("spec", {}).get("gate_metrics", []) or ())


def gate_envelopes(
    baseline: dict,
    current: dict,
    *,
    alpha: float = 0.01,
    min_effect: float = 0.10,
    metrics: tuple[str, ...] | None = None,
) -> GateResult:
    """Judge *current* against *baseline* (both validated envelopes).

    *metrics* restricts which metrics gate; by default the current
    spec's ``gate_metrics`` applies (all shared metrics if empty).
    """
    if baseline["experiment"] != current["experiment"]:
        raise ValueError(
            f"experiment mismatch: baseline is "
            f"{baseline['experiment']!r}, current is "
            f"{current['experiment']!r}")
    gated = metrics if metrics is not None else _gated_metrics(current)
    directions = {**baseline.get("directions", {}),
                  **current.get("directions", {})}
    result = GateResult(
        experiment=current["experiment"],
        baseline_sha=str(baseline.get("env", {}).get("git_sha", "unknown")),
        current_sha=str(current.get("env", {}).get("git_sha", "unknown")),
    )

    for cell in current["cells"]:
        for name, passed in cell.get("checks", {}).items():
            if not passed:
                result.failed_checks.append(
                    f"[{cell['cell_id'] or 'default'}] {name}")

    base_cells = {c["cell_id"]: c for c in baseline["cells"]}
    for cell in current["cells"]:
        base = base_cells.get(cell["cell_id"])
        if base is None:
            result.missing_cells.append(cell["cell_id"] or "default")
            continue
        for metric, samples in sorted(cell["metrics"].items()):
            if gated and metric not in gated:
                continue
            base_samples = base["metrics"].get(metric)
            if not base_samples:
                continue
            cmp = compare_samples(
                base_samples, samples,
                direction=directions.get(metric, "lower"),
                alpha=alpha, min_effect=min_effect,
            )
            result.comparisons.append((cell["cell_id"], metric, cmp))
    return result
