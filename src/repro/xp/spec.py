"""Declarative experiment configs: sweeps as data, not scripts.

An :class:`ExperimentSpec` is everything needed to reproduce a
measurement campaign: the *target* (a name in
:data:`repro.xp.targets.TARGETS`), fixed parameters, a
:class:`SweepSpec` parameter grid, a root seed, and an explicit
:class:`RepetitionPolicy` (warmups discarded, repetitions kept).  The
on-disk form is versioned JSON (always) or TOML (read requires
:mod:`tomllib`, Python >= 3.11; writing works everywhere via a small
emitter for this flat schema).

Design follows Cydonia's ``MTExperiments`` generator: configs are
plain data expanded into a cell list, so a sweep is diffable, and the
mubench replication's discipline: the repetition policy is part of the
config, not a flag someone forgets.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SPEC_VERSION",
    "RepetitionPolicy",
    "SweepSpec",
    "ExperimentSpec",
    "load_spec",
    "save_spec",
    "cell_id",
]

#: Bump when the on-disk spec schema changes incompatibly.
SPEC_VERSION = 1

_SCALAR = (str, int, float, bool)


@dataclass(frozen=True)
class RepetitionPolicy:
    """How many times each grid cell runs: warmups discarded, reps kept."""

    warmup: int = 1
    repetitions: int = 5

    def __post_init__(self):
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.repetitions < 1:
            raise ValueError(
                f"repetitions must be >= 1, got {self.repetitions}")

    def to_doc(self) -> dict:
        return {"warmup": self.warmup, "repetitions": self.repetitions}

    @classmethod
    def from_doc(cls, doc: dict) -> "RepetitionPolicy":
        unknown = set(doc) - {"warmup", "repetitions"}
        if unknown:
            raise ValueError(f"unknown policy keys: {sorted(unknown)}")
        return cls(int(doc.get("warmup", 1)), int(doc.get("repetitions", 5)))


@dataclass(frozen=True)
class SweepSpec:
    """The parameter grid: axis name -> tuple of values to sweep."""

    axes: tuple[tuple[str, tuple], ...] = ()

    @classmethod
    def from_doc(cls, doc: dict) -> "SweepSpec":
        axes = []
        for name, values in sorted(doc.items()):
            if not isinstance(values, (list, tuple)) or not values:
                raise ValueError(
                    f"sweep axis {name!r} must be a non-empty list, "
                    f"got {values!r}")
            for v in values:
                if not isinstance(v, _SCALAR):
                    raise ValueError(
                        f"sweep axis {name!r} holds non-scalar value {v!r}")
            axes.append((name, tuple(values)))
        return cls(tuple(axes))

    def to_doc(self) -> dict:
        return {name: list(values) for name, values in self.axes}

    @property
    def n_cells(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def cells(self) -> list[dict]:
        """Expand the grid into per-cell parameter dicts (stable order)."""
        if not self.axes:
            return [{}]
        names = [name for name, _ in self.axes]
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(v for _, v in self.axes))
        ]


def cell_id(params: dict) -> str:
    """Stable, human-readable id of one grid cell ('' for a 0-axis grid)."""
    return ",".join(f"{k}={params[k]}" for k in sorted(params))


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: target + grid + seeds + policy."""

    experiment: str
    target: str
    fixed: dict = field(default_factory=dict)
    sweep: SweepSpec = field(default_factory=SweepSpec)
    seed: int = 0
    policy: RepetitionPolicy = field(default_factory=RepetitionPolicy)
    #: Restrict gating to these metrics ('' = gate every shared metric).
    gate_metrics: tuple[str, ...] = ()
    notes: str = ""

    def __post_init__(self):
        if not self.experiment:
            raise ValueError("experiment id must be non-empty")
        if not self.target:
            raise ValueError(f"spec {self.experiment!r} names no target")
        overlap = set(self.fixed) & {name for name, _ in self.sweep.axes}
        if overlap:
            raise ValueError(
                f"spec {self.experiment!r}: parameters both fixed and "
                f"swept: {sorted(overlap)}")
        for k, v in self.fixed.items():
            if not isinstance(v, _SCALAR):
                raise ValueError(
                    f"fixed parameter {k!r} holds non-scalar value {v!r}")

    # -- round trip ----------------------------------------------------

    def to_doc(self) -> dict:
        return {
            "version": SPEC_VERSION,
            "experiment": self.experiment,
            "target": self.target,
            "fixed": dict(self.fixed),
            "sweep": self.sweep.to_doc(),
            "seed": self.seed,
            "policy": self.policy.to_doc(),
            "gate_metrics": list(self.gate_metrics),
            "notes": self.notes,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "ExperimentSpec":
        if not isinstance(doc, dict):
            raise ValueError(f"spec document must be a table, got {type(doc)}")
        version = doc.get("version")
        if version != SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {version!r} "
                f"(this build reads version {SPEC_VERSION})")
        known = {"version", "experiment", "target", "fixed", "sweep",
                 "seed", "policy", "gate_metrics", "notes"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        return cls(
            experiment=str(doc.get("experiment", "")),
            target=str(doc.get("target", "")),
            fixed=dict(doc.get("fixed", {})),
            sweep=SweepSpec.from_doc(doc.get("sweep", {})),
            seed=int(doc.get("seed", 0)),
            policy=RepetitionPolicy.from_doc(doc.get("policy", {})),
            gate_metrics=tuple(doc.get("gate_metrics", [])),
            notes=str(doc.get("notes", "")),
        )

    # -- grid ----------------------------------------------------------

    def cells(self) -> list[tuple[str, dict]]:
        """(cell_id, merged params) per cell, fixed params included."""
        out = []
        for sweep_params in self.sweep.cells():
            out.append((cell_id(sweep_params),
                        {**self.fixed, **sweep_params}))
        return out


# ---------------------------------------------------------------------------
# I/O: JSON always; TOML read via tomllib, write via a minimal emitter
# ---------------------------------------------------------------------------


def _toml_scalar(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # valid TOML basic string
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_scalar(v) for v in value) + "]"
    raise ValueError(f"cannot express {value!r} in TOML")


def _toml_dumps(doc: dict) -> str:
    """Emit the spec schema (scalars + one level of tables) as TOML."""
    top, tables = [], []
    for key, value in doc.items():
        if isinstance(value, dict):
            body = "".join(f"{k} = {_toml_scalar(v)}\n"
                           for k, v in value.items())
            tables.append(f"[{key}]\n{body}")
        else:
            top.append(f"{key} = {_toml_scalar(value)}\n")
    return "".join(top) + "\n" + "\n".join(tables)


def load_spec(path: str | Path) -> ExperimentSpec:
    """Load a spec from ``.json`` or ``.toml`` (validated, versioned)."""
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10
            raise ValueError(
                f"{path}: reading TOML specs needs Python >= 3.11 "
                f"(tomllib); use the JSON form instead") from exc
        doc = tomllib.loads(text)
    elif path.suffix == ".json":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    else:
        raise ValueError(
            f"{path}: unknown spec extension {path.suffix!r} "
            f"(expected .json or .toml)")
    try:
        return ExperimentSpec.from_doc(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


def save_spec(spec: ExperimentSpec, path: str | Path) -> Path:
    """Write a spec as ``.json`` or ``.toml`` (by extension)."""
    path = Path(path)
    doc = spec.to_doc()
    if path.suffix == ".toml":
        path.write_text(_toml_dumps(doc))
    elif path.suffix == ".json":
        path.write_text(json.dumps(doc, indent=2) + "\n")
    else:
        raise ValueError(
            f"{path}: unknown spec extension {path.suffix!r} "
            f"(expected .json or .toml)")
    return path
