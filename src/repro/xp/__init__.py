"""``repro.xp`` — declarative experiments, statistics, and perf gating.

The paper's claims are comparative ("asynchronous beats BSP", "comm
overlap cuts runtime"), and so is every extension claim this repo has
accumulated — yet until now each ``BENCH_*.json`` was a hand-rolled,
single-shot measurement with its own shape.  This subsystem makes the
"measurably faster" discipline systematic:

* :mod:`repro.xp.spec`    — sweeps as *data*: a versioned
  :class:`ExperimentSpec` names a target callable, its parameter grid,
  seeds, and an explicit warmup/repetition policy (JSON/TOML).
* :mod:`repro.xp.targets` — the registry of runnable targets (the
  serve/LSM/out-of-core benches, the paper-figure registry, synthetic
  calibration targets).
* :mod:`repro.xp.runner`  — expands the grid, spawns collision-free
  child seeds via :mod:`repro.core.seeds`, runs warmups + repetitions,
  and stamps an environment fingerprint into the result envelope.
* :mod:`repro.xp.stats`   — bootstrap confidence intervals,
  Mann-Whitney U shift detection, Cliff's delta, and a minimum-effect
  threshold so noise cannot flip a verdict.
* :mod:`repro.xp.ledger`  — the append-only, versioned result ledger
  under ``benchmarks/results/ledger/``, keyed by experiment id + git
  SHA; also the one validated loader the six legacy ``BENCH_*.json``
  shapes funnel into.
* :mod:`repro.xp.gate`    — compares a fresh run against the ledger
  baseline and fails CI on a statistically significant regression.

CLI: ``dakc xp run|gate|report|list|import-legacy``.
"""

from __future__ import annotations

from .env import fingerprint
from .gate import GateResult, gate_envelopes
from .ledger import (
    LEDGER_VERSION,
    Ledger,
    import_legacy,
    legacy_envelope,
    validate_envelope,
)
from .report import format_envelope, format_gate, format_trajectory
from .runner import run_spec
from .spec import (
    SPEC_VERSION,
    ExperimentSpec,
    RepetitionPolicy,
    SweepSpec,
    load_spec,
    save_spec,
)
from .stats import (
    Comparison,
    bootstrap_ci,
    cliffs_delta,
    compare_samples,
    mann_whitney_u,
    relative_shift,
)
from .targets import TARGETS, TargetOutcome, XpTarget, get_target

__all__ = [
    "SPEC_VERSION",
    "LEDGER_VERSION",
    "ExperimentSpec",
    "RepetitionPolicy",
    "SweepSpec",
    "load_spec",
    "save_spec",
    "TARGETS",
    "XpTarget",
    "TargetOutcome",
    "get_target",
    "fingerprint",
    "run_spec",
    "Comparison",
    "bootstrap_ci",
    "cliffs_delta",
    "compare_samples",
    "mann_whitney_u",
    "relative_shift",
    "Ledger",
    "validate_envelope",
    "legacy_envelope",
    "import_legacy",
    "GateResult",
    "gate_envelopes",
    "format_envelope",
    "format_gate",
    "format_trajectory",
]
