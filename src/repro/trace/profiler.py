"""Mattson reuse-distance profiling: exact LRU curves in one pass.

The classic stack-algorithm result (Mattson et al., 1970): for an LRU
cache, an access hits at capacity ``c`` iff its *reuse distance* — the
number of **distinct** keys touched since the previous access to the
same key — is strictly less than ``c``.  LRU has the inclusion
property, so one pass over the trace yields the exact hit count at
*every* capacity simultaneously: histogram the reuse distances, and
``hits(c) = sum(hist[d] for d < c)``.

Distances are computed with a Fenwick tree (binary indexed tree) over
access positions: when key ``x`` is re-accessed at position ``i`` and
was last seen at position ``p``, the number of distinct keys in
between is the number of *still-current* last-access marks in
``(p, i)`` — a prefix-sum query.  O(n log n) total, pure numpy-backed
Python, no recursion.

First-sight accesses (cold misses) have infinite distance; they are
counted separately in :class:`RDHistogram` and never hit at any
capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .format import QueryTrace

__all__ = ["reuse_distances", "RDHistogram", "profile_trace"]

COLD = -1  # sentinel distance for first-sight accesses


def reuse_distances(keys: np.ndarray) -> np.ndarray:
    """Exact reuse distance per access (``COLD`` for first sight).

    ``out[i]`` is the number of distinct keys accessed strictly
    between the previous access to ``keys[i]`` and position ``i``
    (exclusive on both ends), or ``COLD`` if ``keys[i]`` was never
    seen before.  An immediate re-access has distance 0.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    n = keys.size
    out = np.full(n, COLD, dtype=np.int64)
    if n == 0:
        return out
    # Fenwick tree over positions 1..n: tree[j] counts current
    # last-access marks in j's range.  A key's mark moves forward on
    # every re-access, so at step i the marks in (p, i) are exactly
    # the distinct keys touched since p.
    tree = np.zeros(n + 1, dtype=np.int64)
    last: dict[int, int] = {}

    def add(pos: int, delta: int) -> None:
        while pos <= n:
            tree[pos] += delta
            pos += pos & (-pos)

    def prefix(pos: int) -> int:
        s = 0
        while pos > 0:
            s += tree[pos]
            pos -= pos & (-pos)
        return int(s)

    for i, key in enumerate(keys.tolist()):
        p = last.get(key)
        if p is not None:
            # marks strictly inside (p, i), 1-based tree positions
            out[i] = prefix(i) - prefix(p + 1)
            add(p + 1, -1)
        last[key] = i
        add(i + 1, 1)
    return out


@dataclass(frozen=True)
class RDHistogram:
    """Reuse-distance histogram + the exact LRU curves it implies."""

    counts: np.ndarray  # counts[d] = accesses with reuse distance d
    cold: int           # first-sight accesses (infinite distance)

    @property
    def n_accesses(self) -> int:
        return int(self.counts.sum()) + self.cold

    @property
    def n_distinct(self) -> int:
        """Distinct keys in the profiled trace (= cold misses)."""
        return self.cold

    def predicted_hits(self, capacity: int) -> int:
        """Exact LRU hit count at *capacity* (Mattson: hit iff d < c)."""
        if capacity <= 0:
            return 0
        return int(self.counts[: min(capacity, self.counts.size)].sum())

    def predicted_hit_rate(self, capacity: int) -> float:
        n = self.n_accesses
        return self.predicted_hits(capacity) / n if n else 0.0

    def miss_ratio_curve(self, capacities) -> np.ndarray:
        """Exact LRU miss ratio at each capacity, vectorised.

        ``misses(c) = cold + sum(hist[d] for d >= c)`` — one cumsum
        serves every capacity (the Mattson one-pass payoff).
        """
        caps = np.asarray(capacities, dtype=np.int64)
        n = self.n_accesses
        if n == 0:
            return np.zeros(caps.shape, dtype=np.float64)
        hits_below = np.concatenate([[0], np.cumsum(self.counts)])
        idx = np.clip(caps, 0, self.counts.size)
        hits = hits_below[idx]
        return (n - hits) / n

    def merge(self, other: "RDHistogram") -> "RDHistogram":
        """Pointwise sum (e.g. per-stream histograms → fleet curve)."""
        size = max(self.counts.size, other.counts.size)
        counts = np.zeros(size, dtype=np.int64)
        counts[: self.counts.size] += self.counts
        counts[: other.counts.size] += other.counts
        return RDHistogram(counts=counts, cold=self.cold + other.cold)

    def to_doc(self) -> dict:
        """JSON record; the sparse tail is run-length trimmed."""
        nz = np.flatnonzero(self.counts)
        return {
            "cold": self.cold,
            "n_accesses": self.n_accesses,
            "distances": nz.tolist(),
            "counts": self.counts[nz].tolist(),
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "RDHistogram":
        distances = np.asarray(doc["distances"], dtype=np.int64)
        size = int(distances[-1]) + 1 if distances.size else 0
        counts = np.zeros(size, dtype=np.int64)
        counts[distances] = np.asarray(doc["counts"], dtype=np.int64)
        return cls(counts=counts, cold=int(doc["cold"]))

    @classmethod
    def from_distances(cls, distances: np.ndarray) -> "RDHistogram":
        """Histogram an array produced by :func:`reuse_distances`."""
        distances = np.asarray(distances, dtype=np.int64)
        cold = int((distances == COLD).sum())
        finite = distances[distances != COLD]
        if finite.size == 0:
            return cls(counts=np.zeros(0, dtype=np.int64), cold=cold)
        counts = np.bincount(finite).astype(np.int64)
        return cls(counts=counts, cold=cold)


@dataclass(frozen=True)
class TraceProfile:
    """A profiled trace: histogram + the capacities worth reporting."""

    histogram: RDHistogram
    capacities: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))

    def to_doc(self) -> dict:
        mrc = self.histogram.miss_ratio_curve(self.capacities)
        return {
            "histogram": self.histogram.to_doc(),
            "capacities": self.capacities.tolist(),
            "miss_ratio": mrc.tolist(),
            "hit_ratio": (1.0 - mrc).tolist(),
        }


def default_capacities(n_distinct: int, points: int = 16) -> np.ndarray:
    """Log-spaced capacity grid from 1 up past the working set."""
    if n_distinct <= 1:
        return np.array([1], dtype=np.int64)
    grid = np.geomspace(1, max(n_distinct, 2), num=points)
    return np.unique(np.round(grid).astype(np.int64))


def profile_trace(trace: QueryTrace, capacities=None) -> TraceProfile:
    """Reuse-distance-profile a trace's key sequence."""
    hist = RDHistogram.from_distances(reuse_distances(trace.keys))
    if capacities is None:
        caps = default_capacities(hist.n_distinct)
    else:
        caps = np.asarray(capacities, dtype=np.int64)
    return TraceProfile(histogram=hist, capacities=caps)
