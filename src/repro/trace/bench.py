"""The trace experiment: record, model, sample, replay — one harness.

Shared by ``dakc trace`` / ``dakc trace-bench`` and
``benchmarks/bench_extension_trace.py`` (→ ``BENCH_trace.json``), one
seeded end-to-end run with four claims under test:

1. **Model exactness** (the Fig.-3-style curve): the Mattson
   reuse-distance profile's predicted LRU miss-ratio curve matches a
   brute-force LRU simulation of the recorded trace at every measured
   capacity (error well under 2 percentage points — it is exact up to
   the shared arithmetic).
2. **Sampling fidelity**: a SHARDS spatial sample at ``sample_rate``
   reproduces the full-trace miss-ratio curve within
   ``sample_tolerance`` after 1/rate capacity scaling.
3. **Replay fidelity**: replaying the recorded trace through a fresh
   engine over the same store returns bit-identical answers.
4. **Tiering wins**: at equal t1 RAM, the two-tier cache's total hit
   rate beats the single-tier cache's on the Zipf+burst workload
   (the demoted head is caught by t2 instead of falling to the store).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.result import KmerCounts
from ..serve.bench import run_serve_bench
from ..serve.cache import HotKeyCache, TieredCache
from ..serve.shards import ShardedStore
from ..serve.workload import BurstSpec
from .format import QueryTrace
from .profiler import profile_trace
from .recorder import TraceRecorder
from .replay import measured_miss_ratio_curve, replay_trace, simulate_cache
from .sampling import pooled_miss_ratio_curve, spatial_sample

__all__ = ["TraceBenchResult", "run_trace_bench"]


@dataclass(frozen=True)
class TraceBenchResult:
    """Outcome of one record→profile→sample→replay run."""

    trace_summary: dict
    capacities: np.ndarray
    predicted_miss: np.ndarray     # Mattson model
    measured_miss: np.ndarray      # brute-force LRU simulation
    sampled_miss: np.ndarray       # SHARDS sample, capacity-rescaled
    sample_rate: float
    replay_answers_match: bool
    single_tier: dict              # simulate_cache ledger, HotKeyCache
    two_tier: dict                 # simulate_cache ledger, TieredCache
    seed: int
    extras: dict = field(default_factory=dict)

    @property
    def model_error_pp(self) -> float:
        """Max |predicted - measured| miss ratio, percentage points."""
        if not self.capacities.size:
            return 0.0
        return float(np.abs(self.predicted_miss - self.measured_miss).max()) * 100.0

    @property
    def sample_error_pp(self) -> float:
        """Max |sampled - measured| miss ratio, percentage points."""
        if not self.capacities.size:
            return 0.0
        return float(np.abs(self.sampled_miss - self.measured_miss).max()) * 100.0

    @property
    def tiering_gain(self) -> float:
        """Two-tier hit rate minus single-tier hit rate (same t1 RAM)."""
        return self.two_tier["hit_rate"] - self.single_tier["hit_rate"]

    def to_doc(self) -> dict:
        """Machine-readable record (``BENCH_trace.json``)."""
        return {
            "experiment": "trace-bench",
            "seed": self.seed,
            "trace": self.trace_summary,
            "miss_ratio_curve": {
                "capacities": self.capacities.tolist(),
                "predicted": self.predicted_miss.tolist(),
                "measured": self.measured_miss.tolist(),
                "sampled": self.sampled_miss.tolist(),
                "sample_rate": self.sample_rate,
                "model_error_pp": self.model_error_pp,
                "sample_error_pp": self.sample_error_pp,
            },
            "replay": {"answers_match": self.replay_answers_match},
            "tiering": {
                "single_tier": self.single_tier,
                "two_tier": self.two_tier,
                "gain": self.tiering_gain,
            },
            "ok": {
                "model_error_le_2pp": self.model_error_pp <= 2.0,
                "replay_bit_identical": self.replay_answers_match,
                "two_tier_beats_single": self.tiering_gain > 0.0,
            },
            **self.extras,
        }


def _capacity_grid(n_distinct: int, requested) -> np.ndarray:
    if requested is not None:
        return np.unique(np.asarray(requested, dtype=np.int64))
    # Sub-working-set capacities: where the curve actually bends.
    grid = np.geomspace(16, max(n_distinct, 32), num=8)
    return np.unique(np.round(grid).astype(np.int64))


def run_trace_bench(
    counts: KmerCounts,
    *,
    n_queries: int = 30_000,
    n_shards: int = 8,
    zipf_s: float = 1.1,
    seed: int = 0,
    capacities=None,
    sample_rate: float = 0.5,
    sample_salts: int = 4,
    t1_capacity: int = 128,
    t2_capacity: int = 4096,
    cache_threshold: int = 2,
    burst: BurstSpec | None = None,
    trace: QueryTrace | None = None,
) -> TraceBenchResult:
    """Record a Zipf+burst trace, model it, sample it, replay it.

    Pass a pre-recorded *trace* to skip the capture stage and model /
    replay an existing file (the ``dakc trace profile`` path reuses
    this).  Everything downstream of the key sequence is deterministic
    in the seed.
    """
    if burst is None:
        burst = BurstSpec()
    store = ShardedStore.from_counts(counts, n_shards)

    if trace is None:
        recorder = TraceRecorder(k=counts.k, seed=seed,
                                 source=f"trace-bench seed={seed}")
        run_serve_bench(
            counts, n_queries=n_queries, n_shards=n_shards, zipf_s=zipf_s,
            seed=seed, store=store, burst=burst, recorder=recorder,
            cache_capacity=t1_capacity, cache_threshold=cache_threshold,
            t2_capacity=t2_capacity,
        )
        trace = recorder.snapshot()

    # -- model: predicted vs. measured LRU miss-ratio curve ------------
    profile = profile_trace(trace)
    caps = _capacity_grid(profile.histogram.n_distinct, capacities)
    predicted = profile.histogram.miss_ratio_curve(caps)
    measured = measured_miss_ratio_curve(trace.keys, caps)

    # -- sampling: SHARDS spatial samples, pooled + capacity-rescaled --
    sampled_trace = spatial_sample(trace, sample_rate)
    sampled = pooled_miss_ratio_curve(trace, sample_rate, caps,
                                      salts=sample_salts)

    # -- replay: bit-identical answers through a fresh engine ----------
    replayed = replay_trace(
        trace, store, cache_capacity=t1_capacity,
        cache_threshold=cache_threshold, t2_capacity=t2_capacity,
    )

    # -- tiering: equal t1 RAM, with vs. without a second tier ---------
    single = simulate_cache(
        trace.keys, HotKeyCache(t1_capacity, admit_threshold=cache_threshold))
    tiered = simulate_cache(
        trace.keys, TieredCache(t1_capacity, t2_capacity,
                                admit_threshold=cache_threshold))

    return TraceBenchResult(
        trace_summary=trace.describe(),
        capacities=caps,
        predicted_miss=predicted,
        measured_miss=measured,
        sampled_miss=sampled,
        sample_rate=sample_rate,
        replay_answers_match=replayed.answers_match,
        single_tier=single,
        two_tier=tiered,
        seed=seed,
        extras={
            "burst": burst.to_doc(),
            "t1_capacity": t1_capacity,
            "t2_capacity": t2_capacity,
            "sampled_records": sampled_trace.n_records,
        },
    )
