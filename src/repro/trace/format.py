"""Query-trace records and their on-disk format.

A trace is the raw material of cache modelling: one record per served
query — ``(ts, stream, key, tier)`` — in arrival order, where *tier*
says which layer answered (t1 RAM cache, t2 second tier, or the
sharded store on a miss).  The reuse-distance profiler
(:mod:`repro.trace.profiler`) needs only the key sequence; the replay
engine (:mod:`repro.trace.replay`) also uses the timestamps to rebuild
arrival groups, and the tier column lets recorded and replayed cache
behaviour be diffed.

On disk a trace is a compressed ``.npz`` with the four column arrays
plus a JSON header carrying a magic string, a format version, and the
provenance fields (k, seed, source).  Loads are defensive: a truncated
or non-trace file raises :class:`TraceFormatError` instead of a bare
``zipfile``/``KeyError``, and a version from the future is refused
rather than misread.
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field

import numpy as np

from ..serve.cache import TIER_STORE, TIER_T1, TIER_T2

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "TIER_T1",
    "TIER_T2",
    "TIER_STORE",
    "TraceFormatError",
    "QueryTrace",
    "save_trace",
    "load_trace",
]

TRACE_MAGIC = "dakc-query-trace"
TRACE_VERSION = 1


class TraceFormatError(ValueError):
    """The file is not a readable dakc query trace."""


@dataclass(frozen=True, eq=False)
class QueryTrace:
    """One captured query stream (column-oriented, arrival order)."""

    ts: np.ndarray       # float64 seconds since trace start, non-decreasing
    streams: np.ndarray  # int32 tenant/stream id per record
    keys: np.ndarray     # uint64 query keys
    tiers: np.ndarray    # int8 answering tier (TIER_T1/TIER_T2/TIER_STORE)
    k: int = 0           # k-mer length of the keyspace (0 = unknown)
    seed: int = 0        # workload seed, when the trace came from a generator
    source: str = ""     # free-form provenance ("serve-bench seed=0", a path)
    meta: dict = field(default_factory=dict)  # extra JSON-able provenance

    def __post_init__(self) -> None:
        n = self.ts.size
        for name in ("streams", "keys", "tiers"):
            if getattr(self, name).size != n:
                raise ValueError(f"column {name!r} length != ts length")

    @property
    def n_records(self) -> int:
        return int(self.ts.size)

    @property
    def duration(self) -> float:
        """Span of the arrival timeline (seconds)."""
        return float(self.ts[-1] - self.ts[0]) if self.ts.size else 0.0

    def unique_fraction(self) -> float:
        """Distinct keys / records — low means a cache-friendly trace."""
        if not self.keys.size:
            return 0.0
        return np.unique(self.keys).size / self.keys.size

    def tier_counts(self) -> dict:
        """Records answered per tier, as recorded."""
        return {
            "t1": int((self.tiers == TIER_T1).sum()),
            "t2": int((self.tiers == TIER_T2).sum()),
            "store": int((self.tiers == TIER_STORE).sum()),
        }

    def window(self, t0: float, t1: float) -> "QueryTrace":
        """The sub-trace with ``t0 <= ts < t1`` (temporal slicing)."""
        mask = (self.ts >= t0) & (self.ts < t1)
        return self.select(mask)

    def select(self, mask: np.ndarray) -> "QueryTrace":
        """A sub-trace keeping the records where *mask* is True."""
        return QueryTrace(
            ts=self.ts[mask], streams=self.streams[mask],
            keys=self.keys[mask], tiers=self.tiers[mask],
            k=self.k, seed=self.seed, source=self.source, meta=dict(self.meta),
        )

    def same_records(self, other: "QueryTrace") -> bool:
        """Column-wise equality of the records (provenance ignored)."""
        return (bool(np.array_equal(self.ts, other.ts))
                and bool(np.array_equal(self.streams, other.streams))
                and bool(np.array_equal(self.keys, other.keys))
                and bool(np.array_equal(self.tiers, other.tiers)))

    def describe(self) -> dict:
        """JSON-friendly summary (the `dakc trace profile` header)."""
        return {
            "n_records": self.n_records,
            "n_distinct": int(np.unique(self.keys).size),
            "duration_s": self.duration,
            "unique_fraction": self.unique_fraction(),
            "tiers": self.tier_counts(),
            "k": self.k,
            "seed": self.seed,
            "source": self.source,
        }


def _normalised(trace: QueryTrace) -> QueryTrace:
    """Columns coerced to the canonical dtypes (pre-save hygiene)."""
    return QueryTrace(
        ts=np.ascontiguousarray(trace.ts, dtype=np.float64),
        streams=np.ascontiguousarray(trace.streams, dtype=np.int32),
        keys=np.ascontiguousarray(trace.keys, dtype=np.uint64),
        tiers=np.ascontiguousarray(trace.tiers, dtype=np.int8),
        k=int(trace.k), seed=int(trace.seed), source=str(trace.source),
        meta=dict(trace.meta),
    )


def save_trace(path: str | os.PathLike, trace: QueryTrace) -> None:
    """Write a trace as a compressed ``.npz`` with a JSON header."""
    trace = _normalised(trace)
    header = {
        "magic": TRACE_MAGIC,
        "version": TRACE_VERSION,
        "n_records": trace.n_records,
        "k": trace.k,
        "seed": trace.seed,
        "source": trace.source,
        "meta": trace.meta,
    }
    header_blob = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(
        path, header=header_blob, ts=trace.ts, streams=trace.streams,
        keys=trace.keys, tiers=trace.tiers,
    )


def load_trace(path: str | os.PathLike) -> QueryTrace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`TraceFormatError` on anything that is not a
    complete, current-version trace file: truncated archives, foreign
    ``.npz`` files, versions from the future.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            try:
                header_blob = archive["header"]
            except KeyError as exc:
                raise TraceFormatError(
                    f"{path}: no trace header (not a dakc trace)") from exc
            try:
                header = json.loads(bytes(header_blob.tobytes()).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TraceFormatError(f"{path}: unreadable trace header") from exc
            if header.get("magic") != TRACE_MAGIC:
                raise TraceFormatError(
                    f"{path}: bad magic {header.get('magic')!r}")
            version = header.get("version")
            if version != TRACE_VERSION:
                raise TraceFormatError(
                    f"{path}: trace format version {version!r} "
                    f"(this build reads version {TRACE_VERSION})")
            try:
                columns = {name: archive[name]
                           for name in ("ts", "streams", "keys", "tiers")}
            except KeyError as exc:
                raise TraceFormatError(
                    f"{path}: missing trace column {exc}") from exc
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        # numpy reports a non-archive file as a pickle ValueError; our
        # own diagnostics (TraceFormatError is a ValueError) pass through.
        if isinstance(exc, (FileNotFoundError, TraceFormatError)):
            raise
        raise TraceFormatError(f"{path}: truncated or corrupt trace file "
                               f"({type(exc).__name__}: {exc})") from exc
    trace = QueryTrace(
        ts=columns["ts"].astype(np.float64, copy=False),
        streams=columns["streams"].astype(np.int32, copy=False),
        keys=columns["keys"].astype(np.uint64, copy=False),
        tiers=columns["tiers"].astype(np.int8, copy=False),
        k=int(header.get("k", 0)),
        seed=int(header.get("seed", 0)),
        source=str(header.get("source", "")),
        meta=dict(header.get("meta", {})),
    )
    if trace.n_records != int(header.get("n_records", trace.n_records)):
        raise TraceFormatError(
            f"{path}: header says {header['n_records']} records, "
            f"columns hold {trace.n_records}")
    return trace
