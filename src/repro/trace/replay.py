"""Deterministic trace replay: recorded streams back through the stack.

Two replay modes, increasing in fidelity:

* :func:`simulate_cache` — the *model-checking* mode: drive just a
  cache object (``get``/``offer``) with the trace's key sequence, one
  record at a time, and count what it would have hit.  With a
  :class:`~repro.serve.cache.HotKeyCache` at ``admit_threshold=1``
  this is an exact LRU simulation — the measured side of the
  predicted-vs-measured miss-ratio comparison.

* :func:`replay_trace` — the *system* mode: rebuild the trace's
  arrival groups from its timestamps and push them through a real
  :class:`~repro.serve.engine.QueryEngine` over a sharded store,
  exactly like the live benchmarks do.  Answers are checked
  bit-identical against the scalar baseline, so a recorded workload
  becomes a reproducible integration test.

The trace carries only keys and times; the store being replayed
against supplies the answers.  Replaying the same trace against the
same store is therefore deterministic in the *answers* even though
wall-clock latencies vary run to run.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from ..serve.cache import HotKeyCache, TieredCache
from ..serve.engine import EngineConfig, Overloaded, QueryEngine, naive_serve
from ..serve.metrics import ServeMetrics
from .format import QueryTrace

__all__ = [
    "simulate_cache",
    "measured_miss_ratio_curve",
    "trace_groups",
    "ReplayResult",
    "replay_trace",
]


def simulate_cache(keys: np.ndarray, cache) -> dict:
    """Sequentially drive *cache* with *keys*; return its hit ledger.

    One ``get`` per record; on a miss the key is ``offer``-ed back
    (value = 1, a stand-in count — the simulation cares about
    residency, not answers).  Works for any cache with the
    ``get``/``offer``/``stats`` trio, including :class:`TieredCache`.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    get = cache.get
    offer = cache.offer
    hits = 0
    for key in keys.tolist():
        if get(key) is None:
            offer(key, 1)
        else:
            hits += 1
    n = int(keys.size)
    return {
        "n_accesses": n,
        "hits": hits,
        "misses": n - hits,
        "hit_rate": hits / n if n else 0.0,
        "stats": cache.stats(),
    }


def measured_miss_ratio_curve(keys: np.ndarray, capacities) -> np.ndarray:
    """Brute-force LRU miss ratio at each capacity.

    One fresh ``HotKeyCache(c, admit_threshold=1)`` — exact classic
    LRU — per capacity, driven over the full key sequence.  This is
    the ground truth the Mattson profile is checked against; O(n) per
    capacity where the profiler is O(n log n) for *all* capacities.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    out = np.empty(len(capacities), dtype=np.float64)
    for j, cap in enumerate(capacities):
        sim = simulate_cache(keys, HotKeyCache(int(cap), admit_threshold=1))
        out[j] = sim["misses"] / sim["n_accesses"] if sim["n_accesses"] else 0.0
    return out


def trace_groups(trace: QueryTrace, tick: float = 1e-3) -> list[np.ndarray]:
    """Rebuild arrival groups from the trace's timestamps.

    Mirrors :func:`repro.serve.workload.arrival_groups`: records whose
    timestamps land in the same *tick*-second slot replay as one
    concurrent batch.
    """
    if tick <= 0:
        raise ValueError("tick must be > 0")
    if not trace.keys.size:
        return []
    slot = (trace.ts // tick).astype(np.int64)
    bounds = np.flatnonzero(np.diff(slot)) + 1
    return np.split(trace.keys, bounds)


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one engine replay of a recorded trace."""

    answers: np.ndarray
    metrics: ServeMetrics
    n_groups: int
    answers_match: bool  # vs. the scalar naive baseline (when checked)

    def to_doc(self) -> dict:
        return {
            "n_records": int(self.answers.size),
            "n_groups": self.n_groups,
            "answers_match": self.answers_match,
            "metrics": self.metrics.snapshot(),
        }


def replay_trace(
    trace: QueryTrace,
    store,
    *,
    config: EngineConfig | None = None,
    cache=None,
    cache_capacity: int = 4096,
    cache_threshold: int = 2,
    t2_capacity: int = 0,
    tick: float = 1e-3,
    group_size: int = 256,
    concurrency: int = 8,
    recorder=None,
    check: bool = True,
) -> ReplayResult:
    """Replay a recorded trace through a fresh engine over *store*.

    The trace's timestamps set the batching (arrival-tick groups of
    *tick* seconds); up to *concurrency* groups are in flight at once.
    *cache* overrides the default cache construction (pass ``None``
    explicitly via ``cache_capacity=0`` for uncached replay); a
    non-zero *t2_capacity* selects a :class:`TieredCache`.  With
    *check* the answers are verified bit-identical against the scalar
    baseline.  *recorder* re-records the replayed stream, which is how
    a replay round-trips a trace.
    """
    config = config or EngineConfig()
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    groups = trace_groups(trace, tick=tick)
    # A fast recording compresses many records into one tick (and a
    # recorded batch shares one timestamp), so a tick group can dwarf
    # both the original client batches and the admission bound.  Cap
    # groups at *group_size* so replay preserves the original batching
    # scale and Overloaded retries can't livelock on an unadmittable
    # group.
    cap = min(group_size, max(config.max_inflight // 4, 1))
    groups = [part for g in groups
              for part in np.array_split(g, max(1, -(-g.size // cap)))]

    if cache is None and cache_capacity > 0:
        if t2_capacity > 0:
            cache = TieredCache(cache_capacity, t2_capacity,
                                admit_threshold=cache_threshold)
        else:
            cache = HotKeyCache(cache_capacity, admit_threshold=cache_threshold)

    async def drive() -> tuple[np.ndarray, ServeMetrics]:
        async with QueryEngine(store, config, cache=cache,
                               recorder=recorder) as engine:
            results: list[np.ndarray | None] = [None] * len(groups)
            gate = asyncio.Semaphore(concurrency)

            async def one(i: int, group: np.ndarray) -> None:
                async with gate:
                    while True:
                        try:
                            results[i] = await engine.query_many(group)
                            return
                        except Overloaded:
                            # Open-loop replay must answer every
                            # record (bit-identical check); back off
                            # one batch window and resubmit.
                            await asyncio.sleep(config.batch_window or 1e-4)

            t_start = time.perf_counter()
            await asyncio.gather(*(one(i, g) for i, g in enumerate(groups)))
            engine.metrics.elapsed = time.perf_counter() - t_start
            out = (np.concatenate(results) if results
                   else np.empty(0, dtype=np.int64))
            return out, engine.metrics

    answers, metrics = asyncio.run(drive())

    if check:
        baseline, _ = naive_serve(store, trace.keys)
        answers_match = bool(np.array_equal(answers, baseline))
    else:
        answers_match = True
    return ReplayResult(answers=answers, metrics=metrics,
                        n_groups=len(groups), answers_match=answers_match)
