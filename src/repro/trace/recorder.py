"""Low-overhead in-process query-trace capture.

The recorder is the write side of :mod:`repro.trace.format`: the
serve engine and the cluster router hand it whole key batches on their
hot path, and it appends ``(ts, stream, key, tier)`` rows into chunked
numpy buffers — no per-record Python object, no I/O until
:meth:`TraceRecorder.snapshot`.  The hook is duck-typed on purpose:
anything with ``record_batch(keys, tiers)`` can stand in (the serve
layer never imports this module).

Timestamps come from a monotonic clock rebased to the first record, so
a trace always starts at ``ts == 0`` and is host-epoch-free.  Replay
and profiling only care about relative spacing anyway.
"""

from __future__ import annotations

import time

import numpy as np

from ..serve.cache import TIER_STORE
from .format import QueryTrace, save_trace

__all__ = ["TraceRecorder"]

_CHUNK = 65_536


class TraceRecorder:
    """Appends query batches to an in-memory columnar trace.

    Parameters
    ----------
    k:
        k-mer length of the keyspace, carried into the trace header.
    seed:
        workload seed (provenance only).
    source:
        free-form provenance string (e.g. ``"serve-bench"``).
    clock:
        0-arg callable returning seconds; defaults to
        :func:`time.monotonic`.  Tests and replay inject a virtual
        clock here to make recorded timestamps deterministic.
    """

    def __init__(self, *, k: int = 0, seed: int = 0, source: str = "",
                 clock=None) -> None:
        self.k = int(k)
        self.seed = int(seed)
        self.source = str(source)
        self._clock = clock if clock is not None else time.monotonic
        self._chunks: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._t0: float | None = None
        self._n = 0

    @property
    def n_records(self) -> int:
        return self._n

    def record_batch(self, keys, tiers=None, *, ts=None, stream: int = 0) -> None:
        """Append one served batch.

        *keys* is any uint64-coercible array; *tiers* is a same-length
        int8 array of answering tiers, or ``None`` when the caller has
        no cache (everything is charged to the store).  *ts* overrides
        the wall-clock stamp with explicit per-record times (replay and
        synthetic traces); otherwise the whole batch shares one
        monotonic timestamp — batches ARE the arrival granularity on
        the serving hot path.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = keys.size
        if n == 0:
            return
        if tiers is None:
            tiers = np.full(n, TIER_STORE, dtype=np.int8)
        else:
            tiers = np.asarray(tiers, dtype=np.int8)
            if tiers.size != n:
                raise ValueError("tiers length != keys length")
        if ts is None:
            now = float(self._clock())
            if self._t0 is None:
                self._t0 = now
            ts_col = np.full(n, now - self._t0, dtype=np.float64)
        else:
            ts_col = np.asarray(ts, dtype=np.float64)
            if ts_col.ndim == 0:
                ts_col = np.full(n, float(ts_col), dtype=np.float64)
            elif ts_col.size != n:
                raise ValueError("ts length != keys length")
        streams = np.full(n, int(stream), dtype=np.int32)
        self._chunks.append((ts_col, streams, keys.copy(), tiers.copy()))
        self._n += n
        if len(self._chunks) >= _CHUNK // 64:
            self._coalesce()

    def _coalesce(self) -> None:
        """Fold the accumulated small batches into one chunk."""
        if len(self._chunks) <= 1:
            return
        merged = tuple(np.concatenate(cols)
                       for cols in zip(*self._chunks, strict=True))
        self._chunks = [merged]

    def snapshot(self) -> QueryTrace:
        """The trace captured so far (recording can continue after)."""
        self._coalesce()
        if not self._chunks:
            empty = lambda dt: np.empty(0, dtype=dt)  # noqa: E731
            ts, streams, keys, tiers = (empty(np.float64), empty(np.int32),
                                        empty(np.uint64), empty(np.int8))
        else:
            ts, streams, keys, tiers = (col.copy() for col in self._chunks[0])
        return QueryTrace(ts=ts, streams=streams, keys=keys, tiers=tiers,
                          k=self.k, seed=self.seed, source=self.source)

    def save(self, path) -> QueryTrace:
        """Snapshot and write to *path*; returns the snapshot."""
        trace = self.snapshot()
        save_trace(path, trace)
        return trace

    def clear(self) -> None:
        self._chunks.clear()
        self._t0 = None
        self._n = 0
