"""Trace sampling that preserves the miss-ratio curve.

Profiling a multi-million-record trace is cheap here, but the point
of the Cydonia ``sample/`` direction is that it doesn't have to be
done on the full trace at all:

* **Spatial sampling** (SHARDS; Waldspurger et al., FAST'15): keep a
  key iff ``hash(key) < rate * 2^64``.  Sampling whole *keys* rather
  than individual records preserves every kept key's access sequence
  exactly, so the sampled trace's reuse distances are the full
  trace's distances scaled by ~*rate* — the sampled MRC at capacity
  ``c`` estimates the full-trace MRC at capacity ``c / rate``.  We
  reuse :func:`repro.core.owner.splitmix64` as the filter hash, the
  same mixer that shards keys to PEs.

* **Temporal sampling**: keep a periodic window of the timeline —
  ``window`` seconds out of every ``every`` seconds.  This preserves
  burst structure (it slices arrival time, not record index) and is
  the right tool when the workload drifts; it does *not* carry a
  capacity-rescaling guarantee, so it is for eyeballing phases, not
  exact modelling.

Both return ordinary :class:`QueryTrace` objects, so sampled traces
save, profile, and replay like full ones.
"""

from __future__ import annotations

import numpy as np

from ..core.owner import splitmix64
from .format import QueryTrace
from .profiler import RDHistogram, reuse_distances

__all__ = [
    "spatial_sample",
    "temporal_sample",
    "scaled_miss_ratio_curve",
    "pooled_miss_ratio_curve",
]


def spatial_sample(trace: QueryTrace, rate: float, *, salt: int = 0) -> QueryTrace:
    """SHARDS hash-filter: keep each *key* with probability ~*rate*.

    Deterministic in the key (and *salt*): all accesses of a kept key
    survive, all accesses of a dropped key vanish.  Re-salting gives
    an independent sample without re-recording.
    """
    if not 0.0 < rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    if rate == 1.0:
        sampled = trace.select(np.ones(trace.n_records, dtype=bool))
    else:
        hashes = splitmix64(trace.keys ^ np.uint64(splitmix64(
            np.asarray(salt + 0x9E3779B97F4A7C15, dtype=np.uint64))))
        threshold = np.uint64(int(rate * float(2**64 - 1)))
        sampled = trace.select(hashes < threshold)
    meta = dict(sampled.meta)
    meta["sample"] = {"kind": "spatial", "rate": rate, "salt": salt,
                      "parent_records": trace.n_records}
    return QueryTrace(ts=sampled.ts, streams=sampled.streams,
                      keys=sampled.keys, tiers=sampled.tiers,
                      k=sampled.k, seed=sampled.seed,
                      source=sampled.source, meta=meta)


def temporal_sample(trace: QueryTrace, *, window: float, every: float,
                    phase: float = 0.0) -> QueryTrace:
    """Keep *window* seconds out of each *every*-second period."""
    if window <= 0 or every <= 0 or window > every:
        raise ValueError("need 0 < window <= every")
    rel = (trace.ts - phase) % every
    sampled = trace.select((trace.ts >= phase) & (rel < window))
    meta = dict(sampled.meta)
    meta["sample"] = {"kind": "temporal", "window": window, "every": every,
                      "phase": phase, "parent_records": trace.n_records}
    return QueryTrace(ts=sampled.ts, streams=sampled.streams,
                      keys=sampled.keys, tiers=sampled.tiers,
                      k=sampled.k, seed=sampled.seed,
                      source=sampled.source, meta=meta)


def sample_rate(trace: QueryTrace) -> float:
    """The spatial sampling rate recorded in a trace's metadata (1.0
    for unsampled or temporally-sampled traces)."""
    sample = trace.meta.get("sample") or {}
    if sample.get("kind") == "spatial":
        return float(sample["rate"])
    return 1.0


def scaled_miss_ratio_curve(trace: QueryTrace, capacities) -> np.ndarray:
    """Estimate the FULL-trace MRC at *capacities* from a sampled trace.

    For a spatial sample at rate ``r``, the sampled cache sees ~``r``
    of every reuse window's distinct keys, so full-trace capacity
    ``c`` corresponds to sampled capacity ``round(c * r)`` (SHARDS
    scaling).  With ``r == 1`` this is just the exact MRC.
    """
    caps = np.asarray(capacities, dtype=np.int64)
    rate = sample_rate(trace)
    hist = RDHistogram.from_distances(reuse_distances(trace.keys))
    scaled = np.maximum(np.round(caps * rate).astype(np.int64), 1)
    return hist.miss_ratio_curve(scaled)


def pooled_miss_ratio_curve(
    trace: QueryTrace, rate: float, capacities, *, salts: int = 4
) -> np.ndarray:
    """Variance-reduced MRC estimate: pool *salts* independent samples.

    A single hash-filter sample of a skewed trace is noisy — dropping
    one Zipf-head key moves the whole curve.  Re-salting the filter
    draws independent key subsets from the *same* trace for free;
    merging their reuse-distance histograms before computing the
    curve is an access-weighted average that converges fast (4 salts
    at rate 0.5 is typically within a fraction of a point of exact).
    Total profiling work is ``salts * rate`` of the full trace.
    """
    if salts < 1:
        raise ValueError("need at least one salt")
    caps = np.asarray(capacities, dtype=np.int64)
    merged = None
    for salt in range(salts):
        sampled = spatial_sample(trace, rate, salt=salt)
        hist = RDHistogram.from_distances(reuse_distances(sampled.keys))
        merged = hist if merged is None else merged.merge(hist)
    scaled = np.maximum(np.round(caps * rate).astype(np.int64), 1)
    return merged.miss_ratio_curve(scaled)
