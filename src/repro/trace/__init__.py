"""repro.trace — query-trace capture, cache modelling, and replay.

The serving stack (:mod:`repro.serve`, :mod:`repro.cluster`) answers
query streams; this package turns those streams into artefacts you
can model and re-run:

* :mod:`repro.trace.format` — the ``(ts, stream, key, tier)`` record
  and its versioned ``.npz`` on-disk format;
* :mod:`repro.trace.recorder` — low-overhead in-process capture,
  duck-typed into the engine and router hot paths;
* :mod:`repro.trace.profiler` — Mattson reuse-distance profiling: one
  Fenwick-tree pass yields the *exact* LRU miss-ratio curve at every
  capacity;
* :mod:`repro.trace.sampling` — SHARDS spatial sampling (hash-filter
  keys, rescale capacities by 1/rate) and temporal windowing;
* :mod:`repro.trace.replay` — deterministic replay: cache simulation
  for model checking, full engine replay for bit-identical answers;
* :mod:`repro.trace.bench` — the record→profile→sample→replay
  experiment behind ``BENCH_trace.json``.

See ``docs/TRACING.md`` for the design and the capacity-planning
workflow it enables.
"""

from .bench import TraceBenchResult, run_trace_bench
from .format import (
    TIER_STORE,
    TIER_T1,
    TIER_T2,
    TRACE_MAGIC,
    TRACE_VERSION,
    QueryTrace,
    TraceFormatError,
    load_trace,
    save_trace,
)
from .profiler import RDHistogram, profile_trace, reuse_distances
from .recorder import TraceRecorder
from .replay import (
    ReplayResult,
    measured_miss_ratio_curve,
    replay_trace,
    simulate_cache,
    trace_groups,
)
from .sampling import scaled_miss_ratio_curve, spatial_sample, temporal_sample

__all__ = [
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "TIER_T1",
    "TIER_T2",
    "TIER_STORE",
    "TraceFormatError",
    "QueryTrace",
    "save_trace",
    "load_trace",
    "TraceRecorder",
    "reuse_distances",
    "RDHistogram",
    "profile_trace",
    "spatial_sample",
    "temporal_sample",
    "scaled_miss_ratio_curve",
    "simulate_cache",
    "measured_miss_ratio_curve",
    "trace_groups",
    "ReplayResult",
    "replay_trace",
    "TraceBenchResult",
    "run_trace_bench",
]
