"""Minimizer-partitioned distributed counting (kmerind-style).

An alternative to DAKC's per-k-mer hash partitioning, from the lineage
the paper cites as related work (KmerInd, Pan et al.): route by the
k-mer's **minimizer** and ship **super-k-mers** — packed substrings
covering runs of k-mers that share a minimizer.  Because a minimizer
is a pure function of the k-mer's content, every occurrence of a k-mer
lands on the same owner, so counting stays exact; but one transfer now
carries ``run + k - 1`` bases at 2 bits each instead of ``run`` 8-byte
words, cutting Phase-1 wire volume by up to ~``k/4``x.

The trade-off this module lets you measure (see
``benchmarks/bench_ablation_minimizer.py``):

* **wire volume** — super-k-mers win big;
* **load balance** — minimizer frequencies are far more skewed than a
  scrambling hash over k-mers, so hot owners appear even on uniform
  genomes (the reason DAKC sticks to per-k-mer hashing + L3 rather
  than minimizer routing).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..runtime.collectives import barrier
from ..runtime.cost import OPS_PER_SUPERKMER, CostModel
from ..runtime.machine import MachineConfig
from ..runtime.stats import RunStats
from ..seq.kmers import canonical_kmers
from ..seq.minimizers import minimizers_of_kmers
from ..seq.superkmers import split_superkmers_batch
from ..sort.accumulate import accumulate_sorted, merge_count_arrays
from .owner import splitmix64
from .result import KmerCounts

__all__ = ["MinimizerPartitionConfig", "minimizer_partitioned_count"]


@dataclass(frozen=True, slots=True)
class MinimizerPartitionConfig:
    """Tunables of the minimizer-partitioned counter."""

    minimizer_len: int = 9
    #: Fixed per-super-k-mer wire header (minimizer id + length).
    header_bytes: int = 8

    def __post_init__(self) -> None:
        if self.minimizer_len < 1:
            raise ValueError("minimizer_len must be >= 1")
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be >= 0")


def minimizer_partitioned_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    config: MinimizerPartitionConfig | None = None,
    *,
    canonical: bool = False,
) -> tuple[KmerCounts, RunStats]:
    """Count k-mers by minimizer partitioning with super-k-mer wire
    format; same contract as :func:`repro.core.dakc.dakc_count`.

    Structure: each source splits its whole read batch into
    super-k-mer runs with the vectorised kernel
    (:func:`repro.seq.superkmers.split_superkmers_batch` — zero
    per-k-mer Python), routes each run (2-bit packed + header) to
    ``hash(minimizer) mod P``; after the inter-phase barrier every
    owner re-extracts, sorts and accumulates its received k-mers.

    With ``canonical=True`` routing hashes the *canonical* form's
    minimizer (computed per k-mer) so both strands of a k-mer share an
    owner; runs then follow owner changes rather than the forward
    super-k-mer decomposition, exactly as a canonical splitter would
    emit them.
    """
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    config = config or MinimizerPartitionConfig()
    host_t0 = time.perf_counter()
    n_pes = cost.n_pes
    w = min(config.minimizer_len, k)
    stats = RunStats(n_pes=n_pes)
    barrier(cost, stats)  # sync 1

    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        per_pe = np.array_split(reads, n_pes)
    else:
        per_pe = [[] for _ in range(n_pes)]
        for i, r in enumerate(reads):
            per_pe[i * n_pes // max(1, len(reads))].append(r)

    # inbox[dst] collects k-mer arrays; wire accounting uses the
    # packed super-k-mer sizes.
    inbox: list[list[np.ndarray]] = [[] for _ in range(n_pes)]
    for src, rows in enumerate(per_pe):
        pe = stats.pe[src]
        batch = split_superkmers_batch(rows, k, w)
        kmers = batch.kmers()
        if kmers.size == 0:
            continue
        if canonical:
            # Route by the canonical form's minimizer so both strands
            # of a k-mer share an owner.
            kmers = canonical_kmers(kmers, k)
        pe.kmers_generated += int(kmers.size)
        cost.charge_compute(pe, int(kmers.size) * (k - w + 2))
        cost.charge_mem(pe, int(batch.codes.size))
        mins = minimizers_of_kmers(kmers, k, w)
        owners = (splitmix64(mins) % np.uint64(n_pes)).astype(np.int64)
        read_of = np.repeat(batch.read_ids, batch.n_kmers_per)
        # Super-k-mer runs: boundaries where the owner (or the source
        # read) changes; one run ships as one packed record.
        change = np.empty(owners.size, dtype=bool)
        change[0] = True
        change[1:] = (owners[1:] != owners[:-1]) | (read_of[1:] != read_of[:-1])
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], owners.size)
        n_bases = (ends - starts) + k - 1
        pending_bytes = np.bincount(
            owners[starts], weights=-(-n_bases // 4) + config.header_bytes,
            minlength=n_pes).astype(np.int64)
        cost.charge_compute(pe, int(starts.size) * OPS_PER_SUPERKMER)
        order = np.argsort(owners, kind="stable")
        routed = kmers[order]
        dst_counts = np.bincount(owners, minlength=n_pes)
        bounds = np.zeros(n_pes + 1, dtype=np.int64)
        np.cumsum(dst_counts, out=bounds[1:])
        for dst in np.flatnonzero(dst_counts):
            inbox[int(dst)].append(routed[bounds[dst]:bounds[dst + 1]])
        for dst in np.flatnonzero(pending_bytes):
            cost.charge_put(pe, int(dst), int(pending_bytes[dst]))

    barrier(cost, stats)  # sync 2
    stats.phase1_time = stats.max_clock

    results = []
    for dst in range(n_pes):
        pe = stats.pe[dst]
        if not inbox[dst]:
            continue
        merged = np.concatenate(inbox[dst])
        pe.kmers_received += int(merged.size)
        pe.elements_received += int(merged.size)
        # Receivers pay the re-extraction of k-mers from the packed
        # super-k-mers on top of the usual sort+accumulate.
        cost.charge_compute(pe, 3 * int(merged.size))
        cost.charge_mem(pe, 4 * int(merged.nbytes))
        results.append(accumulate_sorted(np.sort(merged)))

    barrier(cost, stats)  # sync 3
    stats.sim_time = stats.max_clock
    stats.phase2_time = stats.sim_time - stats.phase1_time
    stats.extra["mode"] = "minimizer-partitioned"

    uniq, counts = merge_count_arrays(results)
    stats.host_seconds = time.perf_counter() - host_t0
    return KmerCounts(k, uniq, counts), stats
