"""DAKC: the Distributed Asynchronous k-mer Counter (Algorithms 3+4).

The paper's contribution.  Phase 1 parses reads into k-mers and routes
each to its owner PE through ``AsyncAdd`` — the four-layer aggregation
stack (L3 heavy-hitter catcher, L2 packing, L1 runtime staging, L0
Conveyors PUTs).  A single global barrier separates Phase 1 from
Phase 2, where every PE radix-sorts and accumulates the k-mers it owns.
DAKC needs exactly **three** global synchronisations (start, inter-
phase, end) regardless of input size — the heart of its advantage over
the BSP baselines whose collective count grows as ``mn / bP``.

Two execution modes share all routing/aggregation semantics:

* ``mode="fast"`` — vectorised (:class:`~repro.core.l2l3.BulkAggregator`),
  for real workloads;
* ``mode="exact"`` — per-element Algorithm 4 on the cooperative actor
  runtime (:class:`~repro.core.l2l3.ExactAggregator`), for tests and
  small runs.

Both return identical :class:`~repro.core.result.KmerCounts` (property-
tested) and populate a :class:`~repro.runtime.stats.RunStats` with the
measured communication behaviour and the simulated time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..runtime.actor import Actor, ActorRuntime
from ..runtime.cache import CacheAccounting
from ..runtime.collectives import barrier
from ..runtime.conveyors import Conveyor, PacketGroup
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.memory import L0_BUFFER_BYTES, MemoryTracker
from ..runtime.stats import RunStats
from ..runtime.topology import make_topology
from ..seq.kmers import (
    canonical_kmers,
    extract_kmers,
    extract_kmers_from_reads,
    kmer_width_bits,
)
from ..sort.accumulate import accumulate_sorted, accumulate_weighted, merge_count_arrays
from ..sort.radix import effective_msd_passes, radix_sort
from .l2l3 import AggregationConfig, BulkAggregator, ExactAggregator, receive_service_time
from .result import KmerCounts

__all__ = ["DakcConfig", "dakc_count", "DeliveryIntegrityError"]


@dataclass(frozen=True, slots=True)
class DakcConfig:
    """All DAKC tunables in one place."""

    protocol: str = "1D"  # Conveyors virtual topology: 1D | 2D | 3D
    c0_bytes: int = L0_BUFFER_BYTES
    c1_packets: int = 1024
    agg: AggregationConfig = field(default_factory=AggregationConfig)
    mode: str = "fast"  # "fast" | "exact"
    canonical: bool = False
    #: k-mers fed to the aggregator per cooperative step (fast mode).
    parse_chunk: int = 65_536
    #: Run the real LSD radix sorter in Phase 2 (slow; tests only).
    #: When False, NumPy's sort produces the identical permutation and
    #: the cost model still charges worst-case radix passes.
    use_real_radix: bool = False
    #: Verify at the inter-phase barrier that every generated k-mer
    #: occurrence was delivered exactly once (conservation check over
    #: the aggregation stack and conveyor) — the integrity handshake a
    #: production runtime performs before trusting the counts.
    verify_delivery: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("fast", "exact"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.parse_chunk < 1:
            raise ValueError("parse_chunk must be >= 1")


def _split_reads(reads: np.ndarray | list, n_pes: int) -> list:
    """Block-partition reads across PEs (paper assumption 1: balanced
    input)."""
    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        return [part for part in np.array_split(reads, n_pes)]
    out: list[list] = [[] for _ in range(n_pes)]
    for i, r in enumerate(reads):
        out[i * n_pes // max(1, len(reads))].append(r)
    return out


class _DakcActor(Actor):
    """Exact-mode PE: parses one read per step through Algorithm 4."""

    def __init__(
        self,
        pe: int,
        reads: np.ndarray | list,
        k: int,
        agg: ExactAggregator,
        cost: CostModel,
        stats: RunStats,
        canonical: bool,
    ) -> None:
        super().__init__(pe)
        self.reads = reads
        self.k = k
        self.agg = agg
        self.cost = cost
        self.stats = stats
        self.canonical = canonical
        self._next = 0
        self._flushed = False
        self.received: list[PacketGroup] = []

    def step(self) -> bool:
        n = len(self.reads)
        if self._next >= n:
            if not self._flushed:
                self.agg.flush()
                self._flushed = True
            return False
        row = self.reads[self._next]
        self._next += 1
        codes = np.asarray(row, dtype=np.uint8)
        kmers = extract_kmers(codes, self.k)
        if self.canonical:
            kmers = canonical_kmers(kmers, self.k)
        pe_stats = self.stats.pe[self.pe]
        pe_stats.kmers_generated += int(kmers.size)
        self.cost.charge_compute(pe_stats, int(kmers.size))
        self.cost.charge_mem(pe_stats, int(codes.size))
        for kmer in kmers.tolist():
            self.agg.add_kmer(kmer)
        # Stay active until the exhausted branch has flushed the
        # aggregation buffers (next call).
        return True

    def on_message(self, group: PacketGroup, arrival: float) -> float:
        self.received.append(group)
        return receive_service_time(self.cost, group)


def _phase2(
    dst: int,
    groups: list[PacketGroup],
    k: int,
    cost: CostModel,
    stats: RunStats,
    memory: MemoryTracker,
    *,
    use_real_radix: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort + accumulate one PE's received k-mers (Phase 2)."""
    pe_stats = stats.pe[dst]
    normals = [g.kmers for g in groups if g.kind == "NORMAL"]
    heavy_k = [g.kmers for g in groups if g.kind == "HEAVY"]
    heavy_c = [g.counts for g in groups if g.kind == "HEAVY"]
    t_arr = np.concatenate(normals) if normals else np.empty(0, dtype=np.uint64)
    memory.set_category(dst, "phase2-T", int(t_arr.nbytes))

    width = kmer_width_bits(k)
    passes = max(1, width // 8)
    # The real hybrid sorter (MSD ska_sort) recurses only until
    # buckets fit in cache: ~log2(n)/8 effective digit levels, fewer
    # than the model's worst-case `width/8` passes.  This is exactly
    # why measured Phase-2 misses undershoot the prediction in Fig. 3,
    # with the gap shrinking as n grows.
    eff_passes = effective_msd_passes(int(t_arr.size), passes)
    cache = CacheAccounting(cost.machine.cache_bytes, cost.machine.line_bytes)
    cost.charge_compute(pe_stats, t_arr.size * eff_passes)
    cost.charge_mem(pe_stats, 2 * t_arr.nbytes * eff_passes)
    for _ in range(eff_passes):
        cache.stream(t_arr.nbytes)
    # Accumulate sweep: one read pass plus the output write.
    cost.charge_compute(pe_stats, 2 * t_arr.size)
    cost.charge_mem(pe_stats, 2 * t_arr.nbytes)
    cache.stream(t_arr.nbytes)
    pe_stats.cache_misses_p2 += cache.misses

    if use_real_radix:
        sorted_t = radix_sort(t_arr, key_bits=2 * k)
    else:
        sorted_t = np.sort(t_arr)
    uniq, counts = accumulate_sorted(sorted_t)
    if heavy_k:
        hk = np.concatenate(heavy_k)
        hc = np.concatenate(heavy_c)
        cost.charge_compute(pe_stats, hk.size)
        cost.charge_mem(pe_stats, hk.nbytes * 2)
        uniq, counts = accumulate_weighted(
            np.concatenate((uniq, hk)), np.concatenate((counts, hc))
        )
    memory.set_category(dst, "phase2-T", 0)
    memory.set_category(dst, "phase2-out", int(uniq.nbytes + counts.nbytes))
    return uniq, counts


def dakc_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    config: DakcConfig | None = None,
    *,
    conveyor_factory=None,
    runtime_factory=None,
    interphase_hook=None,
) -> tuple[KmerCounts, RunStats]:
    """Count k-mers with DAKC on the simulated machine.

    Parameters
    ----------
    reads:
        2-D ``uint8`` code matrix (rows = reads) or list of code arrays.
    k:
        k-mer length (<= 32).
    cost:
        A :class:`CostModel` (or a :class:`MachineConfig`, wrapped with
        one PE per core).
    config:
        DAKC tunables; defaults reproduce the paper's defaults
        (1D protocol, C1=1024, C2=32, C3=10^4, L2+L3 enabled).
    conveyor_factory:
        Optional replacement for the stock :class:`Conveyor` — called
        with the same positional/keyword arguments.  Used by
        :mod:`repro.fault` to substitute fault-injecting or reliable
        conveyor engines.
    runtime_factory:
        Optional replacement for the stock :class:`ActorRuntime`
        (exact mode only) — called as ``factory(cost, stats,
        conveyor)``.  Used by :mod:`repro.dst` to install step-order
        and mailbox-order scheduling hooks.
    interphase_hook:
        Optional ``hook(conveyor, stats)`` invoked at the inter-phase
        barrier, after Phase 1 settles and *before* the delivery
        conservation check — the point where :mod:`repro.fault` takes
        checkpoints and applies transient PE crashes.

    Returns
    -------
    (KmerCounts, RunStats)
        The global ordered counts and the measured run statistics
        (simulated time, messages, bytes, per-PE clocks).
    """
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    config = config or DakcConfig()
    host_t0 = time.perf_counter()
    n_pes = cost.n_pes
    stats = RunStats(n_pes=n_pes)
    memory = MemoryTracker(n_pes)
    topo = make_topology(config.protocol, n_pes)
    make_conveyor = conveyor_factory if conveyor_factory is not None else Conveyor
    conveyor = make_conveyor(
        cost, stats, topo, memory, c0_bytes=config.c0_bytes, c1_packets=config.c1_packets
    )
    per_pe_reads = _split_reads(reads, n_pes)

    barrier(cost, stats)  # sync 1: all PEs enter the counting kernel

    if config.mode == "exact":
        aggs = [
            ExactAggregator(pe, config.agg, conveyor, cost, k=k)
            for pe in range(n_pes)
        ]
        actors = [
            _DakcActor(pe, per_pe_reads[pe], k, aggs[pe], cost, stats, config.canonical)
            for pe in range(n_pes)
        ]
        make_runtime = runtime_factory if runtime_factory is not None else ActorRuntime
        runtime = make_runtime(cost, stats, conveyor)
        runtime.run_until_quiescent(actors)  # includes sync 2
    else:
        _run_phase1_fast(per_pe_reads, k, cost, stats, conveyor, config)
        _charge_receives(cost, stats, conveyor)
        barrier(cost, stats)  # sync 2: inter-phase barrier

    stats.phase1_time = stats.max_clock

    if interphase_hook is not None:
        interphase_hook(conveyor, stats)

    if config.verify_delivery:
        _verify_conservation(stats, conveyor)

    results = []
    for dst in range(n_pes):
        groups = [g for _, g in conveyor.delivered[dst]]
        results.append(
            _phase2(dst, groups, k, cost, stats, memory,
                    use_real_radix=config.use_real_radix)
        )
    barrier(cost, stats)  # sync 3: end of the kernel

    stats.sim_time = stats.max_clock
    stats.phase2_time = stats.sim_time - stats.phase1_time
    stats.peak_buffer_bytes_per_pe = memory.peak_any_pe()
    stats.extra["protocol"] = config.protocol
    stats.extra["mode"] = config.mode

    uniq, counts = merge_count_arrays(results)
    stats.host_seconds = time.perf_counter() - host_t0
    return KmerCounts(k, uniq, counts), stats


def _run_phase1_fast(
    per_pe_reads: list,
    k: int,
    cost: CostModel,
    stats: RunStats,
    conveyor: Conveyor,
    config: DakcConfig,
) -> None:
    """Vectorised Phase 1: parse + AsyncAdd for every source PE."""
    cache_tpl = (cost.machine.cache_bytes, cost.machine.line_bytes)
    for src, rows in enumerate(per_pe_reads):
        pe_stats = stats.pe[src]
        kmers = extract_kmers_from_reads(rows, k)
        if config.canonical and kmers.size:
            kmers = canonical_kmers(kmers, k)
        if isinstance(rows, np.ndarray):
            read_bytes = int(rows.size)
        else:
            read_bytes = sum(int(np.asarray(r).size) for r in rows)
        pe_stats.kmers_generated += int(kmers.size)
        cost.charge_compute(pe_stats, int(kmers.size))
        cost.charge_mem(pe_stats, read_bytes)
        cache = CacheAccounting(*cache_tpl)
        # Only the read scan misses on the send side: generated k-mers
        # flow through the cache-resident L3/L2 buffers (80 KB + 264 B
        # per destination), never touching DRAM until the NIC PUT.
        # This is DAKC's aggregation dividend, visible in Fig. 3 as
        # measured Phase-1 misses sitting close to the parse+store
        # model despite the extra buffering machinery.
        cache.stream(read_bytes)
        pe_stats.cache_misses_p1 += cache.misses
        agg = BulkAggregator(src, config.agg, conveyor, cost, k=k)
        for lo in range(0, kmers.size, config.parse_chunk):
            agg.add_kmers(kmers[lo : lo + config.parse_chunk])
        agg.flush()
        conveyor.flush_pe(src)
    conveyor.finalize()


class DeliveryIntegrityError(RuntimeError):
    """Raised when the conservation check fails: the occurrences that
    arrived at owners do not equal the occurrences parsed at sources
    (a lost or duplicated message in the aggregation/conveyor stack)."""


def _verify_conservation(stats: RunStats, conveyor: Conveyor) -> None:
    """Check sum(generated occurrences) == sum(delivered weight).

    NORMAL elements carry one occurrence each; HEAVY pairs carry their
    explicit counts.  The equality must hold exactly — the L3 layer
    compresses *representation*, never weight.
    """
    generated = stats.total_kmers
    delivered = 0
    for queue in conveyor.delivered:
        for _, group in queue:
            if group.kind == "HEAVY":
                delivered += int(group.counts.sum())
            else:
                delivered += group.n_elements
    if delivered != generated:
        raise DeliveryIntegrityError(
            f"delivery conservation violated: {generated} k-mer occurrences "
            f"generated but {delivered} delivered"
        )


def _charge_receives(cost: CostModel, stats: RunStats, conveyor: Conveyor) -> None:
    """Charge lazy receive processing per destination (Phase 1 tail)."""
    for dst in range(cost.n_pes):
        pe_stats = stats.pe[dst]
        jobs = []
        recv_bytes = 0
        for arrival, group in conveyor.delivered[dst]:
            jobs.append((arrival, receive_service_time(cost, group)))
            pe_stats.kmers_received += group.n_elements
            pe_stats.elements_received += group.n_elements
            recv_bytes += group.payload_bytes
        pe_stats.clock = cost.busy_period(pe_stats.clock, jobs)
        cache = CacheAccounting(cost.machine.cache_bytes, cost.machine.line_bytes)
        cache.stream(recv_bytes)
        pe_stats.cache_misses_p1 += cache.misses
