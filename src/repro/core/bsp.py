"""Algorithm 2: the BSP (bulk-synchronous) k-mer counter baseline.

This is the communication structure of PakMan's KC kernel (blocking
Many-To-Many collectives, batches of ``b`` k-mers) and — with
non-blocking collectives and hybrid ranks — of HySortK.  Per superstep
every PE:

1. parses its next batch of ``b`` k-mers,
2. buckets them by owner PE (``OwnerPE``),
3. exchanges the buckets with a Many-To-Many collective,
4. appends the received k-mers to its local array ``T_r``.

After the final superstep each PE sorts and accumulates ``T_r``.  The
number of global synchronisations grows as ``ceil(mn / bP)`` — the
quantity DAKC collapses to one inter-phase barrier (Eqs. 1, 5-7).

Variants (all measured in the paper's evaluation):

* ``blocking=True`` — PakMan/PakMan*: every PE waits for the slowest
  exchange each round, so skew is paid per superstep;
* ``blocking=False`` — HySortK-style: the exchange overlaps the next
  batch's parsing (``max(compute, comm)`` instead of the sum);
* ``sort="radix"`` vs ``sort="quicksort"`` — PakMan* vs original
  PakMan (Fig. 6: the radix swap alone is ~2x);
* ``preaccumulate=True`` — locally accumulate each send bucket into
  ``{kmer, count}`` pairs before the exchange (the literal
  ``Accumulate(T_s[i])`` of Algorithm 2's ``FlushBuffer``), trading
  compute for communication volume on skewed inputs.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from ..runtime.cache import CacheAccounting
from ..runtime.collectives import alltoallv, barrier
from ..runtime.cost import OPS_PER_ELEMENT_BUFFER, CostModel
from ..runtime.machine import MachineConfig
from ..runtime.memory import MemoryTracker
from ..runtime.stats import RunStats
from ..seq.kmers import canonical_kmers, extract_kmers_from_reads, kmer_width_bits
from ..sort.accumulate import accumulate_sorted, accumulate_weighted, merge_count_arrays
from ..sort.radix import effective_msd_passes, radix_sort
from .owner import owner_pe
from .result import KmerCounts

__all__ = ["BspConfig", "bsp_count"]

#: Comparison-sort op constant: INT64-op equivalents per element per
#: log2(n) level.  A compare + swap + ~50% mispredicted branch costs
#: roughly six issue slots — the constant-factor gap that makes radix
#: sorting worth Fig. 6's ~2x on uint64 keys.
QUICKSORT_OPS_PER_LEVEL: float = 6.0


@dataclass(frozen=True, slots=True)
class BspConfig:
    """Tunables of the BSP baseline."""

    batch_size: int | None = None  # b; None = one superstep (max batch)
    blocking: bool = True
    sort: str = "radix"  # "radix" | "quicksort"
    preaccumulate: bool = False
    canonical: bool = False
    use_real_radix: bool = False

    def __post_init__(self) -> None:
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.sort not in ("radix", "quicksort"):
            raise ValueError(f"unknown sort {self.sort!r}")


def _charge_sort(
    cost: CostModel, pe_stats, n: int, k: int, sort: str, cache: CacheAccounting
) -> None:
    """Charge Phase-2 sorting costs for *n* elements on one PE."""
    if n == 0:
        return
    if sort == "radix":
        worst = max(1, kmer_width_bits(k) // 8)
        passes = effective_msd_passes(n, worst)
        cost.charge_compute(pe_stats, n * passes + 2 * n)
        cost.charge_mem(pe_stats, 2 * n * 8 * passes + 2 * n * 8)
        for _ in range(passes + 1):
            cache.stream(n * 8)
    else:
        levels = max(1.0, math.log2(max(2, n)))
        cost.charge_compute(pe_stats, int(QUICKSORT_OPS_PER_LEVEL * n * levels))
        # Partitioning sweeps the data once per level until partitions
        # fit in cache, then it is cache resident.
        elems_in_cache = max(2, cost.machine.cache_bytes // 8)
        deep = max(1.0, math.log2(max(2.0, n / elems_in_cache)) + 1.0)
        cost.charge_mem(pe_stats, int(2 * n * 8 * deep))
        for _ in range(int(deep)):
            cache.stream(2 * n * 8)


def bsp_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    config: BspConfig | None = None,
    *,
    superstep_hook=None,
) -> tuple[KmerCounts, RunStats]:
    """Count k-mers with the BSP baseline on the simulated machine.

    Same contract as :func:`repro.core.dakc.dakc_count`.

    ``superstep_hook(step, recv_plain, recv_pairs, stats)`` — when
    given — is invoked after every superstep's exchange has been
    consumed; :mod:`repro.fault.checkpoint` uses it to snapshot the
    accumulated per-PE receive state at BSP's natural phase boundaries.
    """
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    config = config or BspConfig()
    host_t0 = time.perf_counter()
    n_pes = cost.n_pes
    stats = RunStats(n_pes=n_pes)
    memory = MemoryTracker(n_pes)

    # Local k-mer streams (parse is interleaved with supersteps below;
    # extraction is hoisted for vectorisation but *charged* per batch).
    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        per_pe_rows = np.array_split(reads, n_pes)
    else:
        per_pe_rows = [[] for _ in range(n_pes)]
        for i, r in enumerate(reads):
            per_pe_rows[i * n_pes // max(1, len(reads))].append(r)
    streams: list[np.ndarray] = []
    read_bytes: list[int] = []
    for rows in per_pe_rows:
        kmers = extract_kmers_from_reads(rows, k)
        if config.canonical and kmers.size:
            kmers = canonical_kmers(kmers, k)
        streams.append(kmers)
        if isinstance(rows, np.ndarray):
            read_bytes.append(int(rows.size))
        else:
            read_bytes.append(sum(int(np.asarray(r).size) for r in rows))

    local_total = max((s.size for s in streams), default=0)
    b = config.batch_size if config.batch_size is not None else max(1, local_total)
    n_supersteps = max(1, -(-local_total // b)) if local_total else 1

    barrier(cost, stats)  # everyone enters the kernel

    # Received data per PE, accumulated across supersteps.
    recv_plain: list[list[np.ndarray]] = [[] for _ in range(n_pes)]
    recv_pairs: list[list[tuple[np.ndarray, np.ndarray]]] = [[] for _ in range(n_pes)]
    elem_bytes = 16 if config.preaccumulate else 8

    # Non-blocking mode (HySortK): exchanges are initiated with
    # ialltoallv and consumed lazily — the parse of superstep i+1
    # overlaps the wire time of exchange i; receive appends are
    # charged when the data is finally waited on.
    pending_completion = np.zeros(n_pes, dtype=np.float64)
    deferred_recv_bytes = np.zeros(n_pes, dtype=np.int64)

    for step in range(n_supersteps):
        send_bytes = np.zeros((n_pes, n_pes), dtype=np.int64)
        outgoing: list[list] = [[None] * n_pes for _ in range(n_pes)]
        for src in range(n_pes):
            pe_stats = stats.pe[src]
            lo = min(step * b, streams[src].size)
            hi = min((step + 1) * b, streams[src].size)
            batch = streams[src][lo:hi]
            if batch.size == 0:
                continue
            # Charge the parse of this batch (Eq. 9 + read traffic).
            frac = (hi - lo) / max(1, streams[src].size)
            cost.charge_compute(pe_stats, batch.size)
            cost.charge_mem(pe_stats, int(read_bytes[src] * frac))
            cost.charge_compute(pe_stats, batch.size * OPS_PER_ELEMENT_BUFFER)
            cost.charge_mem(pe_stats, batch.nbytes)  # bucket writes
            cache = CacheAccounting(cost.machine.cache_bytes, cost.machine.line_bytes)
            cache.stream(int(read_bytes[src] * frac))
            cache.stream(batch.nbytes)
            pe_stats.cache_misses_p1 += cache.misses
            pe_stats.kmers_generated += int(batch.size)
            owners = owner_pe(batch, n_pes)
            order = np.argsort(owners, kind="stable")
            sorted_batch = batch[order]
            counts = np.bincount(owners, minlength=n_pes)
            bounds = np.zeros(n_pes + 1, dtype=np.int64)
            np.cumsum(counts, out=bounds[1:])
            for dst in np.flatnonzero(counts):
                bucket = sorted_batch[bounds[dst] : bounds[dst + 1]]
                if config.preaccumulate:
                    u, c = accumulate_sorted(np.sort(bucket))
                    cost.charge_compute(pe_stats, bucket.size * 2)
                    outgoing[src][dst] = (u, c)
                    send_bytes[src, dst] = u.size * elem_bytes
                else:
                    outgoing[src][dst] = bucket
                    send_bytes[src, dst] = bucket.size * elem_bytes
            memory.set_category(src, "send-batch", int(send_bytes[src].sum()))

        completion = alltoallv(cost, stats, send_bytes, blocking=config.blocking)
        np.maximum(pending_completion, completion, out=pending_completion)

        for dst in range(n_pes):
            pe_stats = stats.pe[dst]
            got = 0
            for src in range(n_pes):
                payload = outgoing[src][dst]
                if payload is None:
                    continue
                if config.preaccumulate:
                    recv_pairs[dst].append(payload)
                    got += payload[0].size * elem_bytes
                else:
                    recv_plain[dst].append(payload)
                    got += payload.size * elem_bytes
            if got:
                pe_stats.elements_received += got // elem_bytes
                pe_stats.kmers_received += got // elem_bytes
                if config.blocking:
                    cost.charge_mem(pe_stats, got)  # append to T_r
                else:
                    deferred_recv_bytes[dst] += got
            memory.set_category(dst, "send-batch", 0)
            memory.allocate(dst, "recv-T", got)

        if superstep_hook is not None:
            superstep_hook(step, recv_plain, recv_pairs, stats)

    if not config.blocking:
        # waitall: every PE blocks until its outstanding exchanges have
        # landed, then pays the deferred T_r appends.
        for dst in range(n_pes):
            pe_stats = stats.pe[dst]
            if pending_completion[dst] > pe_stats.clock:
                pe_stats.sync_wait_time += pending_completion[dst] - pe_stats.clock
                pe_stats.clock = float(pending_completion[dst])
            if deferred_recv_bytes[dst]:
                cost.charge_mem(pe_stats, int(deferred_recv_bytes[dst]))

    stats.phase1_time = max(p.clock for p in stats.pe)

    # Phase 2: sort + accumulate the received arrays.
    results = []
    for dst in range(n_pes):
        pe_stats = stats.pe[dst]
        cache = CacheAccounting(cost.machine.cache_bytes, cost.machine.line_bytes)
        if config.preaccumulate:
            ks = np.concatenate([p[0] for p in recv_pairs[dst]]) if recv_pairs[dst] else np.empty(0, np.uint64)
            cs = np.concatenate([p[1] for p in recv_pairs[dst]]) if recv_pairs[dst] else np.empty(0, np.int64)
            _charge_sort(cost, pe_stats, int(ks.size), k, config.sort, cache)
            uniq, counts = accumulate_weighted(ks, cs)
        else:
            t_arr = (
                np.concatenate(recv_plain[dst]) if recv_plain[dst] else np.empty(0, np.uint64)
            )
            _charge_sort(cost, pe_stats, int(t_arr.size), k, config.sort, cache)
            if config.use_real_radix and config.sort == "radix":
                sorted_t = radix_sort(t_arr, key_bits=2 * k)
            else:
                sorted_t = np.sort(t_arr)
            uniq, counts = accumulate_sorted(sorted_t)
        pe_stats.cache_misses_p2 += cache.misses
        results.append((uniq, counts))

    barrier(cost, stats)  # final sync
    stats.sim_time = stats.max_clock
    stats.phase2_time = stats.sim_time - stats.phase1_time
    stats.peak_buffer_bytes_per_pe = memory.peak_any_pe()
    stats.extra["supersteps"] = n_supersteps
    stats.extra["blocking"] = config.blocking
    stats.extra["sort"] = config.sort

    uniq, counts = merge_count_arrays(results)
    stats.host_seconds = time.perf_counter() - host_t0
    return KmerCounts(k, uniq, counts), stats
