"""OwnerPE: deterministic k-mer -> processor partitioning.

Every distributed counter in the paper assigns each distinct k-mer to
an *owner* PE responsible for its final count (Section III-B, rule 1).
The assignment must be a pure function of the k-mer value so every
source routes a given k-mer to the same place; production counters use
a scrambling hash so that correlated k-mers (e.g. the lexicographic
neighbourhood of a repeat) spread across PEs.

We use splitmix64 — a well-known, statistically strong 64-bit mixer —
vectorised over NumPy ``uint64`` arrays, followed by a modulo over P.
Note that hashing spreads *distinct* k-mers but cannot spread the
*occurrences* of a single heavy-hitter k-mer: all of them land on one
owner.  That residual imbalance is precisely what the L3 protocol
attacks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["splitmix64", "splitmix64_inverse", "owner_pe", "owner_pe_scalar",
           "partition_by_owner"]

_C1 = np.uint64(0x9E3779B97F4A7C15)
_C2 = np.uint64(0xBF58476D1CE4E5B9)
_C3 = np.uint64(0x94D049BB133111EB)
# Modular inverses of the odd multipliers (mod 2**64).
_INV_C2 = np.uint64(pow(0xBF58476D1CE4E5B9, -1, 1 << 64))
_INV_C3 = np.uint64(pow(0x94D049BB133111EB, -1, 1 << 64))


def splitmix64(x: np.ndarray | int) -> np.ndarray | int:
    """Vectorised splitmix64 finaliser (bijective 64-bit mixer)."""
    scalar = np.isscalar(x) or isinstance(x, (int, np.integer))
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = z + _C1
        z = (z ^ (z >> np.uint64(30))) * _C2
        z = (z ^ (z >> np.uint64(27))) * _C3
        z = z ^ (z >> np.uint64(31))
    return int(z) if scalar else z


def _unshift_xor_right(y: np.ndarray, s: int) -> np.ndarray:
    """Invert ``x ^= x >> s`` (vectorised fixed-point iteration)."""
    x = y
    for _ in range(63 // s + 1):
        x = y ^ (x >> np.uint64(s))
    return x


def splitmix64_inverse(z: np.ndarray | int) -> np.ndarray | int:
    """Exact inverse of :func:`splitmix64`.

    Every step of the mixer is a 64-bit bijection (xorshift, odd
    multiply, constant add), so the whole finaliser inverts exactly.
    This is what lets a *minimum over hashes* be mapped back to the
    value that produced it without carrying values alongside — the
    trick the super-k-mer split kernel uses to recover minimizer
    w-mers from window-min hashes in one vector pass.
    """
    scalar = np.isscalar(z) or isinstance(z, (int, np.integer))
    y = np.asarray(z, dtype=np.uint64)
    with np.errstate(over="ignore"):
        y = _unshift_xor_right(y, 31)
        y = _unshift_xor_right(y * _INV_C3, 27)
        y = _unshift_xor_right(y * _INV_C2, 30)
        y = y - _C1
    return int(y) if scalar else y


def owner_pe(kmers: np.ndarray, p: int) -> np.ndarray:
    """Owner PE of each k-mer: ``splitmix64(kmer) mod P`` (int64)."""
    if p < 1:
        raise ValueError("P must be >= 1")
    hashed = splitmix64(np.asarray(kmers, dtype=np.uint64))
    return (hashed % np.uint64(p)).astype(np.int64)


def owner_pe_scalar(kmer: int, p: int) -> int:
    """Scalar reference of :func:`owner_pe` (Algorithm 2's OwnerPE)."""
    if p < 1:
        raise ValueError("P must be >= 1")
    return int(splitmix64(int(kmer)) % p)


def partition_by_owner(
    kmers: np.ndarray, p: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group a k-mer array by owner PE (vectorised bucket split).

    Returns ``(sorted_kmers, owners_sorted, boundaries)`` where
    ``sorted_kmers`` is the input permuted so owners are contiguous and
    ``boundaries`` has ``p + 1`` entries such that PE ``q`` owns slice
    ``sorted_kmers[boundaries[q]:boundaries[q+1]]``.
    """
    kmers = np.asarray(kmers, dtype=np.uint64)
    owners = owner_pe(kmers, p)
    order = np.argsort(owners, kind="stable")
    owners_sorted = owners[order]
    counts = np.bincount(owners_sorted, minlength=p)
    boundaries = np.zeros(p + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    return kmers[order], owners_sorted, boundaries
