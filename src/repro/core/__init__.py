"""Core algorithms: serial (Alg. 1), BSP (Alg. 2), DAKC (Algs. 3-4).

Extensions beyond the paper's evaluation (its Section VII future work):
128-bit k-mers (:mod:`repro.core.bigcount`) and the barrier-free
sorted-set variant (:mod:`repro.core.sortedset`).
"""

from .bigcount import BigKmerCounts, dakc_count_big, owner_pe_big, serial_count_big
from .bsp import BspConfig, bsp_count
from .dakc import DakcConfig, DeliveryIntegrityError, dakc_count
from .minipart import MinimizerPartitionConfig, minimizer_partitioned_count
from .l2l3 import AggregationConfig, BulkAggregator, ExactAggregator, receive_service_time
from .owner import owner_pe, owner_pe_scalar, partition_by_owner, splitmix64
from .result import KmerCounts
from .serial import SerialRunInfo, serial_count, serial_count_oracle
from .sortedset import SortedRunSet, dakc_overlap_count

__all__ = [
    "KmerCounts",
    "serial_count",
    "serial_count_oracle",
    "SerialRunInfo",
    "BspConfig",
    "bsp_count",
    "DakcConfig",
    "dakc_count",
    "DeliveryIntegrityError",
    "AggregationConfig",
    "BulkAggregator",
    "ExactAggregator",
    "receive_service_time",
    "owner_pe",
    "owner_pe_scalar",
    "partition_by_owner",
    "splitmix64",
    "BigKmerCounts",
    "serial_count_big",
    "dakc_count_big",
    "owner_pe_big",
    "SortedRunSet",
    "dakc_overlap_count",
    "MinimizerPartitionConfig",
    "minimizer_partitioned_count",
]
