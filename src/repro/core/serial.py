"""Algorithm 1: the serial sorting-based k-mer counter.

The reference everything else validates against.  Two paths:

* :func:`serial_count` — the production path: vectorised k-mer
  extraction, hybrid radix sort, run-length accumulate.  Identical
  structure to Algorithm 1 (generate all k-mers into ``T``, ``Sort(T)``,
  ``Accumulate(T)``).
* :func:`serial_count_oracle` — a deliberately naive
  ``collections.Counter`` over the scalar rolling-k-mer iterator;
  quadratic overheads, used only in tests as an independent oracle.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..seq.encoding import decode_codes
from ..seq.kmers import canonical_kmers, extract_kmers_from_reads, iter_kmers
from ..sort.accumulate import accumulate_sorted
from ..sort.hybrid import HybridSortStats, hybrid_sort
from .result import KmerCounts

__all__ = ["SerialRunInfo", "serial_count", "serial_count_oracle"]


@dataclass(slots=True)
class SerialRunInfo:
    """Measured quantities of one serial run (for model validation)."""

    n_kmers: int = 0
    n_distinct: int = 0
    sort: HybridSortStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.sort is None:
            self.sort = HybridSortStats()


def serial_count(
    reads: np.ndarray | list,
    k: int,
    *,
    canonical: bool = False,
    info: SerialRunInfo | None = None,
) -> KmerCounts:
    """Count k-mers serially (Algorithm 1).

    *reads* may be a 2-D ``uint8`` code matrix (rows = equal-length
    reads) or a list of 1-D code arrays.
    """
    kmers = extract_kmers_from_reads(reads, k)
    if canonical:
        kmers = canonical_kmers(kmers, k)
    if info is not None:
        info.n_kmers = int(kmers.size)
    sorted_kmers = hybrid_sort(
        kmers, key_bits=2 * k, stats=info.sort if info is not None else None
    )
    uniq, counts = accumulate_sorted(sorted_kmers)
    if info is not None:
        info.n_distinct = int(uniq.size)
    return KmerCounts(k, uniq, counts)


def serial_count_oracle(reads, k: int, *, canonical: bool = False) -> KmerCounts:
    """Independent Counter-based oracle over string reads.

    Accepts the same inputs as :func:`serial_count` plus plain strings;
    encoded inputs are decoded first so this path shares *no* code with
    the vectorised extractor.
    """
    counter: Counter = Counter()
    seqs: list[str] = []
    if isinstance(reads, np.ndarray) and reads.ndim == 2:
        seqs = [decode_codes(row) for row in reads]
    else:
        for r in reads:
            seqs.append(r if isinstance(r, str) else decode_codes(r))
    for seq in seqs:
        for kmer in iter_kmers(seq, k):
            if canonical:
                from ..seq.kmers import reverse_complement_kmer

                kmer = min(kmer, reverse_complement_kmer(kmer, k))
            counter[kmer] += 1
    return KmerCounts.from_counter(k, counter)
