"""Counting with 128-bit k-mers (k up to 64) — the paper's future work.

Builds the serial and owner-partitioned distributed counting paths on
top of :mod:`repro.seq.bigkmers`.  The distributed path mirrors DAKC's
structure (partition by a deterministic owner hash, count locally, no
cross-PE duplicates) and runs on the same simulated machine so long-
read-sized k-mers can be costed like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.collectives import barrier
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.stats import RunStats
from ..seq.bigkmers import (
    BigKmerArray,
    accumulate_sorted_big,
    big_kmer_to_str,
    canonical_big,
    extract_big_kmers_from_reads,
    lexsort_big,
)
from .owner import splitmix64

__all__ = ["BigKmerCounts", "serial_count_big", "owner_pe_big", "dakc_count_big"]


@dataclass(frozen=True)
class BigKmerCounts:
    """Ordered (128-bit k-mer, count) pairs; the big-k result type."""

    kmers: BigKmerArray
    counts: np.ndarray

    def __post_init__(self) -> None:
        counts = np.ascontiguousarray(self.counts, dtype=np.int64)
        object.__setattr__(self, "counts", counts)
        if counts.shape != self.kmers.hi.shape:
            raise ValueError("counts must match kmers length")
        if counts.size and counts.min() < 1:
            raise ValueError("all counts must be >= 1")
        hi, lo = self.kmers.hi, self.kmers.lo
        if counts.size > 1:
            ok = (hi[:-1] < hi[1:]) | ((hi[:-1] == hi[1:]) & (lo[:-1] < lo[1:]))
            if not ok.all():
                raise ValueError("kmers must be strictly increasing")

    @property
    def k(self) -> int:
        return self.kmers.k

    @property
    def n_distinct(self) -> int:
        return int(self.counts.size)

    @property
    def total(self) -> int:
        return int(self.counts.sum()) if self.counts.size else 0

    def get(self, hi: int, lo: int) -> int:
        """Count of one (hi, lo) k-mer via binary search."""
        i = int(np.searchsorted(self.kmers.hi, np.uint64(hi)))
        while i < self.n_distinct and self.kmers.hi[i] == np.uint64(hi):
            if self.kmers.lo[i] == np.uint64(lo):
                return int(self.counts[i])
            if self.kmers.lo[i] > np.uint64(lo):
                break
            i += 1
        return 0

    def get_str(self, kmer: str) -> int:
        from ..seq.bigkmers import str_to_big_kmer

        if len(kmer) != self.k:
            raise ValueError(f"expected a {self.k}-mer, got {len(kmer)} bases")
        return self.get(*str_to_big_kmer(kmer))

    def to_dict(self) -> dict[str, int]:
        """Materialise as {kmer-string: count} (small results only)."""
        return {
            big_kmer_to_str(int(h), int(l), self.k): int(c)
            for h, l, c in zip(
                self.kmers.hi.tolist(), self.kmers.lo.tolist(), self.counts.tolist()
            )
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BigKmerCounts):
            return NotImplemented
        return (
            self.k == other.k
            and np.array_equal(self.kmers.hi, other.kmers.hi)
            and np.array_equal(self.kmers.lo, other.kmers.lo)
            and np.array_equal(self.counts, other.counts)
        )

    __hash__ = None  # type: ignore[assignment]


def serial_count_big(reads, k: int, *, canonical: bool = False) -> BigKmerCounts:
    """Serial 128-bit counting (Algorithm 1 generalised to k <= 64)."""
    kmers = extract_big_kmers_from_reads(reads, k)
    if canonical and len(kmers):
        kmers = canonical_big(kmers)
    sorted_kmers = lexsort_big(kmers)
    uniq, counts = accumulate_sorted_big(sorted_kmers)
    return BigKmerCounts(uniq, counts)


def owner_pe_big(kmers: BigKmerArray, p: int) -> np.ndarray:
    """Owner PE of 128-bit k-mers: mix both words, then mod P."""
    if p < 1:
        raise ValueError("P must be >= 1")
    with np.errstate(over="ignore"):
        mixed = splitmix64(kmers.hi ^ splitmix64(kmers.lo))
    return (mixed % np.uint64(p)).astype(np.int64)


def dakc_count_big(
    reads,
    k: int,
    cost: CostModel | MachineConfig,
    *,
    canonical: bool = False,
) -> tuple[BigKmerCounts, RunStats]:
    """Owner-partitioned distributed counting of 128-bit k-mers.

    Follows DAKC's two-phase structure (partition -> per-owner sort +
    accumulate, three global synchronisations) with 16-byte wire
    elements; the full L2/L3 aggregation stack is exercised by the
    64-bit path and is not duplicated here.
    """
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    n_pes = cost.n_pes
    stats = RunStats(n_pes=n_pes)
    barrier(cost, stats)  # sync 1

    per_pe = np.array_split(
        reads if isinstance(reads, np.ndarray) else np.asarray(reads, dtype=np.uint8),
        n_pes,
    )
    inbox_hi: list[list[np.ndarray]] = [[] for _ in range(n_pes)]
    inbox_lo: list[list[np.ndarray]] = [[] for _ in range(n_pes)]
    for src, rows in enumerate(per_pe):
        pe = stats.pe[src]
        kmers = extract_big_kmers_from_reads(rows, k)
        if canonical and len(kmers):
            kmers = canonical_big(kmers)
        pe.kmers_generated += len(kmers)
        cost.charge_compute(pe, 2 * len(kmers))  # two-word rolling update
        cost.charge_mem(pe, int(np.asarray(rows).size))
        if not len(kmers):
            continue
        owners = owner_pe_big(kmers, n_pes)
        order = np.argsort(owners, kind="stable")
        bounds = np.zeros(n_pes + 1, dtype=np.int64)
        np.cumsum(np.bincount(owners, minlength=n_pes), out=bounds[1:])
        hi_sorted, lo_sorted = kmers.hi[order], kmers.lo[order]
        for dst in range(n_pes):
            lo_i, hi_i = bounds[dst], bounds[dst + 1]
            if hi_i == lo_i:
                continue
            nbytes = int(hi_i - lo_i) * 16
            cost.charge_put(pe, dst, nbytes)
            inbox_hi[dst].append(hi_sorted[lo_i:hi_i])
            inbox_lo[dst].append(lo_sorted[lo_i:hi_i])

    barrier(cost, stats)  # sync 2: inter-phase
    stats.phase1_time = stats.max_clock

    parts: list[tuple[BigKmerArray, np.ndarray]] = []
    for dst in range(n_pes):
        pe = stats.pe[dst]
        if not inbox_hi[dst]:
            continue
        merged = BigKmerArray(
            k, np.concatenate(inbox_hi[dst]), np.concatenate(inbox_lo[dst])
        )
        pe.elements_received += len(merged)
        pe.kmers_received += len(merged)
        # 128-bit keys: twice the radix passes of the 64-bit path.
        cost.charge_compute(pe, 4 * len(merged))
        cost.charge_mem(pe, 4 * 16 * len(merged))
        uniq, counts = accumulate_sorted_big(lexsort_big(merged))
        parts.append((uniq, counts))

    barrier(cost, stats)  # sync 3
    stats.sim_time = stats.max_clock
    stats.phase2_time = stats.sim_time - stats.phase1_time

    if not parts:
        return BigKmerCounts(BigKmerArray.empty(k), np.empty(0, dtype=np.int64)), stats
    all_hi = np.concatenate([p[0].hi for p in parts])
    all_lo = np.concatenate([p[0].lo for p in parts])
    all_counts = np.concatenate([p[1] for p in parts])
    order = np.lexsort((all_lo, all_hi))
    merged = BigKmerArray(k, all_hi[order], all_lo[order])
    return BigKmerCounts(merged, all_counts[order]), stats
