"""Collision-free child-seed derivation for sweeps and simulations.

Ad-hoc ``seed + i`` offsets are a footgun: two sweeps started at
``seed=0`` and ``seed=1`` share all but one of their child streams, and
any component that *also* offsets internally collides with its
neighbours.  NumPy's :class:`~numpy.random.SeedSequence` solves this
properly — ``spawn()`` children are statistically independent no matter
how the roots relate — so every place that needs "one user seed, many
deterministic child RNGs" (``chaos_sweep`` plan seeds, the cluster
bench's per-section streams, the :mod:`repro.dst` trajectory streams)
derives them here.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "spawn_rngs"]

#: Child seeds fit the components that persist them as plain ints
#: (e.g. :class:`repro.fault.FaultPlan.seed`, JSON repro bundles).
_SEED_BITS = 63


def spawn_seeds(seed: int, n: int) -> list[int]:
    """Derive *n* independent integer child seeds from one root seed.

    Children come from ``SeedSequence(seed).spawn(n)``, so different
    roots (even adjacent ones) never produce overlapping child streams
    and the mapping is stable across processes and platforms.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    return [
        int(child.generate_state(2, np.uint64)[0] & ((1 << _SEED_BITS) - 1))
        for child in np.random.SeedSequence(seed).spawn(n)
    ]


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive *n* independent child generators from one root seed."""
    if n < 0:
        raise ValueError("n must be >= 0")
    return [np.random.default_rng(c) for c in np.random.SeedSequence(seed).spawn(n)]
