"""Result type of every counter: the ordered (k-mer, count) array.

All four algorithms in the paper return ``C``, an "Ordered array of
{k-mer, count}".  :class:`KmerCounts` is that array plus the quality-
of-life surface a downstream pipeline needs (lookups, spectra, count
filtering, multiset equality for validation).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..sort.accumulate import counts_to_histogram

__all__ = ["KmerCounts"]


@dataclass(frozen=True)
class KmerCounts:
    """Ordered array of ``{k-mer, count}`` pairs.

    Invariants (checked at construction): ``kmers`` strictly
    increasing; ``counts`` positive; equal lengths.
    """

    k: int
    kmers: np.ndarray  # uint64, strictly increasing
    counts: np.ndarray  # int64, all >= 1

    def __post_init__(self) -> None:
        kmers = np.ascontiguousarray(self.kmers, dtype=np.uint64)
        counts = np.ascontiguousarray(self.counts, dtype=np.int64)
        object.__setattr__(self, "kmers", kmers)
        object.__setattr__(self, "counts", counts)
        if kmers.shape != counts.shape or kmers.ndim != 1:
            raise ValueError("kmers and counts must be 1-D arrays of equal length")
        if kmers.size > 1 and not (kmers[:-1] < kmers[1:]).all():
            raise ValueError("kmers must be strictly increasing (ordered, unique)")
        if counts.size and counts.min() < 1:
            raise ValueError("all counts must be >= 1")

    # -- constructors --------------------------------------------------

    @classmethod
    def empty(cls, k: int) -> "KmerCounts":
        return cls(k, np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64))

    @classmethod
    def from_pairs(cls, k: int, kmers: np.ndarray, counts: np.ndarray) -> "KmerCounts":
        """Build from unordered, possibly duplicated pairs (summing)."""
        from ..sort.accumulate import accumulate_weighted

        u, c = accumulate_weighted(np.asarray(kmers), np.asarray(counts))
        return cls(k, u, c)

    @classmethod
    def from_counter(cls, k: int, counter: Counter) -> "KmerCounts":
        """Build from a ``collections.Counter`` oracle."""
        if not counter:
            return cls.empty(k)
        keys = np.fromiter(counter.keys(), dtype=np.uint64, count=len(counter))
        vals = np.fromiter(counter.values(), dtype=np.int64, count=len(counter))
        order = np.argsort(keys)
        return cls(k, keys[order], vals[order])

    # -- basic queries -------------------------------------------------

    @property
    def n_distinct(self) -> int:
        """Number of distinct k-mers."""
        return int(self.kmers.size)

    @property
    def total(self) -> int:
        """Total k-mer occurrences (sum of counts)."""
        return int(self.counts.sum()) if self.counts.size else 0

    @property
    def max_count(self) -> int:
        return int(self.counts.max()) if self.counts.size else 0

    def get(self, kmer: int, default: int = 0) -> int:
        """Count of one k-mer (binary search; 0 if absent)."""
        i = int(np.searchsorted(self.kmers, np.uint64(kmer)))
        if i < self.kmers.size and self.kmers[i] == np.uint64(kmer):
            return int(self.counts[i])
        return default

    def __len__(self) -> int:
        return self.n_distinct

    def __contains__(self, kmer: int) -> bool:
        return self.get(int(kmer), 0) > 0

    # -- transforms ------------------------------------------------------

    def filter_min_count(self, min_count: int) -> "KmerCounts":
        """Drop k-mers below *min_count* (e.g. error filtering at 2)."""
        mask = self.counts >= min_count
        return KmerCounts(self.k, self.kmers[mask], self.counts[mask])

    def spectrum(self, max_count: int | None = None) -> np.ndarray:
        """k-mer spectrum: ``spectrum[c]`` distinct k-mers with count c."""
        return counts_to_histogram(self.counts, max_count=max_count)

    def heavy_hitters(self, threshold: int) -> "KmerCounts":
        """k-mers with count strictly above *threshold*."""
        mask = self.counts > threshold
        return KmerCounts(self.k, self.kmers[mask], self.counts[mask])

    def to_counter(self) -> Counter:
        """Materialise as a ``collections.Counter`` (tests/oracles)."""
        return Counter(dict(zip(self.kmers.tolist(), self.counts.tolist())))

    # -- comparison ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KmerCounts):
            return NotImplemented
        return (
            self.k == other.k
            and np.array_equal(self.kmers, other.kmers)
            and np.array_equal(self.counts, other.counts)
        )

    def __hash__(self) -> int:  # frozen dataclass wants it; cheap digest
        return hash((self.k, self.n_distinct, self.total))

    def diff(self, other: "KmerCounts", limit: int = 5) -> list[str]:
        """Human-readable differences against another result (tests)."""
        msgs: list[str] = []
        if self.k != other.k:
            msgs.append(f"k differs: {self.k} vs {other.k}")
            return msgs
        mine, theirs = self.to_counter(), other.to_counter()
        for key in list((mine - theirs) + (theirs - mine))[:limit]:
            msgs.append(
                f"kmer {key:#x}: counts {mine.get(key, 0)} vs {theirs.get(key, 0)}"
            )
        return msgs
