"""Distributed sorted-set counting: eliminating the inter-phase barrier.

Section VII: *"Our current sorting-based approach still involves an
explicit barrier between phases 1 and 2.  This synchronization could
be eliminated, thereby allowing the phases to overlap, by using a
distributed sorted-set data structure that supports asynchronous
queries and updates."*

This module implements that future-work design:

* :class:`SortedRunSet` — an LSM-flavoured sorted-set: incoming k-mer
  batches are sorted into *runs*; runs compact by merging once their
  number crosses a threshold, so insertion stays cheap and the final
  accumulate is a k-way merge of a handful of sorted runs instead of a
  full re-sort.  Asynchronous point queries (`count_of`) binary-search
  the runs at any time — no barrier needed to read a count.
* :func:`dakc_overlap_count` — DAKC with the sorted-set receivers:
  Phase-2 work happens *inside* each delivery's service time, so the
  algorithm needs only **two** global synchronisations (entry and
  exit) — the lower bound the paper quotes in Section I.

The trade-off mirrors the paper's discussion: per-element insertion
into the sorted set costs more than appending to a flat array, but the
inter-phase barrier (and the idle time it creates under skew)
disappears.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from ..runtime.cache import CacheAccounting
from ..runtime.collectives import barrier
from ..runtime.conveyors import Conveyor
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.memory import MemoryTracker
from ..runtime.stats import RunStats
from ..runtime.topology import make_topology
from ..sort.accumulate import accumulate_weighted, merge_count_arrays
from .dakc import DakcConfig, _run_phase1_fast, _split_reads
from .l2l3 import receive_service_time
from .result import KmerCounts

__all__ = ["SortedRunSet", "dakc_overlap_count"]


@dataclass
class SortedRunSet:
    """Sorted-set of (k-mer, weight) pairs built from sorted runs.

    Runs are pairs of parallel arrays (keys sorted ascending, weights).
    ``compact_threshold`` bounds the run count: crossing it triggers a
    merge of all runs into one (amortised O(n log r) total work).
    """

    compact_threshold: int = 8
    runs: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    #: Total elements inserted (occurrence-weighted).
    total_weight: int = 0
    #: Merge traffic performed, in elements (for cost charging).
    merged_elements: int = 0

    def insert_batch(self, kmers: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Insert a batch; sorts it into a new run, compacting if needed."""
        kmers = np.asarray(kmers, dtype=np.uint64)
        if kmers.size == 0:
            return
        if weights is None:
            weights = np.ones(kmers.size, dtype=np.int64)
        else:
            weights = np.asarray(weights, dtype=np.int64)
            if weights.shape != kmers.shape:
                raise ValueError("weights must match kmers")
        uniq, counts = accumulate_weighted(kmers, weights)
        self.runs.append((uniq, counts))
        self.total_weight += int(weights.sum())
        if len(self.runs) > self.compact_threshold:
            self._compact()

    def _compact(self) -> None:
        keys = np.concatenate([r[0] for r in self.runs])
        vals = np.concatenate([r[1] for r in self.runs])
        self.merged_elements += int(keys.size)
        self.runs = [accumulate_weighted(keys, vals)]

    def count_of(self, kmer: int) -> int:
        """Asynchronous point query: current count of one k-mer."""
        total = 0
        key = np.uint64(kmer)
        for keys, vals in self.runs:
            i = int(np.searchsorted(keys, key))
            if i < keys.size and keys[i] == key:
                total += int(vals[i])
        return total

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Merge all runs into the final ordered (k-mer, count) array."""
        if not self.runs:
            return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
        self._compact()
        return self.runs[0]

    @property
    def n_runs(self) -> int:
        return len(self.runs)


def dakc_overlap_count(
    reads: np.ndarray | list,
    k: int,
    cost: CostModel | MachineConfig,
    config: DakcConfig | None = None,
    *,
    compact_threshold: int = 8,
) -> tuple[KmerCounts, RunStats]:
    """DAKC with sorted-set receivers: two global synchronisations.

    Identical Phase-1 pipeline (L3/L2/L1/L0 aggregation over the
    conveyor), but deliveries are folded straight into each owner's
    :class:`SortedRunSet`; the insertion cost is charged inside the
    delivery's lazy service time, so no inter-phase barrier exists and
    Phase-2 "sorting" reduces to the final run merge.
    """
    if isinstance(cost, MachineConfig):
        cost = CostModel(cost)
    config = config or DakcConfig()
    if config.mode != "fast":
        raise ValueError("dakc_overlap_count supports fast mode only")
    host_t0 = time.perf_counter()
    n_pes = cost.n_pes
    stats = RunStats(n_pes=n_pes)
    memory = MemoryTracker(n_pes)
    topo = make_topology(config.protocol, n_pes)
    conveyor = Conveyor(
        cost, stats, topo, memory, c0_bytes=config.c0_bytes, c1_packets=config.c1_packets
    )
    per_pe_reads = _split_reads(reads, n_pes)

    barrier(cost, stats)  # sync 1: entry

    _run_phase1_fast(per_pe_reads, k, cost, stats, conveyor, config)

    # Fold deliveries into per-owner sorted sets, charging each
    # delivery's insert inside its lazy-queue service time.
    sets = [SortedRunSet(compact_threshold=compact_threshold) for _ in range(n_pes)]
    results = []
    for dst in range(n_pes):
        pe_stats = stats.pe[dst]
        s = sets[dst]
        jobs = []
        log_r = max(1.0, math.log2(compact_threshold + 1))
        for arrival, group in conveyor.delivered[dst]:
            base = receive_service_time(cost, group)
            # Insert = sort the batch + its amortised share of merges:
            # ~log2(batch) + log2(runs) touches per element.
            n = group.n_elements
            sort_ops = n * max(1.0, math.log2(max(2, n))) + n * log_r
            insert = sort_ops / cost.pe_ops + (2 * 8 * n * log_r) / cost.pe_mem_bw
            jobs.append((arrival, base + insert))
            if group.kind == "HEAVY":
                s.insert_batch(group.kmers, group.counts)
            else:
                s.insert_batch(group.kmers)
            pe_stats.kmers_received += n
            pe_stats.elements_received += n
        pe_stats.clock = cost.busy_period(pe_stats.clock, jobs)
        stats.phase1_time = max(stats.phase1_time, pe_stats.clock)
        # Final run merge (the residue of Phase 2).
        pre_merge = s.merged_elements
        uniq, counts = s.finalize()
        merge_elems = s.merged_elements - pre_merge
        cost.charge_compute(pe_stats, merge_elems * 2)
        cost.charge_mem(pe_stats, merge_elems * 16)
        cache = CacheAccounting(cost.machine.cache_bytes, cost.machine.line_bytes)
        cache.stream(merge_elems * 8)
        pe_stats.cache_misses_p2 += cache.misses
        memory.set_category(dst, "sorted-set", int(uniq.nbytes + counts.nbytes))
        results.append((uniq, counts))

    if config.verify_delivery:
        delivered_weight = sum(s.total_weight for s in sets)
        if delivered_weight != stats.total_kmers:
            from .dakc import DeliveryIntegrityError

            raise DeliveryIntegrityError(
                f"delivery conservation violated: {stats.total_kmers} "
                f"k-mer occurrences generated but {delivered_weight} inserted"
            )

    barrier(cost, stats)  # sync 2: exit — that's all of them
    stats.sim_time = stats.max_clock
    stats.phase2_time = stats.sim_time - stats.phase1_time
    stats.peak_buffer_bytes_per_pe = memory.peak_any_pe()
    stats.extra["protocol"] = config.protocol
    stats.extra["mode"] = "overlap"

    uniq, counts = merge_count_arrays(results)
    stats.host_seconds = time.perf_counter() - host_t0
    return KmerCounts(k, uniq, counts), stats
