"""Application-level aggregation: the L2 and L3 layers of Algorithm 4.

This is the heart of DAKC's communication design (Section IV):

* **L3** (heavy-hitter catcher): parsed k-mers accumulate in one
  per-PE buffer of ``C3`` elements.  A full buffer is sorted and
  run-length accumulated *locally*; k-mers whose local count exceeds
  the heavy threshold (paper: count > 2) travel as ``{kmer, count}``
  pairs on the HEAVY path, the rest on the NORMAL path (a count of 2
  sends the k-mer twice, exactly as Algorithm 4 does).

* **L2** (header amortisation): per-destination buffers pack ``C2``
  NORMAL elements (or ``C2/2`` HEAVY pairs) into a single wire packet,
  so the 32-bit routing header of the 2D/3D protocols is paid once per
  packet rather than once per 8-byte k-mer.

Both layers exist in two implementations with identical semantics and
identical flush statistics:

* :class:`BulkAggregator` — vectorised, array-at-a-time (the fast
  path used for real workloads);
* :class:`ExactAggregator` — a literal per-element transcription of
  Algorithm 4 (``AddToL3Buffer`` / ``AddToL2Buffer``), used by tests
  and the exact execution mode.

Property tests assert the two produce the same delivered multiset and
the same packet/flush counts on identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.conveyors import Conveyor, PacketGroup
from ..runtime.cost import (
    OPS_PER_ELEMENT_BUFFER,
    OPS_PER_ELEMENT_RECV,
    OPS_PER_PACKET,
    CostModel,
)
from ..sort.radix import effective_msd_passes, radix_passes_for_bits
from .owner import owner_pe, owner_pe_scalar

__all__ = [
    "AggregationConfig",
    "BulkAggregator",
    "ExactAggregator",
    "receive_service_time",
]

#: Working set below which an L3 sort stays in the LLC (a slice of any
#: realistic last-level cache; the default 80 KB buffer is far under).
L3_RESIDENT_BYTES: int = 8 * 1024 * 1024

#: Fixed cost of one L3 sort+accumulate invocation: radix histogram
#: zeroing (256 buckets x 8 digits) plus call/recursion bookkeeping.
OPS_PER_L3_FLUSH: int = 2560


@dataclass(frozen=True, slots=True)
class AggregationConfig:
    """Tunables of the application aggregation layers (Table III).

    ``enable_l3`` requires ``enable_l2``: the paper's ablation (Fig. 12)
    studies L0-L1, L0-L2 and L0-L3 configurations — L3 always sits on
    top of L2.
    """

    c2: int = 32
    c3: int = 10_000
    heavy_threshold: int = 2  # HEAVY when local count > this
    enable_l2: bool = True
    enable_l3: bool = True
    elem_bytes: int = 8

    def __post_init__(self) -> None:
        if self.c2 < 2:
            raise ValueError("C2 must be >= 2 (an L2H packet holds C2/2 pairs)")
        if self.c3 < 1:
            raise ValueError("C3 must be >= 1")
        if self.heavy_threshold < 1:
            raise ValueError("heavy threshold must be >= 1")
        if self.enable_l3 and not self.enable_l2:
            raise ValueError("L3 requires L2 (paper evaluates L0-L1/L0-L2/L0-L3)")

    @property
    def l2h_capacity_pairs(self) -> int:
        return max(1, self.c2 // 2)


def receive_service_time(cost: CostModel, group: PacketGroup) -> float:
    """Receive-side processing time of one delivered group.

    ``ProcessReceiveBuffer`` of Algorithm 4: copy the payload into the
    local array ``T`` (memory traffic) plus per-element dispatch and
    per-packet header parsing.  Remote-origin groups additionally pay
    NIC *ingress* on the receiver's bandwidth share — this serialises
    incast at a heavy-hitter's owner PE, which is precisely the load
    imbalance the L3 protocol removes (Section IV-D).
    """
    ops = group.n_elements * OPS_PER_ELEMENT_RECV + group.n_packets * OPS_PER_PACKET
    t = group.payload_bytes / cost.pe_mem_bw + ops / cost.pe_ops
    if not cost.colocated(group.src, group.dst):
        t += group.payload_bytes / cost.pe_link_bw
    return t


class BulkAggregator:
    """Vectorised L3 + L2 pipeline for one source PE."""

    def __init__(
        self,
        src: int,
        config: AggregationConfig,
        conveyor: Conveyor,
        cost: CostModel,
        *,
        k: int = 31,
        charge_costs: bool = True,
    ) -> None:
        self.src = src
        self.config = config
        self.conveyor = conveyor
        self.cost = cost
        self.n_pes = cost.n_pes
        self.k = k
        self.charge_costs = charge_costs
        self._stats = conveyor.stats.pe[src]
        self._sort_passes = radix_passes_for_bits(2 * k, 8)
        # L3 state: pending chunks awaiting a full C3 buffer.
        self._l3_pending: list[np.ndarray] = []
        self._l3_fill = 0
        # L2 state, per destination: pending element arrays + fills.
        self._l2n: dict[int, list[np.ndarray]] = {}
        self._l2n_fill = np.zeros(self.n_pes, dtype=np.int64)
        self._l2h: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
        self._l2h_fill = np.zeros(self.n_pes, dtype=np.int64)

    # -- public API -----------------------------------------------------

    def add_kmers(self, kmers: np.ndarray) -> None:
        """Feed a batch of parsed k-mers through the aggregation stack."""
        kmers = np.asarray(kmers, dtype=np.uint64)
        if kmers.size == 0:
            return
        if self.charge_costs:
            self.cost.charge_compute(
                self._stats, kmers.size * OPS_PER_ELEMENT_BUFFER
            )
        if not self.config.enable_l3:
            self._route_normal(kmers)
            return
        self._l3_pending.append(kmers)
        self._l3_fill += kmers.size
        while self._l3_fill >= self.config.c3:
            chunk = self._take_l3_chunk(self.config.c3)
            self._process_l3_chunk(chunk)

    def flush(self) -> None:
        """End of stream: drain L3 remainder, then all L2 buffers."""
        if self.config.enable_l3 and self._l3_fill:
            chunk = self._take_l3_chunk(self._l3_fill)
            self._process_l3_chunk(chunk)
        for dst in list(self._l2n.keys()):
            self._flush_l2n(dst)
        for dst in list(self._l2h.keys()):
            self._flush_l2h(dst)

    # -- L3 ---------------------------------------------------------------

    def _take_l3_chunk(self, size: int) -> np.ndarray:
        buf = np.concatenate(self._l3_pending) if len(self._l3_pending) > 1 else self._l3_pending[0]
        chunk, rest = buf[:size], buf[size:]
        self._l3_pending = [rest] if rest.size else []
        self._l3_fill = int(rest.size)
        return chunk

    def _process_l3_chunk(self, chunk: np.ndarray) -> None:
        """Sort + accumulate one L3 buffer; classify HEAVY vs NORMAL."""
        self._stats.l3_flushes += 1
        if self.charge_costs:
            # L3 sort cost.  The L3 buffer is an absolute design
            # constant (80 KB at the default C3), cache resident on any
            # real LLC: one read+write sweep plus fixed sort setup
            # (radix histogram zeroing + call overhead).  Only an
            # oversized C3 spills to DRAM and pays per-digit sweeps —
            # the "very high C3 values incur additional sorting
            # overheads" of Fig. 13b.
            chunk_bytes = chunk.size * self.config.elem_bytes
            if chunk_bytes > L3_RESIDENT_BYTES:
                sweeps = effective_msd_passes(int(chunk.size), self._sort_passes)
            else:
                sweeps = 1
            self.cost.charge_compute(
                self._stats, chunk.size * self._sort_passes + OPS_PER_L3_FLUSH
            )
            self.cost.charge_mem(self._stats, 2 * chunk_bytes * sweeps)
        order = np.argsort(chunk, kind="stable")
        s = chunk[order]
        boundaries = np.flatnonzero(s[1:] != s[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [s.size]))
        uniq = s[starts]
        counts = (ends - starts).astype(np.int64)
        heavy_mask = counts > self.config.heavy_threshold
        if heavy_mask.any():
            self._route_heavy(uniq[heavy_mask], counts[heavy_mask])
        light_u = uniq[~heavy_mask]
        light_c = counts[~heavy_mask]
        if light_u.size:
            # Counts 1..threshold are re-expanded into occurrences,
            # exactly as Algorithm 4 re-appends a count-2 k-mer twice.
            self._route_normal(np.repeat(light_u, light_c))

    # -- routing ----------------------------------------------------------

    def _by_owner(self, kmers: np.ndarray, payload: np.ndarray | None = None):
        """Yield (dst, kmer_slice[, payload_slice]) per active owner."""
        owners = owner_pe(kmers, self.n_pes)
        order = np.argsort(owners, kind="stable")
        kmers = kmers[order]
        owners = owners[order]
        if payload is not None:
            payload = payload[order]
        counts = np.bincount(owners, minlength=self.n_pes)
        bounds = np.zeros(self.n_pes + 1, dtype=np.int64)
        np.cumsum(counts, out=bounds[1:])
        for dst in np.flatnonzero(counts):
            lo, hi = bounds[dst], bounds[dst + 1]
            if payload is None:
                yield int(dst), kmers[lo:hi]
            else:
                yield int(dst), kmers[lo:hi], payload[lo:hi]

    def _route_normal(self, kmers: np.ndarray) -> None:
        cfg = self.config
        for dst, chunk in self._by_owner(kmers):
            self._stats.normal_elements_sent += chunk.size
            if not cfg.enable_l2:
                # No L2: every element is its own packet (the header
                # overhead scenario of Section IV-C).
                self._emit(dst, "NORMAL", chunk, None,
                           n_packets=int(chunk.size),
                           payload_bytes=int(chunk.size) * cfg.elem_bytes)
                continue
            self._l2n.setdefault(dst, []).append(chunk)
            self._l2n_fill[dst] += chunk.size
            if self._l2n_fill[dst] >= cfg.c2:
                self._flush_l2n(dst, keep_partial=True)

    def _route_heavy(self, kmers: np.ndarray, counts: np.ndarray) -> None:
        cfg = self.config
        for dst, ch_k, ch_c in self._by_owner(kmers, counts):
            self._stats.heavy_pairs_sent += ch_k.size
            self._l2h.setdefault(dst, []).append((ch_k, ch_c))
            self._l2h_fill[dst] += ch_k.size
            if self._l2h_fill[dst] >= cfg.l2h_capacity_pairs:
                self._flush_l2h(dst, keep_partial=True)

    # -- L2 flushes ---------------------------------------------------------

    def _flush_l2n(self, dst: int, *, keep_partial: bool = False) -> None:
        fill = int(self._l2n_fill[dst])
        if fill == 0:
            self._l2n.pop(dst, None)
            return
        cfg = self.config
        chunks = self._l2n.pop(dst)
        data = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
        if keep_partial:
            n_full = (fill // cfg.c2) * cfg.c2
            send, keep = data[:n_full], data[n_full:]
            n_packets = fill // cfg.c2
        else:
            send, keep = data, data[:0]
            n_packets = -(-fill // cfg.c2)  # ceil: final partial packet
        if keep.size:
            self._l2n[dst] = [keep]
        self._l2n_fill[dst] = int(keep.size)
        if send.size:
            self._stats.l2_flushes += n_packets
            self._emit(dst, "NORMAL", send, None,
                       n_packets=n_packets,
                       payload_bytes=int(send.size) * cfg.elem_bytes)

    def _flush_l2h(self, dst: int, *, keep_partial: bool = False) -> None:
        fill = int(self._l2h_fill[dst])
        if fill == 0:
            self._l2h.pop(dst, None)
            return
        cfg = self.config
        cap = cfg.l2h_capacity_pairs
        parts = self._l2h.pop(dst)
        ks = np.concatenate([p[0] for p in parts])
        cs = np.concatenate([p[1] for p in parts])
        if keep_partial:
            n_full = (fill // cap) * cap
            send_k, keep_k = ks[:n_full], ks[n_full:]
            send_c, keep_c = cs[:n_full], cs[n_full:]
            n_packets = fill // cap
        else:
            send_k, keep_k = ks, ks[:0]
            send_c, keep_c = cs, cs[:0]
            n_packets = -(-fill // cap)
        if keep_k.size:
            self._l2h[dst] = [(keep_k, keep_c)]
        self._l2h_fill[dst] = int(keep_k.size)
        if send_k.size:
            self._stats.l2_flushes += n_packets
            # A HEAVY pair is two 8-byte words on the wire.
            self._emit(dst, "HEAVY", send_k, send_c,
                       n_packets=n_packets,
                       payload_bytes=int(send_k.size) * 2 * cfg.elem_bytes)

    def _emit(
        self,
        dst: int,
        kind: str,
        kmers: np.ndarray,
        counts: np.ndarray | None,
        *,
        n_packets: int,
        payload_bytes: int,
    ) -> None:
        if self.charge_costs:
            self.cost.charge_compute(self._stats, n_packets * OPS_PER_PACKET)
        self.conveyor.inject(
            PacketGroup(
                src=self.src,
                dst=dst,
                kind=kind,
                kmers=kmers,
                counts=counts,
                n_packets=n_packets,
                payload_bytes=payload_bytes,
            )
        )


class ExactAggregator:
    """Per-element transcription of Algorithm 4 (tests / exact mode).

    Follows the pseudocode line by line: ``AddToL3Buffer`` fills a
    single list to exactly ``C3`` before sort+accumulate;
    ``AddToL2Buffer`` appends to per-destination lists, flushing at
    exactly ``C2`` elements (NORMAL) or ``C2/2`` pairs (HEAVY).
    """

    def __init__(
        self,
        src: int,
        config: AggregationConfig,
        conveyor: Conveyor,
        cost: CostModel,
        *,
        k: int = 31,
        charge_costs: bool = False,
    ) -> None:
        self.src = src
        self.config = config
        self.conveyor = conveyor
        self.cost = cost
        self.n_pes = cost.n_pes
        self.k = k
        self.charge_costs = charge_costs
        self._stats = conveyor.stats.pe[src]
        self._l3: list[int] = []
        self._l2n: list[list[int]] = [[] for _ in range(self.n_pes)]
        self._l2h: list[list[tuple[int, int]]] = [[] for _ in range(self.n_pes)]

    def add_kmer(self, kmer: int) -> None:
        """``AsyncAdd``'s send half for a single k-mer."""
        cfg = self.config
        if not cfg.enable_l3:
            self._add_to_l2(int(kmer), 1)
            return
        self._l3.append(int(kmer))
        if len(self._l3) == cfg.c3:
            self._process_l3()

    def _process_l3(self) -> None:
        self._stats.l3_flushes += 1
        self._l3.sort()
        # Accumulate the sorted buffer.
        runs: list[tuple[int, int]] = []
        for kmer in self._l3:
            if runs and runs[-1][0] == kmer:
                runs[-1] = (kmer, runs[-1][1] + 1)
            else:
                runs.append((kmer, 1))
        self._l3 = []
        for kmer, count in runs:
            self._add_to_l2(kmer, count)

    def _add_to_l2(self, kmer: int, count: int) -> None:
        """``AddToL2Buffer`` of Algorithm 4."""
        cfg = self.config
        dst = owner_pe_scalar(kmer, self.n_pes)
        if not cfg.enable_l2:
            self._stats.normal_elements_sent += count
            for _ in range(count):
                self._emit_packet(dst, "NORMAL", [kmer], None)
            return
        if count > cfg.heavy_threshold:
            self._stats.heavy_pairs_sent += 1
            self._l2h[dst].append((kmer, count))
            if len(self._l2h[dst]) == cfg.l2h_capacity_pairs:
                pairs = self._l2h[dst]
                self._l2h[dst] = []
                self._emit_packet(
                    dst, "HEAVY", [p[0] for p in pairs], [p[1] for p in pairs]
                )
        else:
            # count <= threshold: append `count` occurrences.
            self._stats.normal_elements_sent += count
            for _ in range(count):
                self._l2n[dst].append(kmer)
                if len(self._l2n[dst]) == cfg.c2:
                    elems = self._l2n[dst]
                    self._l2n[dst] = []
                    self._emit_packet(dst, "NORMAL", elems, None)

    def flush(self) -> None:
        cfg = self.config
        if cfg.enable_l3 and self._l3:
            self._stats.l3_flushes += 1
            self._l3.sort()
            runs: list[tuple[int, int]] = []
            for kmer in self._l3:
                if runs and runs[-1][0] == kmer:
                    runs[-1] = (kmer, runs[-1][1] + 1)
                else:
                    runs.append((kmer, 1))
            self._l3 = []
            for kmer, count in runs:
                self._add_to_l2(kmer, count)
        for dst in range(self.n_pes):
            if self._l2n[dst]:
                elems = self._l2n[dst]
                self._l2n[dst] = []
                self._emit_packet(dst, "NORMAL", elems, None)
            if self._l2h[dst]:
                pairs = self._l2h[dst]
                self._l2h[dst] = []
                self._emit_packet(
                    dst, "HEAVY", [p[0] for p in pairs], [p[1] for p in pairs]
                )

    def _emit_packet(
        self, dst: int, kind: str, kmers: list[int], counts: list[int] | None
    ) -> None:
        self._stats.l2_flushes += 1
        k_arr = np.asarray(kmers, dtype=np.uint64)
        c_arr = None if counts is None else np.asarray(counts, dtype=np.int64)
        per_elem = self.config.elem_bytes * (2 if kind == "HEAVY" else 1)
        if self.charge_costs:
            self.cost.charge_compute(self._stats, OPS_PER_PACKET)
        self.conveyor.inject(
            PacketGroup(
                src=self.src,
                dst=dst,
                kind=kind,
                kmers=k_arr,
                counts=c_arr,
                n_packets=1,
                payload_bytes=int(k_arr.size) * per_elem,
            )
        )
