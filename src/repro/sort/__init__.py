"""Sorting substrate: radix / hybrid sorting and accumulation.

Implements the Phase-2 kernels of every counter in the paper:
LSD radix sort (:mod:`repro.sort.radix`), the ska_sort-style hybrid
policy (:mod:`repro.sort.hybrid`), sortedness heuristics
(:mod:`repro.sort.checks`) and the accumulate sweeps
(:mod:`repro.sort.accumulate`).
"""

from .accumulate import (
    accumulate_sorted,
    accumulate_weighted,
    counts_to_histogram,
    merge_count_arrays,
)
from .checks import count_descents, is_sorted, presortedness, sorted_run_fraction
from .hybrid import COMPARISON_THRESHOLD, PRESORTED_CUTOFF, HybridSortStats, hybrid_sort
from .radix import RadixSortStats, digit_histogram, radix_passes_for_bits, radix_sort

__all__ = [
    "radix_sort",
    "radix_passes_for_bits",
    "digit_histogram",
    "RadixSortStats",
    "hybrid_sort",
    "HybridSortStats",
    "COMPARISON_THRESHOLD",
    "PRESORTED_CUTOFF",
    "is_sorted",
    "presortedness",
    "count_descents",
    "sorted_run_fraction",
    "accumulate_sorted",
    "accumulate_weighted",
    "counts_to_histogram",
    "merge_count_arrays",
]
