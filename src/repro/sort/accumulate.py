"""Accumulation of sorted k-mer arrays into (k-mer, count) pairs.

``Accumulate`` in Algorithms 1-4 "sweeps a sorted array of k-mers and
counts the frequency of each k-mer".  Two variants are needed:

* :func:`accumulate_sorted` — plain run-length accumulate of a sorted
  k-mer array (Phase 2 of every counter);
* :func:`accumulate_weighted` — accumulate of ``(kmer, count)`` pairs,
  required on the receive side of DAKC's L3 protocol where HEAVY
  packets already carry partial counts (Algorithm 4,
  ``ProcessReceiveBuffer``).

Both are single vectorised sweeps (``np.diff`` on the sorted keys +
``np.add.reduceat`` / prefix-sum differences), not Python loops.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "accumulate_sorted",
    "accumulate_weighted",
    "counts_to_histogram",
    "merge_count_arrays",
]


def accumulate_sorted(kmers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length accumulate a **sorted** k-mer array.

    Returns ``(unique_kmers, counts)`` with ``counts.sum() == len(kmers)``.
    Raises :class:`ValueError` if the input is not sorted — callers are
    expected to have sorted already; silently accepting unsorted input
    would return wrong counts.
    """
    a = np.asarray(kmers, dtype=np.uint64)
    if a.size == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    if a.size > 1 and (a[:-1] > a[1:]).any():
        raise ValueError("accumulate_sorted requires a sorted array")
    boundaries = np.flatnonzero(a[1:] != a[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [a.size]))
    return a[starts].copy(), (ends - starts).astype(np.int64)


def accumulate_weighted(
    kmers: np.ndarray, weights: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Accumulate ``(kmer, count)`` pairs; input need not be sorted.

    Sorts by k-mer (stable) and sums weights per key.  This is the
    receive-side accumulate DAKC runs when HEAVY packets carry
    pre-aggregated ``{kmer, count}`` pairs.
    """
    a = np.asarray(kmers, dtype=np.uint64)
    w = np.asarray(weights, dtype=np.int64)
    if a.shape != w.shape:
        raise ValueError("kmers and weights must have the same shape")
    if a.size == 0:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    order = np.argsort(a, kind="stable")
    a = a[order]
    w = w[order]
    boundaries = np.flatnonzero(a[1:] != a[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    uniq = a[starts].copy()
    sums = np.add.reduceat(w, starts)
    return uniq, sums.astype(np.int64)


def counts_to_histogram(counts: np.ndarray, *, max_count: int | None = None) -> np.ndarray:
    """Histogram of count values (the k-mer *spectrum*).

    ``hist[c]`` = number of distinct k-mers occurring exactly ``c``
    times.  This is the classic k-mer spectrum used for genome-size
    estimation and error filtering (motivating applications in the
    paper's introduction).
    """
    c = np.asarray(counts, dtype=np.int64)
    if c.size == 0:
        return np.zeros(1, dtype=np.int64)
    if (c < 0).any():
        raise ValueError("counts must be non-negative")
    hist = np.bincount(c)
    if max_count is not None:
        if hist.size > max_count + 1:
            tail = hist[max_count + 1 :].sum()
            hist = hist[: max_count + 1].copy()
            hist[max_count] += tail
        else:
            hist = np.pad(hist, (0, max_count + 1 - hist.size))
    return hist


def merge_count_arrays(
    parts: list[tuple[np.ndarray, np.ndarray]]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge several ``(unique_kmers, counts)`` arrays into one.

    Used to combine per-PE local results into a global ordered array
    (the paper's final ``C``).  Distinct PEs own disjoint key sets when
    partitioned by OwnerPE, but this merge is general and sums
    duplicate keys.
    """
    parts = [p for p in parts if p[0].size]
    if not parts:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)
    keys = np.concatenate([p[0] for p in parts])
    vals = np.concatenate([p[1] for p in parts])
    return accumulate_weighted(keys, vals)
