"""Hybrid radix/comparison sort (ska_sort-style).

The paper (Section V, Phase 2) uses "a hybrid sorting algorithm [47]
that starts with an in-place radix sort and falls back to
comparison-based sorting using a heuristic" — Skarupke's ska_sort.
We reproduce the *decision structure*:

* arrays at or below :data:`COMPARISON_THRESHOLD` use a comparison
  sort (NumPy's introsort stands in for std::sort);
* nearly-sorted arrays (detected via
  :func:`repro.sort.checks.presortedness`) skip straight to the
  comparison sort, which handles them in near-linear time — this is
  exactly the "detect partially sorted arrays and skip sorting them"
  behaviour that makes measured Phase-2 cache misses undershoot the
  worst-case radix model (Fig. 3);
* everything else takes the LSD radix path keyed on the informative
  bits only.

The sorter reports which path it took and the byte traffic it
generated, so the cost model can distinguish worst-case radix passes
from the cheap fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .checks import presortedness
from .radix import RadixSortStats, radix_sort

__all__ = ["HybridSortStats", "hybrid_sort", "COMPARISON_THRESHOLD", "PRESORTED_CUTOFF"]

#: Below this size a comparison sort beats radix setup costs.
COMPARISON_THRESHOLD: int = 256

#: Presortedness above which the comparison fallback is used.
PRESORTED_CUTOFF: float = 0.95


@dataclass(slots=True)
class HybridSortStats:
    """Which paths the hybrid sorter took, plus radix traffic."""

    comparison_calls: int = 0
    radix_calls: int = 0
    presorted_skips: int = 0
    radix: RadixSortStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.radix is None:
            self.radix = RadixSortStats()


def hybrid_sort(
    arr: np.ndarray,
    *,
    key_bits: int = 64,
    digit_bits: int = 8,
    stats: HybridSortStats | None = None,
    comparison_threshold: int = COMPARISON_THRESHOLD,
    presorted_cutoff: float = PRESORTED_CUTOFF,
) -> np.ndarray:
    """Sort a ``uint64`` array with the ska_sort-style hybrid policy."""
    a = np.ascontiguousarray(arr, dtype=np.uint64)
    if a.size <= 1:
        return a.copy()
    if a.size <= comparison_threshold:
        if stats is not None:
            stats.comparison_calls += 1
        return np.sort(a, kind="quicksort")
    if presortedness(a) >= presorted_cutoff:
        if stats is not None:
            stats.presorted_skips += 1
            stats.comparison_calls += 1
        return np.sort(a, kind="stable")  # timsort-ish path on runs
    if stats is not None:
        stats.radix_calls += 1
        return radix_sort(a, key_bits=key_bits, digit_bits=digit_bits, stats=stats.radix)
    return radix_sort(a, key_bits=key_bits, digit_bits=digit_bits)
