"""LSD radix sort for packed ``uint64`` k-mers.

The paper's serial, BSP (PakMan*) and DAKC counters all use radix
sorting (Section III-A: "We adopt the sorting-based approach"), and the
analytical model's Phase 2 assumes an in-place byte-at-a-time radix
sort with ``2**ceil(log2(2k)) / 8`` passes (Eq. 12).

This module implements a least-significant-digit counting radix sort
with a configurable digit width.  Each pass is fully vectorised:
extract the digit, histogram it (``np.bincount``), prefix-sum, scatter
(stable, via ``argsort(kind="stable")`` on the digit — NumPy's stable
counting path — or an explicit cumulative scatter).  The pass count,
bytes touched and histogram sizes are reported so the runtime layer can
charge the machine model for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RadixSortStats",
    "radix_sort",
    "radix_passes_for_bits",
    "digit_histogram",
    "effective_msd_passes",
]


def effective_msd_passes(n: int, worst_case: int) -> int:
    """Digit levels an MSD radix sorter actually needs for *n* keys.

    ska_sort recurses byte-by-byte from the most significant digit and
    stops once buckets are comparison-sortable in cache; roughly
    ``log2(n) / 8`` levels suffice to separate n distinct keys.  The
    analytical model assumes the worst case (``2^ceil(log2 2k)/8``
    passes, Eq. 12), which is why measured Phase-2 cache misses
    undershoot the prediction in Fig. 3.
    """
    import math

    if worst_case < 1:
        raise ValueError("worst_case must be >= 1")
    if n <= 1:
        return 1
    return max(1, min(worst_case, math.ceil(math.log2(n) / 8)))


@dataclass(slots=True)
class RadixSortStats:
    """Operation counts of one radix sort, for cost-model charging."""

    n: int = 0
    passes: int = 0
    digit_bits: int = 0
    bytes_moved: int = 0  # data bytes read+written across all passes
    histogram_ops: int = 0

    def merge(self, other: "RadixSortStats") -> None:
        self.n += other.n
        self.passes = max(self.passes, other.passes)
        self.digit_bits = max(self.digit_bits, other.digit_bits)
        self.bytes_moved += other.bytes_moved
        self.histogram_ops += other.histogram_ops


def radix_passes_for_bits(key_bits: int, digit_bits: int) -> int:
    """Number of LSD passes to cover *key_bits* with *digit_bits* digits."""
    if key_bits <= 0:
        return 0
    return -(-key_bits // digit_bits)


def digit_histogram(arr: np.ndarray, shift: int, digit_bits: int) -> np.ndarray:
    """Histogram of the ``digit_bits``-wide digit at bit offset *shift*."""
    mask = np.uint64((1 << digit_bits) - 1)
    digits = (arr >> np.uint64(shift)) & mask
    return np.bincount(digits.astype(np.int64), minlength=1 << digit_bits)


def radix_sort(
    arr: np.ndarray,
    *,
    key_bits: int = 64,
    digit_bits: int = 8,
    stats: RadixSortStats | None = None,
) -> np.ndarray:
    """Stable LSD radix sort of a ``uint64`` array.

    Parameters
    ----------
    arr:
        Input array (not modified).
    key_bits:
        Number of low-order bits that carry key information.  For
        k-mers this is ``2 * k``; passing fewer bits skips dead passes
        exactly like a production radix sorter keyed on 2k bits.
    digit_bits:
        Width of each counting pass (8 = byte-at-a-time, the model's
        assumption).
    stats:
        Optional accumulator for operation counts.

    Returns
    -------
    numpy.ndarray
        Sorted copy of *arr*.
    """
    if not 1 <= digit_bits <= 16:
        raise ValueError("digit_bits must be in [1, 16]")
    if not 0 <= key_bits <= 64:
        raise ValueError("key_bits must be in [0, 64]")
    a = np.ascontiguousarray(arr, dtype=np.uint64)
    n = a.size
    n_passes = radix_passes_for_bits(key_bits, digit_bits)
    if stats is not None:
        stats.n += n
        stats.passes = max(stats.passes, n_passes)
        stats.digit_bits = max(stats.digit_bits, digit_bits)
    if n <= 1 or n_passes == 0:
        return a.copy()
    mask = np.uint64((1 << digit_bits) - 1)
    radix = 1 << digit_bits
    src = a.copy()
    dst = np.empty_like(src)
    for p in range(n_passes):
        shift = np.uint64(p * digit_bits)
        digits = ((src >> shift) & mask).astype(np.int64)
        counts = np.bincount(digits, minlength=radix)
        if stats is not None:
            stats.bytes_moved += 2 * n * 8  # read src + write dst
            stats.histogram_ops += n
        if counts.max(initial=0) == n:
            # All keys share this digit: pass is a no-op, skip the move
            # (this is the "detect partially sorted" behaviour the
            # paper notes for real sorters, at digit granularity).
            continue
        # Stable scatter.  A stable argsort of the digits *is* the
        # counting-sort permutation (equal digits keep input order), so
        # one gather realises the pass.
        order = np.argsort(digits, kind="stable")
        np.take(src, order, out=dst)
        src, dst = dst, src
    return src
