"""Sortedness detection and sorting heuristics.

The paper's counters use Skarupke's hybrid sorter, which "can detect
partially sorted arrays and skip sorting them" (Section V-A) — the
reason measured Phase-2 cache misses undershoot the worst-case radix
model in Fig. 3.  These helpers provide the detection primitives the
hybrid sorter uses.
"""

from __future__ import annotations

import numpy as np

__all__ = ["is_sorted", "sorted_run_fraction", "count_descents", "presortedness"]


def is_sorted(arr: np.ndarray) -> bool:
    """True if *arr* is non-decreasing (vectorised single pass)."""
    a = np.asarray(arr)
    if a.size <= 1:
        return True
    return bool(np.all(a[:-1] <= a[1:]))


def count_descents(arr: np.ndarray) -> int:
    """Number of positions where ``arr[i] > arr[i+1]``."""
    a = np.asarray(arr)
    if a.size <= 1:
        return 0
    return int(np.count_nonzero(a[:-1] > a[1:]))


def sorted_run_fraction(arr: np.ndarray) -> float:
    """Mean length fraction of maximal non-decreasing runs.

    1.0 for a sorted array; approaches ``1/size`` for a strictly
    decreasing one.  Used by the hybrid sorter's "skip the pass"
    heuristic.
    """
    a = np.asarray(arr)
    if a.size <= 1:
        return 1.0
    runs = count_descents(a) + 1
    return 1.0 / runs


def presortedness(arr: np.ndarray) -> float:
    """Fraction of adjacent pairs already in order (1.0 == sorted)."""
    a = np.asarray(arr)
    if a.size <= 1:
        return 1.0
    return 1.0 - count_descents(a) / (a.size - 1)
