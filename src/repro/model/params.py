"""Model constants: Tables III and IV of the paper.

Table IV's Phoenix machine parameters live on
:func:`repro.runtime.machine.phoenix_intel`; this module re-exports
them in the paper's notation and carries the Table III aggregation
defaults, so every benchmark and test references one authoritative
source.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.machine import MachineConfig, phoenix_intel

__all__ = [
    "DEFAULT_C1",
    "DEFAULT_C2",
    "DEFAULT_C3",
    "HEAVY_THRESHOLD",
    "Table4Params",
    "table4_params",
    "table4_rows",
]

#: Table III defaults: L1 runtime staging (packets).
DEFAULT_C1: int = 1024
#: Table III defaults: L2 packet size (k-mers per packet).
DEFAULT_C2: int = 32
#: Table III defaults: L3 heavy-hitter buffer (k-mers).
DEFAULT_C3: int = 10_000
#: Algorithm 4's HEAVY rule: count > 2 goes on the HEAVY path.
HEAVY_THRESHOLD: int = 2


@dataclass(frozen=True, slots=True)
class Table4Params:
    """Table IV in the paper's notation."""

    c_node: float  # Peak INT64 (ops/s)
    beta_mem: float  # Memory bandwidth (bytes/s)
    z: int  # Fast memory (bytes)
    l: int  # Cacheline size (bytes)
    beta_link: float  # Link bandwidth (bytes/s)


def table4_params(machine: MachineConfig | None = None) -> Table4Params:
    """Table IV parameters of a machine (default: Phoenix Intel)."""
    m = machine or phoenix_intel(1)
    return Table4Params(
        c_node=m.c_node,
        beta_mem=m.beta_mem,
        z=m.cache_bytes,
        l=m.line_bytes,
        beta_link=m.beta_link,
    )


def table4_rows(machine: MachineConfig | None = None) -> list[dict[str, str]]:
    """Printable rows of Table IV."""
    p = table4_params(machine)
    return [
        {"Parameter": "Peak INT64", "Symbol": "C_node", "Value": f"{p.c_node / 1e9:.1f} GOp/s"},
        {"Parameter": "Memory Bandwidth", "Symbol": "beta_mem", "Value": f"{p.beta_mem / 1e9:.1f} GB/s"},
        {"Parameter": "Fast Memory", "Symbol": "Z", "Value": f"{p.z / 1024 / 1024:.0f} MB"},
        {"Parameter": "Cacheline size", "Symbol": "L", "Value": f"{p.l} B"},
        {"Parameter": "Link Bandwidth", "Symbol": "beta_link", "Value": f"{p.beta_link / 1e9:.1f} GB/s"},
    ]
