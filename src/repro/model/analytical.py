"""The paper's analytical model of k-mer counting (Section V).

Implements Eqs. 9-18 verbatim.  The model decomposes the workload into
two phases — (1) k-mer generation and reshuffling, (2) sorting and
accumulation — and prices each phase's computation, intranode traffic
(via optimal-replacement cache-miss counts) and internode traffic on a
node-level machine description (Table IV).

Model assumptions (Section V): perfectly balanced input/output, 100%
intranode parallel efficiency, cache-oblivious algorithms, a two-level
memory hierarchy with optimal line replacement, and worst-case
byte-at-a-time in-place radix sorting in Phase 2.

``P`` in these equations is the **node** count (the paper validates on
"8 nodes (192 cores)" with Table IV *node* parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.machine import MachineConfig
from ..seq.kmers import kmer_width_bits

__all__ = ["PhaseModel", "ModelPrediction", "predict", "cache_miss_model"]


@dataclass(frozen=True, slots=True)
class PhaseModel:
    """Predicted components of one phase (all times in seconds)."""

    t_comp: float
    t_intra: float
    t_inter: float
    misses: float  # predicted LLC misses per node

    @property
    def t_comm_sum(self) -> float:
        """Eq. 14: communication = intranode + internode."""
        return self.t_intra + self.t_inter

    @property
    def t_comm_max(self) -> float:
        """Eq. 15: communication = max(intranode, internode)."""
        return max(self.t_intra, self.t_inter)

    def total(self, comm_model: str = "sum") -> float:
        """Eq. 16/17: phase time = max(compute, communication)."""
        comm = self.t_comm_sum if comm_model == "sum" else self.t_comm_max
        return max(self.t_comp, comm)


@dataclass(frozen=True, slots=True)
class ModelPrediction:
    """Full prediction for one (workload, machine, k) triple."""

    n: int  # reads
    m: int  # bases per read
    k: int
    nodes: int
    phase1: PhaseModel
    phase2: PhaseModel

    @property
    def n_kmers(self) -> int:
        return self.n * max(0, self.m - self.k + 1)

    def t_total(self, comm_model: str = "sum") -> float:
        """Eq. 18: ``T_total = T1 + T2`` (barrier between phases)."""
        return self.phase1.total(comm_model) + self.phase2.total(comm_model)

    def breakdown(self, comm_model: str = "sum") -> dict[str, float]:
        """Fraction of total time in compute / intranode / internode.

        This is Fig. 5's pie: no computation/communication overlap is
        assumed, so the shares are of the *sum* of all components.
        """
        comp = self.phase1.t_comp + self.phase2.t_comp
        intra = self.phase1.t_intra + self.phase2.t_intra
        inter = self.phase1.t_inter + self.phase2.t_inter
        total = comp + intra + inter
        if total == 0:
            return {"compute": 0.0, "intranode": 0.0, "internode": 0.0}
        return {
            "compute": comp / total,
            "intranode": intra / total,
            "internode": inter / total,
        }


def cache_miss_model(
    n: int, m: int, k: int, nodes: int, line_bytes: int
) -> tuple[float, float]:
    """Predicted LLC misses per node for phases 1 and 2.

    Phase 1 (Section V, Phase 1): parsing the reads costs
    ``1 + mn/(P L)`` misses and storing the generated k-mers costs
    ``1 + n(m-k+1) * 2^ceil(log2 2k) / (8 P L)``.

    Phase 2 (Eq. 13's miss term): the store-side miss count repeated
    once per worst-case radix pass (``2^ceil(log2 2k) / 8`` passes).
    """
    width = kmer_width_bits(k)
    n_kmers = n * max(0, m - k + 1)
    parse = 1 + (m * n) / (nodes * line_bytes)
    store = 1 + (n_kmers * width) / (8 * nodes * line_bytes)
    passes = width / 8
    return parse + store, store * passes


def predict(
    n: int,
    m: int,
    k: int,
    machine: MachineConfig,
    *,
    nodes: int | None = None,
) -> ModelPrediction:
    """Evaluate the analytical model (Eqs. 9-18).

    Parameters mirror Table I: *n* reads of *m* bases, counting
    k-mers of length *k* on *nodes* nodes of *machine* (defaults to
    ``machine.nodes``).
    """
    p = nodes if nodes is not None else machine.nodes
    if p < 1:
        raise ValueError("node count must be >= 1")
    width = kmer_width_bits(k)
    n_kmers = n * max(0, m - k + 1)
    line = machine.line_bytes

    # --- Phase 1 ---
    t_comp1 = n_kmers / (p * machine.c_node)  # Eq. 9
    misses_parse = 1 + (m * n) / (p * line)
    misses_store = 1 + (n_kmers * width) / (8 * p * line)
    t_intra1 = (misses_parse + misses_store) * line / machine.beta_mem  # Eq. 10
    t_inter1 = (n_kmers * width) / (4 * p * machine.beta_link)  # Eq. 11
    phase1 = PhaseModel(t_comp1, t_intra1, t_inter1, misses_parse + misses_store)

    # --- Phase 2 ---
    passes = width / 8
    t_comp2 = (n_kmers * width) / (8 * p * machine.c_node)  # Eq. 12
    misses2 = misses_store * passes
    t_intra2 = misses2 * line / machine.beta_mem  # Eq. 13
    phase2 = PhaseModel(t_comp2, t_intra2, 0.0, misses2)

    return ModelPrediction(n=n, m=m, k=k, nodes=p, phase1=phase1, phase2=phase2)
