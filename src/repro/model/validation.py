"""Model validation: predicted vs measured (Figs. 3 and 4).

The paper validates its analytical model against PAPI cache-miss
counters and measured phase times on 8 Phoenix nodes.  We validate the
same way against the simulated runtime: run DAKC on a scaled workload,
read its measured cache-miss and phase-time counters, and compare with
the model evaluated *at the scaled workload's own (n, m, k, P)* — the
comparison is model-vs-measurement at equal scale, exactly as in the
paper.

The expected relationships (asserted by tests with tolerance bands):

* predicted Phase-1 misses <= measured (optimal replacement vs LRU);
* predicted Phase-2 misses >= measured when the sorter skips work
  (worst-case radix model), converging as data grows;
* predicted times underestimate but stay within the same ballpark
  (the paper's wording for Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dakc import DakcConfig, dakc_count
from ..runtime.cost import CostModel
from ..runtime.machine import MachineConfig
from ..runtime.stats import RunStats
from ..seq.datasets import Workload
from .analytical import ModelPrediction, predict

__all__ = ["ValidationRow", "validate_workload", "scaling_curve_agreement"]


@dataclass(frozen=True, slots=True)
class ValidationRow:
    """One Fig. 3/4 data point: model vs measurement."""

    dataset: str
    n_kmers: int
    nodes: int
    predicted_misses_p1: float
    measured_misses_p1: float
    predicted_misses_p2: float
    measured_misses_p2: float
    predicted_t1_sum: float
    predicted_t1_max: float
    measured_t1: float
    predicted_t2: float
    measured_t2: float

    @property
    def miss_ratio_p1(self) -> float:
        """measured / predicted, Phase 1 (expected >= ~1)."""
        return self.measured_misses_p1 / max(1e-12, self.predicted_misses_p1)

    @property
    def miss_ratio_p2(self) -> float:
        """measured / predicted, Phase 2 (expected <= ~1)."""
        return self.measured_misses_p2 / max(1e-12, self.predicted_misses_p2)


def validate_workload(
    workload: Workload,
    k: int,
    machine: MachineConfig,
    *,
    cores_per_pe: int | None = None,
    config: DakcConfig | None = None,
) -> tuple[ValidationRow, RunStats, ModelPrediction]:
    """Run DAKC on *workload* and pair measurements with predictions."""
    cost = CostModel(
        machine,
        cores_per_pe=cores_per_pe
        if cores_per_pe is not None
        else machine.cores_per_node,
    )
    _, stats = dakc_count(workload.reads, k, cost, config or DakcConfig())

    pred = predict(workload.n_reads, workload.read_len, k, machine)
    # Per-node measured misses: sum over the PEs of one node; with the
    # default PE-per-node model this is just the mean over PEs times
    # PEs per node.
    pes_per_node = cost.pes_per_node
    meas_p1 = np.array([p.cache_misses_p1 for p in stats.pe], dtype=np.float64)
    meas_p2 = np.array([p.cache_misses_p2 for p in stats.pe], dtype=np.float64)
    per_node_p1 = meas_p1.mean() * pes_per_node
    per_node_p2 = meas_p2.mean() * pes_per_node

    row = ValidationRow(
        dataset=workload.spec.display,
        n_kmers=workload.n_kmers(k),
        nodes=machine.nodes,
        predicted_misses_p1=pred.phase1.misses,
        measured_misses_p1=float(per_node_p1),
        predicted_misses_p2=pred.phase2.misses,
        measured_misses_p2=float(per_node_p2),
        predicted_t1_sum=pred.phase1.total("sum"),
        predicted_t1_max=pred.phase1.total("max"),
        measured_t1=stats.phase1_time,
        predicted_t2=pred.phase2.total("sum"),
        measured_t2=stats.phase2_time,
    )
    return row, stats, pred


def scaling_curve_agreement(
    workload: Workload,
    k: int,
    machine: MachineConfig,
    node_counts: list[int],
    *,
    comm_model: str = "sum",
) -> tuple[np.ndarray, np.ndarray, float]:
    """Model vs simulation across a strong-scaling sweep.

    Runs DAKC at every node count, evaluates the analytical model at
    the same points, and returns ``(measured, predicted, correlation)``
    where correlation is Pearson's r between the two curves — a whole-
    curve validation on top of Fig. 4's per-point comparison.
    """
    measured = []
    predicted = []
    for nodes in node_counts:
        m = machine.with_nodes(nodes)
        cost = CostModel(m, cores_per_pe=m.cores_per_node)
        _, stats = dakc_count(workload.reads, k, cost, DakcConfig())
        measured.append(stats.sim_time)
        pred = predict(workload.n_reads, workload.read_len, k, m)
        predicted.append(pred.t_total(comm_model))
    measured_arr = np.array(measured)
    predicted_arr = np.array(predicted)
    if len(node_counts) < 2 or measured_arr.std() == 0 or predicted_arr.std() == 0:
        corr = 1.0
    else:
        corr = float(np.corrcoef(measured_arr, predicted_arr)[0, 1])
    return measured_arr, predicted_arr, corr
