"""Operational-intensity analysis (Section VII's GPU discussion).

The paper closes by estimating DAKC's op-to-byte ratio at ~0.12 iadd64
per byte — far below the Phoenix CPUs' ~2.6 and an H100's ~8.3 — to
argue that k-mer counting is bandwidth-bound on any current processor.
This module computes those quantities from the analytical model so the
claim regenerates from first principles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.machine import MachineConfig, phoenix_intel
from ..seq.kmers import kmer_width_bits

__all__ = [
    "operational_intensity",
    "hardware_balance",
    "H100_BALANCE",
    "RooflinePoint",
    "roofline_point",
]

#: NVIDIA H100 hardware balance quoted by the paper (iadd64/byte).
H100_BALANCE: float = 8.3


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """One workload's position against a machine's roofline."""

    intensity: float  # iadd64 per byte of the workload
    machine_balance: float  # iadd64 per byte of the machine
    bound: str  # "memory" | "compute"

    @property
    def compute_utilisation(self) -> float:
        """Fraction of peak INT64 throughput achievable when
        bandwidth-bound (intensity / balance, capped at 1)."""
        return min(1.0, self.intensity / self.machine_balance)


def operational_intensity(n: int, m: int, k: int) -> float:
    """iadd64 per byte of the full k-mer counting workload.

    Ops: one per generated k-mer (Eq. 9's numerator) plus one per
    k-mer per radix pass (Eq. 12).  Bytes: the read scan, the k-mer
    store, and one sweep of the k-mer array per radix pass (the
    miss-generating traffic of Eqs. 10 and 13, sans the constant-1
    compulsory terms).  For n reads of m=150 bases and k=31 this
    evaluates to ~0.12 iadd64/byte — one 64-bit add per 8.14 bytes,
    the figure Section VII quotes.
    """
    width = kmer_width_bits(k)
    n_kmers = n * max(0, m - k + 1)
    if n_kmers == 0:
        return 0.0
    passes = width / 8
    ops = n_kmers * (1 + passes)
    kmer_bytes = n_kmers * width / 8
    bytes_moved = (m * n) + kmer_bytes + kmer_bytes * passes
    return ops / bytes_moved


def hardware_balance(machine: MachineConfig | None = None) -> float:
    """Machine compute-to-bandwidth balance in iadd64/byte."""
    m = machine or phoenix_intel(1)
    return m.c_node / m.beta_mem


def roofline_point(
    n: int, m: int, k: int, machine: MachineConfig | None = None
) -> RooflinePoint:
    """Classify a workload as memory- or compute-bound on a machine."""
    machine = machine or phoenix_intel(1)
    intensity = operational_intensity(n, m, k)
    balance = hardware_balance(machine)
    return RooflinePoint(
        intensity=intensity,
        machine_balance=balance,
        bound="memory" if intensity < balance else "compute",
    )
