"""Analytical model of Section V plus footprint/roofline analyses."""

from .analytical import ModelPrediction, PhaseModel, cache_miss_model, predict
from .gpu import A100, H100, Accelerator, GpuProjection, project_speedup
from .footprints import (
    DAKC_RESIDENCY,
    HYSORTK_MAX_KMERS,
    HYSORTK_RESIDENCY,
    PAKMAN_RESIDENCY,
    check_fits,
    footprint_bytes_per_node,
)
from .params import (
    DEFAULT_C1,
    DEFAULT_C2,
    DEFAULT_C3,
    HEAVY_THRESHOLD,
    Table4Params,
    table4_params,
    table4_rows,
)
from .roofline import (
    H100_BALANCE,
    RooflinePoint,
    hardware_balance,
    operational_intensity,
    roofline_point,
)
from .validation import ValidationRow, validate_workload

__all__ = [
    "predict",
    "ModelPrediction",
    "PhaseModel",
    "cache_miss_model",
    "check_fits",
    "footprint_bytes_per_node",
    "DAKC_RESIDENCY",
    "PAKMAN_RESIDENCY",
    "HYSORTK_RESIDENCY",
    "HYSORTK_MAX_KMERS",
    "DEFAULT_C1",
    "DEFAULT_C2",
    "DEFAULT_C3",
    "HEAVY_THRESHOLD",
    "Table4Params",
    "table4_params",
    "table4_rows",
    "operational_intensity",
    "hardware_balance",
    "roofline_point",
    "RooflinePoint",
    "H100_BALANCE",
    "ValidationRow",
    "validate_workload",
    "Accelerator",
    "GpuProjection",
    "project_speedup",
    "H100",
    "A100",
]
