"""Full-scale memory footprint models and OOM gates (Fig. 8).

The evaluation's missing data points are OOM failures at *paper scale*
(hundreds of GB of k-mers), which a scaled-down replica cannot trigger
organically.  The harness therefore evaluates each algorithm's
footprint against node DRAM using the *full-scale* dataset descriptor
before running the scaled replica, and records an OOM outcome when the
model says the real run would have died.

Footprint constants below are **calibrated once** against the paper's
reported outcomes and documented here:

* **DAKC** streams received k-mers into ``T`` and sorts *in place*
  (ska_sort), so its residency is ~1.15x the owned k-mer bytes plus
  2-bit packed reads plus the Table III aggregation buffers.  Matches
  DAKC surviving every configuration the paper ran, including
  Synthetic 32 on 16 nodes (~107 GB of k-mers/node in 192 GB DRAM).
* **PakMan/PakMan*** materialises per-destination send lists, the MPI
  staging copy, the received batch and a non-in-place sort double
  buffer: ~5x the k-mer bytes per node.  Synthetic 32 yields 1.37 TB
  of k-mers; 5 x 86 GB > 192 GB at 16 nodes and 5 x 43 GB > 192 GB at
  32 nodes, while 5 x 21.5 GB fits at 64 — exactly Fig. 8's reported
  outcomes (OOM at 16 and 32 nodes only).
* **HySortK** double-buffers its non-blocking exchanges (~2.5x), and
  additionally fails outright on inputs above ~2^37 total k-mers — the
  calibrated stand-in for "HySortK did not run for any configuration"
  on Synthetic 32 (~2^37.6 k-mers) while Synthetic 31 (~2^36.6) ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.machine import MachineConfig
from ..runtime.memory import OutOfMemoryError, aggregation_memory_per_pe
from ..seq.datasets import DatasetSpec
from ..seq.kmers import kmer_storage_bytes

__all__ = [
    "FootprintModel",
    "DAKC_RESIDENCY",
    "PAKMAN_RESIDENCY",
    "HYSORTK_RESIDENCY",
    "HYSORTK_MAX_KMERS",
    "footprint_bytes_per_node",
    "check_fits",
]

#: Residency multipliers on owned k-mer bytes (see module docstring).
DAKC_RESIDENCY: float = 1.15
PAKMAN_RESIDENCY: float = 5.0
HYSORTK_RESIDENCY: float = 2.5

#: HySortK's calibrated input-size gate (total k-mers).
HYSORTK_MAX_KMERS: int = 1 << 37


@dataclass(frozen=True, slots=True)
class FootprintModel:
    """Per-algorithm footprint description."""

    algorithm: str
    residency: float  # multiplier on owned k-mer bytes per node
    max_total_kmers: int | None = None  # hard input-size gate


_MODELS = {
    "dakc": FootprintModel("dakc", DAKC_RESIDENCY),
    "pakman": FootprintModel("pakman", PAKMAN_RESIDENCY),
    "pakman*": FootprintModel("pakman*", PAKMAN_RESIDENCY),
    "hysortk": FootprintModel("hysortk", HYSORTK_RESIDENCY, HYSORTK_MAX_KMERS),
    "kmc3": FootprintModel("kmc3", 1.3),  # out-of-core capable; single node
}


def footprint_bytes_per_node(
    algorithm: str,
    spec: DatasetSpec,
    k: int,
    nodes: int,
    *,
    machine: MachineConfig | None = None,
    protocol: str = "1D",
) -> int:
    """Modelled full-scale DRAM footprint per node."""
    try:
        model = _MODELS[algorithm.lower()]
    except KeyError:
        known = ", ".join(sorted(_MODELS))
        raise KeyError(f"unknown algorithm {algorithm!r}; known: {known}") from None
    kmer_bytes = spec.n_kmers(k) * kmer_storage_bytes(k)
    reads_packed = spec.total_bases // 4  # 2-bit packed reads
    per_node = int(model.residency * kmer_bytes / nodes) + reads_packed // nodes
    if algorithm.lower() == "dakc" and machine is not None:
        per_pe = aggregation_memory_per_pe(protocol, machine.with_nodes(nodes).n_pes)
        per_node += per_pe["total"] * machine.cores_per_node
    return per_node


def check_fits(
    algorithm: str,
    spec: DatasetSpec,
    k: int,
    machine: MachineConfig,
    nodes: int,
    *,
    protocol: str = "1D",
) -> None:
    """Raise :class:`OutOfMemoryError` when the full-scale run would die.

    Mirrors the paper's "Any missing data point indicates that the
    corresponding implementation failed due to an Out Of Memory (OOM)
    error" (Section VI-C).
    """
    model = _MODELS[algorithm.lower()]
    if model.max_total_kmers is not None and spec.n_kmers(k) > model.max_total_kmers:
        raise OutOfMemoryError(
            f"{algorithm} cannot process {spec.display}: "
            f"{spec.n_kmers(k):.3g} k-mers exceeds its supported maximum",
            required=spec.n_kmers(k),
            available=model.max_total_kmers,
        )
    need = footprint_bytes_per_node(
        algorithm, spec, k, nodes, machine=machine, protocol=protocol
    )
    if need > machine.mem_bytes:
        raise OutOfMemoryError(
            f"{algorithm} on {spec.display} with {nodes} nodes needs "
            f"{need / 1e9:.1f} GB/node but nodes have "
            f"{machine.mem_bytes / 1e9:.1f} GB",
            required=need,
            available=machine.mem_bytes,
        )
