"""GPU projection: would DAKC benefit from accelerators? (Section VII)

The paper closes with a quantitative argument: k-mer counting's
operational intensity (~0.12 iadd64/B) sits far below CPU balance
(~2.6) and further still below an H100's (~8.3), so the workload is
bandwidth-bound everywhere — a GPU helps only through its *memory
bandwidth*, and its compute units would idle even harder than the
CPU's.  This module turns that argument into a reusable projection:
given an accelerator's bandwidth/compute envelope, bound the speedup
of each phase via the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.machine import MachineConfig, phoenix_intel
from .analytical import predict
from .roofline import operational_intensity

__all__ = ["Accelerator", "H100", "A100", "project_speedup", "GpuProjection"]


@dataclass(frozen=True, slots=True)
class Accelerator:
    """Bandwidth/compute envelope of an accelerator."""

    name: str
    mem_bw: float  # bytes/s (HBM)
    int64_ops: float  # INT64 ops/s

    @property
    def balance(self) -> float:
        return self.int64_ops / self.mem_bw


#: NVIDIA H100 SXM: ~3.35 TB/s HBM3, ~27.8 T INT64 add/s equivalent
#: (the paper quotes a balance of ~8.3 iadd64/B).
H100 = Accelerator("H100", mem_bw=3.35e12, int64_ops=27.8e12)

#: NVIDIA A100: ~2.0 TB/s HBM2e, ~9.7 T INT64 ops/s.
A100 = Accelerator("A100", mem_bw=2.0e12, int64_ops=9.7e12)


@dataclass(frozen=True, slots=True)
class GpuProjection:
    """Modelled outcome of offloading KC to an accelerator."""

    accelerator: str
    intranode_speedup: float  # bound from the bandwidth ratio
    total_speedup: float  # end-to-end, internode unchanged
    workload_intensity: float
    accelerator_balance: float
    compute_utilisation: float  # fraction of peak INT64 the GPU would reach

    @property
    def bandwidth_bound(self) -> bool:
        return self.workload_intensity < self.accelerator_balance


def project_speedup(
    n: int,
    m: int,
    k: int,
    accelerator: Accelerator = H100,
    *,
    machine: MachineConfig | None = None,
    nodes: int | None = None,
) -> GpuProjection:
    """Bound the speedup from replacing each node's CPU with a GPU.

    The projection keeps internode communication fixed (the NIC does
    not change) and scales compute/intranode terms by the accelerator's
    envelope — exactly the reasoning of Section VII.
    """
    machine = machine or phoenix_intel(nodes or 32)
    pred = predict(n, m, k, machine, nodes=nodes)
    bw_ratio = accelerator.mem_bw / machine.beta_mem
    ops_ratio = accelerator.int64_ops / machine.c_node

    def scale_phase(phase):
        comp = phase.t_comp / ops_ratio
        intra = phase.t_intra / bw_ratio
        return max(comp, intra + phase.t_inter)

    cpu_total = pred.t_total("sum")
    gpu_total = scale_phase(pred.phase1) + scale_phase(pred.phase2)
    intensity = operational_intensity(n, m, k)
    return GpuProjection(
        accelerator=accelerator.name,
        intranode_speedup=bw_ratio,
        total_speedup=cpu_total / gpu_total if gpu_total > 0 else float("inf"),
        workload_intensity=intensity,
        accelerator_balance=accelerator.balance,
        compute_utilisation=min(1.0, intensity / accelerator.balance),
    )
