"""Cluster-level observability: per-node metrics plus router counters.

Every :class:`~repro.cluster.node.ClusterNode` keeps its own
:class:`~repro.serve.metrics.ServeMetrics` (latency histogram, query
counters); :class:`ClusterMetrics` adds the router-side story — the
latency *clients* actually see (including retries, hedges, and
failovers) and the counters that explain it — and can roll the
per-node histograms up into one cluster-wide view with
:meth:`LatencyHistogram.merge <repro.serve.metrics.LatencyHistogram.merge>`,
the same way a metrics pipeline folds per-host histograms into a
service dashboard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..serve.metrics import ServeMetrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import ClusterNode

__all__ = ["ClusterMetrics", "rollup_nodes"]


def rollup_nodes(nodes: Mapping[int, "ClusterNode"]) -> ServeMetrics:
    """Fold every node's metrics into one cluster-wide ServeMetrics."""
    total = ServeMetrics()
    for node in nodes.values():
        total.latency.merge(node.metrics.latency)
        total.n_queries += node.metrics.n_queries
        total.n_found += node.metrics.n_found
        total.n_batches += node.metrics.n_batches
        total.batched_keys += node.metrics.batched_keys
        total.rejected += node.metrics.rejected
        total.elapsed = max(total.elapsed, node.metrics.elapsed)
    return total


@dataclass
class ClusterMetrics:
    """Counters for one router's lifetime plus rollup helpers."""

    #: Client-visible metrics: one latency sample per routed batch,
    #: weighted by its key count (includes retry/hedge/failover time).
    router: ServeMetrics = field(default_factory=ServeMetrics)
    hedges_fired: int = 0   # backup requests launched after the hedge delay
    hedges_won: int = 0     # hedges that answered before the primary
    retries: int = 0        # re-routes after a NodeDown or no-live-replica round
    failovers: int = 0      # batches that exhausted every replica (RangeUnavailable)
    rebalances: int = 0     # completed join/leave rebalance passes
    moved_keys: int = 0     # key copies streamed during rebalancing

    @property
    def hedge_win_rate(self) -> float:
        return self.hedges_won / self.hedges_fired if self.hedges_fired else 0.0

    def snapshot(self, nodes: Mapping[int, "ClusterNode"] | None = None) -> dict:
        """JSON-serialisable cluster summary.

        With *nodes* given, includes per-node snapshots and the merged
        cluster rollup (histograms folded via ``LatencyHistogram.merge``).
        """
        doc = {
            "router": self.router.snapshot(),
            "hedging": {
                "fired": self.hedges_fired,
                "won": self.hedges_won,
                "win_rate": self.hedge_win_rate,
            },
            "retries": self.retries,
            "failovers": self.failovers,
            "rebalances": self.rebalances,
            "moved_keys": self.moved_keys,
        }
        if nodes is not None:
            doc["nodes"] = {
                str(nid): {
                    **node.describe(),
                    "metrics": node.metrics.snapshot(),
                }
                for nid, node in sorted(nodes.items())
            }
            doc["rollup"] = rollup_nodes(nodes).snapshot()
        return doc
