"""repro.cluster — replicated, self-healing serving cluster.

The serving layer (:mod:`repro.serve`) answers queries from one copy
of the counted table; this package makes that copy *redundant* and the
service *self-healing*:

* :mod:`~repro.cluster.ring` — consistent-hash ring with virtual
  nodes over the same splitmix64 key space the counting layer's
  ``owner_pe`` uses, placing every key on ``rf`` distinct replicas;
* :mod:`~repro.cluster.node` — cluster members with health states
  (up / degraded / down) and :class:`~repro.fault.FaultPlan` hooks;
* :mod:`~repro.cluster.router` — client-facing routing with retry,
  backoff, and hedged requests (tail-latency insurance);
* :mod:`~repro.cluster.rebalance` — live node join/leave streaming
  key ranges in bounded chunks while the cluster keeps serving exact
  answers;
* :mod:`~repro.cluster.metrics` / :mod:`~repro.cluster.bench` —
  observability rollups and the ``dakc cluster-bench`` campaign.
"""

from .bench import expected_counts, route_replay, run_cluster_bench
from .metrics import ClusterMetrics, rollup_nodes
from .node import ClusterNode, NodeDown, NodeState, RangeStore, build_cluster
from .rebalance import (
    Move,
    RebalanceError,
    RebalancePlan,
    RebalanceReport,
    plan_rebalance,
    rebalance,
)
from .ring import HashRing, RoutingTable, interval_mask
from .script import MembershipEvent, run_membership_script, sample_script
from .router import ClusterRouter, RangeUnavailable, RouterConfig

__all__ = [
    "HashRing",
    "RoutingTable",
    "interval_mask",
    "NodeState",
    "NodeDown",
    "RangeStore",
    "ClusterNode",
    "build_cluster",
    "RouterConfig",
    "RangeUnavailable",
    "ClusterRouter",
    "ClusterMetrics",
    "rollup_nodes",
    "Move",
    "RebalancePlan",
    "RebalanceError",
    "RebalanceReport",
    "plan_rebalance",
    "rebalance",
    "route_replay",
    "expected_counts",
    "run_cluster_bench",
    "MembershipEvent",
    "sample_script",
    "run_membership_script",
]
