"""Scripted membership events for deterministic cluster simulation.

The cluster bench hard-codes one churn story (kill a node, join a
fresh one, evict the corpse).  Schedule fuzzing (:mod:`repro.dst`)
needs the whole family: *any* legal interleaving of kills, restarts,
joins and leaves with the query stream, drawn deterministically from a
seed and replayable from a JSON document.  This module is that grammar:

* :class:`MembershipEvent` — one event, pinned to the query batch
  index *before* which it fires;
* :func:`sample_script` — draw a random legal script from an RNG
  stream (never drops the live-replica count below ``rf``, never
  re-kills a dead node, joins get fresh node ids);
* :func:`run_membership_script` — build a cluster, drive a key stream
  through the router in batches, firing each event at its batch index;
  returns the concatenated answers plus the final router for invariant
  checks.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from ..core.result import KmerCounts
from .node import ClusterNode, RangeStore, build_cluster
from .rebalance import rebalance
from .router import ClusterRouter, RouterConfig

__all__ = ["MembershipEvent", "sample_script", "script_to_doc",
           "script_from_doc", "run_membership_script"]

_KINDS = ("kill", "restart", "join", "leave")


@dataclass(frozen=True, slots=True)
class MembershipEvent:
    """One membership change, fired before query batch ``at``."""

    kind: str  # "kill" | "restart" | "join" | "leave"
    node: int
    at: int

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.node < 0 or self.at < 0:
            raise ValueError("node and at must be non-negative")


def script_to_doc(script: tuple[MembershipEvent, ...]) -> list[dict]:
    """JSON-friendly script encoding (repro bundles)."""
    return [{"kind": e.kind, "node": e.node, "at": e.at} for e in script]


def script_from_doc(doc: list[dict]) -> tuple[MembershipEvent, ...]:
    """Rebuild a script from :func:`script_to_doc` output."""
    return tuple(
        MembershipEvent(kind=str(d["kind"]), node=int(d["node"]),
                        at=int(d["at"]))
        for d in doc
    )


def sample_script(
    rng: np.random.Generator,
    *,
    n_nodes: int,
    rf: int,
    n_batches: int,
) -> tuple[MembershipEvent, ...]:
    """Draw a random legal membership script.

    The grammar keeps every key servable throughout: at most one node
    is ever down or departing at a time, and a ``leave`` only targets a
    node whose data the survivors still replicate (the killed node, or
    — when nothing was killed — a healthy donor with ``rf >= 2``).
    Joins always get a fresh id (``n_nodes``, ``n_nodes + 1``, ...).
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    steps: list[tuple[str, int]] = []
    victim: int | None = None
    if n_nodes > rf and rng.random() < 0.6:
        victim = int(rng.integers(0, n_nodes))
        steps.append(("kill", victim))
        if rng.random() < 0.3:
            steps.append(("restart", victim))
            victim = None
    if rng.random() < 0.5:
        steps.append(("join", n_nodes))
        if victim is not None and rng.random() < 0.7:
            steps.append(("leave", victim))
            victim = None
        elif victim is None and rf >= 2 and rng.random() < 0.3:
            steps.append(("leave", int(rng.integers(0, n_nodes))))
    # Grammar order is causal (a victim must be killed before it can
    # leave), so draw the batch indices and hand them out *sorted* —
    # events keep their declaration order on the timeline.
    times = sorted(int(t) for t in rng.integers(0, n_batches, size=len(steps)))
    return tuple(MembershipEvent(kind, node, at)
                 for (kind, node), at in zip(steps, times))


async def _fire(
    router: ClusterRouter,
    event: MembershipEvent,
    *,
    service_time: float,
    chunk_keys: int,
) -> None:
    if event.kind == "kill":
        router.nodes[event.node].kill()
    elif event.kind == "restart":
        router.nodes[event.node].restart()
    elif event.kind == "join":
        new_ring = router.ring.with_node(event.node)
        router.add_node(ClusterNode(event.node, RangeStore.empty(),
                                    service_time=service_time))
        await rebalance(router, new_ring, chunk_keys=chunk_keys)
    elif event.kind == "leave":
        new_ring = router.ring.without_node(event.node)
        await rebalance(router, new_ring, chunk_keys=chunk_keys)
        router.remove_node(event.node)


def run_membership_script(
    counts: KmerCounts,
    keys: np.ndarray,
    script: tuple[MembershipEvent, ...],
    *,
    n_nodes: int,
    rf: int = 2,
    vnodes: int = 8,
    seed: int = 0,
    service_time: float = 0.0,
    group_size: int = 64,
    chunk_keys: int = 2048,
    router_config: RouterConfig | None = None,
    groups: list[np.ndarray] | None = None,
) -> tuple[np.ndarray, ClusterRouter]:
    """Serve *keys* in batches while executing *script* between them.

    Returns ``(answers, router)``: the concatenated per-key answers in
    stream order, and the post-script router (its ring and node states
    are what invariant checkers inspect).  The whole run is a pure
    function of ``(counts, keys, script, config)`` — no wall-clock
    dependence as long as ``router_config`` keeps hedging off.

    *groups* overrides the fixed ``group_size`` chunking with explicit
    batches (e.g. :func:`repro.serve.workload.arrival_groups` of a
    bursty stream, so membership events interleave with realistic
    batch-size swings); the concatenation of *groups* must equal
    *keys*.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    ring, nodes = build_cluster(counts, n_nodes, rf=rf, vnodes=vnodes,
                                seed=seed, service_time=service_time)
    config = router_config if router_config is not None else RouterConfig(
        hedging=False)
    router = ClusterRouter(ring, nodes, config)
    if groups is not None:
        batches = [np.asarray(g, dtype=np.uint64) for g in groups]
        if sum(int(b.size) for b in batches) != int(keys.size):
            raise ValueError("groups do not cover the key stream")
    else:
        batches = [keys[i:i + group_size]
                   for i in range(0, keys.size, group_size)]

    async def drive() -> np.ndarray:
        pending = list(script)
        answers = []
        for i, batch in enumerate(batches):
            while pending and pending[0].at <= i:
                await _fire(router, pending.pop(0),
                            service_time=service_time, chunk_keys=chunk_keys)
            answers.append(await router.query_many(batch))
        while pending:  # events scheduled past the last batch
            await _fire(router, pending.pop(0),
                        service_time=service_time, chunk_keys=chunk_keys)
        if not answers:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(answers)

    return asyncio.run(drive()), router
