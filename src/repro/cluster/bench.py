"""The cluster-bench experiment: overhead, hedging, and chaos proofs.

One deterministic, seeded campaign used by both ``dakc cluster-bench``
and ``benchmarks/bench_extension_cluster.py``.  Three claims:

* **overhead** — fault-free, the replica-aware router costs < 15% of
  throughput vs. the direct single-copy
  :class:`~repro.serve.engine.QueryEngine` on the same Zipf stream
  (redundancy is close to free when nothing is wrong);
* **hedging** — with one straggler node injected
  (:class:`~repro.fault.FaultPlan`-style clock dilation), hedged
  requests cut p99 latency vs. the same cluster with hedging off
  (the "tail at scale" claim, reproduced);
* **chaos exactness** — with RF=2, killing a node mid-load and then
  rebalancing (one join + one leave, evicting the corpse) loses zero
  answers: every issued query returns the bit-exact serial-oracle
  count, before, during, and after the data movement.

Workloads come from :func:`repro.serve.workload.zipf_workload` so the
popularity skew matches the serving benchmarks, and every section is a
pure function of the seed.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..core.result import KmerCounts
from ..core.seeds import spawn_seeds
from ..serve.engine import EngineConfig, QueryEngine, replay
from ..serve.shards import ShardedStore
from ..serve.workload import BurstSpec, zipf_workload
from .node import ClusterNode, RangeStore, build_cluster
from .rebalance import rebalance
from .router import ClusterRouter, RouterConfig

__all__ = ["route_replay", "expected_counts", "run_cluster_bench"]


def expected_counts(counts: KmerCounts, keys: np.ndarray) -> np.ndarray:
    """The serial oracle: exact counts for a key stream (0 = absent)."""
    keys = np.asarray(keys, dtype=np.uint64)
    if counts.kmers.size == 0:
        return np.zeros(keys.size, dtype=np.int64)
    idx = np.searchsorted(counts.kmers, keys)
    idx_c = np.minimum(idx, counts.kmers.size - 1)
    hit = counts.kmers[idx_c] == keys
    return np.where(hit, counts.counts[idx_c], 0).astype(np.int64)


async def route_replay(
    router: ClusterRouter,
    keys: np.ndarray,
    *,
    group_size: int = 256,
    concurrency: int = 8,
) -> np.ndarray:
    """Drive a key stream through a router and time it (cf. ``replay``)."""
    keys = np.asarray(keys, dtype=np.uint64)
    groups = [keys[i:i + group_size] for i in range(0, keys.size, group_size)]
    results: list[np.ndarray | None] = [None] * len(groups)
    gate = asyncio.Semaphore(concurrency)

    async def one(i: int, group: np.ndarray) -> None:
        async with gate:
            results[i] = await router.query_many(group)

    t0 = time.perf_counter()
    await asyncio.gather(*(one(i, g) for i, g in enumerate(groups)))
    router.metrics.router.elapsed = time.perf_counter() - t0
    if not results:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(results)


def _best_of(runs: int, fn):
    """Min-elapsed of *runs* calls; returns (best_elapsed, last_result)."""
    best = float("inf")
    result = None
    for _ in range(runs):
        elapsed, result = fn()
        best = min(best, elapsed)
    return best, result


def _bench_overhead(counts: KmerCounts, stream_keys: np.ndarray, *,
                    n_nodes: int, rf: int, vnodes: int, seed: int,
                    group_size: int, concurrency: int, repeats: int) -> dict:
    """Fault-free: replica-aware router vs. direct QueryEngine."""
    oracle = expected_counts(counts, stream_keys)
    store = ShardedStore.from_counts(counts, n_nodes)
    engine_cfg = EngineConfig()

    def engine_run():
        async def drive():
            async with QueryEngine(store, engine_cfg) as engine:
                out = await replay(engine, stream_keys,
                                   group_size=group_size,
                                   concurrency=concurrency)
                return engine.metrics.elapsed, out
        return asyncio.run(drive())

    def router_run():
        ring, nodes = build_cluster(counts, n_nodes, rf=rf, vnodes=vnodes,
                                    seed=seed)
        router = ClusterRouter(ring, nodes)

        async def drive():
            out = await route_replay(router, stream_keys,
                                     group_size=group_size,
                                     concurrency=concurrency)
            return router.metrics.router.elapsed, out
        return asyncio.run(drive())

    t_engine, engine_out = _best_of(repeats, engine_run)
    t_router, router_out = _best_of(repeats, router_run)
    n = int(stream_keys.size)
    return {
        "n_queries": n,
        "answers_match": bool(np.array_equal(engine_out, oracle)
                              and np.array_equal(router_out, oracle)),
        "engine_seconds": t_engine,
        "router_seconds": t_router,
        "engine_qps": n / t_engine,
        "router_qps": n / t_router,
        "overhead_frac": t_router / t_engine - 1.0,
    }


def _bench_hedging(counts: KmerCounts, stream_keys: np.ndarray, *,
                   n_nodes: int, rf: int, vnodes: int, seed: int,
                   group_size: int, concurrency: int,
                   service_time: float, straggler_delay: float) -> dict:
    """One straggler node: p99 with hedging on vs. off."""
    oracle = expected_counts(counts, stream_keys)
    straggler = 0
    dilation = straggler_delay / service_time

    def run(hedging: bool) -> dict:
        ring, nodes = build_cluster(counts, n_nodes, rf=rf, vnodes=vnodes,
                                    seed=seed, service_time=service_time)
        nodes[straggler].degrade(dilation)
        router = ClusterRouter(ring, nodes, RouterConfig(hedging=hedging))
        out = asyncio.run(route_replay(router, stream_keys,
                                       group_size=group_size,
                                       concurrency=concurrency))
        hist = router.metrics.router.latency
        return {
            "answers_match": bool(np.array_equal(out, oracle)),
            "p50_ms": hist.quantile(0.50) * 1e3,
            "p95_ms": hist.quantile(0.95) * 1e3,
            "p99_ms": hist.quantile(0.99) * 1e3,
            "throughput_qps": router.metrics.router.throughput_qps,
            "hedges_fired": router.metrics.hedges_fired,
            "hedges_won": router.metrics.hedges_won,
            "retries": router.metrics.retries,
        }

    unhedged = run(hedging=False)
    hedged = run(hedging=True)
    return {
        "straggler_node": straggler,
        "straggler_delay_s": straggler_delay,
        "service_time_s": service_time,
        "unhedged": unhedged,
        "hedged": hedged,
        "p99_reduction": 1.0 - hedged["p99_ms"] / unhedged["p99_ms"]
        if unhedged["p99_ms"] > 0 else 0.0,
    }


def _bench_chaos(counts: KmerCounts, stream_keys: np.ndarray, *,
                 n_nodes: int, rf: int, vnodes: int, seed: int,
                 group_size: int, service_time: float,
                 chunk_keys: int) -> dict:
    """RF=2 node kill mid-load + join/leave rebalance: zero lost answers."""
    ring, nodes = build_cluster(counts, n_nodes, rf=rf, vnodes=vnodes,
                                seed=seed, service_time=service_time)
    router = ClusterRouter(ring, nodes)
    victim = n_nodes - 1
    joiner = n_nodes  # fresh node id
    oracle_stream = expected_counts(counts, stream_keys)

    groups = [stream_keys[i:i + group_size]
              for i in range(0, stream_keys.size, group_size)]
    kill_at = max(1, len(groups) // 3)
    rebalance_at = max(kill_at + 1, (2 * len(groups)) // 3)

    async def sweep() -> np.ndarray:
        """Query the full database (chunked) — the exactness probe."""
        outs = []
        for lo in range(0, counts.kmers.size, 4096):
            outs.append(await router.query_many(counts.kmers[lo:lo + 4096]))
        return np.concatenate(outs) if outs else np.empty(0, dtype=np.int64)

    async def drive() -> dict:
        exact = {}
        exact["before_kill"] = bool(
            np.array_equal(await sweep(), counts.counts))
        answers = []
        reb_task = None
        during_exact = True
        for i, group in enumerate(groups):
            if i == kill_at:
                router.nodes[victim].kill()
            if i == rebalance_at:
                new_ring = router.ring.with_node(joiner).without_node(victim)
                router.add_node(ClusterNode(joiner, RangeStore.empty(),
                                            service_time=service_time))
                reb_task = asyncio.create_task(
                    rebalance(router, new_ring, chunk_keys=chunk_keys))
                # Probe exactness *during* the data movement.
                during_exact = bool(
                    np.array_equal(await sweep(), counts.counts))
            answers.append(await router.query_many(group))
        exact["after_kill"] = bool(
            np.array_equal(np.concatenate(answers), oracle_stream))
        report = await reb_task if reb_task is not None else None
        exact["during_rebalance"] = during_exact
        exact["after_rebalance"] = bool(
            np.array_equal(await sweep(), counts.counts))
        router.remove_node(victim)
        return {"exact": exact,
                "rebalance": report.snapshot() if report else None}

    doc = asyncio.run(drive())
    m = router.metrics
    replicas = router.ring.replicas_batch(counts.kmers)
    doc.update({
        "killed_node": victim,
        "joined_node": joiner,
        "rf": rf,
        "answers_exact": all(doc["exact"].values()),
        "lost_answers": 0 if all(doc["exact"].values()) else -1,
        "retries": m.retries,
        "failovers": m.failovers,
        "hedges_fired": m.hedges_fired,
        "final_rf_ok": bool((np.sort(replicas, axis=1)[:, 1:]
                             != np.sort(replicas, axis=1)[:, :-1]).all()),
    })
    return doc


def run_cluster_bench(
    counts: KmerCounts,
    *,
    n_nodes: int = 6,
    rf: int = 2,
    vnodes: int = 16,
    n_queries: int = 30_000,
    zipf_s: float = 1.1,
    seed: int = 0,
    miss_fraction: float = 0.02,
    group_size: int = 256,
    concurrency: int = 8,
    service_time: float = 2e-4,
    straggler_delay: float = 2e-2,
    chunk_keys: int = 2048,
    repeats: int = 3,
    burst: BurstSpec | None = None,
    recorder=None,
) -> dict:
    """Run all three cluster-bench sections; returns the JSON document.

    *recorder* (a :class:`repro.trace.TraceRecorder`) captures the
    workload through one dedicated router pass — separate from the
    measured sections, so best-of repeats don't record the same stream
    several times over.
    """
    # One root seed, independent child streams per section: the workload
    # draw and the three ring constructions must not alias (spawn(), not
    # ``seed + i`` arithmetic — see repro.core.seeds).
    workload_seed, overhead_seed, hedging_seed, chaos_seed = spawn_seeds(seed, 4)
    stream = zipf_workload(counts, n_queries, s=zipf_s, seed=workload_seed,
                           miss_fraction=miss_fraction, burst=burst)
    if recorder is not None:
        ring, nodes = build_cluster(counts, n_nodes, rf=rf, vnodes=vnodes,
                                    seed=overhead_seed)
        tap = ClusterRouter(ring, nodes, recorder=recorder)
        asyncio.run(route_replay(tap, stream.keys, group_size=group_size,
                                 concurrency=concurrency))
    doc = {
        "experiment": "cluster-bench",
        "config": {
            "n_nodes": n_nodes, "rf": rf, "vnodes": vnodes,
            "n_queries": n_queries, "zipf_s": zipf_s, "seed": seed,
            "miss_fraction": miss_fraction, "group_size": group_size,
            "concurrency": concurrency, "service_time_s": service_time,
            "straggler_delay_s": straggler_delay, "chunk_keys": chunk_keys,
            "n_distinct": int(counts.n_distinct), "k": int(counts.k),
            "burst": burst.to_doc() if burst is not None else None,
        },
    }
    doc["overhead"] = _bench_overhead(
        counts, stream.keys, n_nodes=n_nodes, rf=rf, vnodes=vnodes,
        seed=overhead_seed, group_size=group_size, concurrency=concurrency,
        repeats=repeats)
    doc["hedging"] = _bench_hedging(
        counts, stream.keys, n_nodes=n_nodes, rf=rf, vnodes=vnodes,
        seed=hedging_seed, group_size=group_size, concurrency=concurrency,
        service_time=service_time, straggler_delay=straggler_delay)
    doc["chaos"] = _bench_chaos(
        counts, stream.keys, n_nodes=n_nodes, rf=rf, vnodes=vnodes,
        seed=chaos_seed, group_size=group_size, service_time=service_time,
        chunk_keys=chunk_keys)
    return doc
