"""Client-facing cluster router: replica selection, retries, hedging.

The router is the piece that turns "RF copies of every key" into an
availability and tail-latency win.  For each client batch it:

1. **routes** — hashes the keys onto the ring and snapshots their
   replica rows (one ``np.searchsorted`` + one row gather, the same
   vectorised cost as :class:`~repro.serve.shards.ShardedStore`);
2. **selects** — picks one live replica per key (a rotating preference
   spreads load across replicas; nodes known to be DOWN are skipped
   up front, the poor man's failure detector);
3. **hedges** — if the chosen node has not answered within a hedge
   delay derived from the p95 of per-node sub-request latency ("tail
   at scale" style), fires the same lookup at each key's next distinct
   live replica and takes whichever answer lands first;
4. **retries** — a lookup that dies mid-flight (:class:`NodeDown`)
   re-routes its keys to the surviving replicas; when *no* replica of
   a key is currently live the router backs off exponentially and
   re-probes (transient crashes restart), and only after exhausting
   its retry budget raises the typed :class:`RangeUnavailable`.

During a rebalance (:mod:`repro.cluster.rebalance`) the router serves
from a *refined* routing table whose intervals flip from the old to
the new replica set one handoff watermark at a time, so clients keep
getting exact answers while key ranges stream between nodes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from ..serve.metrics import LatencyHistogram
from .metrics import ClusterMetrics
from .node import ClusterNode, NodeDown, NodeState
from .ring import HashRing

_EMPTY_IDX = np.empty(0, dtype=np.intp)

__all__ = ["RouterConfig", "RangeUnavailable", "ClusterRouter"]


class RangeUnavailable(RuntimeError):
    """Every replica of some requested keys is down: typed failover.

    Carries the ``node_ids`` that were tried and ``n_keys`` still
    unanswered so callers can shed, queue, or page a human.
    """

    def __init__(self, node_ids: tuple[int, ...], n_keys: int):
        super().__init__(
            f"all replicas down for {n_keys} keys (nodes {list(node_ids)})")
        self.node_ids = node_ids
        self.n_keys = n_keys


@dataclass(frozen=True)
class RouterConfig:
    """Tuning knobs for :class:`ClusterRouter`."""

    hedging: bool = True          # fire a backup replica on slow primaries
    hedge_quantile: float = 0.95  # latency quantile the hedge delay tracks
    hedge_multiplier: float = 2.0  # hedge at multiplier x that quantile
    hedge_min_delay: float = 5e-4  # never hedge earlier than this (seconds)
    hedge_max_delay: float = 5e-2  # never wait longer than this to hedge
    hedge_initial_delay: float = 2e-3  # used until warmup samples exist
    hedge_warmup: int = 64        # latency samples before trusting the p95
    max_retry_rounds: int = 4     # routing rounds before RangeUnavailable
    backoff_base: float = 1e-3    # first inter-round backoff (seconds)
    backoff_max: float = 5e-2     # backoff ceiling (exponential growth)

    def __post_init__(self) -> None:
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError("hedge_quantile must be in (0, 1)")
        if self.hedge_multiplier <= 0:
            raise ValueError("hedge_multiplier must be > 0")
        if not 0 <= self.hedge_min_delay <= self.hedge_max_delay:
            raise ValueError("need 0 <= hedge_min_delay <= hedge_max_delay")
        if self.max_retry_rounds < 1:
            raise ValueError("max_retry_rounds must be >= 1")
        if self.backoff_base <= 0 or self.backoff_max < self.backoff_base:
            raise ValueError("need 0 < backoff_base <= backoff_max")


class ClusterRouter:
    """Replica-aware query front end over a ring of cluster nodes."""

    def __init__(self, ring: HashRing, nodes: dict[int, ClusterNode],
                 config: RouterConfig | None = None, *,
                 metrics: ClusterMetrics | None = None, recorder=None):
        missing = [n for n in ring.node_ids if n not in nodes]
        if missing:
            raise ValueError(f"ring nodes without a ClusterNode: {missing}")
        self.ring = ring
        self.nodes = dict(nodes)
        self.config = config or RouterConfig()
        self.metrics = metrics or ClusterMetrics()
        #: Optional :class:`repro.trace.TraceRecorder` (duck-typed:
        #: anything with ``record_batch(keys, tiers)``).  The router
        #: has no cache tier, so every record is charged to the store.
        self.recorder = recorder
        self._rr = 0              # rotating replica preference
        self._inflight: set[int] = set()  # batch ids in flight (for quiesce)
        self._next_batch = 0
        # Hedge-delay estimator input: per-node sub-request latencies,
        # each measured from its own dispatch.  Using whole-batch client
        # latencies here would be a positive feedback loop — a hedge
        # that fires after delay D and wins records ~D, ratcheting the
        # delay up until hedging silently stops.  A slow primary whose
        # hedge wins is *cancelled*, so straggler samples rarely land
        # and the estimate tracks the healthy service time.
        self._hedge_hist = LatencyHistogram()
        self._rebalancing = False
        self._new_rows: np.ndarray | None = None
        table = ring.table()
        self._tokens = table.tokens
        self._rows = table.rows.copy()

    # -- membership ----------------------------------------------------

    def add_node(self, node: ClusterNode) -> None:
        """Register a node object (e.g. a joiner, before rebalancing)."""
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id} already registered")
        self.nodes[node.node_id] = node

    def remove_node(self, node_id: int) -> ClusterNode:
        """Drop a node object no longer referenced by the ring."""
        if node_id in self.ring.node_ids:
            raise ValueError(f"node {node_id} is still in the ring")
        return self.nodes.pop(node_id)

    # -- rebalance hooks (driven by repro.cluster.rebalance) -----------

    def begin_rebalance(self, tokens: np.ndarray, old_rows: np.ndarray,
                        new_rows: np.ndarray) -> None:
        """Switch routing to a refined table with per-interval handoff."""
        if self._rebalancing:
            raise RuntimeError("a rebalance is already in progress")
        self._rebalancing = True
        self._tokens = tokens
        self._rows = old_rows.copy()
        self._new_rows = new_rows

    def flip_interval(self, index: int) -> None:
        """Pass the handoff watermark: interval *index* routes to the
        new replica set from now on (its data is fully installed)."""
        assert self._rebalancing and self._new_rows is not None
        self._rows[index] = self._new_rows[index]

    def finish_rebalance(self, new_ring: HashRing) -> None:
        """Adopt the new ring's compiled table as the routing truth."""
        self.ring = new_ring
        table = new_ring.table()
        self._tokens = table.tokens
        self._rows = table.rows.copy()
        self._new_rows = None
        self._rebalancing = False

    async def quiesce(self) -> None:
        """Wait until every batch routed *before now* has finished.

        The rebalancer calls this after flipping all watermarks and
        before dropping moved ranges from their old owners: any lookup
        still in flight was routed with the old rows and must find its
        data where it was sent.  Only the batches in flight *when this
        call starts* are waited on — later batches route under flipped
        rows, so a steady query stream cannot starve the quiesce.
        """
        waiting = set(self._inflight)
        while waiting & self._inflight:
            await asyncio.sleep(1e-4)

    # -- hedging -------------------------------------------------------

    def hedge_delay(self) -> float:
        """Adaptive hedge trigger: multiplier x sub-request p95, clamped."""
        cfg = self.config
        hist = self._hedge_hist
        if hist.n < cfg.hedge_warmup:
            return cfg.hedge_initial_delay
        delay = hist.quantile(cfg.hedge_quantile) * cfg.hedge_multiplier
        return min(max(delay, cfg.hedge_min_delay), cfg.hedge_max_delay)

    async def _timed_lookup(self, node_id: int, keys: np.ndarray) -> np.ndarray:
        """A node lookup that feeds the hedge-delay estimator."""
        t0 = time.perf_counter()
        out = await self.nodes[node_id].lookup(keys)
        self._hedge_hist.record(time.perf_counter() - t0)
        return out

    # -- query path ----------------------------------------------------

    def _down_ids(self) -> list[int]:
        return [nid for nid, node in self.nodes.items()
                if node.state is NodeState.DOWN]

    async def query_many(self, keys: np.ndarray) -> np.ndarray:
        """Answer a client batch of keys; returns counts (0 = absent).

        Raises :class:`RangeUnavailable` when some keys' every replica
        stayed down through the retry budget.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        n = int(keys.size)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if self.recorder is not None:
            self.recorder.record_batch(keys, None)
        t0 = time.perf_counter()
        positions = HashRing.positions(keys)
        idx = np.searchsorted(self._tokens, positions, side="left") \
            % self._tokens.size
        # Snapshot the replica rows: watermark flips during our awaits
        # must not re-route keys already dispatched under the old rows.
        rows = self._rows[idx]
        batch_id = self._next_batch
        self._next_batch += 1
        self._inflight.add(batch_id)
        try:
            out = await self._route(keys, rows)
        finally:
            self._inflight.discard(batch_id)
        m = self.metrics.router
        m.latency.record(time.perf_counter() - t0, weight=n)
        m.n_queries += n
        m.n_found += int(np.count_nonzero(out))
        return out

    async def query(self, key: int) -> int:
        """Answer one key (a batch of one)."""
        return int((await self.query_many(
            np.array([key], dtype=np.uint64)))[0])

    async def _route(self, keys: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Serve one batch: select, hedge, retry, fail over."""
        cfg = self.config
        rf = rows.shape[1]
        out = np.zeros(keys.size, dtype=np.int64)
        pending = np.arange(keys.size)
        rot = self._rr
        self._rr += 1
        backoff = cfg.backoff_base
        for round_no in range(cfg.max_retry_rounds):
            # Per-key target: first live replica in rotated preference
            # order (the rotation spreads steady-state load over all RF
            # replicas of each range).
            down = self._down_ids()
            if not down:
                # Every replica is live: the rotated-primary column IS
                # the target, no per-replica liveness masking needed.
                krows = rows if pending.size == keys.size else rows[pending]
                target = krows[:, (rot + round_no) % rf]
                sel, tgt = pending, target
                stuck = _EMPTY_IDX
            else:
                krows = rows[pending]
                target = np.full(pending.size, -1, dtype=np.int64)
                for j in range(rf):
                    col = krows[:, (rot + round_no + j) % rf]
                    live = ~np.isin(col, down)
                    target = np.where((target < 0) & live, col, target)
                routable = target >= 0
                stuck = pending[~routable]
                sel = pending[routable]
                tgt = target[routable]

            failed: list[np.ndarray] = []
            if sel.size:
                # Distinct target nodes: a handful of small ints, so a
                # python set beats np.unique's sort per batch.
                uniq = sorted(set(tgt.tolist()))
                # Fast path: every chosen node is UP with zero simulated
                # delay.  Those lookups have no suspension points, so
                # awaiting them inline (no tasks, no gather, no hedge
                # timers) cannot be interrupted mid-flight — and a node
                # that answers instantly has no tail worth hedging, so
                # the hedge-delay estimator is skipped too.
                if all(self.nodes[n].state is NodeState.UP
                       and self.nodes[n].delay == 0.0 for n in uniq):
                    for nid in uniq:
                        gsel = sel[tgt == nid]
                        out[gsel] = await self.nodes[nid].lookup(keys[gsel])
                else:
                    groups = []
                    tasks = []
                    for nid in uniq:
                        gsel = sel[tgt == nid]
                        groups.append(gsel)
                        tasks.append(
                            self._hedged(int(nid), keys[gsel], rows[gsel]))
                    results = await asyncio.gather(*tasks,
                                                   return_exceptions=True)
                    for gsel, res in zip(groups, results):
                        if isinstance(res, NodeDown):
                            # Died mid-flight: re-route these keys.
                            self.metrics.retries += 1
                            failed.append(gsel)
                        elif isinstance(res, BaseException):
                            raise res
                        else:
                            out[gsel] = res
            if stuck.size:
                # No live replica right now — transient crashes restart,
                # so this is worth an exponential-backoff re-probe.
                self.metrics.retries += 1

            if stuck.size or failed:
                pending = np.concatenate([stuck, *failed]) if failed else stuck
            else:
                return out
            if round_no + 1 < cfg.max_retry_rounds:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2.0, cfg.backoff_max)
        self.metrics.failovers += 1
        tried = tuple(sorted({int(x) for x in rows[pending].ravel()}))
        raise RangeUnavailable(tried, int(pending.size))

    async def _hedged(self, node_id: int, keys: np.ndarray,
                      rows: np.ndarray) -> np.ndarray:
        """One node lookup, backed up by a hedge after the hedge delay."""
        cfg = self.config
        primary = asyncio.ensure_future(self._timed_lookup(node_id, keys))
        if not cfg.hedging or rows.shape[1] < 2:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=self.hedge_delay())
        if done:
            return primary.result()  # fast path; may raise NodeDown

        # Primary is slow: pick each key's next distinct live replica.
        down = self._down_ids()
        alt = np.full(keys.size, -1, dtype=np.int64)
        for j in range(rows.shape[1]):
            col = rows[:, j]
            ok = (col != node_id) & (alt < 0)
            if down:
                ok &= ~np.isin(col, down)
            alt = np.where(ok, col, alt)
        if (alt < 0).any():
            # Some keys have no live alternate; hedging a subset would
            # still have to wait for the primary — not worth it.
            return await primary
        self.metrics.hedges_fired += 1
        hedge = asyncio.ensure_future(self._fanout(keys, alt))
        try:
            pending_t: set[asyncio.Task] = {primary, hedge}
            finished: set[asyncio.Task] = set()
            while pending_t:
                done, pending_t = await asyncio.wait(
                    pending_t, return_when=asyncio.FIRST_COMPLETED)
                finished |= done
                for task in done:
                    if not task.cancelled() and task.exception() is None:
                        if task is hedge:
                            self.metrics.hedges_won += 1
                        return task.result()
            # Both sides failed; surface the primary's error (NodeDown
            # sends the batch back through the retry loop).
            raise primary.exception() or NodeDown(node_id)
        finally:
            for task in (primary, hedge):
                if not task.done():
                    task.cancel()
                elif not task.cancelled():
                    task.exception()  # consume the loser's error, if any

    async def _fanout(self, keys: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Look up each key at its per-key target node; align results."""
        out = np.empty(keys.size, dtype=np.int64)
        masks = []
        tasks = []
        for nid in np.unique(targets):
            mask = targets == nid
            masks.append(mask)
            tasks.append(self._timed_lookup(int(nid), keys[mask]))
        results = await asyncio.gather(*tasks)
        for mask, res in zip(masks, results):
            out[mask] = res
        return out

    # -- introspection -------------------------------------------------

    def describe(self) -> dict:
        """JSON-friendly router + membership summary."""
        return {
            "ring": self.ring.describe(),
            "rebalancing": self._rebalancing,
            "hedge_delay_s": self.hedge_delay(),
            "nodes": {str(nid): node.describe()
                      for nid, node in sorted(self.nodes.items())},
        }
