"""Live rebalancing: node join/leave without stopping the read path.

KMC 2's bin repartitioning shows exact k-mer statistics survive moving
data between owners; the LSM read-view shows a store can serve exact
answers *while* being mutated.  This module combines both for the
cluster: when the ring changes (a node joins, a node leaves, a dead
node is evicted), the keys whose replica set changed stream between
nodes in bounded chunks while the router keeps answering, and every
answer stays bit-exact throughout.  The protocol:

1. **plan** — refine the old and new routing tables onto their common
   token boundaries; every refined interval whose replica set changed
   becomes a :class:`Move` (sources = old replicas, adds = nodes
   gaining the range, drops = nodes losing it);
2. **copy** — for each move, extract the interval's keys from a live
   old replica and install them at the joining replicas in chunks of
   ``chunk_keys``, yielding to the event loop between chunks so
   queries interleave; the router still routes the interval to its old
   replicas, which still hold the data;
3. **flip** — once an interval is fully installed, its handoff
   watermark passes: the router flips that interval to the new replica
   set (one synchronous assignment, no torn routing);
4. **drop** — after all intervals have flipped, wait for in-flight
   batches routed under the old rows to drain
   (:meth:`ClusterRouter.quiesce`), then delete the moved ranges from
   their old owners.  Dropping earlier could strand a lookup that was
   dispatched to an old owner before its watermark passed.

Correctness does not depend on fault-freedom: a move's source can be
any live old replica, so with RF >= 2 a rebalance completes exactly
even while one node of every range is down.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from .node import NodeState
from .ring import HashRing, RoutingTable
from .router import ClusterRouter

__all__ = ["Move", "RebalancePlan", "RebalanceError", "RebalanceReport",
           "plan_rebalance", "rebalance"]


class RebalanceError(RuntimeError):
    """A range could not be moved (e.g. every source replica is down)."""


@dataclass(frozen=True)
class Move:
    """One refined ring interval that changes replica set."""

    index: int                 # refined-interval index (flip watermark id)
    lo: int                    # interval (lo, hi] on the ring circle
    hi: int
    sources: tuple[int, ...]   # old replicas (data holders), primary first
    adds: tuple[int, ...]      # nodes gaining the range
    drops: tuple[int, ...]     # nodes losing the range


@dataclass(frozen=True)
class RebalancePlan:
    """Refined routing tables plus the moves between them."""

    tokens: np.ndarray         # union of old and new tokens (sorted)
    old_rows: np.ndarray       # (n_refined, rf) replicas before
    new_rows: np.ndarray       # (n_refined, rf) replicas after
    moves: tuple[Move, ...]

    @property
    def n_intervals(self) -> int:
        return int(self.tokens.size)


@dataclass
class RebalanceReport:
    """What one rebalance pass actually did."""

    n_moves: int = 0
    moved_keys: int = 0        # key copies streamed to joining replicas
    dropped_keys: int = 0      # key copies deleted from leaving replicas
    chunks: int = 0
    duration: float = 0.0
    sources_skipped: int = 0   # down replicas passed over when copying
    joined: tuple[int, ...] = field(default=())
    left: tuple[int, ...] = field(default=())

    def snapshot(self) -> dict:
        return {
            "n_moves": self.n_moves,
            "moved_keys": self.moved_keys,
            "dropped_keys": self.dropped_keys,
            "chunks": self.chunks,
            "duration_s": self.duration,
            "sources_skipped": self.sources_skipped,
            "joined": list(self.joined),
            "left": list(self.left),
        }


def plan_rebalance(old: RoutingTable, new: RoutingTable) -> RebalancePlan:
    """Diff two routing tables into per-interval moves.

    Refining onto the union of both token sets guarantees every
    refined interval has *one* old and *one* new replica row, so the
    diff is exact — no key changes owners without appearing in a move.
    """
    tokens = np.union1d(old.tokens, new.tokens)
    # An interval (lo, hi] is represented by its hi token: the first
    # old/new token >= hi names the row serving every position in it.
    old_idx = np.searchsorted(old.tokens, tokens, side="left") % old.n_tokens
    new_idx = np.searchsorted(new.tokens, tokens, side="left") % new.n_tokens
    old_rows = old.rows[old_idx]
    new_rows = new.rows[new_idx]
    moves = []
    for i in range(tokens.size):
        old_set = {int(x) for x in old_rows[i]}
        new_set = {int(x) for x in new_rows[i]}
        adds = tuple(sorted(new_set - old_set))
        drops = tuple(sorted(old_set - new_set))
        if not adds and not drops:
            continue
        lo = int(tokens[i - 1]) if i > 0 else int(tokens[-1])
        moves.append(Move(index=i, lo=lo, hi=int(tokens[i]),
                          sources=tuple(int(x) for x in old_rows[i]),
                          adds=adds, drops=drops))
    return RebalancePlan(tokens, old_rows, new_rows, tuple(moves))


async def rebalance(router: ClusterRouter, new_ring: HashRing, *,
                    chunk_keys: int = 4096) -> RebalanceReport:
    """Migrate a serving router from its current ring to *new_ring*.

    Joining nodes must already be registered on the router
    (:meth:`ClusterRouter.add_node`) with an empty range store; nodes
    leaving the ring keep their objects registered (callers evict them
    with :meth:`ClusterRouter.remove_node` once the report is back).
    The router keeps serving exact answers for the whole duration.
    """
    if chunk_keys < 1:
        raise ValueError("chunk_keys must be >= 1")
    missing = [n for n in new_ring.node_ids if n not in router.nodes]
    if missing:
        raise ValueError(
            f"joining nodes not registered on the router: {missing}")
    report = RebalanceReport(
        joined=tuple(n for n in new_ring.node_ids
                     if n not in router.ring.node_ids),
        left=tuple(n for n in router.ring.node_ids
                   if n not in new_ring.node_ids),
    )
    plan = plan_rebalance(router.ring.table(), new_ring.table())
    t0 = time.perf_counter()
    router.begin_rebalance(plan.tokens, plan.old_rows, plan.new_rows)
    deferred_drops: list[Move] = []
    for move in plan.moves:
        if move.adds:
            keys, counts = _extract_from_source(router, move, report)
            for lo in range(0, keys.size, chunk_keys):
                chunk_k = keys[lo:lo + chunk_keys]
                chunk_c = counts[lo:lo + chunk_keys]
                for nid in move.adds:
                    router.nodes[nid].store.install(chunk_k, chunk_c)
                    report.moved_keys += int(chunk_k.size)
                report.chunks += 1
                # Yield so queries interleave with the copy stream.
                await _breathe()
        # Handoff watermark: from here this interval routes to the new
        # replica set (which now holds all of its data).
        router.flip_interval(move.index)
        if move.drops:
            deferred_drops.append(move)
        report.n_moves += 1
        await _breathe()
    # Old-row routing may still be in flight; only after those batches
    # drain is it safe to delete moved ranges from their old owners.
    await router.quiesce()
    for move in deferred_drops:
        for nid in move.drops:
            store = router.nodes[nid].store
            if hasattr(store, "drop"):
                report.dropped_keys += store.drop(move.lo, move.hi)
    router.finish_rebalance(new_ring)
    report.duration = time.perf_counter() - t0
    router.metrics.rebalances += 1
    router.metrics.moved_keys += report.moved_keys
    return report


def _extract_from_source(router: ClusterRouter, move: Move,
                         report: RebalanceReport):
    """Copy a move's key range out of the first live source replica."""
    for nid in move.sources:
        node = router.nodes[nid]
        if node.state is NodeState.DOWN:
            report.sources_skipped += 1
            continue
        if not hasattr(node.store, "extract"):
            raise RebalanceError(
                f"node {nid} store has no range protocol "
                "(rebalancing requires RangeStore-backed nodes)")
        return node.store.extract(move.lo, move.hi)
    raise RebalanceError(
        f"every source replica of interval {move.index} is down: "
        f"{list(move.sources)}")


async def _breathe() -> None:
    """Yield to the event loop (lets queries run between chunks)."""
    await asyncio.sleep(0)
