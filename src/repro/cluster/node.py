"""Cluster nodes: a replicated store slice plus a health state machine.

A :class:`ClusterNode` is one member of the serving cluster.  It wraps
a read backend — by default a :class:`RangeStore` holding the sorted
``(k-mer, count)`` slice the :class:`~repro.cluster.ring.HashRing`
assigns it, but anything with a vectorised ``lookup`` works, e.g. a
live :class:`~repro.lsm.LsmReadView` (full replication: every node can
answer every key and the ring only spreads load) — and a health state:

* ``UP``        — answers at its configured ``service_time``;
* ``DEGRADED``  — a straggler: the same answers, dilated by a
  ``CostModel``-style clock factor (thermal throttling, a noisy
  neighbour, a dying disk) — the case hedged requests exist for;
* ``DOWN``      — raises :class:`NodeDown`, checked both on entry and
  after the simulated service delay so a kill lands on in-flight
  lookups too (the case retries and replicas exist for).

Fault hooks consume the same seeded :class:`~repro.fault.FaultPlan`
the chaos machinery uses for the write path: ``crash_pes`` kill nodes,
``straggler_pes``/``straggler_factor`` degrade them — one fault
vocabulary for counting and serving.
"""

from __future__ import annotations

import asyncio
import enum
import time

import numpy as np

from ..apps.store import merge_sorted_counts
from ..core.result import KmerCounts
from ..fault.models import FaultPlan
from ..serve.metrics import ServeMetrics
from ..serve.shards import Shard
from .ring import HashRing, interval_mask

__all__ = ["NodeState", "NodeDown", "RangeStore", "ClusterNode", "build_cluster"]


class NodeState(enum.Enum):
    """Health of one cluster node."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


class NodeDown(RuntimeError):
    """A lookup reached a node that is (or just went) down."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} is down")
        self.node_id = node_id


class RangeStore:
    """A node's mutable slice of the database, sorted by key.

    Reads go through an immutable :class:`~repro.serve.shards.Shard`
    (one ``np.searchsorted`` per batch); rebalancing mutates the slice
    with the range protocol — :meth:`extract`, :meth:`install`,
    :meth:`drop` — each of which swaps in a freshly merged shard
    atomically (one assignment), so a concurrent reader always sees a
    consistent array pair.
    """

    def __init__(self, kmers: np.ndarray | None = None,
                 counts: np.ndarray | None = None):
        if kmers is None:
            kmers = np.empty(0, dtype=np.uint64)
        if counts is None:
            counts = np.empty(0, dtype=np.int64)
        self._shard = Shard(np.ascontiguousarray(kmers, dtype=np.uint64),
                            np.ascontiguousarray(counts, dtype=np.int64))

    @classmethod
    def empty(cls) -> "RangeStore":
        return cls()

    @property
    def kmers(self) -> np.ndarray:
        return self._shard.kmers

    @property
    def counts(self) -> np.ndarray:
        return self._shard.counts

    @property
    def n_keys(self) -> int:
        return self._shard.n_keys

    @property
    def nbytes(self) -> int:
        return self._shard.nbytes

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised batch lookup; absent keys answer 0."""
        return self._shard.lookup(keys)

    # -- range protocol (rebalancing) ----------------------------------

    def extract(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy out the keys whose ring position lies in ``(lo, hi]``."""
        mask = interval_mask(HashRing.positions(self.kmers), lo, hi)
        return self.kmers[mask].copy(), self.counts[mask].copy()

    def install(self, kmers: np.ndarray, counts: np.ndarray) -> int:
        """Merge a streamed chunk into the slice; returns keys added."""
        kmers = np.asarray(kmers, dtype=np.uint64)
        if kmers.size == 0:
            return 0
        merged_k, merged_c = merge_sorted_counts(
            self.kmers, self.counts, kmers, np.asarray(counts, dtype=np.int64))
        self._shard = Shard(merged_k, merged_c)
        return int(kmers.size)

    def drop(self, lo: int, hi: int) -> int:
        """Forget the keys in ring interval ``(lo, hi]``; returns removed."""
        mask = interval_mask(HashRing.positions(self.kmers), lo, hi)
        removed = int(mask.sum())
        if removed:
            self._shard = Shard(self.kmers[~mask], self.counts[~mask])
        return removed


class ClusterNode:
    """One cluster member: a store slice, health state, and metrics."""

    def __init__(self, node_id: int, store, *, service_time: float = 0.0,
                 metrics: ServeMetrics | None = None):
        if service_time < 0:
            raise ValueError("service_time must be >= 0")
        self.node_id = int(node_id)
        self.store = store
        self.service_time = service_time
        self.state = NodeState.UP
        self.dilation = 1.0
        self.metrics = metrics or ServeMetrics()

    # -- serving -------------------------------------------------------

    @property
    def delay(self) -> float:
        """Current simulated seconds per batch lookup."""
        if self.state is NodeState.DEGRADED:
            return self.service_time * self.dilation
        return self.service_time

    async def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Answer a batch, or raise :class:`NodeDown`.

        The down check runs again after the simulated service delay so
        a kill interrupts lookups already in flight — the router must
        then fail the batch over to a replica.
        """
        if self.state is NodeState.DOWN:
            raise NodeDown(self.node_id)
        t0 = time.perf_counter()
        delay = self.delay
        if delay > 0:
            await asyncio.sleep(delay)
            if self.state is NodeState.DOWN:
                raise NodeDown(self.node_id)
        out = self.store.lookup(keys)
        n = int(keys.size)
        self.metrics.latency.record(time.perf_counter() - t0, weight=n)
        self.metrics.n_queries += n
        self.metrics.n_found += int(np.count_nonzero(out))
        return out

    # -- health transitions --------------------------------------------

    def kill(self) -> None:
        """Crash the node (in-flight and future lookups fail)."""
        self.state = NodeState.DOWN

    def restart(self) -> None:
        """Bring the node back up with its store intact."""
        self.state = NodeState.UP
        self.dilation = 1.0

    def degrade(self, factor: float) -> None:
        """Turn the node into a straggler (clock dilation >= 1)."""
        if factor < 1.0:
            raise ValueError("dilation factor must be >= 1")
        self.state = NodeState.DEGRADED
        self.dilation = factor

    def apply_plan(self, plan: FaultPlan) -> None:
        """Apply a :class:`~repro.fault.FaultPlan` to this node.

        ``crash_pes`` kill the node; ``straggler_pes`` degrade it by
        ``straggler_factor`` — node ids play the role of PE ids.
        """
        if self.node_id in plan.crash_pes:
            self.kill()
        elif self.node_id in plan.straggler_pes and plan.straggler_factor > 1.0:
            self.degrade(plan.straggler_factor)

    # -- introspection -------------------------------------------------

    @property
    def n_keys(self) -> int:
        store = self.store
        return int(store.n_keys) if hasattr(store, "n_keys") else 0

    def describe(self) -> dict:
        return {
            "node_id": self.node_id,
            "state": self.state.value,
            "dilation": self.dilation,
            "service_time": self.service_time,
            "n_keys": self.n_keys,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ClusterNode({self.node_id}, {self.state.value}, "
                f"{self.n_keys} keys)")


def build_cluster(
    counts: KmerCounts,
    n_nodes: int,
    *,
    rf: int = 2,
    vnodes: int = 16,
    seed: int = 0,
    service_time: float = 0.0,
) -> tuple[HashRing, dict[int, ClusterNode]]:
    """Materialise a counted database onto a fresh replicated cluster.

    Every node receives the slice of keys whose ring replica set
    includes it, so each key is resident on exactly *rf* nodes and the
    cluster holds ``rf`` copies of the database in total.
    """
    ring = HashRing(range(n_nodes), rf=rf, vnodes=vnodes, seed=seed)
    replicas = ring.replicas_batch(counts.kmers)
    nodes = {}
    for nid in ring.node_ids:
        mask = (replicas == nid).any(axis=1)
        nodes[nid] = ClusterNode(
            nid,
            RangeStore(counts.kmers[mask], counts.counts[mask]),
            service_time=service_time,
        )
    return ring, nodes
