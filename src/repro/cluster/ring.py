"""Consistent-hash ring: the cluster's key-placement function.

The counting layers assign every k-mer to exactly one owner via
``splitmix64(key) mod P`` (:func:`repro.core.owner.owner_pe`).  That is
the right placement for *counting* — every update for a key must meet
at one PE — but the wrong one for *serving*: one crashed owner loses a
1/P slice of the database, and changing P reshuffles every key.

A :class:`HashRing` keeps the same hash (splitmix64 positions on the
64-bit circle) but changes the mapping from positions to nodes:

* each node owns ``vnodes`` *tokens* — pseudo-random ring positions
  derived purely from ``(seed, node_id, vnode index)``, so placement is
  a pure function of the ring description (deterministic across
  processes, restarts, and Python hash randomisation);
* a key belongs to the first token clockwise from its hashed position,
  and is *replicated* on the next ``rf`` distinct nodes along the ring,
  so every key survives ``rf - 1`` node losses;
* adding or removing one node moves only the token intervals adjacent
  to that node's tokens (~1/N of the key space), which is what makes
  live rebalancing (:mod:`repro.cluster.rebalance`) cheap.

The ring compiles to a :class:`RoutingTable` — a sorted token array
plus a ``(n_tokens, rf)`` replica matrix — so a batch of keys routes
with one ``np.searchsorted`` and one row gather, the same vectorised
discipline as :class:`~repro.serve.shards.ShardedStore`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.owner import splitmix64

__all__ = ["HashRing", "RoutingTable", "interval_mask"]

# Per-node salt decorrelating a node's token stream from its numeric id
# (node 0 and node 1 must not get adjacent tokens).
_NODE_SALT = np.uint64(0xD6E8FEB86659FD93)


def _node_tokens(node_id: int, vnodes: int, seed: int) -> np.ndarray:
    """The *vnodes* deterministic ring positions of one node."""
    with np.errstate(over="ignore"):
        base = np.uint64(splitmix64(int(
            (np.uint64(node_id) + np.uint64(1)) * _NODE_SALT + np.uint64(seed)
        )))
        return np.asarray(
            splitmix64(base + np.arange(1, vnodes + 1, dtype=np.uint64)),
            dtype=np.uint64,
        )


def interval_mask(positions: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Which *positions* fall in the ring interval ``(lo, hi]``.

    Intervals live on the 64-bit circle: when ``lo >= hi`` the interval
    wraps through zero (and ``lo == hi`` means the whole circle — the
    single-token ring's only interval).
    """
    positions = np.asarray(positions, dtype=np.uint64)
    lo64, hi64 = np.uint64(lo), np.uint64(hi)
    if lo64 < hi64:
        return (positions > lo64) & (positions <= hi64)
    return (positions > lo64) | (positions <= hi64)


@dataclass(frozen=True)
class RoutingTable:
    """Compiled ring: sorted tokens + per-token replica rows.

    A key with hashed position ``p`` maps to the first token ``>= p``
    (wrapping past the last token to the first), and is served by that
    row's ``rf`` distinct nodes.
    """

    tokens: np.ndarray  # uint64, strictly increasing
    rows: np.ndarray    # (n_tokens, rf) int64, distinct within a row

    def __post_init__(self) -> None:
        if self.tokens.ndim != 1 or self.rows.ndim != 2:
            raise ValueError("tokens must be 1-D and rows 2-D")
        if self.tokens.size != self.rows.shape[0]:
            raise ValueError("one replica row per token required")
        if self.tokens.size > 1 and not (self.tokens[:-1] < self.tokens[1:]).all():
            raise ValueError("tokens must be strictly increasing")

    @property
    def n_tokens(self) -> int:
        return int(self.tokens.size)

    @property
    def rf(self) -> int:
        return int(self.rows.shape[1])

    def row_index(self, positions: np.ndarray) -> np.ndarray:
        """Token-interval index of each hashed position (vectorised)."""
        positions = np.asarray(positions, dtype=np.uint64)
        return np.searchsorted(self.tokens, positions, side="left") % self.n_tokens

    def replicas_at(self, positions: np.ndarray) -> np.ndarray:
        """``(n, rf)`` replica node ids for hashed positions."""
        return self.rows[self.row_index(positions)]

    def interval(self, index: int) -> tuple[int, int]:
        """The ``(lo, hi]`` ring interval of token row *index*."""
        hi = int(self.tokens[index])
        lo = int(self.tokens[index - 1]) if index > 0 else int(self.tokens[-1])
        return lo, hi


class HashRing:
    """Seeded consistent-hash ring with virtual nodes and replication.

    Placement depends only on ``(node_ids, rf, vnodes, seed)`` — two
    rings built from the same description in different processes give
    bit-identical routing, which is what lets stateless clients,
    routers, and rebalancers agree without coordination.
    """

    def __init__(self, node_ids: Iterable[int], *, rf: int = 2,
                 vnodes: int = 16, seed: int = 0):
        raw = [int(n) for n in node_ids]
        ids = sorted(set(raw))
        if len(ids) != len(raw):
            raise ValueError("node ids must be unique")
        if not ids:
            raise ValueError("ring needs at least one node")
        if any(n < 0 for n in ids):
            raise ValueError("node ids must be non-negative")
        if rf < 1:
            raise ValueError("replication factor must be >= 1")
        if rf > len(ids):
            raise ValueError(
                f"replication factor {rf} exceeds {len(ids)} nodes")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.node_ids: tuple[int, ...] = tuple(ids)
        self.rf = rf
        self.vnodes = vnodes
        self.seed = seed
        self._table: RoutingTable | None = None

    # -- derived rings -------------------------------------------------

    def with_node(self, node_id: int) -> "HashRing":
        """A new ring with *node_id* joined (same seed/vnodes/rf)."""
        if int(node_id) in self.node_ids:
            raise ValueError(f"node {node_id} already in the ring")
        return HashRing(self.node_ids + (int(node_id),), rf=self.rf,
                        vnodes=self.vnodes, seed=self.seed)

    def without_node(self, node_id: int) -> "HashRing":
        """A new ring with *node_id* departed (same seed/vnodes/rf)."""
        if int(node_id) not in self.node_ids:
            raise ValueError(f"node {node_id} not in the ring")
        remaining = tuple(n for n in self.node_ids if n != int(node_id))
        return HashRing(remaining, rf=self.rf, vnodes=self.vnodes,
                        seed=self.seed)

    # -- compilation ---------------------------------------------------

    def table(self) -> RoutingTable:
        """Compile (and cache) the ring's routing table."""
        if self._table is None:
            self._table = self._compile()
        return self._table

    def _compile(self) -> RoutingTable:
        tokens = np.concatenate([_node_tokens(n, self.vnodes, self.seed)
                                 for n in self.node_ids])
        owners = np.repeat(np.asarray(self.node_ids, dtype=np.int64),
                           self.vnodes)
        # Token collisions are a ~T^2/2^64 event; resolve them
        # deterministically (rehash the colliding later owner) so the
        # ring never depends on tie-breaking order.
        for _ in range(64):
            order = np.lexsort((owners, tokens))
            tokens, owners = tokens[order], owners[order]
            dup = np.flatnonzero(tokens[1:] == tokens[:-1]) + 1
            if dup.size == 0:
                break
            with np.errstate(over="ignore"):
                tokens[dup] = np.asarray(
                    splitmix64(tokens[dup] + np.uint64(1)), dtype=np.uint64)
        else:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("could not resolve ring token collisions")

        n_tokens = tokens.size
        rows = np.empty((n_tokens, self.rf), dtype=np.int64)
        for i in range(n_tokens):
            picked: list[int] = []
            j = i
            while len(picked) < self.rf:
                owner = int(owners[j % n_tokens])
                if owner not in picked:
                    picked.append(owner)
                j += 1
            rows[i] = picked
        return RoutingTable(tokens, rows)

    # -- placement -----------------------------------------------------

    @staticmethod
    def positions(keys: np.ndarray) -> np.ndarray:
        """Hashed ring positions of raw keys (splitmix64)."""
        return np.asarray(splitmix64(np.asarray(keys, dtype=np.uint64)),
                          dtype=np.uint64)

    def replicas_batch(self, keys: np.ndarray) -> np.ndarray:
        """``(n, rf)`` replica node ids for a batch of raw keys."""
        return self.table().replicas_at(self.positions(keys))

    def replicas(self, key: int) -> tuple[int, ...]:
        """The *rf* distinct replica nodes of one key, primary first."""
        row = self.replicas_batch(np.array([key], dtype=np.uint64))[0]
        return tuple(int(n) for n in row)

    # -- introspection -------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_ids)

    def describe(self) -> dict:
        """JSON-friendly ring summary (tokens per node, span share)."""
        table = self.table()
        spans = np.diff(table.tokens.astype(np.float64),
                        prepend=float(table.tokens[-1]) - 2.0 ** 64)
        share = {int(n): 0.0 for n in self.node_ids}
        for i in range(table.n_tokens):
            share[int(table.rows[i, 0])] += float(spans[i])
        total = sum(share.values())
        return {
            "nodes": list(self.node_ids),
            "rf": self.rf,
            "vnodes": self.vnodes,
            "seed": self.seed,
            "tokens": table.n_tokens,
            "primary_share": {n: s / total for n, s in share.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"HashRing(nodes={list(self.node_ids)}, rf={self.rf}, "
                f"vnodes={self.vnodes}, seed={self.seed})")
