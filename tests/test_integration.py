"""End-to-end integration tests across the whole stack.

Every distributed algorithm, on every dataset flavour, must produce the
exact multiset of counts that Algorithm 1 produces — across machines,
granularities, topologies and k values.  This is the repository's
master correctness gate.
"""

from __future__ import annotations

import pytest

from repro import count_kmers
from repro.core.serial import serial_count, serial_count_oracle
from repro.runtime.machine import laptop, phoenix_amd, phoenix_intel
from repro.seq.datasets import materialize
from repro.seq.kmers import extract_kmers_from_reads

DISTRIBUTED = ["dakc", "bsp", "pakman", "pakman*", "hysortk"]


@pytest.fixture(scope="module")
def workloads():
    return {
        "uniform": materialize("synthetic-20", fidelity=2**-8, seed=5),
        "heavy": materialize("human", fidelity=6e-6, seed=5),
        "tiny-genome": materialize("synthetic-20", fidelity=1e-9, seed=5,
                                   max_reads=150),
    }


class TestCrossAlgorithmAgreement:
    @pytest.mark.parametrize("flavour", ["uniform", "heavy", "tiny-genome"])
    @pytest.mark.parametrize("algorithm", DISTRIBUTED + ["kmc3"])
    def test_agreement_k31(self, workloads, flavour, algorithm):
        w = workloads[flavour]
        ref = serial_count(w.reads, 31)
        run = count_kmers(w.reads, 31, algorithm=algorithm,
                          machine=phoenix_intel(2), pe_granularity="node")
        assert run.counts == ref, run.counts.diff(ref)

    @pytest.mark.parametrize("k", [4, 16, 32])
    def test_agreement_k_sweep(self, workloads, k):
        w = workloads["uniform"]
        ref = serial_count(w.reads, k)
        for algorithm in ("dakc", "hysortk"):
            run = count_kmers(w.reads, k, algorithm=algorithm,
                              machine=laptop(nodes=2, cores=4))
            assert run.counts == ref

    def test_oracle_anchoring(self, workloads):
        """The vectorised serial counter itself is anchored to a
        string-level Counter oracle on a subset."""
        w = workloads["uniform"]
        sub = w.reads[:25]
        assert serial_count(sub, 13) == serial_count_oracle(sub, 13)

    def test_amd_machine(self, workloads):
        w = workloads["uniform"]
        ref = serial_count(w.reads, 21)
        run = count_kmers(w.reads, 21, algorithm="dakc",
                          machine=phoenix_amd(1), pe_granularity="socket")
        assert run.counts == ref


class TestPaperHeadlineClaims:
    """The qualitative results the paper leads with, at replica scale."""

    def test_dakc_three_syncs_vs_bsp_growth(self, workloads):
        w = workloads["uniform"]
        d = count_kmers(w.reads, 31, algorithm="dakc", machine=laptop(2, 4))
        b = count_kmers(w.reads, 31, algorithm="bsp", machine=laptop(2, 4),
                        batch_size=2000)
        assert d.stats.global_syncs == 3
        assert b.stats.global_syncs > 3

    def test_dakc_beats_bsp_baselines(self):
        """Who-wins, on a mid-size replica at 8 nodes."""
        from repro.bench.harness import run_point
        from repro.bench.workloads import build_workload

        w = build_workload("synthetic-26", 31, budget_kmers=200_000)
        d = run_point("dakc", w, 31, nodes=8)
        p = run_point("pakman*", w, 31, nodes=8)
        h = run_point("hysortk", w, 31, nodes=8)
        assert d.sim_time < h.sim_time < p.sim_time

    def test_heavy_hitter_l3_speedup(self):
        """Fig. 12's core claim: on heavy-hitter data, the L3 layer
        speeds DAKC up; on uniform data it does not slow it much."""
        from repro.bench.harness import run_point
        from repro.bench.workloads import build_workload
        from repro.core.l2l3 import AggregationConfig

        wh = build_workload("human", 31, budget_kmers=200_000)
        on = run_point("dakc", wh, 31, nodes=8, pe_granularity="core",
                       agg=AggregationConfig(enable_l3=True),
                       enforce_oom_gate=False)
        off = run_point("dakc", wh, 31, nodes=8, pe_granularity="core",
                        agg=AggregationConfig(enable_l3=False),
                        enforce_oom_gate=False)
        assert on.sim_time < off.sim_time
        assert on.receive_imbalance < off.receive_imbalance

    def test_strong_scaling_monotone_until_limit(self):
        from repro.bench.harness import run_point
        from repro.bench.workloads import build_workload

        w = build_workload("synthetic-27", 31, budget_kmers=300_000)
        times = [run_point("dakc", w, 31, nodes=n).sim_time for n in (1, 2, 4, 8)]
        assert times[0] > times[1] > times[2] > times[3]


class TestDataPipeline:
    def test_fastq_roundtrip_counting(self, tmp_path, workloads):
        """FASTQ write -> read -> count == in-memory count."""
        from repro.seq.fastx import write_fastq
        from repro.seq.readsim import reads_to_records

        w = workloads["uniform"]
        sub = w.reads[:40]
        path = tmp_path / "roundtrip.fastq"
        write_fastq(path, reads_to_records(sub))
        ref = serial_count(sub, 15)
        run = count_kmers(str(path), 15, algorithm="serial")
        assert run.counts == ref

    def test_total_kmer_conservation(self, workloads):
        w = workloads["uniform"]
        kc = serial_count(w.reads, 31)
        assert kc.total == extract_kmers_from_reads(w.reads, 31).size
