"""Tests for the in-process trace recorder (the capture hot path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.format import TIER_STORE, TIER_T1, load_trace
from repro.trace.recorder import TraceRecorder


class FakeClock:
    """Deterministic monotonic clock for timestamp assertions."""

    def __init__(self, step: float = 0.01):
        self.t = 100.0  # arbitrary epoch: recorder must rebase to zero
        self.step = step

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now


class TestRecordBatch:
    def test_batches_share_one_rebased_timestamp(self):
        rec = TraceRecorder(clock=FakeClock(step=0.5))
        rec.record_batch([1, 2, 3])
        rec.record_batch([4, 5])
        trace = rec.snapshot()
        assert trace.n_records == 5
        # First batch stamps t=0 (rebased), second t=0.5.
        assert np.array_equal(trace.ts, [0.0, 0.0, 0.0, 0.5, 0.5])

    def test_default_tier_is_store(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.record_batch([7, 8])
        assert np.all(rec.snapshot().tiers == TIER_STORE)

    def test_explicit_tiers_and_stream(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.record_batch([7, 8], [TIER_T1, TIER_STORE], stream=3)
        trace = rec.snapshot()
        assert trace.tier_counts() == {"t1": 1, "t2": 0, "store": 1}
        assert np.all(trace.streams == 3)

    def test_explicit_ts_scalar_and_vector(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.record_batch([1, 2], ts=1.5)
        rec.record_batch([3, 4], ts=[2.0, 2.5])
        assert np.array_equal(rec.snapshot().ts, [1.5, 1.5, 2.0, 2.5])

    def test_empty_batch_is_a_noop(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.record_batch(np.empty(0, np.uint64))
        assert rec.n_records == 0
        assert rec.snapshot().n_records == 0

    def test_tier_length_mismatch_rejected(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(ValueError, match="tiers"):
            rec.record_batch([1, 2, 3], [TIER_T1])

    def test_ts_length_mismatch_rejected(self):
        rec = TraceRecorder(clock=FakeClock())
        with pytest.raises(ValueError, match="ts"):
            rec.record_batch([1, 2, 3], ts=[0.0, 1.0])

    def test_recorder_copies_caller_arrays(self):
        rec = TraceRecorder(clock=FakeClock())
        keys = np.array([1, 2, 3], dtype=np.uint64)
        rec.record_batch(keys)
        keys[:] = 0  # mutate after the fact
        assert np.array_equal(rec.snapshot().keys, [1, 2, 3])


class TestSnapshotLifecycle:
    def test_many_batches_coalesce_without_loss(self):
        rec = TraceRecorder(clock=FakeClock(step=1e-4))
        n_batches = 2_000  # crosses the internal coalesce threshold
        for i in range(n_batches):
            rec.record_batch([i, i + 1])
        trace = rec.snapshot()
        assert trace.n_records == 2 * n_batches
        assert np.array_equal(trace.keys[:4], [0, 1, 1, 2])
        assert np.all(np.diff(trace.ts) >= 0)

    def test_recording_continues_after_snapshot(self):
        rec = TraceRecorder(clock=FakeClock())
        rec.record_batch([1])
        first = rec.snapshot()
        rec.record_batch([2])
        second = rec.snapshot()
        assert first.n_records == 1
        assert second.n_records == 2

    def test_clear_resets_count_and_epoch(self):
        clock = FakeClock(step=1.0)
        rec = TraceRecorder(clock=clock)
        rec.record_batch([1])
        rec.clear()
        assert rec.n_records == 0
        rec.record_batch([2])
        # Epoch rebased again: the post-clear trace starts at ts=0.
        assert rec.snapshot().ts[0] == 0.0

    def test_save_writes_loadable_trace_with_provenance(self, tmp_path):
        rec = TraceRecorder(k=21, seed=7, source="unit", clock=FakeClock())
        rec.record_batch([1, 2, 3])
        path = tmp_path / "rec.npz"
        returned = rec.save(path)
        loaded = load_trace(path)
        assert loaded.same_records(returned)
        assert (loaded.k, loaded.seed, loaded.source) == (21, 7, "unit")
