"""Tests for the Mattson reuse-distance profiler.

The load-bearing property is exactness: for any key sequence and any
capacity, the hit count the reuse-distance histogram *predicts* must
equal what a brute-force LRU simulation *measures* — that is the
Mattson (1970) stack-inclusion theorem, and the hypothesis test below
asserts it verbatim.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve.cache import HotKeyCache
from repro.trace.profiler import (
    COLD,
    RDHistogram,
    default_capacities,
    profile_trace,
    reuse_distances,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.replay import simulate_cache


class TestReuseDistances:
    def test_textbook_sequence(self):
        # 1 2 3 1 2 1 — the classic worked example.
        d = reuse_distances(np.array([1, 2, 3, 1, 2, 1], dtype=np.uint64))
        assert d.tolist() == [COLD, COLD, COLD, 2, 2, 1]

    def test_immediate_reaccess_has_distance_zero(self):
        d = reuse_distances(np.array([5, 5, 5], dtype=np.uint64))
        assert d.tolist() == [COLD, 0, 0]

    def test_all_distinct_is_all_cold(self):
        d = reuse_distances(np.arange(10, dtype=np.uint64))
        assert np.all(d == COLD)

    def test_empty_sequence(self):
        assert reuse_distances(np.empty(0, np.uint64)).size == 0


class TestMattsonInclusion:
    """Predicted LRU hits == brute-force simulated LRU hits, always."""

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=12),
                      min_size=1, max_size=200),
        capacity=st.integers(min_value=1, max_value=16),
    )
    def test_predicted_hits_match_lru_simulation(self, keys, capacity):
        arr = np.asarray(keys, dtype=np.uint64)
        hist = RDHistogram.from_distances(reuse_distances(arr))
        # admit_threshold=1 makes HotKeyCache exact classic LRU.
        sim = simulate_cache(arr, HotKeyCache(capacity, admit_threshold=1))
        assert hist.predicted_hits(capacity) == sim["hits"]

    def test_several_capacities_on_a_zipf_stream(self):
        rng = np.random.default_rng(0)
        keys = rng.zipf(1.3, size=5_000).astype(np.uint64)
        hist = RDHistogram.from_distances(reuse_distances(keys))
        for capacity in (1, 2, 8, 32, 128, 1024):
            sim = simulate_cache(keys, HotKeyCache(capacity, admit_threshold=1))
            assert hist.predicted_hits(capacity) == sim["hits"], capacity


class TestRDHistogram:
    def make(self) -> RDHistogram:
        keys = np.array([1, 2, 3, 1, 2, 1, 4, 4], dtype=np.uint64)
        return RDHistogram.from_distances(reuse_distances(keys))

    def test_accounting(self):
        hist = self.make()
        assert hist.n_accesses == 8
        assert hist.n_distinct == 4  # == cold misses

    def test_miss_ratio_curve_is_monotone_nonincreasing(self):
        hist = self.make()
        caps = np.arange(1, 10)
        mrc = hist.miss_ratio_curve(caps)
        assert np.all(np.diff(mrc) <= 1e-12)
        # Floor: cold misses never hit at any capacity.
        assert mrc[-1] == pytest.approx(hist.cold / hist.n_accesses)

    def test_curve_agrees_with_scalar_predictions(self):
        hist = self.make()
        caps = [1, 2, 3, 4, 100]
        mrc = hist.miss_ratio_curve(caps)
        for c, miss in zip(caps, mrc):
            assert miss == pytest.approx(1.0 - hist.predicted_hit_rate(c))

    def test_zero_capacity_never_hits(self):
        assert self.make().predicted_hits(0) == 0

    def test_doc_round_trip(self):
        hist = self.make()
        back = RDHistogram.from_doc(hist.to_doc())
        assert back.cold == hist.cold
        assert np.array_equal(back.counts, hist.counts)

    def test_merge_is_pointwise_sum(self):
        a = self.make()
        b = RDHistogram(counts=np.array([5], dtype=np.int64), cold=2)
        merged = a.merge(b)
        assert merged.cold == a.cold + 2
        assert merged.counts[0] == a.counts[0] + 5
        assert merged.n_accesses == a.n_accesses + 7

    def test_empty_histogram(self):
        hist = RDHistogram.from_distances(np.empty(0, np.int64))
        assert hist.n_accesses == 0
        assert hist.predicted_hit_rate(10) == 0.0
        assert np.all(hist.miss_ratio_curve([1, 2]) == 0.0)


class TestProfileTrace:
    def test_default_capacities_span_the_working_set(self):
        caps = default_capacities(1000)
        assert caps[0] == 1
        assert caps[-1] == 1000
        assert np.all(np.diff(caps) > 0)
        assert default_capacities(1).tolist() == [1]

    def test_profile_trace_doc_shape(self):
        rec = TraceRecorder(clock=lambda: 0.0)
        rng = np.random.default_rng(1)
        rec.record_batch(rng.zipf(1.4, size=2_000).astype(np.uint64))
        profile = profile_trace(rec.snapshot())
        doc = profile.to_doc()
        assert len(doc["capacities"]) == len(doc["miss_ratio"])
        assert doc["histogram"]["cold"] == profile.histogram.cold
        for miss, hit in zip(doc["miss_ratio"], doc["hit_ratio"]):
            assert miss + hit == pytest.approx(1.0)
