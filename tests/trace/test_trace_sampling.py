"""Tests for trace sampling (SHARDS spatial + temporal windows).

The satellite claim under test: a spatially sampled replay preserves
the miss-ratio curve of the full trace within tolerance, after the
SHARDS 1/rate capacity rescaling (pooling a few salted samples keeps
the variance down on skewed traces).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.format import QueryTrace
from repro.trace.replay import measured_miss_ratio_curve
from repro.trace.sampling import (
    pooled_miss_ratio_curve,
    sample_rate,
    scaled_miss_ratio_curve,
    spatial_sample,
    temporal_sample,
)


def zipf_trace(n: int = 20_000, seed: int = 0, a: float = 1.3) -> QueryTrace:
    rng = np.random.default_rng(seed)
    keys = rng.zipf(a, size=n).astype(np.uint64)
    # Scramble so key identity is not correlated with popularity rank
    # (the hash filter must not systematically drop the head).
    keys = keys * np.uint64(0x9E3779B97F4A7C15)
    ts = np.cumsum(rng.exponential(1e-4, size=n))
    return QueryTrace(ts=ts, streams=np.zeros(n, np.int32), keys=keys,
                      tiers=np.zeros(n, np.int8), seed=seed)


class TestSpatialSample:
    def test_rate_one_is_identity(self):
        trace = zipf_trace(500)
        sampled = spatial_sample(trace, 1.0)
        assert sampled.same_records(trace)
        assert sample_rate(sampled) == 1.0

    def test_invalid_rates_rejected(self):
        trace = zipf_trace(10)
        for rate in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                spatial_sample(trace, rate)

    def test_sampling_is_by_key_not_by_record(self):
        # Every access of a kept key survives; dropped keys vanish.
        trace = zipf_trace(5_000)
        sampled = spatial_sample(trace, 0.5)
        kept = set(np.unique(sampled.keys).tolist())
        mask = np.isin(trace.keys, np.fromiter(kept, np.uint64, len(kept)))
        assert np.array_equal(sampled.keys, trace.keys[mask])
        assert np.array_equal(sampled.ts, trace.ts[mask])

    def test_deterministic_in_salt_and_independent_across_salts(self):
        trace = zipf_trace(5_000)
        a1 = spatial_sample(trace, 0.5, salt=1)
        a2 = spatial_sample(trace, 0.5, salt=1)
        b = spatial_sample(trace, 0.5, salt=2)
        assert a1.same_records(a2)
        assert not a1.same_records(b)

    def test_kept_fraction_tracks_rate(self):
        trace = zipf_trace(50_000, seed=3)
        n_full = np.unique(trace.keys).size
        n_kept = np.unique(spatial_sample(trace, 0.25).keys).size
        assert 0.15 < n_kept / n_full < 0.35

    def test_meta_records_the_sample(self):
        sampled = spatial_sample(zipf_trace(100), 0.5, salt=9)
        assert sampled.meta["sample"] == {
            "kind": "spatial", "rate": 0.5, "salt": 9, "parent_records": 100}
        assert sample_rate(sampled) == 0.5


class TestTemporalSample:
    def test_window_slicing(self):
        trace = zipf_trace(10_000)
        sampled = temporal_sample(trace, window=0.2, every=1.0)
        rel = sampled.ts % 1.0
        assert np.all(rel < 0.2)
        assert 0 < sampled.n_records < trace.n_records
        assert sample_rate(sampled) == 1.0  # no capacity-rescaling claim

    def test_invalid_windows_rejected(self):
        trace = zipf_trace(10)
        with pytest.raises(ValueError):
            temporal_sample(trace, window=2.0, every=1.0)
        with pytest.raises(ValueError):
            temporal_sample(trace, window=0.0, every=1.0)


class TestCurvePreservation:
    def test_scaled_curve_on_unsampled_trace_is_exact(self):
        trace = zipf_trace(5_000)
        caps = np.array([1, 4, 16, 64, 256])
        exact = measured_miss_ratio_curve(trace.keys, caps)
        est = scaled_miss_ratio_curve(trace, caps)
        assert np.allclose(est, exact, atol=1e-12)

    def test_pooled_sampled_curve_matches_within_tolerance(self, small_reads):
        # The satellite acceptance test: a sampled replay preserves
        # the miss-ratio curve.  On the serving workload the bench
        # records (Zipf(1.1) over a counted spectrum), 4 pooled salts
        # at rate 0.5 stay within 5pp of the exact curve — head-key
        # inclusion noise dominates at these toy capacities, so the
        # tolerance is wider than production SHARDS (<1pp at
        # million-entry capacities).
        from repro.core.serial import serial_count
        from repro.serve.workload import zipf_workload

        kc = serial_count(small_reads, 15)
        w = zipf_workload(kc, 30_000, s=1.1, seed=0, miss_fraction=0.02)
        n = w.keys.size
        trace = QueryTrace(ts=w.arrivals, streams=np.zeros(n, np.int32),
                           keys=w.keys, tiers=np.zeros(n, np.int8))
        caps = np.array([16, 64, 256, 1024, 4096])
        exact = measured_miss_ratio_curve(trace.keys, caps)
        est = pooled_miss_ratio_curve(trace, 0.5, caps, salts=4)
        err_pp = float(np.abs(est - exact).max()) * 100.0
        assert err_pp <= 5.0, f"sampled MRC off by {err_pp:.2f}pp"

    def test_pooling_needs_a_salt(self):
        with pytest.raises(ValueError):
            pooled_miss_ratio_curve(zipf_trace(100), 0.5, [4], salts=0)
